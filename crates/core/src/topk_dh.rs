//! `TopKDH` / `TopKDAGDH` — the early-termination heuristic for topKDP
//! (Section 5.2, Theorem 5(3)).
//!
//! `TopKDiv` must compute all of `Mu(Q,G,uo)` first; `TopKDH` instead rides
//! the same propagation engine as `TopK`, maintaining a running set `S` of
//! at most `k` matches. Whenever a wave confirms new output matches, each
//! newcomer `v'` either fills `S` (if `|S| < k`) or greedily replaces the
//! member `v` maximizing `F''(S \ {v} ∪ {v'}) - F''(S)`, where `F''` is the
//! objective evaluated on *partial* information: `v.l / Cuo` in place of
//! `δ'r` and Jaccard over the partial relevant sets in place of `δd` —
//! exactly the paper's Example 10 computation (`0.9·13/11 + 0.2·1/7 ≈
//! 1.1`). It stops as soon as Proposition 3 holds for `S`, then completes
//! the winners' cones and reports `F(S)` on exact sets.
//!
//! No approximation ratio is claimed (the paper shows empirically that
//! `F(TopKDH) ≳ 0.77 · F(TopKDiv)`; Figure 5(i)).

use std::time::Instant;

use gpm_graph::{BitSet, DiGraph};
use gpm_pattern::Pattern;
use gpm_ranking::objective::Objective;

use crate::config::DivConfig;
use crate::engine::{Engine, Status};
use crate::result::{DivResult, RankedMatch, RunStats};

/// `TopKDH` (cyclic patterns) and `TopKDAGDH` (DAG patterns) — one
/// implementation, like `TopK`/`TopKDAG`.
pub fn top_k_diversified_heuristic(g: &DiGraph, q: &Pattern, cfg: &DivConfig) -> DivResult {
    let t0 = Instant::now();
    let Some(mut eng) = Engine::new(g, q, &cfg.topk) else {
        return DivResult {
            matches: Vec::new(),
            f_value: 0.0,
            stats: RunStats { elapsed: t0.elapsed(), total_matches: Some(0), ..Default::default() },
        };
    };
    let k = cfg.topk.k;
    let objective = Objective::for_pattern(cfg.lambda, k, q, eng.space());
    let empty = BitSet::new(eng.universe_size());

    // Running diversified selection (candidate indices) and the set of
    // candidates already offered to it.
    let mut s: Vec<usize> = Vec::new();
    let mut seen = vec![false; eng.output_candidates()];

    loop {
        // Offer newly confirmed matches to S.
        let newcomers: Vec<usize> =
            eng.matched_outputs().filter(|&(i, _, _)| !seen[i]).map(|(i, _, _)| i).collect();
        for i in newcomers {
            seen[i] = true;
            offer(&mut s, i, k, &objective, &eng, &empty);
        }

        // Proposition 3 over the diversified S (heuristic, per Section 5.2).
        if s.len() == k && k > 0 {
            let min_l = s.iter().map(|&i| eng.output_l(i)).min().unwrap();
            if crate::selector::prop3_holds(min_l, eng.best_rest_bound(&s)) {
                eng.stats_mut().early_terminated = true;
                eng.stats_mut().inspected_matches = eng.matched_count();
                break;
            }
        }
        if eng.exhausted() {
            let total = eng.matched_count();
            eng.stats_mut().inspected_matches = total;
            eng.stats_mut().total_matches = Some(total);
            break;
        }
        eng.wave();
    }

    if cfg.topk.exact_scores {
        eng.complete_cones(&s);
    }

    // Exact F(S) on completed sets.
    let rels: Vec<f64> = s.iter().map(|&i| eng.output_l(i) as f64).collect();
    let f_value = objective.f_score(&rels, |a, b| {
        let ra = eng.output_r(s[a]).unwrap_or(&empty);
        let rb = eng.output_r(s[b]).unwrap_or(&empty);
        ra.jaccard_distance(rb)
    });
    let mut matches: Vec<RankedMatch> = s
        .iter()
        .map(|&i| RankedMatch { node: eng.output_node(i), relevance: eng.output_l(i) })
        .collect();
    matches.sort_by(|a, b| b.relevance.cmp(&a.relevance).then(a.node.cmp(&b.node)));
    eng.stats_mut().elapsed = t0.elapsed();
    DivResult { matches, f_value, stats: eng.stats().clone() }
}

/// Greedy insert-or-swap against `F''` (partial information).
fn offer(
    s: &mut Vec<usize>,
    cand: usize,
    k: usize,
    obj: &Objective,
    eng: &Engine<'_>,
    empty: &BitSet,
) {
    debug_assert_eq!(eng.output_status(cand), Status::Matched);
    if s.contains(&cand) {
        return;
    }
    if s.len() < k {
        s.push(cand);
        return;
    }
    let f_cur = f_partial(s, obj, eng, empty);
    let mut best: Option<(f64, usize)> = None;
    for pos in 0..s.len() {
        let mut alt = s.clone();
        alt[pos] = cand;
        let f_alt = f_partial(&alt, obj, eng, empty);
        let gain = f_alt - f_cur;
        if gain > 1e-12 && best.is_none_or(|(g, _)| gain > g) {
            best = Some((gain, pos));
        }
    }
    if let Some((_, pos)) = best {
        s[pos] = cand;
    }
}

/// `F''`: the objective on current lower bounds and partial relevant sets.
fn f_partial(s: &[usize], obj: &Objective, eng: &Engine<'_>, empty: &BitSet) -> f64 {
    let rels: Vec<f64> = s.iter().map(|&i| eng.output_l(i) as f64).collect();
    obj.f_score(&rels, |a, b| {
        let ra = eng.output_r(s[a]).unwrap_or(empty);
        let rb = eng.output_r(s[b]).unwrap_or(empty);
        ra.jaccard_distance(rb)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topk_div::top_k_diversified;
    use gpm_graph::builder::graph_from_parts;
    use gpm_pattern::builder::label_pattern;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn returns_k_valid_matches() {
        let g = graph_from_parts(&[0, 0, 0, 1, 1, 1, 1], &[(0, 3), (0, 4), (1, 4), (1, 5), (2, 6)])
            .unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let r = top_k_diversified_heuristic(&g, &q, &DivConfig::new(2, 0.5));
        assert_eq!(r.matches.len(), 2);
        for m in &r.matches {
            assert!(m.node <= 2, "only a-roots can match");
        }
        assert!(r.f_value > 0.0);
    }

    #[test]
    fn heuristic_quality_vs_approximation() {
        // On random instances the heuristic should stay within a reasonable
        // factor of TopKDiv (the paper observes ≥ 0.77 · F(TopKDiv) on
        // average; we assert a loose 0.5 floor plus validity).
        let mut rng = StdRng::seed_from_u64(23);
        let mut ratios = Vec::new();
        for _ in 0..20 {
            let n = rng.random_range(6..30usize);
            let labels: Vec<u32> = (0..n).map(|_| rng.random_range(0..3u32)).collect();
            let m = rng.random_range(n..n * 3);
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| (rng.random_range(0..n as u32), rng.random_range(0..n as u32)))
                .filter(|(a, b)| a != b)
                .collect();
            let g = graph_from_parts(&labels, &edges).unwrap();
            let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
            let cfg = DivConfig::new(3, 0.5);
            let div = top_k_diversified(&g, &q, &cfg);
            let dh = top_k_diversified_heuristic(&g, &q, &cfg);
            assert_eq!(dh.matches.len(), div.matches.len());
            if div.f_value > 0.0 {
                ratios.push(dh.f_value / div.f_value);
            }
        }
        if !ratios.is_empty() {
            let avg: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
            assert!(avg > 0.5, "average quality ratio too low: {avg}");
        }
    }

    #[test]
    fn empty_and_degenerate() {
        let g = graph_from_parts(&[0], &[]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let r = top_k_diversified_heuristic(&g, &q, &DivConfig::new(2, 0.5));
        assert!(r.matches.is_empty());
        // k = 1 works (diversity term vanishes).
        let g2 = graph_from_parts(&[0, 1], &[(0, 1)]).unwrap();
        let r2 = top_k_diversified_heuristic(&g2, &q, &DivConfig::new(1, 0.9));
        assert_eq!(r2.matches.len(), 1);
    }
}
