//! # gpm-core
//!
//! The paper's contribution: **(diversified) top-k graph pattern matching**
//! with early termination (Fan, Wang, Wu — VLDB 2013).
//!
//! Given a pattern `Q` with output node `uo`, a data graph `G` and `k`, the
//! problems are (Sections 3.1/3.3):
//!
//! * **topKP** — find `S ⊆ Mu(Q,G,uo)`, `|S| = k`, maximizing
//!   `Σ_{v∈S} δr(uo,v)`;
//! * **topKDP** — maximize the bi-criteria `F(S)` mixing relevance and
//!   diversity (NP-complete; Theorem 5).
//!
//! Algorithms, matching the paper's Sections 4 and 5:
//!
//! | paper | here | notes |
//! |---|---|---|
//! | `Match` | [`match_all::top_k_by_match`] | find-all-then-rank baseline |
//! | `TopKDAG` | [`topk::top_k_dag`] | DAG patterns, early termination |
//! | `TopK` | [`topk::top_k_cyclic`] | cyclic patterns via `Q_SCC` fixpoint |
//! | `TopKDAGnopt`/`TopKnopt` | `SelectionStrategy::Random` | ablation of the selection heuristic |
//! | `TopKDiv` | [`topk_div::top_k_diversified`] | 2-approximation of topKDP |
//! | `TopKDH`/`TopKDAGDH` | [`topk_dh::top_k_diversified_heuristic`] | early-termination heuristic |
//! | generalized topKP/topKDP | [`generalized`] | Propositions 4 & 6 |
//!
//! The early-termination engine ([`engine`]) maintains, for every candidate
//! pair `(u,v)`, the paper's vector `v.T`: a match status standing in for
//! the boolean formula `v.bf` (represented by counters), a partial relevant
//! set `v.R`, and bounds `v.l = |v.R| ≤ δr ≤ v.h`. Leaf batches `Sc` are
//! activated and propagated upward (`AcyclicProp`); nontrivial pattern SCCs
//! run a local fixpoint (`SccProcess`); Proposition 3 decides termination.

pub mod config;
pub mod engine;
pub mod generalized;
pub mod match_all;
pub mod multi_output;
pub mod result;
pub mod selector;
pub mod topk;
pub mod topk_dh;
pub mod topk_div;

pub use config::{DivConfig, SelectionStrategy, TopKConfig};
pub use match_all::{top_k_by_match, MatchOutcome};
pub use multi_output::{top_k_multi, with_output};
pub use result::{rank_top_k, DivResult, RankedMatch, RunStats, TopKResult};
pub use selector::{prop3_holds, BoundedSelector, SelEntry};
pub use topk::{top_k, top_k_cyclic, top_k_dag};
pub use topk_dh::top_k_diversified_heuristic;
pub use topk_div::{greedy_diversified, top_k_diversified};
