//! [`BoundedSelector`] — the re-entrant core of Proposition-3 early
//! termination.
//!
//! The static drivers ([`crate::topk`], [`crate::topk_dh`]) and the
//! dynamic refresh planner (gpm-incremental) all ask the same two
//! questions about a running top-k selection ordered by
//! `(relevance desc, node asc)` — the exact order
//! [`crate::result::rank_top_k`] ranks by:
//!
//! * **termination** — is the k-th confirmed lower bound ≥ the best
//!   upper bound outside the selection? ([`prop3_holds`])
//! * **domination** — can a candidate with upper bound `h` still
//!   displace the current k-th entry? ([`BoundedSelector::dominates`])
//!
//! Domination is strict in the tie-break too: a candidate `v` with
//! `h = kth.relevance` is only dominated when `kth.node < v` — so
//! pruning on `dominates` is exact, never just approximate, under the
//! global tie order.

use gpm_graph::NodeId;

/// Proposition 3: a full selection of confirmed matches is final when
/// its minimum confirmed lower bound dominates the best upper bound
/// outside it (`l(s) ≤ δr(s)` and `δr(r) ≤ h(r)` give
/// `δr(s) ≥ δr(r)` for every selected `s`, rejected `r`).
#[inline]
pub fn prop3_holds(min_l: u64, best_rest: u64) -> bool {
    min_l >= best_rest
}

/// One selection entry: a caller-supplied id (candidate index, node id,
/// …), the output data node, and its confirmed relevance (lower bound).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SelEntry {
    pub id: usize,
    pub node: NodeId,
    pub relevance: u64,
}

impl SelEntry {
    /// `true` when `self` ranks strictly before `(relevance, node)` in
    /// the global `(relevance desc, node asc)` order.
    #[inline]
    fn before(&self, relevance: u64, node: NodeId) -> bool {
        self.relevance > relevance || (self.relevance == relevance && self.node < node)
    }
}

/// A running top-k selection under the global answer order, usable
/// incrementally: seed it with the surviving answers, `offer` the rest,
/// and query `dominates`/`terminated` between offers.
#[derive(Debug, Clone)]
pub struct BoundedSelector {
    k: usize,
    /// Best-first by `(relevance desc, node asc)`, length ≤ k.
    entries: Vec<SelEntry>,
}

impl BoundedSelector {
    pub fn new(k: usize) -> Self {
        BoundedSelector { k, entries: Vec::with_capacity(k.min(1024)) }
    }

    /// Offers a confirmed match; returns whether it entered the top k.
    pub fn offer(&mut self, id: usize, node: NodeId, relevance: u64) -> bool {
        if self.k == 0 {
            return false;
        }
        let pos = self.entries.partition_point(|e| e.before(relevance, node));
        if pos >= self.k {
            return false;
        }
        self.entries.insert(pos, SelEntry { id, node, relevance });
        self.entries.truncate(self.k);
        true
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The selection holds k entries (trivially true for k = 0, where no
    /// query method ever reports termination or domination).
    pub fn is_full(&self) -> bool {
        self.entries.len() == self.k
    }

    /// The current k-th (worst selected) entry.
    pub fn kth(&self) -> Option<&SelEntry> {
        self.entries.last()
    }

    /// Minimum confirmed relevance in the selection.
    pub fn min_relevance(&self) -> Option<u64> {
        self.kth().map(|e| e.relevance)
    }

    /// Caller ids, best-first.
    pub fn ids(&self) -> Vec<usize> {
        self.entries.iter().map(|e| e.id).collect()
    }

    /// Entries, best-first.
    pub fn entries(&self) -> &[SelEntry] {
        &self.entries
    }

    /// Can a candidate at `node` with upper bound `h` **not** displace
    /// the current selection? Exact under the global tie order; `false`
    /// while the selection is not full (everything can still enter).
    #[inline]
    pub fn dominates(&self, h: u64, node: NodeId) -> bool {
        if self.entries.len() < self.k {
            return false;
        }
        match self.kth() {
            Some(e) => e.before(h, node),
            None => false, // k == 0: never claim domination
        }
    }

    /// Proposition-3 termination against the best bound outside the
    /// selection. `false` until the selection is full.
    #[inline]
    pub fn terminated(&self, best_rest: u64) -> bool {
        self.is_full() && self.min_relevance().is_some_and(|l| prop3_holds(l, best_rest))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_best_k_in_answer_order() {
        let mut s = BoundedSelector::new(2);
        assert!(!s.is_full());
        assert!(!s.dominates(u64::MAX, 0), "nothing dominated while unfilled");
        s.offer(10, 5, 7);
        s.offer(11, 3, 9);
        s.offer(12, 8, 9); // ties with id 11 → node 3 ranks first
        assert!(s.is_full());
        assert_eq!(s.ids(), vec![11, 12]);
        assert_eq!(s.min_relevance(), Some(9));
        // A worse offer bounces.
        assert!(!s.offer(13, 1, 7));
        assert_eq!(s.ids(), vec![11, 12]);
    }

    #[test]
    fn dominates_is_exact_on_ties() {
        let mut s = BoundedSelector::new(1);
        s.offer(0, 4, 6);
        assert!(s.dominates(5, 9), "strictly smaller bound");
        assert!(s.dominates(6, 9), "tied bound, larger node loses the tie");
        assert!(!s.dominates(6, 2), "tied bound, smaller node would win the tie");
        assert!(!s.dominates(7, 9), "larger bound can displace");
    }

    #[test]
    fn termination_matches_prop3() {
        let mut s = BoundedSelector::new(2);
        s.offer(0, 1, 5);
        assert!(!s.terminated(0), "not full yet");
        s.offer(1, 2, 4);
        assert!(s.terminated(4), "min_l = 4 ≥ best_rest = 4");
        assert!(!s.terminated(5));
    }

    #[test]
    fn k_zero_never_claims_anything() {
        let mut s = BoundedSelector::new(0);
        assert!(!s.offer(0, 1, 5));
        assert!(!s.dominates(0, 0));
        assert!(!s.terminated(u64::MAX));
    }
}
