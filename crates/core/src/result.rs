//! Results and run instrumentation.

use std::time::Duration;

use gpm_graph::NodeId;

/// One ranked output match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankedMatch {
    /// The matched data node.
    pub node: NodeId,
    /// Its relevance `δr(uo, node)` (exact when `exact_scores` is on).
    pub relevance: u64,
}

/// Instrumentation of a run — the quantities Section 6 measures.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// `|can(uo)|`.
    pub output_candidates: usize,
    /// Matches of `uo` confirmed before termination — the paper's
    /// `|M_t_u(Q,G,uo)|`, numerator of the match ratio `MR`.
    pub inspected_matches: usize,
    /// `|Mu(Q,G,uo)|` when the run determined it (always for `Match`;
    /// for early-terminating runs only on exhaustion).
    pub total_matches: Option<usize>,
    /// Propagation waves executed.
    pub waves: usize,
    /// Leaf candidates activated.
    pub activated_leaves: usize,
    /// Pair-vector recomputations (propagation work measure).
    pub propagation_updates: u64,
    /// Whether Proposition 3 fired before exhaustion.
    pub early_terminated: bool,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl RunStats {
    /// Match ratio `MR = |M_t_u| / |Mu|` against a known total (from a
    /// baseline run when this run terminated early).
    pub fn match_ratio(&self, total_matches: usize) -> f64 {
        if total_matches == 0 {
            return 0.0;
        }
        self.inspected_matches as f64 / total_matches as f64
    }
}

/// Ranks `(node, δr)` entries the way every topKP algorithm reports them —
/// descending relevance, ties by ascending node id — and keeps the best
/// `k`. The re-entrant entry point for maintained states (the incremental
/// `DynamicMatcher` re-ranks from its relevance cache through this), kept
/// next to [`TopKResult`] so the orderings can never drift apart.
pub fn rank_top_k(rel: impl IntoIterator<Item = (NodeId, u64)>, k: usize) -> Vec<RankedMatch> {
    let mut ranked: Vec<RankedMatch> =
        rel.into_iter().map(|(node, relevance)| RankedMatch { node, relevance }).collect();
    ranked.sort_by(|a, b| b.relevance.cmp(&a.relevance).then(a.node.cmp(&b.node)));
    ranked.truncate(k);
    ranked
}

/// Result of a topKP run.
#[derive(Debug, Clone)]
pub struct TopKResult {
    /// Up to `k` matches, sorted by descending relevance (ties by node id).
    pub matches: Vec<RankedMatch>,
    /// Run statistics.
    pub stats: RunStats,
}

impl TopKResult {
    /// Total relevance `δr(S)` of the returned set.
    pub fn total_relevance(&self) -> u64 {
        self.matches.iter().map(|m| m.relevance).sum()
    }

    /// Just the node ids.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.matches.iter().map(|m| m.node).collect()
    }
}

/// Result of a topKDP run.
#[derive(Debug, Clone)]
pub struct DivResult {
    /// The selected diversified match set.
    pub matches: Vec<RankedMatch>,
    /// `F(S)` of the returned set (computed with exact relevant sets).
    pub f_value: f64,
    /// Run statistics.
    pub stats: RunStats,
}

impl DivResult {
    /// Just the node ids.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.matches.iter().map(|m| m.node).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_ratio() {
        let r = TopKResult {
            matches: vec![
                RankedMatch { node: 1, relevance: 8 },
                RankedMatch { node: 2, relevance: 6 },
            ],
            stats: RunStats { inspected_matches: 2, ..Default::default() },
        };
        assert_eq!(r.total_relevance(), 14);
        assert_eq!(r.nodes(), vec![1, 2]);
        assert!((r.stats.match_ratio(4) - 0.5).abs() < 1e-12);
        assert_eq!(r.stats.match_ratio(0), 0.0);
    }
}
