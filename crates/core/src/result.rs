//! Results and run instrumentation.

use std::time::Duration;

use gpm_graph::NodeId;

/// One ranked output match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankedMatch {
    /// The matched data node.
    pub node: NodeId,
    /// Its relevance `δr(uo, node)` (exact when `exact_scores` is on).
    pub relevance: u64,
}

/// Instrumentation of a run — the quantities Section 6 measures.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// `|can(uo)|`.
    pub output_candidates: usize,
    /// Matches of `uo` confirmed before termination — the paper's
    /// `|M_t_u(Q,G,uo)|`, numerator of the match ratio `MR`.
    pub inspected_matches: usize,
    /// `|Mu(Q,G,uo)|` when the run determined it (always for `Match`;
    /// for early-terminating runs only on exhaustion).
    pub total_matches: Option<usize>,
    /// Propagation waves executed.
    pub waves: usize,
    /// Leaf candidates activated.
    pub activated_leaves: usize,
    /// Pair-vector recomputations (propagation work measure).
    pub propagation_updates: u64,
    /// Whether Proposition 3 fired before exhaustion.
    pub early_terminated: bool,
    /// Wall-clock time.
    pub elapsed: Duration,
}

impl RunStats {
    /// Match ratio `MR = |M_t_u| / |Mu|` against a known total (from a
    /// baseline run when this run terminated early).
    pub fn match_ratio(&self, total_matches: usize) -> f64 {
        if total_matches == 0 {
            return 0.0;
        }
        self.inspected_matches as f64 / total_matches as f64
    }
}

/// Ranks `(node, δr)` entries the way every topKP algorithm reports them —
/// descending relevance, ties by ascending node id — and keeps the best
/// `k`. The re-entrant entry point for maintained states (the incremental
/// `DynamicMatcher` re-ranks from its relevance cache through this), kept
/// next to [`TopKResult`] so the orderings can never drift apart.
pub fn rank_top_k(rel: impl IntoIterator<Item = (NodeId, u64)>, k: usize) -> Vec<RankedMatch> {
    let mut ranked: Vec<RankedMatch> =
        rel.into_iter().map(|(node, relevance)| RankedMatch { node, relevance }).collect();
    ranked.sort_by(|a, b| b.relevance.cmp(&a.relevance).then(a.node.cmp(&b.node)));
    ranked.truncate(k);
    ranked
}

/// The difference between two ranked answers — what a streaming
/// subscriber needs to reconcile its view after an update, and the test a
/// serving layer applies to decide whether an answer **materially
/// changed** (the diff is empty iff the two ranked lists are identical as
/// `(node, δr)` sequences).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnswerDiff {
    /// Nodes in the new answer that the old one did not contain, in new
    /// rank order.
    pub entered: Vec<NodeId>,
    /// Nodes of the old answer no longer present, in old rank order.
    pub left: Vec<NodeId>,
    /// Nodes present in both whose rank position or relevance changed, in
    /// new rank order.
    pub reordered: Vec<NodeId>,
}

impl AnswerDiff {
    /// Diffs two ranked lists (each sorted the way [`rank_top_k`] sorts).
    pub fn between(old: &[RankedMatch], new: &[RankedMatch]) -> AnswerDiff {
        let mut diff = AnswerDiff::default();
        for (i, m) in new.iter().enumerate() {
            match old.iter().position(|o| o.node == m.node) {
                None => diff.entered.push(m.node),
                Some(j) if j != i || old[j].relevance != m.relevance => diff.reordered.push(m.node),
                Some(_) => {}
            }
        }
        for o in old {
            if !new.iter().any(|m| m.node == o.node) {
                diff.left.push(o.node);
            }
        }
        diff
    }

    /// `true` when nothing changed — equivalently, when the two lists
    /// compare equal element-for-element.
    pub fn is_empty(&self) -> bool {
        self.entered.is_empty() && self.left.is_empty() && self.reordered.is_empty()
    }

    /// Total number of differing entries.
    pub fn len(&self) -> usize {
        self.entered.len() + self.left.len() + self.reordered.len()
    }
}

/// Result of a topKP run.
#[derive(Debug, Clone)]
pub struct TopKResult {
    /// Up to `k` matches, sorted by descending relevance (ties by node id).
    pub matches: Vec<RankedMatch>,
    /// Run statistics.
    pub stats: RunStats,
}

impl TopKResult {
    /// Total relevance `δr(S)` of the returned set.
    pub fn total_relevance(&self) -> u64 {
        self.matches.iter().map(|m| m.relevance).sum()
    }

    /// Just the node ids.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.matches.iter().map(|m| m.node).collect()
    }
}

/// Result of a topKDP run.
#[derive(Debug, Clone)]
pub struct DivResult {
    /// The selected diversified match set.
    pub matches: Vec<RankedMatch>,
    /// `F(S)` of the returned set (computed with exact relevant sets).
    pub f_value: f64,
    /// Run statistics.
    pub stats: RunStats,
}

impl DivResult {
    /// Just the node ids.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.matches.iter().map(|m| m.node).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn diff_is_empty_iff_lists_equal() {
        let m = |node, relevance| RankedMatch { node, relevance };
        let old = vec![m(1, 8), m(2, 6), m(3, 4)];
        assert!(AnswerDiff::between(&old, &old).is_empty());

        // A new head entry shifts everyone: 1 enters, 3 falls out, 1/2 move.
        let new = vec![m(9, 9), m(1, 8), m(2, 6)];
        let d = AnswerDiff::between(&old, &new);
        assert_eq!(d.entered, vec![9]);
        assert_eq!(d.left, vec![3]);
        assert_eq!(d.reordered, vec![1, 2]);
        assert_eq!(d.len(), 4);

        // Same nodes, one relevance moved: reordered only.
        let bumped = vec![m(1, 9), m(2, 6), m(3, 4)];
        let d = AnswerDiff::between(&old, &bumped);
        assert_eq!((d.entered.len(), d.left.len()), (0, 0));
        assert_eq!(d.reordered, vec![1]);
        assert!(!d.is_empty());

        // Truncation: trailing nodes left, no reorder among survivors.
        let d = AnswerDiff::between(&old, &old[..1]);
        assert_eq!(d.left, vec![2, 3]);
        assert!(d.entered.is_empty() && d.reordered.is_empty());
    }

    #[test]
    fn totals_and_ratio() {
        let r = TopKResult {
            matches: vec![
                RankedMatch { node: 1, relevance: 8 },
                RankedMatch { node: 2, relevance: 6 },
            ],
            stats: RunStats { inspected_matches: 2, ..Default::default() },
        };
        assert_eq!(r.total_relevance(), 14);
        assert_eq!(r.nodes(), vec![1, 2]);
        assert!((r.stats.match_ratio(4) - 0.5).abs() < 1e-12);
        assert_eq!(r.stats.match_ratio(0), 0.0);
    }
}
