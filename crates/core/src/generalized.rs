//! Generalized (diversified) top-k matching — Section 3.4 and Propositions
//! 4 & 6.
//!
//! A generalized relevance function `δ*r` is a monotone PTIME function of
//! the relevant set; every function in the paper's table (preference
//! attachment, common neighbours, Jaccard coefficient) is in fact monotone
//! in `|R*(u,v)|` once `M(Q,G,R(u))` is fixed. Monotonicity is exactly what
//! Proposition 4 needs: a top-k set under `|R|` (which the count-based
//! early-termination engine produces) is a top-k set under `δ*r` as well,
//! since `|R(s)| ≥ |R(r)|` implies `δ*r(s) ≥ δ*r(r)`. The early-terminating
//! [`generalized_top_k`] therefore reuses [`crate::topk::top_k`] and
//! rescores the winners; the exhaustive [`generalized_top_k_full`] ranks
//! all matches directly (useful for non-count-determined custom functions).

use std::time::Instant;

use gpm_graph::{BitSet, DiGraph, NodeId};
use gpm_pattern::Pattern;
use gpm_ranking::distance::DistanceFn;
use gpm_ranking::objective::Objective;
use gpm_ranking::relevance::{RelevanceCtx, RelevanceFn};

use crate::config::{DivConfig, TopKConfig};
use crate::match_all::compute_match_outcome;
use crate::result::RunStats;

/// A match scored by a generalized relevance function.
#[derive(Debug, Clone, PartialEq)]
pub struct ScoredMatch {
    /// The matched data node.
    pub node: NodeId,
    /// `δ*r(uo, node)`.
    pub score: f64,
}

/// Result of a generalized topKP run.
#[derive(Debug, Clone)]
pub struct GenTopKResult {
    /// Matches sorted by descending generalized score.
    pub matches: Vec<ScoredMatch>,
    /// Statistics of the underlying engine run.
    pub stats: RunStats,
}

/// Builds the `M(Q,G,R(uo))` universe bitset: matches of all query nodes
/// strictly reachable from `uo`.
fn descendant_matches(q: &Pattern, sim: &gpm_simulation::SimRelation) -> (BitSet, usize) {
    let space = sim.space();
    let mut set = BitSet::new(space.universe_size());
    let reach = q.reachable_from_output();
    let mut count_nodes = 0usize;
    for u in reach.iter() {
        count_nodes += 1;
        for v in sim.matches_of(u as u32) {
            let pos = space.universe_pos(v).expect("match is a candidate");
            set.insert(pos as usize);
        }
    }
    (set, count_nodes)
}

/// Early-terminating generalized topKP (Proposition 4): the engine finds a
/// top-k set by `|R|`; the winners are rescored with `f` using their exact
/// relevant sets and a full-simulation pass for `M(Q,G,R(uo))`.
pub fn generalized_top_k(
    g: &DiGraph,
    q: &Pattern,
    cfg: &TopKConfig,
    f: &dyn RelevanceFn,
) -> GenTopKResult {
    let t0 = Instant::now();
    let base = crate::topk::top_k(g, q, cfg);
    if base.matches.is_empty() {
        return GenTopKResult {
            matches: Vec::new(),
            stats: RunStats { elapsed: t0.elapsed(), ..base.stats },
        };
    }
    // Exact context for the winners only (one linear simulation pass plus
    // per-winner relevant sets).
    let sim = gpm_simulation::compute_simulation(g, q);
    let (dm, desc_nodes) = descendant_matches(q, &sim);
    let space = sim.space();
    let mut matches: Vec<ScoredMatch> = base
        .matches
        .iter()
        .map(|m| {
            let ids =
                gpm_ranking::relevant_set::relevant_set_of_pair(g, q, &sim, q.output(), m.node)
                    .unwrap_or_default();
            let mut r = BitSet::new(space.universe_size());
            for v in ids {
                let pos = space.universe_pos(v).expect("candidate");
                r.insert(pos as usize);
            }
            let ctx = RelevanceCtx { r_set: &r, desc_query_nodes: desc_nodes, desc_matches: &dm };
            ScoredMatch { node: m.node, score: f.score(&ctx) }
        })
        .collect();
    matches.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap().then(a.node.cmp(&b.node)));
    let mut stats = base.stats;
    stats.elapsed = t0.elapsed();
    GenTopKResult { matches, stats }
}

/// Exhaustive generalized topKP: scores **all** output matches with `f`.
pub fn generalized_top_k_full(
    g: &DiGraph,
    q: &Pattern,
    cfg: &TopKConfig,
    f: &dyn RelevanceFn,
) -> GenTopKResult {
    let t0 = Instant::now();
    let outcome = compute_match_outcome(g, q, &cfg.reach);
    let rs = &outcome.relevant;
    let (dm, desc_nodes) = descendant_matches(q, &outcome.sim);
    let mut matches: Vec<ScoredMatch> = (0..rs.len())
        .map(|i| {
            let ctx =
                RelevanceCtx { r_set: rs.set(i), desc_query_nodes: desc_nodes, desc_matches: &dm };
            ScoredMatch { node: rs.matches()[i], score: f.score(&ctx) }
        })
        .collect();
    matches.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap().then(a.node.cmp(&b.node)));
    matches.truncate(cfg.k);
    let total = rs.len();
    GenTopKResult {
        matches,
        stats: RunStats {
            inspected_matches: total,
            total_matches: Some(total),
            elapsed: t0.elapsed(),
            ..Default::default()
        },
    }
}

/// Generalized diversified top-k (Proposition 6): `TopKDiv` with pluggable
/// relevance and distance. Relevance enters through the objective's
/// normalized term, so only count-monotone functions keep the approximation
/// guarantee; arbitrary `δ*d` metrics are supported directly.
pub fn generalized_top_k_diversified(
    g: &DiGraph,
    q: &Pattern,
    cfg: &DivConfig,
    dist: &dyn DistanceFn,
) -> crate::result::DivResult {
    crate::topk_div::top_k_diversified_with(g, q, cfg, dist)
}

/// Re-export for symmetry with the basic API.
pub use crate::topk_div::top_k_diversified_with;

#[allow(unused)]
fn _api(_: &Objective) {}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::builder::graph_from_parts;
    use gpm_pattern::builder::label_pattern;
    use gpm_ranking::relevance::{
        CommonNeighbors, JaccardCoefficient, PreferenceAttachment, RelevantSetSize,
    };

    fn fixture() -> (DiGraph, Pattern) {
        let g = graph_from_parts(
            &[0, 0, 0, 1, 1, 1],
            &[(0, 3), (0, 4), (0, 5), (1, 4), (1, 5), (2, 5)],
        )
        .unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        (g, q)
    }

    #[test]
    fn early_and_full_agree_for_monotone_fns() {
        let (g, q) = fixture();
        let cfg = TopKConfig::new(2);
        for f in [
            &RelevantSetSize as &dyn RelevanceFn,
            &PreferenceAttachment,
            &CommonNeighbors,
            &JaccardCoefficient,
        ] {
            let fast = generalized_top_k(&g, &q, &cfg, f);
            let full = generalized_top_k_full(&g, &q, &cfg, f);
            let fast_scores: Vec<f64> = fast.matches.iter().map(|m| m.score).collect();
            let full_scores: Vec<f64> = full.matches.iter().map(|m| m.score).collect();
            assert_eq!(fast_scores.len(), full_scores.len(), "{}", f.name());
            for (a, b) in fast_scores.iter().zip(&full_scores) {
                assert!((a - b).abs() < 1e-9, "{}: {a} vs {b}", f.name());
            }
        }
    }

    #[test]
    fn preference_attachment_scales_delta_r() {
        let (g, q) = fixture();
        let cfg = TopKConfig::new(1);
        let pa = generalized_top_k(&g, &q, &cfg, &PreferenceAttachment);
        let rss = generalized_top_k(&g, &q, &cfg, &RelevantSetSize);
        // One reachable query node: PA = 1 · |R|.
        assert_eq!(pa.matches[0].node, rss.matches[0].node);
        assert!((pa.matches[0].score - rss.matches[0].score).abs() < 1e-9);
    }

    #[test]
    fn jaccard_coefficient_normalizes() {
        let (g, q) = fixture();
        let cfg = TopKConfig::new(3);
        let jc = generalized_top_k_full(&g, &q, &cfg, &JaccardCoefficient);
        for m in &jc.matches {
            assert!(m.score >= 0.0 && m.score <= 1.0);
        }
        // |M(Q,G,R(uo))| = 3 b-matches; top score = 3/3 = 1.
        assert!((jc.matches[0].score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_input() {
        let g = graph_from_parts(&[0], &[]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let r = generalized_top_k(&g, &q, &TopKConfig::new(2), &RelevantSetSize);
        assert!(r.matches.is_empty());
    }
}
