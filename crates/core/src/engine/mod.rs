//! The early-termination propagation engine (Sections 4.1–4.2).
//!
//! One engine serves `TopKDAG`, `TopK`, and the diversified heuristic
//! `TopKDH`: a DAG pattern is simply a pattern whose SCCs are all trivial.
//!
//! ## State
//!
//! The engine works on the **candidate product graph** (all pairs `(u,v)`
//! with `v ∈ can(u)`, edges along pattern edges). Every pair carries the
//! paper's vector `v.T = ⟨v.bf, v.R, v.l, v.h⟩`:
//!
//! * the boolean formula `v.bf` is represented by a three-valued
//!   [`Status`] derived from per-edge child counters — `Matched` exactly
//!   when every pattern edge has a confirmed matching child (possibly
//!   through a cycle inside a pattern SCC), `Refuted` when some edge can no
//!   longer be satisfied;
//! * `v.R` is the partial relevant set, a shared (`Rc`) bitset over the
//!   candidate universe that grows monotonically as matches propagate;
//! * `v.l = |v.R|` is a sound lower bound of `δr` once the pair is matched;
//! * `v.h` starts from the bound index (Section "bounds") and tightens to
//!   `|v.R|` when the pair becomes *final* (its whole cone is decided).
//!
//! ## Waves
//!
//! Each wave activates a batch `Sc` of unvisited rank-0 candidates (leaf
//! pattern nodes, or members of leaf pattern SCCs), then propagates changes
//! bottom-up in topological-rank order: trivial pattern nodes are
//! recomputed from their children (the paper's `AcyclicProp`); nontrivial
//! pattern SCCs run a local greatest-fixpoint promotion plus shared
//! relevant-set propagation (the paper's `SccProcess`). Statuses move
//! monotonically (`Unknown → Matched/Refuted`), so waves converge.
//!
//! Drivers ([`crate::topk`], [`crate::topk_dh`]) own the outer loop and the
//! Proposition 3 termination check, then ask the engine to *complete the
//! cones* of the winners so reported scores are exact.

mod scc;
mod selection;

use std::rc::Rc;

use gpm_graph::{BitSet, Condensation, DiGraph, NodeId};
use gpm_pattern::{PNodeId, Pattern};
use gpm_ranking::bounds::{output_upper_bounds, OutputBounds};
use gpm_simulation::{CandidateSpace, MatchGraph};

use crate::config::{SelectionStrategy, TopKConfig};
use crate::result::RunStats;

/// Three-valued match status of a candidate pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Not yet decided.
    Unknown,
    /// Confirmed member of `M(Q,G)` (sound: grounded or cyclically supported
    /// by confirmed matches only).
    Matched,
    /// Confirmed non-member.
    Refuted,
}

/// Outcome of one wave.
#[derive(Debug, Clone, Copy)]
pub struct WaveOutcome {
    /// Leaves activated in this wave.
    pub activated: usize,
    /// `true` when every cone leaf has been activated (the relation is now
    /// exact and fully known).
    pub exhausted: bool,
}

pub struct Engine<'a> {
    /// Kept for symmetry/diagnostics; matching state lives in `pg`/`space`.
    #[allow(dead_code)]
    pub(crate) g: &'a DiGraph,
    pub(crate) q: &'a Pattern,
    cfg: &'a TopKConfig,
    pub(crate) space: CandidateSpace,
    pub(crate) pg: MatchGraph,

    // Pattern structure.
    pub(crate) scc_of: Vec<u32>,
    scc_nontrivial: Vec<bool>,
    node_rank: Vec<u32>,
    max_rank: u32,
    /// Pairs per nontrivial pattern SCC (cone-restricted).
    scc_pairs: Vec<Vec<u32>>,
    /// Local index of a pair within its pattern SCC's pair list
    /// (`u32::MAX` for pairs of trivial SCCs).
    scc_local: Vec<u32>,
    /// Edge position of `(u, uc)` inside `q.successors(u)`.
    // (computed on the fly via binary search — pattern degrees are tiny)

    // Pair state.
    pub(crate) status: Vec<Status>,
    pub(crate) finals: Vec<bool>,
    activated: Vec<bool>,
    in_cone: Vec<bool>,
    pub(crate) r: Vec<Option<Rc<BitSet>>>,
    r_count: Vec<u32>,

    // Output-candidate caches (indexed by candidate position in can(uo)).
    out_base: u32,
    out_count: usize,
    h_init: Vec<u64>,
    h_cur: Vec<u64>,
    /// Candidate positions sorted by descending initial bound.
    h_order: Vec<u32>,

    // Dirty machinery.
    dirty: Vec<bool>,
    buckets: Vec<Vec<u32>>,

    // Leaves / exhaustion.
    cone_rank0: Vec<u32>,
    unactivated: usize,
    /// Output candidates whose whole cone is activated (values exact).
    pub(crate) cone_complete: Vec<bool>,
    /// Candidates whose cones were activated by the current wave.
    pub(crate) pending_complete: Vec<usize>,
    selection_cursor: usize,
    rng_state: u64,
    shuffled_leaves: Vec<u32>,

    pub(crate) stats: RunStats,
}

impl<'a> Engine<'a> {
    /// Builds the engine: candidate space, product graph, bound index and
    /// the initial structural-refutation wave. Returns `None` when some
    /// pattern node has no candidate (then `M(Q,G) = ∅`) or — for non-root
    /// output nodes — when a global simulation pre-check finds an unmatched
    /// pattern node (the extension discussed at the end of Section 4.1).
    pub fn new(g: &'a DiGraph, q: &'a Pattern, cfg: &'a TopKConfig) -> Option<Self> {
        let space = CandidateSpace::compute(g, q);
        if space.any_empty() {
            return None;
        }
        // Non-root output: matches of uo depend only on uo's cone, but the
        // paper's semantics empties Mu when *any* pattern node is
        // unmatched; verify existence globally first.
        if !q.output_is_root() {
            let sim = gpm_simulation::compute_simulation(g, q);
            if !sim.graph_matches() {
                return None;
            }
        }

        let bounds: OutputBounds = output_upper_bounds(g, q, &space, cfg.bounds, &cfg.bound_config);
        let pg = MatchGraph::over_candidates(g, q, &space);

        let qcond = Condensation::compute(q.topology());
        let scc_of: Vec<u32> = (0..q.node_count() as u32).map(|u| qcond.component_of(u)).collect();
        let scc_nontrivial: Vec<bool> =
            (0..qcond.component_count() as u32).map(|c| qcond.is_nontrivial(c)).collect();
        let node_rank: Vec<u32> = (0..q.node_count() as u32).map(|u| qcond.node_rank(u)).collect();
        let max_rank = node_rank.iter().copied().max().unwrap_or(0);

        let n = pg.len();
        let uo = q.output();
        let out_base = pg.compact_of(space.pair_at(uo, 0)).expect("output pairs included");
        let out_count = space.candidate_count(uo);

        let mut eng = Engine {
            g,
            q,
            cfg,
            space,
            pg,
            scc_of,
            scc_nontrivial,
            node_rank,
            max_rank,
            scc_pairs: vec![Vec::new(); qcond.component_count()],
            scc_local: vec![u32::MAX; n],
            status: vec![Status::Unknown; n],
            finals: vec![false; n],
            activated: vec![false; n],
            in_cone: vec![false; n],
            r: vec![None; n],
            r_count: vec![0; n],
            out_base,
            out_count,
            h_init: bounds.as_slice().to_vec(),
            h_cur: bounds.as_slice().to_vec(),
            h_order: Vec::new(),
            dirty: vec![false; n],
            buckets: vec![Vec::new(); max_rank as usize + 1],
            cone_rank0: Vec::new(),
            unactivated: 0,
            cone_complete: vec![false; out_count],
            pending_complete: Vec::new(),
            selection_cursor: 0,
            rng_state: 0,
            shuffled_leaves: Vec::new(),
            stats: RunStats::default(),
        };
        eng.stats.output_candidates = out_count;

        eng.compute_cone();
        eng.collect_scc_pairs();
        eng.init_h_order();
        eng.initial_wave();
        eng.init_selection();
        Some(eng)
    }

    /// Marks every pair reachable from an output pair (the pairs that can
    /// influence `Mu`), and collects the cone's rank-0 pairs.
    fn compute_cone(&mut self) {
        let mut stack: Vec<u32> = Vec::new();
        for i in 0..self.out_count {
            let p = self.out_base + i as u32;
            self.in_cone[p as usize] = true;
            stack.push(p);
        }
        while let Some(p) = stack.pop() {
            for &c in self.pg.successors(p) {
                if !self.in_cone[c as usize] {
                    self.in_cone[c as usize] = true;
                    stack.push(c);
                }
            }
        }
        for p in 0..self.pg.len() as u32 {
            if self.in_cone[p as usize] && self.node_rank[self.pg.pattern_node(p) as usize] == 0 {
                self.cone_rank0.push(p);
            }
        }
        self.unactivated = self.cone_rank0.len();
    }

    fn collect_scc_pairs(&mut self) {
        for p in 0..self.pg.len() as u32 {
            if !self.in_cone[p as usize] {
                continue;
            }
            let scc = self.scc_of[self.pg.pattern_node(p) as usize];
            if self.scc_nontrivial[scc as usize] {
                self.scc_local[p as usize] = self.scc_pairs[scc as usize].len() as u32;
                self.scc_pairs[scc as usize].push(p);
            }
        }
    }

    fn init_h_order(&mut self) {
        let mut order: Vec<u32> = (0..self.out_count as u32).collect();
        order.sort_by(|&a, &b| {
            self.h_init[b as usize].cmp(&self.h_init[a as usize]).then(a.cmp(&b))
        });
        self.h_order = order;
    }

    /// Initial structural pass: recompute every cone pair once bottom-up so
    /// pairs with edges that have no candidate children are refuted before
    /// any activation (the paper's `can(u)` initialization).
    fn initial_wave(&mut self) {
        for rank in 0..=self.max_rank {
            for p in 0..self.pg.len() as u32 {
                let u = self.pg.pattern_node(p);
                if !self.in_cone[p as usize] || self.node_rank[u as usize] != rank {
                    continue;
                }
                if self.scc_nontrivial[self.scc_of[u as usize] as usize] {
                    continue; // SCC pairs cannot be structurally refuted here
                }
                if self.q.successors(u).is_empty() {
                    continue; // leaves decide on activation
                }
                self.recompute_trivial(p);
            }
        }
        self.drain_buckets(); // cascade refutations
    }

    fn init_selection(&mut self) {
        if let SelectionStrategy::Random { seed } = self.cfg.strategy {
            self.rng_state = seed | 1;
            self.shuffled_leaves = self.cone_rank0.clone();
            // Fisher-Yates with a small xorshift; reproducible across runs.
            let n = self.shuffled_leaves.len();
            for i in (1..n).rev() {
                let j = (self.next_rand() as usize) % (i + 1);
                self.shuffled_leaves.swap(i, j);
            }
        }
    }

    pub(crate) fn next_rand(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    // ------------------------------------------------------------ accessors

    /// Number of output candidates.
    pub fn output_candidates(&self) -> usize {
        self.out_count
    }

    /// Data node of the `i`-th output candidate.
    pub fn output_node(&self, i: usize) -> NodeId {
        self.pg.data_node(self.out_base + i as u32)
    }

    /// Status of the `i`-th output candidate.
    pub fn output_status(&self, i: usize) -> Status {
        self.status[(self.out_base + i as u32) as usize]
    }

    /// Lower bound `l` (current partial `|R|`) of the `i`-th output candidate.
    pub fn output_l(&self, i: usize) -> u64 {
        self.r_count[(self.out_base + i as u32) as usize] as u64
    }

    /// Current upper bound `h` of the `i`-th output candidate.
    pub fn output_h(&self, i: usize) -> u64 {
        self.h_cur[i]
    }

    /// Partial relevant set of the `i`-th output candidate (`None` = empty).
    pub fn output_r(&self, i: usize) -> Option<&BitSet> {
        self.r[(self.out_base + i as u32) as usize].as_deref()
    }

    /// Universe size of relevant-set bitsets.
    pub fn universe_size(&self) -> usize {
        self.space.universe_size()
    }

    /// The candidate space (for `Cuo`, universes, etc.).
    pub fn space(&self) -> &CandidateSpace {
        &self.space
    }

    /// `true` once every cone leaf is activated.
    pub fn exhausted(&self) -> bool {
        self.unactivated == 0
    }

    /// Confirmed output matches so far: `(candidate index, node, l)`.
    pub fn matched_outputs(&self) -> impl Iterator<Item = (usize, NodeId, u64)> + '_ {
        (0..self.out_count)
            .filter(|&i| self.output_status(i) == Status::Matched)
            .map(|i| (i, self.output_node(i), self.output_l(i)))
    }

    /// Number of confirmed output matches.
    pub fn matched_count(&self) -> usize {
        self.matched_outputs().count()
    }

    /// Run statistics so far.
    pub fn stats(&self) -> &RunStats {
        &self.stats
    }

    /// Mutable statistics (drivers stamp timing / termination flags).
    pub fn stats_mut(&mut self) -> &mut RunStats {
        &mut self.stats
    }

    /// Largest current upper bound among non-refuted output candidates not
    /// in `selected` — the right-hand side of Proposition 3. Exploits the
    /// static descending order of initial bounds to stop scanning early.
    pub fn best_rest_bound(&self, selected: &[usize]) -> u64 {
        let mut best = 0u64;
        for &i in &self.h_order {
            let i = i as usize;
            if self.h_init[i] <= best {
                break; // everything later has h_cur ≤ h_init ≤ best
            }
            if selected.contains(&i) {
                continue;
            }
            if self.output_status(i) == Status::Refuted {
                continue;
            }
            best = best.max(self.h_cur[i]);
        }
        best
    }

    // ------------------------------------------------------------ the wave

    /// Selects a batch, activates it and propagates. Returns what happened.
    pub fn wave(&mut self) -> WaveOutcome {
        let batch = self.select_batch();
        let activated = batch.len();
        for p in batch {
            self.activate(p);
        }
        self.drain_buckets();
        // Cones fully activated by now have exact relevant sets: tighten
        // `h` to the exact `δr` (the paper's `v.h := |v.R|` refinement).
        let pending = std::mem::take(&mut self.pending_complete);
        for i in pending {
            self.cone_complete[i] = true;
            let p = self.out_base + i as u32;
            match self.status[p as usize] {
                Status::Matched => self.h_cur[i] = self.r_count[p as usize] as u64,
                Status::Refuted => self.h_cur[i] = 0,
                Status::Unknown => {}
            }
        }
        self.stats.waves += 1;
        WaveOutcome { activated, exhausted: self.exhausted() }
    }

    /// Activates every remaining leaf and propagates — used by the `Match`
    /// comparison path and as the drivers' fallback.
    pub fn exhaust(&mut self) {
        while !self.exhausted() {
            let leaves: Vec<u32> =
                self.cone_rank0.iter().copied().filter(|&p| !self.activated[p as usize]).collect();
            for p in leaves {
                self.activate(p);
            }
        }
        self.drain_buckets();
        self.stats.waves += 1;
    }

    /// Activates all unactivated leaves in the cones of the given output
    /// candidates and propagates, making their `l` values exact δr.
    pub fn complete_cones(&mut self, candidate_indices: &[usize]) {
        let mut batch: Vec<u32> = Vec::new();
        let mut visited = vec![false; self.pg.len()];
        for &i in candidate_indices {
            let root = self.out_base + i as u32;
            let mut stack = vec![root];
            visited[root as usize] = true;
            while let Some(p) = stack.pop() {
                if self.node_rank[self.pg.pattern_node(p) as usize] == 0
                    && !self.activated[p as usize]
                {
                    batch.push(p);
                }
                for &c in self.pg.successors(p) {
                    if !visited[c as usize] && self.status[c as usize] != Status::Refuted {
                        visited[c as usize] = true;
                        stack.push(c);
                    }
                }
            }
        }
        if !batch.is_empty() {
            for p in batch {
                if !self.activated[p as usize] {
                    self.activate(p);
                }
            }
            self.drain_buckets();
            self.stats.waves += 1;
        }
    }

    // ----------------------------------------------------------- internals

    pub(crate) fn edge_index(&self, u: PNodeId, uc: PNodeId) -> usize {
        self.q.successors(u).binary_search(&uc).expect("pattern edge exists")
    }

    fn activate(&mut self, p: u32) {
        if self.activated[p as usize] {
            return;
        }
        self.activated[p as usize] = true;
        self.unactivated -= 1;
        self.stats.activated_leaves += 1;
        let u = self.pg.pattern_node(p);
        if self.q.successors(u).is_empty() {
            // Leaf pattern node: the pair is a match by definition.
            if self.status[p as usize] == Status::Unknown {
                self.set_matched_leaf(p);
            }
        } else {
            // Member of a leaf pattern SCC: eligible for promotion now.
            self.mark_dirty(p);
        }
    }

    fn set_matched_leaf(&mut self, p: u32) {
        self.status[p as usize] = Status::Matched;
        self.finals[p as usize] = true;
        if let Some(i) = self.output_index_of(p) {
            self.h_cur[i] = 0; // leaf output: δr = 0 exactly
        }
        self.mark_parents_dirty(p);
    }

    pub(crate) fn output_index_of(&self, p: u32) -> Option<usize> {
        let i = p.wrapping_sub(self.out_base) as usize;
        (self.pg.pattern_node(p) == self.q.output()).then_some(i)
    }

    pub(crate) fn mark_dirty(&mut self, p: u32) {
        if !self.dirty[p as usize] && self.in_cone[p as usize] {
            self.dirty[p as usize] = true;
            let rank = self.node_rank[self.pg.pattern_node(p) as usize];
            self.buckets[rank as usize].push(p);
        }
    }

    pub(crate) fn mark_parents_dirty(&mut self, p: u32) {
        let preds: Vec<u32> = self.pg.predecessors(p).to_vec();
        for par in preds {
            if !self.finals[par as usize] {
                self.mark_dirty(par);
            }
        }
    }

    fn drain_buckets(&mut self) {
        for rank in 0..=self.max_rank as usize {
            let bucket = std::mem::take(&mut self.buckets[rank]);
            if bucket.is_empty() {
                continue;
            }
            let mut sccs_to_run: Vec<u32> = Vec::new();
            for p in bucket {
                self.dirty[p as usize] = false;
                let scc = self.scc_of[self.pg.pattern_node(p) as usize];
                if self.scc_nontrivial[scc as usize] {
                    if !sccs_to_run.contains(&scc) {
                        sccs_to_run.push(scc);
                    }
                } else {
                    self.recompute_trivial(p);
                }
            }
            for scc in sccs_to_run {
                self.process_scc(scc);
            }
        }
    }

    /// Recomputes a trivial-SCC pair from its children (the paper's
    /// `AcyclicProp` step for one pair).
    fn recompute_trivial(&mut self, p: u32) {
        if self.finals[p as usize] {
            return;
        }
        self.stats.propagation_updates += 1;
        let u = self.pg.pattern_node(p);
        let d = self.q.successors(u).len();
        debug_assert!(d > 0, "leaves are decided by activation only");

        // Per-edge child summary.
        let mut matched = vec![false; d];
        let mut alive = vec![false; d];
        let mut all_final = vec![true; d];
        for &c in self.pg.successors(p) {
            let j = self.edge_index(u, self.pg.pattern_node(c));
            match self.status[c as usize] {
                Status::Matched => matched[j] = true,
                Status::Refuted => {}
                Status::Unknown => alive[j] = true,
            }
            if !self.finals[c as usize] {
                all_final[j] = false;
            }
        }

        let any_dead = (0..d).any(|j| !matched[j] && !alive[j]);
        let all_matched = (0..d).all(|j| matched[j]);
        let children_final = (0..d).all(|j| all_final[j]);

        let old_status = self.status[p as usize];
        let new_status = if any_dead {
            Status::Refuted
        } else if all_matched {
            Status::Matched
        } else if children_final {
            // Every child decided and stable, yet some edge unmatched.
            Status::Refuted
        } else {
            Status::Unknown
        };

        let mut changed = new_status != old_status;
        self.status[p as usize] = new_status;

        if new_status == Status::Matched {
            changed |= self.union_matched_children_into_r(p);
        }

        let new_final = match new_status {
            Status::Refuted => true,
            Status::Matched => children_final,
            Status::Unknown => false,
        };
        if new_final && !self.finals[p as usize] {
            self.finals[p as usize] = true;
            changed = true;
        }
        if changed {
            self.after_pair_change(p);
            self.mark_parents_dirty(p);
        }
    }

    /// Unions `R(c) ∪ {g(c)}` of every matched child into `R(p)`. Returns
    /// whether `R(p)` grew.
    pub(crate) fn union_matched_children_into_r(&mut self, p: u32) -> bool {
        let m = self.space.universe_size();
        let mut grew = false;
        // Take ownership of the set (copy-on-write on sharing).
        let mut rp = match self.r[p as usize].take() {
            Some(rc) => rc,
            None => Rc::new(BitSet::new(m)),
        };
        {
            let set = Rc::make_mut(&mut rp);
            let children: Vec<u32> = self.pg.successors(p).to_vec();
            for c in children {
                if self.status[c as usize] != Status::Matched {
                    continue;
                }
                let pos =
                    self.space.universe_pos(self.pg.data_node(c)).expect("candidates in universe");
                grew |= set.insert(pos as usize);
                if let Some(rc) = &self.r[c as usize] {
                    grew |= set.union_with(rc);
                }
            }
        }
        self.r_count[p as usize] = rp.count() as u32;
        self.r[p as usize] = Some(rp);
        grew
    }

    /// Post-change bookkeeping for output candidates (h tightening).
    pub(crate) fn after_pair_change(&mut self, p: u32) {
        if let Some(i) = self.output_index_of(p) {
            match self.status[p as usize] {
                Status::Refuted => self.h_cur[i] = 0,
                Status::Matched if self.finals[p as usize] => {
                    self.h_cur[i] = self.r_count[p as usize] as u64;
                }
                _ => {}
            }
        }
    }

    // Selection lives in `selection.rs`, SCC processing in `scc.rs`.
}
