//! Leaf-batch selection `Sc` — the optimized/naive split of Exp-1/Exp-2.
//!
//! * **Optimized** (paper `TopK` / `TopKDAG`): walk output candidates in
//!   descending initial-bound order and activate the unvisited leaf cone of
//!   the first undecided one. High-relevance candidates are decided first,
//!   so the min-heap `S` fills with strong lower bounds early and
//!   Proposition 3 fires after inspecting a fraction of `Mu` — the measured
//!   `MR` of Section 6.
//! * **Random** (paper `TopKnopt` / `TopKDAGnopt`): activate a fixed-size
//!   random slice of the remaining leaves, which spreads work across all
//!   cones and delays termination — exactly the ablation the paper reports
//!   as 16–18% slower.

use super::{Engine, Status};
use crate::config::SelectionStrategy;

impl Engine<'_> {
    pub(super) fn select_batch(&mut self) -> Vec<u32> {
        match self.cfg.strategy {
            SelectionStrategy::Optimized => self.select_optimized(),
            SelectionStrategy::Random { .. } => self.select_random(),
        }
    }

    fn select_optimized(&mut self) -> Vec<u32> {
        // First output candidate by descending initial bound whose cone
        // still has unvisited leaves. Activating a whole cone makes that
        // candidate's relevant set exact after propagation, so the wave
        // driver can tighten `h` to `l` for it (see `note_cone_complete`).
        let order = self.h_order.clone();
        let mut visited = vec![false; self.pg.len()];
        while self.selection_cursor < order.len() {
            let i = order[self.selection_cursor] as usize;
            if self.output_status(i) == Status::Refuted || self.cone_complete[i] {
                self.selection_cursor += 1;
                continue;
            }
            let batch = self.cone_unactivated_leaves(self.out_base + i as u32, &mut visited);
            // Whether freshly activated (this wave completes it) or already
            // fully activated by earlier overlapping cones: after the next
            // propagation this candidate's values are exact.
            self.pending_complete.push(i);
            self.selection_cursor += 1;
            if !batch.is_empty() {
                return batch;
            }
        }
        // Every candidate cone-complete: sweep the remainder so exhaustion
        // is reachable.
        self.remaining_leaf_chunk()
    }

    fn cone_unactivated_leaves(&self, root: u32, visited: &mut [bool]) -> Vec<u32> {
        let mut batch = Vec::new();
        let mut stack = vec![root];
        if visited[root as usize] {
            return batch;
        }
        visited[root as usize] = true;
        while let Some(p) = stack.pop() {
            if self.status[p as usize] == Status::Refuted {
                continue;
            }
            if self.node_rank[self.pg.pattern_node(p) as usize] == 0 && !self.activated[p as usize]
            {
                batch.push(p);
            }
            if self.finals[p as usize] {
                continue; // final ⇒ every leaf below is activated
            }
            for &c in self.pg.successors(p) {
                if !visited[c as usize] {
                    visited[c as usize] = true;
                    stack.push(c);
                }
            }
        }
        batch
    }

    fn select_random(&mut self) -> Vec<u32> {
        let total = self.cone_rank0.len();
        let target = (total / self.cfg.random_batch_divisor.max(1)).max(64);
        let mut batch = Vec::with_capacity(target.min(self.unactivated));
        while batch.len() < target && self.selection_cursor < self.shuffled_leaves.len() {
            let p = self.shuffled_leaves[self.selection_cursor];
            self.selection_cursor += 1;
            if !self.activated_pair(p) {
                batch.push(p);
            }
        }
        batch
    }

    fn remaining_leaf_chunk(&mut self) -> Vec<u32> {
        let total = self.cone_rank0.len();
        let target = (total / self.cfg.random_batch_divisor.max(1)).max(64);
        self.cone_rank0.iter().copied().filter(|&p| !self.activated_pair(p)).take(target).collect()
    }

    pub(super) fn activated_pair(&self, p: u32) -> bool {
        self.activated[p as usize]
    }
}
