//! Pattern-SCC wave processing — the engine's `SccProcess` (Section 4.2).
//!
//! Nontrivial pattern SCCs admit *cyclically supported* matches: simulation
//! is a greatest fixpoint, so a set of pairs that mutually satisfy each
//! other's edges (grounded externally through confirmed matches where
//! external edges exist) are all matches. Each wave therefore runs:
//!
//! 1. **ground/refute** — the same per-pair evaluation as the acyclic
//!    propagation, minus cycle detection;
//! 2. **promotion fixpoint** — candidates are the unknown (activated, for
//!    leaf SCCs) pairs whose external edges are satisfied by confirmed
//!    matches; internal support is counted over `Matched ∪ candidates` and
//!    unsupported pairs are removed to a worklist until stable. Survivors
//!    are matches (they form a simulation together with everything already
//!    matched);
//! 3. **shared relevant sets** — the matched pairs of the SCC are condensed
//!    (match-graph SCCs never span pattern SCCs), and each component shares
//!    one `Rc` bitset: members of a cycle all reach the same data nodes,
//!    exactly like `DB2/PRG2/DB3/PRG3` sharing their relevant set in
//!    Example 8;
//! 4. **finality** — once every external child is final (and, for leaf
//!    SCCs, every member is activated), the promotion was exact: remaining
//!    unknowns are refuted and the whole SCC finalizes.

use std::rc::Rc;

use gpm_graph::csr::Csr;
use gpm_graph::{BitSet, Condensation};

use super::{Engine, Status};

impl Engine<'_> {
    pub(super) fn process_scc(&mut self, scc: u32) {
        let pairs: Vec<u32> = self.scc_pairs[scc as usize].clone();
        if pairs.is_empty() {
            return;
        }
        self.stats.propagation_updates += pairs.len() as u64;
        let leaf_scc = {
            let u = self.pg.pattern_node(pairs[0]);
            self.node_rank[u as usize] == 0
        };

        let mut changed: Vec<u32> = Vec::new();

        // ---- step 1: ground / refute from current child statuses.
        for &p in &pairs {
            if self.finals[p as usize] || self.status[p as usize] != Status::Unknown {
                continue;
            }
            let u = self.pg.pattern_node(p);
            let d = self.q.successors(u).len();
            let mut matched = vec![false; d];
            let mut alive = vec![false; d];
            let mut all_final = true;
            for &c in self.pg.successors(p) {
                let j = self.edge_index(u, self.pg.pattern_node(c));
                match self.status[c as usize] {
                    Status::Matched => matched[j] = true,
                    Status::Refuted => {}
                    Status::Unknown => alive[j] = true,
                }
                if !self.finals[c as usize] {
                    all_final = false;
                }
            }
            let any_dead = (0..d).any(|j| !matched[j] && !alive[j]);
            if any_dead || (all_final && !(0..d).all(|j| matched[j])) {
                self.status[p as usize] = Status::Refuted;
                self.finals[p as usize] = true;
                changed.push(p);
            } else if (0..d).all(|j| matched[j]) {
                self.status[p as usize] = Status::Matched;
                changed.push(p);
            }
        }

        // ---- step 2: promotion fixpoint over cyclic support.
        let promoted = self.promote_scc(&pairs, scc, leaf_scc);
        changed.extend_from_slice(&promoted);

        // ---- step 3: shared relevant-set propagation over matched pairs.
        let r_changed = self.propagate_scc_r(&pairs, scc);
        changed.extend_from_slice(&r_changed);

        // ---- step 4: finality.
        if self.scc_ready_for_finality(&pairs, scc, leaf_scc) {
            for &p in &pairs {
                if self.status[p as usize] == Status::Unknown {
                    self.status[p as usize] = Status::Refuted;
                    changed.push(p);
                }
                if !self.finals[p as usize] {
                    self.finals[p as usize] = true;
                    changed.push(p);
                }
            }
        }

        // ---- notify: output caches + external parents.
        changed.sort_unstable();
        changed.dedup();
        for p in changed {
            self.after_pair_change(p);
            // Only parents outside this SCC: internal effects are settled.
            let preds: Vec<u32> = self.pg.predecessors(p).to_vec();
            for par in preds {
                let pu = self.pg.pattern_node(par);
                if self.scc_of[pu as usize] != scc && !self.finals[par as usize] {
                    self.mark_dirty(par);
                }
            }
        }
    }

    /// Greatest-fixpoint promotion. Returns newly matched pairs.
    fn promote_scc(&mut self, pairs: &[u32], scc: u32, leaf_scc: bool) -> Vec<u32> {
        // Candidate eligibility: Unknown, activated if leaf SCC, and every
        // external edge satisfied by a confirmed match.
        let mut cand_mark = vec![false; pairs.len()];
        let mut max_deg = 0usize;
        let mut cand: Vec<u32> = Vec::new();
        for &p in pairs {
            if self.status[p as usize] != Status::Unknown {
                continue;
            }
            if leaf_scc && !self.activated[p as usize] {
                continue;
            }
            let u = self.pg.pattern_node(p);
            let succs = self.q.successors(u);
            max_deg = max_deg.max(succs.len());
            // Check external edges.
            let d = succs.len();
            let mut ext_matched = vec![true; d];
            for (j, &uc) in succs.iter().enumerate() {
                if self.scc_of[uc as usize] != scc {
                    ext_matched[j] = false;
                }
            }
            for &c in self.pg.successors(p) {
                let uc = self.pg.pattern_node(c);
                if self.scc_of[uc as usize] != scc && self.status[c as usize] == Status::Matched {
                    ext_matched[self.edge_index(u, uc)] = true;
                }
            }
            if ext_matched.iter().all(|&b| b) {
                cand_mark[self.scc_local[p as usize] as usize] = true;
                cand.push(p);
            }
        }
        if cand.is_empty() {
            return Vec::new();
        }

        // Internal support counts over Matched ∪ candidates.
        let stride = max_deg.max(1);
        let mut support = vec![0u32; pairs.len() * stride];
        for &p in &cand {
            let u = self.pg.pattern_node(p);
            let lp = self.scc_local[p as usize] as usize;
            for &c in self.pg.successors(p) {
                let uc = self.pg.pattern_node(c);
                if self.scc_of[uc as usize] != scc {
                    continue;
                }
                let ok = match self.status[c as usize] {
                    Status::Matched => true,
                    Status::Unknown => cand_mark[self.scc_local[c as usize] as usize],
                    Status::Refuted => false,
                };
                if ok {
                    support[lp * stride + self.edge_index(u, uc)] += 1;
                }
            }
        }

        // Remove unsupported candidates until stable.
        let internal_edges = |eng: &Engine<'_>, u: u32| -> Vec<usize> {
            eng.q
                .successors(u)
                .iter()
                .enumerate()
                .filter(|(_, &uc)| eng.scc_of[uc as usize] == scc)
                .map(|(j, _)| j)
                .collect()
        };
        let mut worklist: Vec<u32> = Vec::new();
        for &p in &cand {
            let u = self.pg.pattern_node(p);
            let lp = self.scc_local[p as usize] as usize;
            if internal_edges(self, u).iter().any(|&j| support[lp * stride + j] == 0) {
                cand_mark[lp] = false;
                worklist.push(p);
            }
        }
        while let Some(p) = worklist.pop() {
            let pu = self.pg.pattern_node(p);
            let preds: Vec<u32> = self.pg.predecessors(p).to_vec();
            for par in preds {
                let paru = self.pg.pattern_node(par);
                if self.scc_of[paru as usize] != scc {
                    continue;
                }
                let lpar = self.scc_local[par as usize] as usize;
                if lpar == u32::MAX as usize {
                    continue; // same pattern SCC but outside the output cone
                }
                if !cand_mark[lpar] {
                    continue;
                }
                let j = self.edge_index(paru, pu);
                let slot = lpar * stride + j;
                support[slot] -= 1;
                if support[slot] == 0 {
                    cand_mark[lpar] = false;
                    worklist.push(par);
                }
            }
        }

        // Survivors are matches.
        let mut promoted = Vec::new();
        for &p in &cand {
            if cand_mark[self.scc_local[p as usize] as usize] {
                self.status[p as usize] = Status::Matched;
                promoted.push(p);
            }
        }
        promoted
    }

    /// Recomputes shared relevant sets over the SCC's matched pairs.
    /// Returns pairs whose `R` grew.
    fn propagate_scc_r(&mut self, pairs: &[u32], scc: u32) -> Vec<u32> {
        let matched: Vec<u32> =
            pairs.iter().copied().filter(|&p| self.status[p as usize] == Status::Matched).collect();
        if matched.is_empty() {
            return Vec::new();
        }
        let mut local_of = std::collections::HashMap::with_capacity(matched.len());
        for (i, &p) in matched.iter().enumerate() {
            local_of.insert(p, i as u32);
        }
        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (i, &p) in matched.iter().enumerate() {
            for &c in self.pg.successors(p) {
                if self.scc_of[self.pg.pattern_node(c) as usize] == scc {
                    if let Some(&lc) = local_of.get(&c) {
                        edges.push((i as u32, lc));
                    }
                }
            }
        }
        let csr = Csr::from_edges(matched.len(), &edges);
        let cond = Condensation::compute(&csr);

        let m = self.space.universe_size();
        let nc = cond.component_count();
        let mut full: Vec<Option<Rc<BitSet>>> = vec![None; nc];
        let mut comp_final = vec![true; nc];
        let mut grew: Vec<u32> = Vec::new();

        for comp in cond.reverse_topological() {
            let mut set = BitSet::new(m);
            for &sc in cond.comp_successors(comp) {
                set.union_with(full[sc as usize].as_ref().expect("succ first"));
                comp_final[comp as usize] &= comp_final[sc as usize];
            }
            // External matched children + member bits of lower comps are in
            // `full`; add external contributions per member.
            for &lm in cond.members(comp) {
                let p = matched[lm as usize];
                // External matched children contribute R(c) ∪ {g(c)}; and
                // internal children in *lower comps* contribute their data
                // node (their R is inside full[sc], their g-bit added when
                // their comp was built).
                for &c in self.pg.successors(p) {
                    match self.status[c as usize] {
                        Status::Matched => {}
                        Status::Refuted => continue,
                        Status::Unknown => {
                            // An internal Unknown child may still become a
                            // match and extend this component's sets.
                            comp_final[comp as usize] = false;
                            continue;
                        }
                    }
                    let uc = self.pg.pattern_node(c);
                    if self.scc_of[uc as usize] == scc {
                        continue; // covered by comp DP
                    }
                    if !self.finals[c as usize] {
                        comp_final[comp as usize] = false;
                    }
                    let pos = self
                        .space
                        .universe_pos(self.pg.data_node(c))
                        .expect("candidate in universe");
                    set.insert(pos as usize);
                    if let Some(rc) = &self.r[c as usize] {
                        set.union_with(rc);
                    }
                }
            }
            let nontrivial = cond.is_nontrivial(comp);
            let result: Rc<BitSet> = if nontrivial {
                // Cycle members reach each other and themselves.
                for &lm in cond.members(comp) {
                    let p = matched[lm as usize];
                    let pos = self
                        .space
                        .universe_pos(self.pg.data_node(p))
                        .expect("candidate in universe");
                    set.insert(pos as usize);
                }
                Rc::new(set)
            } else {
                Rc::new(set)
            };
            // Assign to members; `full` additionally records member g-bits
            // for trivial comps (a parent of this pair includes its node).
            for &lm in cond.members(comp) {
                let p = matched[lm as usize];
                let count = result.count() as u32;
                if count != self.r_count[p as usize] {
                    self.r_count[p as usize] = count;
                    grew.push(p);
                }
                self.r[p as usize] = Some(Rc::clone(&result));
            }
            // Per-component finality: every reachable pair is decided and
            // stable, so R is exact and the status can never change — mark
            // members final (this is what lets `h` tighten to `δr` under
            // the random selection strategy too).
            if comp_final[comp as usize] {
                for &lm in cond.members(comp) {
                    let p = matched[lm as usize];
                    if !self.finals[p as usize] {
                        self.finals[p as usize] = true;
                        grew.push(p); // report as changed for notifications
                    }
                }
            }
            let full_set = if nontrivial {
                Rc::clone(&result)
            } else {
                let mut f = (*result).clone();
                let p = matched[cond.members(comp)[0] as usize];
                let pos =
                    self.space.universe_pos(self.pg.data_node(p)).expect("candidate in universe");
                f.insert(pos as usize);
                Rc::new(f)
            };
            full[comp as usize] = Some(full_set);
        }
        grew
    }

    fn scc_ready_for_finality(&self, pairs: &[u32], scc: u32, leaf_scc: bool) -> bool {
        if leaf_scc {
            return pairs.iter().all(|&p| self.activated[p as usize]);
        }
        pairs.iter().all(|&p| {
            self.pg.successors(p).iter().all(|&c| {
                self.scc_of[self.pg.pattern_node(c) as usize] == scc || self.finals[c as usize]
            })
        })
    }
}
