//! The `Match` baseline (Section 4): find **all** matches, then rank.
//!
//! 1. compute the maximum simulation `M(Q,G)` (`O((|Vp|+|V|)(|Ep|+|E|))`);
//! 2. compute `δr(uo, v)` for *every* output match via relevant sets;
//! 3. sort and return the k most relevant.
//!
//! This is the paper's comparison baseline for every efficiency experiment
//! (Figures 5(d)–5(h)) and also the substrate of `TopKDiv`, which needs the
//! full match set plus pairwise distances.

use std::time::Instant;

use gpm_graph::DiGraph;
use gpm_pattern::Pattern;
use gpm_ranking::reach_sets::ReachConfig;
use gpm_ranking::relevant_set::RelevantSets;
use gpm_simulation::{compute_simulation, SimRelation};

use crate::config::TopKConfig;
use crate::result::{RunStats, TopKResult};

/// Everything the find-all pipeline produces; reused by `TopKDiv` and the
/// generalized rankers.
pub struct MatchOutcome {
    /// The maximum simulation.
    pub sim: SimRelation,
    /// Relevant sets of every output match.
    pub relevant: RelevantSets,
}

/// Runs simulation + relevant-set computation.
pub fn compute_match_outcome(g: &DiGraph, q: &Pattern, reach: &ReachConfig) -> MatchOutcome {
    let sim = compute_simulation(g, q);
    let relevant = RelevantSets::compute_with(g, q, &sim, reach);
    MatchOutcome { sim, relevant }
}

/// The `Match` algorithm: top-k by relevance after computing everything.
pub fn top_k_by_match(g: &DiGraph, q: &Pattern, cfg: &TopKConfig) -> TopKResult {
    let t0 = Instant::now();
    let outcome = compute_match_outcome(g, q, &cfg.reach);
    let rs = &outcome.relevant;

    let ranked =
        crate::result::rank_top_k((0..rs.len()).map(|i| (rs.matches()[i], rs.relevance(i))), cfg.k);

    let total = rs.len();
    TopKResult {
        matches: ranked,
        stats: RunStats {
            output_candidates: outcome.sim.space().candidate_count(q.output()),
            inspected_matches: total,
            total_matches: Some(total),
            waves: 1,
            activated_leaves: 0,
            propagation_updates: 0,
            early_terminated: false,
            elapsed: t0.elapsed(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::builder::graph_from_parts;
    use gpm_pattern::builder::label_pattern;

    #[test]
    fn ranks_by_relevance() {
        // Three a-roots with 3, 2 and 1 direct b-children (relevant sets
        // follow pattern paths, so only b-children count for A→B).
        let g = graph_from_parts(
            &[0, 0, 0, 1, 1, 1],
            &[(0, 3), (0, 4), (0, 5), (1, 4), (1, 5), (2, 5)],
        )
        .unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let r = top_k_by_match(&g, &q, &TopKConfig::new(2));
        assert_eq!(r.nodes(), vec![0, 1]);
        assert_eq!(r.matches[0].relevance, 3);
        assert_eq!(r.matches[1].relevance, 2);
        assert_eq!(r.total_relevance(), 5);
        assert_eq!(r.stats.total_matches, Some(3));
        assert!(!r.stats.early_terminated);
        assert_eq!(r.stats.match_ratio(3), 1.0, "Match always inspects everything");
    }

    #[test]
    fn k_larger_than_matches() {
        let g = graph_from_parts(&[0, 1], &[(0, 1)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let r = top_k_by_match(&g, &q, &TopKConfig::new(10));
        assert_eq!(r.matches.len(), 1);
    }

    #[test]
    fn empty_on_no_match() {
        let g = graph_from_parts(&[0], &[]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let r = top_k_by_match(&g, &q, &TopKConfig::new(3));
        assert!(r.matches.is_empty());
        assert_eq!(r.stats.total_matches, Some(0));
    }

    #[test]
    fn tie_break_by_node_id() {
        let g = graph_from_parts(&[0, 0, 1], &[(0, 2), (1, 2)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let r = top_k_by_match(&g, &q, &TopKConfig::new(1));
        assert_eq!(r.nodes(), vec![0], "equal δr resolved by ascending id");
    }
}
