//! `TopKDiv` — the 2-approximation for diversified top-k matching
//! (Section 5.1, Theorem 5(2)).
//!
//! topKDP is NP-complete (Theorem 5(1); with `λ = 1` it contains the
//! K-diverse-set problem), and `F` is not submodular, so the `(1-1/e)`
//! schemes do not apply. `TopKDiv` instead reduces to Maximum Dispersion
//! (MAXDISP): build the complete graph over `Mu(Q,G,uo)` with node weights
//! `δ'r` and edge weights `δd`, then greedily pick `⌊k/2⌋` disjoint pairs
//! maximizing
//!
//! ```text
//! F'(v1,v2) = (1-λ)/(k-1) · (δ'r(v1) + δ'r(v2)) + 2λ/(k-1) · δd(v1,v2)
//! ```
//!
//! (one more greedy single pick if `k` is odd). Because `δd` is a metric,
//! the Hassin–Rubinstein–Tamir argument gives `F(S) ≥ F(S*)/2`.
//!
//! The module also ships an exponential exact solver used by tests to
//! verify the approximation guarantee on small instances.

use std::time::Instant;

use gpm_graph::DiGraph;
use gpm_pattern::Pattern;
use gpm_ranking::distance::{DistanceFn, JaccardDistance, MatchInfo};
use gpm_ranking::objective::Objective;

use crate::config::DivConfig;
use crate::match_all::compute_match_outcome;
use crate::result::{DivResult, RankedMatch, RunStats};

/// `TopKDiv` with the paper's default distance (`δd` = Jaccard of relevant
/// sets).
pub fn top_k_diversified(g: &DiGraph, q: &Pattern, cfg: &DivConfig) -> DivResult {
    top_k_diversified_with(g, q, cfg, &JaccardDistance)
}

/// `TopKDiv` with a pluggable generalized distance `δ*d` (Proposition 6).
pub fn top_k_diversified_with(
    g: &DiGraph,
    q: &Pattern,
    cfg: &DivConfig,
    dist: &dyn DistanceFn,
) -> DivResult {
    let t0 = Instant::now();
    let outcome = compute_match_outcome(g, q, &cfg.topk.reach);
    let rs = &outcome.relevant;
    let n = rs.len();
    let k = cfg.topk.k;
    let objective = Objective::for_pattern(cfg.lambda, k, q, outcome.sim.space());

    let info = |i: usize| MatchInfo { node: rs.matches()[i], r_set: rs.set(i) };
    let d = |i: usize, j: usize| dist.distance(&info(i), &info(j));
    let rel: Vec<f64> = (0..n).map(|i| rs.relevance(i) as f64).collect();

    let (selected, f_value) = greedy_diversified(&objective, &rel, &d);
    let matches: Vec<RankedMatch> = selected
        .iter()
        .map(|&i| RankedMatch { node: rs.matches()[i], relevance: rs.relevance(i) })
        .collect();
    DivResult {
        matches,
        f_value,
        stats: RunStats {
            output_candidates: outcome.sim.space().candidate_count(q.output()),
            inspected_matches: n,
            total_matches: Some(n),
            waves: 1,
            early_terminated: false,
            elapsed: t0.elapsed(),
            ..Default::default()
        },
    }
}

/// The `TopKDiv` greedy itself, decoupled from where the relevance values
/// and distances come from: `rel[i]` is the raw `δr` of the `i`-th match
/// and `d(i, j)` its pairwise `δd`. Returns the selected indices (pairs in
/// pick order) and `F(S)`. The static pipeline and the incremental
/// [`DynamicMatcher`](https://docs.rs/gpm-incremental) both call this, so a
/// maintained state and a from-scratch run produce identical selections —
/// ties included.
pub fn greedy_diversified(
    objective: &Objective,
    rel: &[f64],
    d: &impl Fn(usize, usize) -> f64,
) -> (Vec<usize>, f64) {
    let n = rel.len();
    let k = objective.k;
    let mut remaining: Vec<usize> = (0..n).collect();
    let mut selected: Vec<usize> = Vec::with_capacity(k);
    // Greedy pair selection.
    while selected.len() + 2 <= k && remaining.len() >= 2 {
        let mut best: Option<(f64, usize, usize)> = None;
        for a in 0..remaining.len() {
            for b in (a + 1)..remaining.len() {
                let (i, j) = (remaining[a], remaining[b]);
                let score = objective.f_pair(rel[i], rel[j], d(i, j));
                if best.is_none_or(|(s, _, _)| score > s) {
                    best = Some((score, a, b));
                }
            }
        }
        let Some((_, a, b)) = best else { break };
        // Remove b first (higher index) to keep positions valid.
        let j = remaining.remove(b);
        let i = remaining.remove(a);
        selected.push(i);
        selected.push(j);
    }
    // Odd k (or leftovers): greedily add the single best marginal match.
    while selected.len() < k && !remaining.is_empty() {
        let mut best: Option<(f64, usize)> = None;
        for (pos, &i) in remaining.iter().enumerate() {
            let mut with: Vec<usize> = selected.clone();
            with.push(i);
            let f = f_of(objective, &with, rel, d);
            if best.is_none_or(|(s, _)| f > s) {
                best = Some((f, pos));
            }
        }
        let Some((_, pos)) = best else { break };
        selected.push(remaining.remove(pos));
    }
    let f_value = f_of(objective, &selected, rel, d);
    (selected, f_value)
}

/// Exact topKDP by exhaustive enumeration — exponential, test/verification
/// use only.
pub fn optimal_diversified(g: &DiGraph, q: &Pattern, cfg: &DivConfig) -> DivResult {
    let t0 = Instant::now();
    let outcome = compute_match_outcome(g, q, &cfg.topk.reach);
    let rs = &outcome.relevant;
    let n = rs.len();
    let k = cfg.topk.k.min(n);
    let objective = Objective::for_pattern(cfg.lambda, cfg.topk.k, q, outcome.sim.space());
    let rel: Vec<f64> = (0..n).map(|i| rs.relevance(i) as f64).collect();
    let dist = JaccardDistance;
    let info = |i: usize| MatchInfo { node: rs.matches()[i], r_set: rs.set(i) };
    let d = |i: usize, j: usize| dist.distance(&info(i), &info(j));

    let mut best: Option<(f64, Vec<usize>)> = None;
    if k > 0 && n >= k {
        let mut comb: Vec<usize> = (0..k).collect();
        loop {
            let f = f_of(&objective, &comb, &rel, &d);
            if best.as_ref().is_none_or(|(s, _)| f > *s) {
                best = Some((f, comb.clone()));
            }
            if !next_combination(&mut comb, n) {
                break;
            }
        }
    }

    let (f_value, selected) = best.unwrap_or((0.0, Vec::new()));
    let matches = selected
        .iter()
        .map(|&i| RankedMatch { node: rs.matches()[i], relevance: rs.relevance(i) })
        .collect();
    DivResult {
        matches,
        f_value,
        stats: RunStats {
            inspected_matches: n,
            total_matches: Some(n),
            elapsed: t0.elapsed(),
            ..Default::default()
        },
    }
}

/// Advances `comb` to the next k-combination of `0..n`; `false` when done.
fn next_combination(comb: &mut [usize], n: usize) -> bool {
    let k = comb.len();
    let mut i = k;
    while i > 0 {
        i -= 1;
        if comb[i] < n - k + i {
            comb[i] += 1;
            for j in (i + 1)..k {
                comb[j] = comb[j - 1] + 1;
            }
            return true;
        }
    }
    false
}

fn f_of(obj: &Objective, set: &[usize], rel: &[f64], d: &impl Fn(usize, usize) -> f64) -> f64 {
    let rels: Vec<f64> = set.iter().map(|&i| rel[i]).collect();
    obj.f_score(&rels, |a, b| d(set[a], set[b]))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DivConfig;
    use gpm_graph::builder::graph_from_parts;
    use gpm_pattern::builder::label_pattern;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    /// Star-ish fixture with overlapping reaches so diversity matters.
    fn fixture() -> (gpm_graph::DiGraph, gpm_pattern::Pattern) {
        // a-roots: 0 → {b3, b4}; 1 → {b4, b5}; 2 → {b6}.
        let g = graph_from_parts(&[0, 0, 0, 1, 1, 1, 1], &[(0, 3), (0, 4), (1, 4), (1, 5), (2, 6)])
            .unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        (g, q)
    }

    #[test]
    fn lambda_zero_equals_pure_relevance() {
        let (g, q) = fixture();
        let r = top_k_diversified(&g, &q, &DivConfig::new(2, 0.0));
        // Pure relevance: both two-reach roots (0 and 1).
        let mut nodes = r.nodes();
        nodes.sort_unstable();
        assert_eq!(nodes, vec![0, 1]);
    }

    #[test]
    fn lambda_one_prefers_disjoint_sets() {
        let (g, q) = fixture();
        let r = top_k_diversified(&g, &q, &DivConfig::new(2, 1.0));
        // Node 2's reach {6} is disjoint from both others; a diverse pair
        // must include it.
        assert!(r.nodes().contains(&2), "got {:?}", r.nodes());
        assert!(r.f_value > 0.0);
    }

    #[test]
    fn approximation_guarantee_on_random_instances() {
        let mut rng = StdRng::seed_from_u64(11);
        for trial in 0..25 {
            let n = rng.random_range(4..14usize);
            let labels: Vec<u32> = (0..n).map(|_| rng.random_range(0..3u32)).collect();
            let m = rng.random_range(n..n * 3);
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| (rng.random_range(0..n as u32), rng.random_range(0..n as u32)))
                .filter(|(a, b)| a != b)
                .collect();
            let g = graph_from_parts(&labels, &edges).unwrap();
            let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
            for lambda in [0.0, 0.3, 0.7, 1.0] {
                let cfg = DivConfig::new(3, lambda);
                let approx = top_k_diversified(&g, &q, &cfg);
                let opt = optimal_diversified(&g, &q, &cfg);
                assert!(
                    approx.f_value * 2.0 >= opt.f_value - 1e-9,
                    "trial {trial} λ={lambda}: approx {} < opt {} / 2",
                    approx.f_value,
                    opt.f_value
                );
                assert!(opt.f_value >= approx.f_value - 1e-9, "optimal dominates");
            }
        }
    }

    #[test]
    fn odd_k_and_small_sets() {
        let (g, q) = fixture();
        let r = top_k_diversified(&g, &q, &DivConfig::new(3, 0.5));
        assert_eq!(r.matches.len(), 3);
        let r1 = top_k_diversified(&g, &q, &DivConfig::new(1, 0.5));
        assert_eq!(r1.matches.len(), 1);
        // k > |Mu| returns everything.
        let rbig = top_k_diversified(&g, &q, &DivConfig::new(10, 0.5));
        assert_eq!(rbig.matches.len(), 3);
    }

    #[test]
    fn empty_when_no_match() {
        let g = graph_from_parts(&[0], &[]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let r = top_k_diversified(&g, &q, &DivConfig::new(2, 0.5));
        assert!(r.matches.is_empty());
        assert_eq!(r.f_value, 0.0);
    }
}
