//! `TopKDAG` and `TopK` — topKP with early termination (Sections 4.1/4.2).
//!
//! The drivers own the outer loop around the [`crate::engine::Engine`]:
//!
//! ```text
//! loop {
//!     S := top-k confirmed matches by lower bound l          (min-heap S)
//!     if |S| = k and min_{v∈S} l(v) ≥ max_{v'∉S} h(v')       (Prop. 3)
//!         → early termination: complete winners, return S
//!     if exhausted → return top-k of the (now exact) match set
//!     activate next batch Sc and propagate                    (one wave)
//! }
//! ```
//!
//! Correctness of the early exit: `l(v) ≤ δr(v) ≤ h(v)` always, so the
//! condition implies `δr(s) ≥ δr(r)` for every selected `s` and rejected
//! `r` — `S` is a valid top-k set (Proposition 3). On exhaustion, statuses
//! and relevant sets are exact, so the result equals the `Match` baseline's.

use std::time::Instant;

use gpm_graph::DiGraph;
use gpm_pattern::Pattern;

use crate::config::TopKConfig;
use crate::engine::Engine;
use crate::result::{RankedMatch, RunStats, TopKResult};
use crate::selector::BoundedSelector;

/// Generic entry point: picks the (identical) engine for DAG or cyclic
/// patterns. `top_k_dag` / `top_k_cyclic` are the paper-named wrappers.
pub fn top_k(g: &DiGraph, q: &Pattern, cfg: &TopKConfig) -> TopKResult {
    let t0 = Instant::now();
    if cfg.k == 0 {
        return empty_result(t0);
    }
    let Some(mut eng) = Engine::new(g, q, cfg) else {
        return empty_result(t0);
    };

    loop {
        let sel = current_selection(&eng, cfg.k);
        if sel.is_full() {
            let selection = sel.ids();
            if sel.terminated(eng.best_rest_bound(&selection)) {
                eng.stats_mut().early_terminated = true;
                eng.stats_mut().inspected_matches = eng.matched_count();
                if cfg.exact_scores {
                    eng.complete_cones(&selection);
                }
                return finish(eng, selection, t0);
            }
        }
        if eng.exhausted() {
            let total = eng.matched_count();
            eng.stats_mut().inspected_matches = total;
            eng.stats_mut().total_matches = Some(total);
            return finish(eng, sel.ids(), t0);
        }
        eng.wave();
    }
}

/// `TopKDAG` (Section 4.1). Panics in debug builds if the pattern is cyclic.
pub fn top_k_dag(g: &DiGraph, q: &Pattern, cfg: &TopKConfig) -> TopKResult {
    debug_assert!(q.is_dag(), "top_k_dag expects a DAG pattern");
    top_k(g, q, cfg)
}

/// `TopK` (Section 4.2) — handles cyclic patterns via the `Q_SCC` fixpoint
/// (and trivially also DAGs).
pub fn top_k_cyclic(g: &DiGraph, q: &Pattern, cfg: &TopKConfig) -> TopKResult {
    top_k(g, q, cfg)
}

/// The wave's confirmed matches folded into a [`BoundedSelector`]: full
/// ⇒ a termination candidate, and on exhaustion its ids are the final
/// best-first top-(≤ k).
fn current_selection(eng: &Engine<'_>, k: usize) -> BoundedSelector {
    let mut sel = BoundedSelector::new(k);
    for (i, v, l) in eng.matched_outputs() {
        sel.offer(i, v, l);
    }
    sel
}

fn finish(mut eng: Engine<'_>, selection: Vec<usize>, t0: Instant) -> TopKResult {
    let mut matches: Vec<RankedMatch> = selection
        .iter()
        .map(|&i| RankedMatch { node: eng.output_node(i), relevance: eng.output_l(i) })
        .collect();
    matches.sort_by(|a, b| b.relevance.cmp(&a.relevance).then(a.node.cmp(&b.node)));
    eng.stats_mut().elapsed = t0.elapsed();
    TopKResult { matches, stats: eng.stats().clone() }
}

fn empty_result(t0: Instant) -> TopKResult {
    TopKResult {
        matches: Vec::new(),
        stats: RunStats { elapsed: t0.elapsed(), total_matches: Some(0), ..Default::default() },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SelectionStrategy;
    use crate::match_all::top_k_by_match;
    use gpm_graph::builder::graph_from_parts;
    use gpm_pattern::builder::label_pattern;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn agrees_with_match_on_chain() {
        let g = graph_from_parts(
            &[0, 0, 0, 1, 1, 1],
            &[(0, 3), (0, 4), (0, 5), (1, 4), (1, 5), (2, 5)],
        )
        .unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let cfg = TopKConfig::new(2);
        let fast = top_k(&g, &q, &cfg);
        let base = top_k_by_match(&g, &q, &cfg);
        assert_eq!(fast.total_relevance(), base.total_relevance());
        assert_eq!(fast.nodes(), base.nodes());
    }

    #[test]
    fn cyclic_pattern_small() {
        // Pattern A→B, B→A. Data has a 2-cycle and a dangling a-node.
        let g = graph_from_parts(&[0, 1, 0], &[(0, 1), (1, 0), (2, 1)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1), (1, 0)], 0).unwrap();
        let cfg = TopKConfig::new(1);
        let r = top_k_cyclic(&g, &q, &cfg);
        assert_eq!(r.nodes(), vec![0]);
        // R(A,0) = {0, 1}: the cycle reaches both nodes.
        assert_eq!(r.matches[0].relevance, 2);
    }

    #[test]
    fn no_match_returns_empty() {
        let g = graph_from_parts(&[0], &[]).unwrap();
        let q = label_pattern(&[0, 5], &[(0, 1)], 0).unwrap();
        let r = top_k(&g, &q, &TopKConfig::new(3));
        assert!(r.matches.is_empty());
        assert_eq!(r.stats.total_matches, Some(0));
    }

    #[test]
    fn k_exceeds_matches_returns_all() {
        let g = graph_from_parts(&[0, 1, 0], &[(0, 1), (2, 1)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let r = top_k(&g, &q, &TopKConfig::new(99));
        assert_eq!(r.matches.len(), 2);
        assert_eq!(r.stats.total_matches, Some(2));
    }

    #[test]
    fn non_root_output_checks_global_existence() {
        // Pattern: A→B with output B; data has B but no A.
        let g = graph_from_parts(&[1, 1], &[(0, 1)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 1).unwrap();
        let r = top_k(&g, &q, &TopKConfig::new(2));
        assert!(r.matches.is_empty(), "no A-match anywhere ⇒ Mu = ∅");
        // With an A present, B-matches return.
        let g2 = graph_from_parts(&[0, 1, 1], &[(0, 1)]).unwrap();
        let r2 = top_k(&g2, &q, &TopKConfig::new(5));
        assert_eq!(r2.matches.len(), 2, "both b-nodes match the leaf B");
    }

    #[test]
    fn randomized_agreement_with_match_baseline() {
        let mut rng = StdRng::seed_from_u64(7);
        for trial in 0..40 {
            let n = rng.random_range(4..40usize);
            let labels: Vec<u32> = (0..n).map(|_| rng.random_range(0..4u32)).collect();
            let m = rng.random_range(0..n * 3);
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| (rng.random_range(0..n as u32), rng.random_range(0..n as u32)))
                .filter(|(a, b)| a != b)
                .collect();
            let g = graph_from_parts(&labels, &edges).unwrap();
            // Random patterns: chains, diamonds, cycles.
            let patterns = [
                label_pattern(&[0, 1], &[(0, 1)], 0).unwrap(),
                label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap(),
                label_pattern(&[0, 1, 2], &[(0, 1), (0, 2), (1, 2)], 0).unwrap(),
                label_pattern(&[0, 1, 2], &[(0, 1), (1, 2), (2, 1)], 0).unwrap(),
                label_pattern(&[0, 1, 0], &[(0, 1), (1, 2), (2, 1)], 0).unwrap(),
            ];
            for (pi, q) in patterns.iter().enumerate() {
                for k in [1, 2, 5] {
                    let cfg = TopKConfig::new(k);
                    let base = top_k_by_match(&g, q, &cfg);
                    for strat in [
                        SelectionStrategy::Optimized,
                        SelectionStrategy::Random { seed: trial as u64 },
                    ] {
                        let mut c = cfg.clone();
                        c.strategy = strat;
                        let fast = top_k(&g, q, &c);
                        assert_eq!(
                            fast.total_relevance(),
                            base.total_relevance(),
                            "trial {trial} pattern {pi} k {k} strat {strat:?}: \
                             labels={labels:?} edges={edges:?}"
                        );
                        assert_eq!(fast.matches.len(), base.matches.len());
                    }
                }
            }
        }
    }
}
