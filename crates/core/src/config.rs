//! Algorithm configuration.

use gpm_ranking::bounds::{BoundConfig, BoundStrategy};
use gpm_ranking::reach_sets::ReachConfig;

/// How leaf batches `Sc` are chosen (Section 4, and the `nopt` ablation of
/// Exp-1/Exp-2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectionStrategy {
    /// Greedy: activate the leaf cone of the most promising (highest `h`)
    /// undecided output candidate — the paper's "minimal set covering the
    /// children of rank-1 candidates", generalized to whole cones.
    #[default]
    Optimized,
    /// Random leaf batches — the paper's `TopKnopt` / `TopKDAGnopt`.
    Random {
        /// RNG seed (experiments fix it for reproducibility).
        seed: u64,
    },
}

/// Configuration for topKP algorithms.
#[derive(Debug, Clone)]
pub struct TopKConfig {
    /// Number of matches to return.
    pub k: usize,
    /// Leaf-batch selection strategy.
    pub strategy: SelectionStrategy,
    /// Upper-bound index strategy (Proposition 3's `h`).
    pub bounds: BoundStrategy,
    /// Bound-index tuning.
    pub bound_config: BoundConfig,
    /// Set-reachability policy for the `Match` baseline / score finalization.
    pub reach: ReachConfig,
    /// Complete the winners' cones after termination so reported `δr` values
    /// are exact (the returned *set* is correct either way).
    pub exact_scores: bool,
    /// Random strategy: activate `ceil(total_leaves / divisor)` leaves per
    /// wave (min 64).
    pub random_batch_divisor: usize,
}

impl TopKConfig {
    /// Default configuration for a given `k`.
    pub fn new(k: usize) -> Self {
        TopKConfig {
            k,
            strategy: SelectionStrategy::Optimized,
            // Adaptive: the tight `ProductReach` index while the candidate
            // product graph fits the budget (it is what makes Prop. 3 fire
            // early — see the `bounds_ablation` bench), the paper's cheap
            // descendant-count index beyond it.
            bounds: BoundStrategy::Auto,
            bound_config: BoundConfig::default(),
            reach: ReachConfig::default(),
            exact_scores: true,
            random_batch_divisor: 32,
        }
    }

    /// Same configuration with the `nopt` (random) selection strategy.
    pub fn nopt(mut self, seed: u64) -> Self {
        self.strategy = SelectionStrategy::Random { seed };
        self
    }
}

/// Configuration for topKDP algorithms: a topKP configuration plus the
/// trade-off `λ`.
#[derive(Debug, Clone)]
pub struct DivConfig {
    /// Base top-k settings (`k`, strategy, bounds …).
    pub topk: TopKConfig,
    /// Relevance/diversity trade-off `λ ∈ [0,1]` (Section 3.3).
    pub lambda: f64,
}

impl DivConfig {
    /// Default diversified configuration.
    pub fn new(k: usize, lambda: f64) -> Self {
        DivConfig { topk: TopKConfig::new(k), lambda }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = TopKConfig::new(10);
        assert_eq!(c.k, 10);
        assert_eq!(c.strategy, SelectionStrategy::Optimized);
        assert!(c.exact_scores);
        let n = c.clone().nopt(7);
        assert_eq!(n.strategy, SelectionStrategy::Random { seed: 7 });
        let d = DivConfig::new(5, 0.5);
        assert_eq!(d.topk.k, 5);
        assert_eq!(d.lambda, 0.5);
        assert_eq!(SelectionStrategy::default(), SelectionStrategy::Optimized);
    }
}
