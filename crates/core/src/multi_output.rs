//! Patterns with multiple output nodes — the Section 2.2 extension.
//!
//! The paper: "the results of this work extend to patterns with multiple
//! output nodes" (not necessarily roots). Semantically, a pattern with
//! output set `O ⊆ Vp` asks for `Mu(Q,G,u)` for every `u ∈ O` — each set
//! determined by `u`'s own out-cone in the one shared maximum simulation,
//! with the global emptiness rule applied once.
//!
//! The implementation runs the (early-terminating) single-output machinery
//! per requested node on a re-targeted copy of the pattern; the non-root
//! global existence check of Section 4.1's extension applies automatically.

use gpm_graph::DiGraph;
use gpm_pattern::{PNodeId, Pattern, PatternBuilder};

use crate::config::TopKConfig;
use crate::result::TopKResult;

/// Re-targets a pattern to another output node (same topology/predicates).
pub fn with_output(q: &Pattern, output: PNodeId) -> Pattern {
    let mut b = PatternBuilder::new();
    for u in q.nodes() {
        b.node(q.name(u).to_owned(), q.predicate(u).clone());
    }
    for (s, t) in q.edges() {
        b.edge(s, t).expect("nodes copied");
    }
    b.output(output).expect("valid node");
    b.build().expect("same topology is valid")
}

/// Top-k matches for **each** requested output node, sharing `cfg`.
///
/// Returns one `(output node, result)` entry per request, in request order.
/// Each result is exactly what [`crate::topk::top_k`] returns for the
/// re-targeted pattern, so all guarantees (soundness of early termination,
/// agreement with `Match`) carry over per output node.
pub fn top_k_multi(
    g: &DiGraph,
    q: &Pattern,
    outputs: &[PNodeId],
    cfg: &TopKConfig,
) -> Vec<(PNodeId, TopKResult)> {
    outputs
        .iter()
        .map(|&u| {
            let retargeted = with_output(q, u);
            (u, crate::topk::top_k(g, &retargeted, cfg))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::match_all::top_k_by_match;
    use gpm_graph::builder::graph_from_parts;
    use gpm_pattern::builder::label_pattern;

    /// A → B → C chain queried at every node.
    #[test]
    fn per_output_results() {
        //   0(a)→2(b)→4(c), 1(a)→3(b)  (3 has no c-child)
        let g = graph_from_parts(&[0, 0, 1, 1, 2], &[(0, 2), (1, 3), (2, 4)]).unwrap();
        let q = label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        let results = top_k_multi(&g, &q, &[0, 1, 2], &TopKConfig::new(5));
        assert_eq!(results.len(), 3);
        let by_node: Vec<(u32, Vec<u32>)> = results.iter().map(|(u, r)| (*u, r.nodes())).collect();
        assert_eq!(by_node[0], (0, vec![0]), "only node 0 roots a full chain");
        assert_eq!(by_node[1], (1, vec![2]), "node 3 lacks a c-child");
        assert_eq!(by_node[2], (2, vec![4]));
    }

    /// Per-output answers agree with Match on the re-targeted pattern.
    #[test]
    fn agrees_with_match_per_output() {
        let g = graph_from_parts(&[0, 0, 1, 1, 2, 2], &[(0, 2), (0, 3), (2, 4), (3, 5), (1, 3)])
            .unwrap();
        let q = label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        for u in 0..3u32 {
            let rq = with_output(&q, u);
            let multi = top_k_multi(&g, &q, &[u], &TopKConfig::new(4));
            let base = top_k_by_match(&g, &rq, &TopKConfig::new(4));
            assert_eq!(multi[0].1.total_relevance(), base.total_relevance());
            assert_eq!(multi[0].1.nodes(), base.nodes());
        }
    }

    /// Global emptiness applies to every output node (the non-root check).
    #[test]
    fn global_emptiness_per_output() {
        // Pattern A→B; graph has b-nodes but no a→b edge: M(Q,G) = ∅, so
        // even the leaf output node B has no matches.
        let g = graph_from_parts(&[0, 1, 1], &[]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let results = top_k_multi(&g, &q, &[1], &TopKConfig::new(3));
        assert!(results[0].1.matches.is_empty());
    }

    /// Re-targeting preserves names and predicates.
    #[test]
    fn with_output_preserves_structure() {
        let q = gpm_datagen::fig1_pattern();
        let st = q.node_by_name("ST").unwrap();
        let rq = with_output(&q, st);
        assert_eq!(rq.output(), st);
        assert_eq!(rq.node_count(), q.node_count());
        assert_eq!(rq.edge_count(), q.edge_count());
        assert_eq!(rq.name(st), "ST");
        assert!(!rq.output_is_root());
        // All STs match the leaf output on Fig. 1.
        let g = gpm_datagen::fig1_graph();
        let r = crate::topk::top_k(&g, &rq, &TopKConfig::new(10));
        assert_eq!(r.matches.len(), 4, "ST1..ST4 all match, each with δr = 0");
    }
}
