//! Golden tests: every number in the paper's worked Examples 1–10 (Fig. 1),
//! end-to-end through the public API.

use gpm_core::config::{DivConfig, TopKConfig};
use gpm_core::{
    top_k_by_match, top_k_cyclic, top_k_dag, top_k_diversified, top_k_diversified_heuristic,
};
use gpm_datagen::{fig1_graph, fig1_pattern, fig1_pattern_q1};
use gpm_graph::NodeId;
use gpm_ranking::bounds::{output_upper_bounds, BoundConfig, BoundStrategy};
use gpm_ranking::objective::c_uo;
use gpm_ranking::relevant_set::{relevant_set_of_pair, RelevantSets};
use gpm_simulation::compute_simulation;

fn node(g: &gpm_graph::DiGraph, name: &str) -> NodeId {
    g.node_by_name(name).unwrap_or_else(|| panic!("node {name}"))
}

fn names(g: &gpm_graph::DiGraph, ids: &[NodeId]) -> Vec<String> {
    let mut v: Vec<String> = ids.iter().map(|&i| g.display(i)).collect();
    v.sort();
    v
}

/// Examples 1–3: the maximum simulation has exactly 15 pairs; the output
/// matches are PM1..PM4 (4 nodes instead of 15 pairs).
#[test]
fn example_1_2_3_simulation_and_output_matches() {
    let g = fig1_graph();
    let q = fig1_pattern();
    let sim = compute_simulation(&g, &q);
    assert!(sim.graph_matches());
    assert_eq!(sim.len(), 15, "Example 3: |M(Q,G)| = 15 pairs");
    let mu = sim.output_matches(&q);
    assert_eq!(names(&g, &mu), vec!["PM1", "PM2", "PM3", "PM4"]);
    // Every DBj (j∈[1,3]) and PRGi (i∈[1,4]) and STi (i∈[1,4]) matches.
    let db = q.node_by_name("DB").unwrap();
    let prg = q.node_by_name("PRG").unwrap();
    let st = q.node_by_name("ST").unwrap();
    assert_eq!(sim.matches_of(db).len(), 3);
    assert_eq!(sim.matches_of(prg).len(), 4);
    assert_eq!(sim.matches_of(st).len(), 4);
    // Oracle agreement.
    assert!(gpm_simulation::naive::agrees_with_naive(&g, &q, &sim));
}

/// Example 4: the exact relevant sets of the four PM matches.
#[test]
fn example_4_relevant_sets() {
    let g = fig1_graph();
    let q = fig1_pattern();
    let sim = compute_simulation(&g, &q);
    let pm = q.output();

    let set = |name: &str| -> Vec<String> {
        let ids = relevant_set_of_pair(&g, &q, &sim, pm, node(&g, name)).unwrap();
        names(&g, &ids)
    };
    assert_eq!(set("PM1"), vec!["DB1", "PRG1", "ST1", "ST2"]);
    assert_eq!(set("PM2"), vec!["DB2", "DB3", "PRG2", "PRG3", "PRG4", "ST2", "ST3", "ST4"]);
    let expected34 = vec!["DB2", "DB3", "PRG2", "PRG3", "ST3", "ST4"];
    assert_eq!(set("PM3"), expected34);
    assert_eq!(set("PM4"), expected34);

    // δr values and the top-2 relevance set {PM2, PM3} (or PM4) with total 14.
    let rs = RelevantSets::compute(&g, &q, &sim);
    assert_eq!(rs.relevance_of(node(&g, "PM1")), Some(4));
    assert_eq!(rs.relevance_of(node(&g, "PM2")), Some(8));
    assert_eq!(rs.relevance_of(node(&g, "PM3")), Some(6));
    assert_eq!(rs.relevance_of(node(&g, "PM4")), Some(6));

    // Example 8 detail: with the cyclic pattern, DB3 is in its own
    // relevant set: R(DB, DB3) = {ST3, ST4, DB2, DB3, PRG2, PRG3}.
    let db = q.node_by_name("DB").unwrap();
    let r_db3 = relevant_set_of_pair(&g, &q, &sim, db, node(&g, "DB3")).unwrap();
    assert_eq!(names(&g, &r_db3), vec!["DB2", "DB3", "PRG2", "PRG3", "ST3", "ST4"]);
}

/// Example 5: pairwise distances δd.
#[test]
fn example_5_distances() {
    let g = fig1_graph();
    let q = fig1_pattern();
    let sim = compute_simulation(&g, &q);
    let rs = RelevantSets::compute(&g, &q, &sim);
    let idx = |name: &str| rs.index_of(node(&g, name)).unwrap();

    assert_eq!(rs.distance(idx("PM3"), idx("PM4")), 0.0);
    assert!((rs.distance(idx("PM1"), idx("PM2")) - 10.0 / 11.0).abs() < 1e-12);
    assert!((rs.distance(idx("PM2"), idx("PM3")) - 0.25).abs() < 1e-12);
    assert_eq!(rs.distance(idx("PM1"), idx("PM3")), 1.0);
}

/// Example 6: Cuo = 11 and the λ-regimes of the optimal diversified pair.
#[test]
fn example_6_lambda_regimes() {
    let g = fig1_graph();
    let q = fig1_pattern();
    let sim = compute_simulation(&g, &q);
    assert_eq!(c_uo(&q, sim.space()), 11, "3 DBs + 4 PRGs + 4 STs");

    let optimal = |lambda: f64| {
        let r = gpm_core::topk_div::optimal_diversified(&g, &q, &DivConfig::new(2, lambda));
        (names(&g, &r.nodes()), r.f_value)
    };
    // (a) λ below 4/33: {PM2, PM3} (or PM4 — tied δr and distances).
    let (set, f) = optimal(0.05);
    assert!(set == ["PM2", "PM3"] || set == ["PM2", "PM4"], "got {set:?}");
    let expected = 0.95 * 14.0 / 11.0 + 2.0 * 0.05 * 0.25;
    assert!((f - expected).abs() < 1e-9);
    // (c) 4/33 < λ < 0.5: {PM1, PM2}.
    let (set, f) = optimal(0.3);
    assert_eq!(set, ["PM1", "PM2"]);
    let expected = 0.7 * 12.0 / 11.0 + 2.0 * 0.3 * (10.0 / 11.0);
    assert!((f - expected).abs() < 1e-9);
    // (e) λ above 0.5: {PM1, PM3} (or PM4).
    let (set, _) = optimal(0.7);
    assert!(set == ["PM1", "PM3"] || set == ["PM1", "PM4"], "got {set:?}");
}

/// Example 7: TopKDAG on the DAG pattern Q1 — the tight bounds (3/2/2/2)
/// and top-1 = PM2 with δr = 3, found with early termination.
#[test]
fn example_7_topkdag_q1() {
    let g = fig1_graph();
    let q1 = fig1_pattern_q1();
    let sim = compute_simulation(&g, &q1);
    let space = sim.space();

    let bounds =
        output_upper_bounds(&g, &q1, space, BoundStrategy::ProductReach, &BoundConfig::default());
    let h = |name: &str| bounds.h_of(space, &q1, node(&g, name)).unwrap();
    assert_eq!(h("PM2"), 3, "Cu(PM2) = |{{DB2, PRG3, PRG4}}|");
    assert_eq!(h("PM3"), 2, "Cu(PM3) = |{{DB2, PRG3}}|");
    assert_eq!(h("PM4"), 2);
    assert_eq!(h("PM1"), 2, "Cu(PM1) = |{{DB1, PRG1}}|");

    let r = top_k_dag(&g, &q1, &TopKConfig::new(1));
    assert_eq!(names(&g, &r.nodes()), vec!["PM2"]);
    assert_eq!(r.matches[0].relevance, 3);
    assert!(r.stats.early_terminated, "Prop. 3 fires before exhaustion");
    // Activating DB2 necessarily also confirms PM3/PM4 (they are ancestors
    // of the same leaf); the paper's claim is that PM1 is never inspected.
    assert!(
        r.stats.inspected_matches <= 3,
        "PM1 never inspected (got {})",
        r.stats.inspected_matches
    );
}

/// Example 8: TopK on the cyclic pattern — initial bounds 4/8/6/6,
/// top-2 = {PM2, PM3}, early termination.
#[test]
fn example_8_topk_cyclic() {
    let g = fig1_graph();
    let q = fig1_pattern();
    let sim = compute_simulation(&g, &q);
    let space = sim.space();

    let bounds =
        output_upper_bounds(&g, &q, space, BoundStrategy::ProductReach, &BoundConfig::default());
    let h = |name: &str| bounds.h_of(space, &q, node(&g, name)).unwrap();
    assert_eq!(h("PM1"), 4);
    assert_eq!(h("PM2"), 8);
    assert_eq!(h("PM3"), 6);
    assert_eq!(h("PM4"), 6);

    let r = top_k_cyclic(&g, &q, &TopKConfig::new(2));
    let got = names(&g, &r.nodes());
    assert!(got == ["PM2", "PM3"] || got == ["PM2", "PM4"], "got {got:?}");
    assert_eq!(r.matches[0].relevance, 8);
    assert_eq!(r.matches[1].relevance, 6);
    assert_eq!(r.total_relevance(), 14, "Example 4's top-2 total");
    assert!(r.stats.early_terminated);
    assert!(
        r.stats.inspected_matches < 4,
        "PM1 is never inspected (got {})",
        r.stats.inspected_matches
    );

    // Agreement with the Match baseline.
    let base = top_k_by_match(&g, &q, &TopKConfig::new(2));
    assert_eq!(base.total_relevance(), 14);
    assert_eq!(base.stats.total_matches, Some(4));
}

/// Example 9: TopKDiv at λ = 0.5 returns a pair with F = 16/11 ≈ 1.45
/// (the paper reports {PM1, PM3}; {PM1, PM2} and {PM1, PM4} tie exactly).
#[test]
fn example_9_topkdiv() {
    let g = fig1_graph();
    let q = fig1_pattern();
    let r = top_k_diversified(&g, &q, &DivConfig::new(2, 0.5));
    assert!((r.f_value - 16.0 / 11.0).abs() < 1e-9, "F = {}", r.f_value);
    let set = names(&g, &r.nodes());
    assert!(set == ["PM1", "PM2"] || set == ["PM1", "PM3"] || set == ["PM1", "PM4"], "got {set:?}");
    // 2-approximation sanity against the brute-force optimum.
    let opt = gpm_core::topk_div::optimal_diversified(&g, &q, &DivConfig::new(2, 0.5));
    assert!(r.f_value * 2.0 >= opt.f_value - 1e-9);
    assert!((opt.f_value - 16.0 / 11.0).abs() < 1e-9, "optimum is also 16/11");
}

/// Example 10: TopKDH at λ = 0.1 returns {PM2, PM3} with early termination;
/// the exact F of that set is 0.9·14/11 + 0.2·(1/4) ≈ 1.195.
#[test]
fn example_10_topkdh() {
    let g = fig1_graph();
    let q = fig1_pattern();
    let r = top_k_diversified_heuristic(&g, &q, &DivConfig::new(2, 0.1));
    let set = names(&g, &r.nodes());
    assert!(set == ["PM2", "PM3"] || set == ["PM2", "PM4"], "got {set:?}");
    let expected = 0.9 * 14.0 / 11.0 + 0.2 * 0.25;
    assert!((r.f_value - expected).abs() < 1e-9, "F = {}", r.f_value);
}

/// Exp-1 style sanity: MR of the early-terminating algorithm is below 1 on
/// the running example while Match inspects everything.
#[test]
fn match_ratio_reduction() {
    let g = fig1_graph();
    let q1 = fig1_pattern_q1();
    let base = top_k_by_match(&g, &q1, &TopKConfig::new(1));
    let total = base.stats.total_matches.unwrap();
    assert_eq!(total, 4);
    let fast = top_k_dag(&g, &q1, &TopKConfig::new(1));
    assert!(fast.stats.match_ratio(total) < 1.0);
    assert_eq!(base.stats.match_ratio(total), 1.0);
}
