//! # gpm-incremental
//!
//! Incremental maintenance of (diversified) top-k graph pattern matches
//! under graph updates.
//!
//! The paper targets social networks — graphs that change continuously —
//! yet its algorithms (and this repository's static pipeline) recompute
//! `M(Q,G)`, the relevant sets and the top-k from scratch per call. This
//! crate keeps all three **materialized** and pays cost proportional to
//! the delta:
//!
//! * the maximum simulation survives updates through
//!   [`gpm_simulation::IncSimState`] (counter cascades for deletions,
//!   localized revival regions for insertions, predicate re-evaluation of
//!   exactly the affected pattern nodes for attribute mutations — full
//!   `Predicate` trees are supported, not just labels);
//! * relevant sets survive through a [`gpm_ranking::RelevanceCache`];
//!   after each batch only matches whose `δr` could have changed —
//!   found by a backward sweep from the touched pairs — are re-derived;
//! * the top-k answer is re-ranked from the cache via
//!   [`gpm_core::rank_top_k`], and the diversified answer via
//!   [`gpm_core::greedy_diversified`], so results are **identical** to a
//!   from-scratch run on the updated graph (property-tested).
//!
//! Past a configurable dirtiness threshold incremental stops paying off
//! and [`DynamicMatcher`] falls back to a full recompute of the affected
//! layer — per layer: a huge delta rebuilds the simulation state, a dirty
//! ranking sweep rebuilds only the relevant sets.
//!
//! ```
//! use gpm_graph::{builder::graph_from_parts, GraphDelta};
//! use gpm_incremental::{DynamicMatcher, IncrementalConfig};
//! use gpm_pattern::builder::label_pattern;
//!
//! // Two authors (label 0) citing papers (label 1).
//! let g = graph_from_parts(&[0, 0, 1, 1], &[(0, 2), (1, 2), (1, 3)]).unwrap();
//! let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
//! let mut m = DynamicMatcher::new(&g, q, IncrementalConfig::new(2)).unwrap();
//! assert_eq!(m.top_k().nodes(), vec![1, 0]); // author 1 reaches 2 papers
//!
//! // A new paper appears and author 0 cites it: the ranking flips.
//! let top = m.apply(&GraphDelta::new().add_node(1).add_edge(0, 4)).unwrap();
//! assert_eq!(top.nodes(), vec![0, 1]);
//! ```

//! ## Multi-query serving
//!
//! One graph usually serves many query shapes at once. [`PatternRegistry`]
//! maintains N registered patterns over a **single** shared [`gpm_graph::DynGraph`]:
//! each delta batch mutates the graph once, a shared interest index prunes
//! the per-pattern fan-out (node labels and edge label-pairs for
//! structural ops, per-pattern attribute-key interest for
//! `SetAttr`/`UnsetAttr`), and the independent per-pattern ranking refreshes
//! run on a **persistent** worker pool (spawned once, parked between
//! batches) with a deterministic merge. [`PatternRegistry::apply`] surfaces
//! an [`AnswerChange`] — fresh answer plus entered/left/reordered change
//! set — per touched pattern, the hook the streaming serving layer
//! (`gpm-serving`) fans out to subscribers. Answers are bit-identical to N
//! independent [`DynamicMatcher`]s (differentially property-tested in
//! `tests/registry_differential.rs`).
//!
//! ```
//! use gpm_graph::{builder::graph_from_parts, GraphDelta};
//! use gpm_incremental::{IncrementalConfig, PatternRegistry};
//! use gpm_pattern::builder::label_pattern;
//!
//! let g = graph_from_parts(&[0, 0, 1, 1], &[(0, 2), (1, 2), (1, 3)]).unwrap();
//! let mut reg = PatternRegistry::new(&g);
//! let authors = reg.register(label_pattern(&[0, 1], &[(0, 1)], 0).unwrap(),
//!                            IncrementalConfig::new(2)).unwrap();
//! let papers = reg.register(label_pattern(&[1], &[], 0).unwrap(),
//!                           IncrementalConfig::new(3)).unwrap();
//!
//! // One batch, both answers refreshed.
//! reg.apply(&GraphDelta::new().add_node(1).add_edge(0, 4)).unwrap();
//! assert_eq!(reg.top_k(authors).unwrap().nodes(), vec![0, 1]);
//! assert_eq!(reg.top_k(papers).unwrap().nodes(), vec![2, 3, 4]);
//! ```

mod matcher;
mod pool;
mod registry;
mod state;

pub use matcher::{ApplyStats, DynamicMatcher, IncrementalConfig, IncrementalError};
pub use registry::{AnswerChange, PatternId, PatternInfo, PatternRegistry, RegistryStats};

// The maintained output-bound policy [`IncrementalConfig::bounds`] takes,
// re-exported so serving-layer configs need no direct gpm-ranking
// dependency.
pub use gpm_ranking::{BoundPolicy, BoundStrategy};

// The observability bundle [`PatternRegistry::set_telemetry`] /
// [`DynamicMatcher::set_telemetry`] accept, re-exported so incremental
// consumers need no direct gpm-telemetry dependency.
pub use gpm_telemetry::{Telemetry, TelemetryConfig};
