//! [`DynamicMatcher`]: materialized top-k matching under graph deltas.

use std::collections::HashSet;
use std::time::Instant;

use gpm_core::result::{rank_top_k, DivResult, RankedMatch, RunStats, TopKResult};
use gpm_core::topk_div::greedy_diversified;
use gpm_graph::dynamic::DynGraph;
use gpm_graph::{DiGraph, EffectiveOp, GraphDelta, GraphError, NodeId};
use gpm_pattern::{PNodeId, Pattern};
use gpm_ranking::objective::Objective;
use gpm_ranking::RelevanceCache;
use gpm_simulation::incremental::DynPair;
use gpm_simulation::IncSimState;

/// Configuration of a [`DynamicMatcher`].
#[derive(Debug, Clone)]
pub struct IncrementalConfig {
    /// Number of matches to return.
    pub k: usize,
    /// Trade-off `λ` used by [`DynamicMatcher::top_k_diversified`].
    pub lambda: f64,
    /// When one batch's effective edge churn exceeds this fraction of the
    /// graph's edges, the whole materialized state is rebuilt from scratch
    /// instead of replayed (replaying a rewrite-the-world delta costs more
    /// than refinement).
    pub max_delta_fraction: f64,
    /// When the backward dirtiness sweep touches more than this fraction
    /// of the candidate pairs, the relevant-set cache is rebuilt wholesale
    /// instead of entry by entry.
    pub max_dirty_fraction: f64,
}

impl IncrementalConfig {
    /// Defaults for a given `k` (`λ = 0.5`, rebuild past 20% edge churn or
    /// a 30% dirty sweep).
    pub fn new(k: usize) -> Self {
        IncrementalConfig { k, lambda: 0.5, max_delta_fraction: 0.2, max_dirty_fraction: 0.3 }
    }

    /// Same configuration with a different `λ`.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }
}

/// Errors from matcher construction and delta application.
#[derive(Debug)]
pub enum IncrementalError {
    /// The pattern uses attribute predicates; the dynamic path carries no
    /// node attributes, so only pure-label patterns are maintainable.
    UnsupportedPattern,
    /// The delta referenced nodes that do not exist (graph unchanged).
    Graph(GraphError),
}

impl std::fmt::Display for IncrementalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IncrementalError::UnsupportedPattern => {
                write!(f, "only pure-label patterns can be maintained incrementally")
            }
            IncrementalError::Graph(e) => write!(f, "delta rejected: {e}"),
        }
    }
}

impl std::error::Error for IncrementalError {}

impl From<GraphError> for IncrementalError {
    fn from(e: GraphError) -> Self {
        IncrementalError::Graph(e)
    }
}

/// Counters describing how the matcher has been maintaining its state —
/// the observability the delta-scaling bench and ops dashboards read.
#[derive(Debug, Clone, Default)]
pub struct ApplyStats {
    /// Batches applied.
    pub applies: u64,
    /// Batches handled fully incrementally.
    pub incremental_applies: u64,
    /// Batches that rebuilt simulation + ranking from scratch.
    pub full_rebuilds: u64,
    /// Batches that kept the simulation incremental but rebuilt every
    /// relevant set.
    pub full_rank_refreshes: u64,
    /// Relevant sets recomputed across all batches.
    pub sets_recomputed: u64,
    /// Candidate pairs visited by the last backward dirtiness sweep.
    pub last_swept_pairs: usize,
    /// Output matches invalidated by the last batch.
    pub last_dirty_outputs: usize,
}

/// A matcher that owns a graph + pattern and keeps the top-k answer fresh
/// across [`GraphDelta`] batches. See the crate docs for the architecture.
pub struct DynamicMatcher {
    graph: DynGraph,
    pattern: Pattern,
    cfg: IncrementalConfig,
    sim: IncSimState,
    cache: RelevanceCache,
    stats: ApplyStats,
}

impl DynamicMatcher {
    /// Materializes the state for `q` over `g`.
    pub fn new(g: &DiGraph, q: Pattern, cfg: IncrementalConfig) -> Result<Self, IncrementalError> {
        let graph = DynGraph::from_digraph(g);
        let sim = IncSimState::new(&graph, &q).ok_or(IncrementalError::UnsupportedPattern)?;
        let mut matcher = DynamicMatcher {
            cache: RelevanceCache::new(graph.node_count()),
            graph,
            pattern: q,
            cfg,
            sim,
            stats: ApplyStats::default(),
        };
        matcher.rebuild_cache();
        matcher.sim.take_dirty();
        Ok(matcher)
    }

    /// The maintained graph.
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// The pattern being served.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Maintenance counters.
    pub fn stats(&self) -> &ApplyStats {
        &self.stats
    }

    /// Immutable snapshot of the maintained graph (fallbacks, baselines,
    /// equivalence tests).
    pub fn snapshot(&self) -> DiGraph {
        self.graph.snapshot()
    }

    /// Applies one update batch and returns the fresh top-k answer.
    ///
    /// On error the graph and all maintained state are unchanged.
    pub fn apply(&mut self, delta: &GraphDelta) -> Result<TopKResult, IncrementalError> {
        let t0 = Instant::now();

        // Estimated churn of this batch, judged before touching anything:
        // every op changes at most one edge, except RemoveNode which drops
        // the node's whole incidence list. A heuristic, not a bound:
        // self-loops and edges an earlier op already removed are counted
        // twice, while edges added and then dropped by a later RemoveNode
        // of the same batch are undercounted (RemoveNode sees pre-batch
        // degrees). A borderline batch can land on either side of the
        // threshold — that costs time, never correctness.
        let worst_churn: usize = delta
            .ops
            .iter()
            .map(|op| match *op {
                gpm_graph::DeltaOp::RemoveNode(v) if (v as usize) < self.graph.node_count() => {
                    (self.graph.successors(v).count() + self.graph.predecessors(v).count()).max(1)
                }
                _ => 1,
            })
            .sum();
        let big = worst_churn as f64
            > self.cfg.max_delta_fraction * (self.graph.edge_count().max(1) as f64);

        if big {
            // Whole-state rebuild: apply the batch graph-only, then refine
            // from scratch and refill the cache.
            self.graph.apply(delta)?;
            self.stats.applies += 1; // rejected batches are not applies
            self.sim = IncSimState::new(&self.graph, &self.pattern)
                .expect("pattern validated at construction");
            self.rebuild_cache();
            self.sim.take_dirty();
            self.stats.full_rebuilds += 1;
            return Ok(self.top_k_timed(t0));
        }

        // Incremental path: replay each effective mutation through the
        // simulation state in lockstep with the graph.
        let sim = &mut self.sim;
        let q = &self.pattern;
        let applied = self.graph.apply_with(delta, |g, eff| match eff {
            EffectiveOp::NodeAdded(v, _) => sim.on_node_added(g, q, v),
            EffectiveOp::EdgeAdded(s, t) => sim.on_edge_inserted(g, q, s, t),
            EffectiveOp::EdgeRemoved(s, t) => sim.on_edge_removed(g, q, s, t),
            EffectiveOp::NodeRemoved(v) => sim.on_node_removed(q, v),
        })?;
        self.stats.applies += 1; // rejected batches are not applies

        // Seeds of the dirtiness sweep: every alive-flip, plus the source
        // pairs of every changed data edge (an edge between two alive pairs
        // changes match-graph reachability without flipping anybody).
        // Target candidacy is tested with the ever-candidate map, not the
        // valid flag: for edges dropped by a node tombstone the target's
        // valid flag is already cleared by the time this runs, but the
        // surviving source pairs still lost a relevant descendant. Sources
        // tombstoned in the same batch need no seed of their own — their
        // incoming edges were removed too, seeding every live ancestor.
        let mut seeds: Vec<DynPair> = self.sim.take_dirty();
        for &(v, w) in applied.added_edges.iter().chain(&applied.removed_edges) {
            for u in self.pattern.nodes() {
                if !self.sim.is_candidate(u, v) {
                    continue;
                }
                let touches =
                    self.pattern.successors(u).iter().any(|&uc| self.sim.ever_candidate(uc, w));
                if touches {
                    seeds.push((u, v));
                }
            }
        }
        self.cache.ensure_width(self.graph.node_count());

        if seeds.is_empty() {
            self.stats.incremental_applies += 1;
            self.stats.last_swept_pairs = 0;
            self.stats.last_dirty_outputs = 0;
            return Ok(self.top_k_timed(t0));
        }

        // Backward sweep: every valid candidate pair that can reach a seed
        // in the candidate-pair graph (alive-agnostic — old paths may run
        // through freshly dead pairs) might have gained or lost relevant
        // descendants.
        let uo = self.pattern.output();
        let total_pairs: usize = self.pattern.nodes().map(|u| self.sim.candidate_count(u)).sum();
        let sweep_cap = (self.cfg.max_dirty_fraction * total_pairs.max(1) as f64).ceil() as usize;
        let mut visited: HashSet<DynPair> = seeds.iter().copied().collect();
        let mut queue: Vec<DynPair> = visited.iter().copied().collect();
        let mut overflow = false;
        let mut cursor = 0;
        while cursor < queue.len() {
            if visited.len() > sweep_cap {
                overflow = true;
                break;
            }
            let (u, x) = queue[cursor];
            cursor += 1;
            for &t in self.pattern.predecessors(u) {
                for y in self.graph.predecessors(x) {
                    if self.sim.is_candidate(t, y) && visited.insert((t, y)) {
                        queue.push((t, y));
                    }
                }
            }
        }
        self.stats.last_swept_pairs = visited.len();

        if overflow {
            // The affected region is most of the graph: rebuild the whole
            // cache (simulation stays incremental — it already converged).
            self.rebuild_cache();
            self.stats.full_rank_refreshes += 1;
            return Ok(self.top_k_timed(t0));
        }

        // Partial refresh: re-derive only the affected output matches.
        let dirty_outputs: Vec<NodeId> =
            visited.iter().filter(|&&(u, _)| u == uo).map(|&(_, v)| v).collect();
        self.stats.last_dirty_outputs = dirty_outputs.len();
        for v in dirty_outputs {
            if self.sim.pair_alive(uo, v) {
                let set = self.relevant_set_bfs(v);
                self.cache.upsert(v, set);
                self.stats.sets_recomputed += 1;
            } else {
                self.cache.remove(v);
            }
        }
        self.stats.incremental_applies += 1;
        Ok(self.top_k_timed(t0))
    }

    /// The current top-k by relevance — identical to running
    /// `top_k_by_match`/`top_k_cyclic` on [`Self::snapshot`].
    pub fn top_k(&self) -> TopKResult {
        self.top_k_timed(Instant::now())
    }

    /// The current diversified top-k (`λ` from the config) — identical to
    /// running `top_k_diversified` on [`Self::snapshot`].
    pub fn top_k_diversified(&self) -> DivResult {
        self.diversified(self.cfg.lambda)
    }

    /// As [`Self::top_k_diversified`] with an explicit `λ`.
    pub fn diversified(&self, lambda: f64) -> DivResult {
        let t0 = Instant::now();
        let q = &self.pattern;
        if !self.sim.graph_matches(q) {
            // Mirror the static pipeline's stats: Mu(Q,G,uo) = ∅, known.
            return DivResult {
                matches: Vec::new(),
                f_value: 0.0,
                stats: RunStats {
                    output_candidates: self.sim.candidate_count(q.output()),
                    total_matches: Some(0),
                    elapsed: t0.elapsed(),
                    ..Default::default()
                },
            };
        }
        // Same objective as the static pipeline: Cuo sums |can(u')| over
        // query nodes reachable from the output.
        let c_uo: u64 = q
            .reachable_from_output()
            .iter()
            .map(|u| self.sim.candidate_count(u as PNodeId) as u64)
            .sum();
        let objective = Objective::new(lambda, self.cfg.k, c_uo);
        let (matches, rel): (Vec<NodeId>, Vec<f64>) =
            self.cache.relevances().map(|(v, r)| (v, r as f64)).unzip();
        let d = |i: usize, j: usize| self.cache.distance(matches[i], matches[j]).expect("cached");
        let (selected, f_value) = greedy_diversified(&objective, &rel, &d);
        let picked: Vec<RankedMatch> = selected
            .iter()
            .map(|&i| RankedMatch { node: matches[i], relevance: rel[i] as u64 })
            .collect();
        DivResult {
            matches: picked,
            f_value,
            stats: RunStats {
                output_candidates: self.sim.candidate_count(q.output()),
                inspected_matches: matches.len(),
                total_matches: Some(matches.len()),
                elapsed: t0.elapsed(),
                ..Default::default()
            },
        }
    }

    // ---------------------------------------------------------- internals

    fn top_k_timed(&self, t0: Instant) -> TopKResult {
        let q = &self.pattern;
        // Under the paper's emptiness rule Mu(Q,G,uo) = ∅ even though the
        // cache stays structurally maintained — report stats the way the
        // static pipeline would (total known to be 0).
        let (matches, total) = if self.sim.graph_matches(q) {
            (rank_top_k(self.cache.relevances(), self.cfg.k), self.cache.len())
        } else {
            (Vec::new(), 0)
        };
        TopKResult {
            matches,
            stats: RunStats {
                output_candidates: self.sim.candidate_count(q.output()),
                inspected_matches: total,
                total_matches: Some(total),
                waves: 1,
                early_terminated: false,
                elapsed: t0.elapsed(),
                ..Default::default()
            },
        }
    }

    /// Relevant set of output match `v` by forward BFS over the alive
    /// match graph (adjacency derived on the fly from the dynamic graph
    /// and the simulation state). Strict reachability: seeded from the
    /// pair's successors, so `v` itself only enters through a cycle.
    fn relevant_set_bfs(&self, v: NodeId) -> Vec<usize> {
        let q = &self.pattern;
        let uo = q.output();
        let mut visited: HashSet<DynPair> = HashSet::new();
        let mut queue: Vec<DynPair> = Vec::new();
        let push_children =
            |from: DynPair, visited: &mut HashSet<DynPair>, queue: &mut Vec<DynPair>| {
                let (u, x) = from;
                for &uc in q.successors(u) {
                    for w in self.graph.successors(x) {
                        if self.sim.pair_alive(uc, w) && visited.insert((uc, w)) {
                            queue.push((uc, w));
                        }
                    }
                }
            };
        push_children((uo, v), &mut visited, &mut queue);
        let mut cursor = 0;
        while cursor < queue.len() {
            let p = queue[cursor];
            cursor += 1;
            push_children(p, &mut visited, &mut queue);
        }
        let nodes: HashSet<usize> = visited.iter().map(|&(_, x)| x as usize).collect();
        let mut out: Vec<usize> = nodes.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Recomputes every output match's relevant set.
    fn rebuild_cache(&mut self) {
        self.cache = RelevanceCache::new(self.graph.node_count());
        let q = &self.pattern;
        for v in self.sim.structural_matches_of(q.output()) {
            let set = self.relevant_set_bfs(v);
            self.cache.upsert(v, set);
            self.stats.sets_recomputed += 1;
        }
    }
}
