//! [`DynamicMatcher`]: materialized top-k matching under graph deltas.

use std::time::Instant;

use gpm_core::result::{AnswerDiff, DivResult, TopKResult};
use gpm_graph::dynamic::DynGraph;
use gpm_graph::{DiGraph, GraphDelta, GraphError};
use gpm_pattern::Pattern;
use gpm_ranking::{BoundPolicy, ReachConfig};
use gpm_telemetry::{names, Telemetry};

use crate::state::{worst_churn, PatternState};

/// Configuration of a [`DynamicMatcher`] (and of each pattern registered
/// in a [`PatternRegistry`](crate::PatternRegistry)).
#[derive(Debug, Clone)]
pub struct IncrementalConfig {
    /// Number of matches to return.
    pub k: usize,
    /// Trade-off `λ` used by [`DynamicMatcher::top_k_diversified`].
    pub lambda: f64,
    /// When one batch's effective edge churn exceeds this fraction of the
    /// graph's edges, the whole materialized state is rebuilt from scratch
    /// instead of replayed (replaying a rewrite-the-world delta costs more
    /// than refinement).
    pub max_delta_fraction: f64,
    /// When the backward dirtiness sweep touches more than this fraction
    /// of the candidate pairs, the relevant-set cache is rebuilt wholesale
    /// instead of entry by entry.
    pub max_dirty_fraction: f64,
    /// When one batch's pair churn (alive flips + effective edge changes)
    /// exceeds this fraction of the alive pairs, the maintained
    /// condensation is dropped for the per-batch reach-engine pipeline
    /// (and re-adopted on the next calm batch): in-place SCC maintenance
    /// only pays off while the touched region is small. An absolute floor
    /// keeps small graphs maintaining regardless.
    pub max_cond_churn_fraction: f64,
    /// Memory / thread policy of the shared reach engine when deriving
    /// relevant sets — the same [`ReachConfig`] the static pipeline
    /// honors; past the byte budget, dirty-set materialization degrades
    /// to per-source BFS instead of the condensation DP.
    pub reach: ReachConfig,
    /// Policy of the maintained output-bound index riding the
    /// incremental condensation: whether refresh planning may skip
    /// materializing outputs whose upper bound cannot displace the k-th
    /// answer, and when the per-batch refold gives up and recounts.
    pub bounds: BoundPolicy,
}

impl IncrementalConfig {
    /// Defaults for a given `k` (`λ = 0.5`, rebuild past 20% edge churn or
    /// a 30% dirty sweep, drop the maintained condensation past 12.5% pair
    /// churn, default reach-engine budget).
    pub fn new(k: usize) -> Self {
        IncrementalConfig {
            k,
            lambda: 0.5,
            max_delta_fraction: 0.2,
            max_dirty_fraction: 0.3,
            max_cond_churn_fraction: 0.125,
            reach: ReachConfig::default(),
            bounds: BoundPolicy::default(),
        }
    }

    /// Same configuration with a different `λ`.
    pub fn lambda(mut self, lambda: f64) -> Self {
        self.lambda = lambda;
        self
    }
}

/// Errors from matcher construction and delta application.
#[derive(Debug)]
pub enum IncrementalError {
    /// The pattern exceeds the candidate-bitmask width (64 pattern nodes).
    /// Attribute predicates are fully supported — `SetAttr`/`UnsetAttr`
    /// deltas flip candidacy incrementally.
    UnsupportedPattern,
    /// The delta referenced nodes that do not exist (graph unchanged).
    Graph(GraphError),
}

impl std::fmt::Display for IncrementalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IncrementalError::UnsupportedPattern => {
                write!(f, "patterns with more than 64 nodes cannot be maintained incrementally")
            }
            IncrementalError::Graph(e) => write!(f, "delta rejected: {e}"),
        }
    }
}

impl std::error::Error for IncrementalError {}

impl From<GraphError> for IncrementalError {
    fn from(e: GraphError) -> Self {
        IncrementalError::Graph(e)
    }
}

/// Counters describing how one pattern's state has been maintained —
/// the observability the delta-scaling bench and ops dashboards read.
#[derive(Debug, Clone, Default)]
pub struct ApplyStats {
    /// Batches applied.
    pub applies: u64,
    /// Batches handled fully incrementally.
    pub incremental_applies: u64,
    /// Batches that rebuilt simulation + ranking from scratch.
    pub full_rebuilds: u64,
    /// Batches that kept the simulation incremental but rebuilt every
    /// relevant set.
    pub full_rank_refreshes: u64,
    /// Relevant sets recomputed across all batches.
    pub sets_recomputed: u64,
    /// Batches whose condensation was maintained incrementally (bounded
    /// region re-Tarjan / DAG probe, not a from-scratch condensation).
    pub cond_incremental: u64,
    /// Full re-condensations of the maintained reach state — policy
    /// fallbacks (probe/region overflow), width migrations and churn
    /// rebuilds. Zero when the budget keeps maintained mode off.
    pub cond_rebuilds: u64,
    /// Output materializations skipped across all batches because the
    /// maintained upper bound proved they cannot displace the k-th
    /// answer.
    pub pruned_outputs: u64,
    /// Batches whose maintained bound index was refolded incrementally
    /// over the condensation's recomputed components.
    pub bound_refolds: u64,
    /// From-scratch rebuilds of the maintained bound index — churn-gate
    /// recounts, condensation fallbacks/width migrations, and full
    /// rebuilds while bounds were on. Attr-only and tombstone-only
    /// batches must never increment this.
    pub bound_rebuilds: u64,
    /// Candidate pairs visited by the last backward dirtiness sweep.
    pub last_swept_pairs: usize,
    /// Output matches invalidated by the last batch.
    pub last_dirty_outputs: usize,
    /// Outputs the last batch's refresh plan pruned via bounds.
    pub last_pruned_outputs: usize,
    /// Wall nanoseconds the last batch spent refolding the bound index
    /// (0 when the batch refolded nothing).
    pub last_bound_refold_ns: u64,
    /// Bound-index rebuilds charged to the last batch.
    pub last_bound_rebuilds: u64,
    /// Wall nanoseconds of the last served refresh, batch ingress to
    /// answer — what `/patterns` reports as the last refresh latency.
    pub last_refresh_ns: u64,
}

/// A matcher that owns a graph + pattern and keeps the top-k answer fresh
/// across [`GraphDelta`] batches. See the crate docs for the architecture.
///
/// Internally this is one [`PatternState`] married to its own [`DynGraph`];
/// to serve many patterns over a single shared graph, use a
/// [`PatternRegistry`](crate::PatternRegistry) instead.
pub struct DynamicMatcher {
    graph: DynGraph,
    state: PatternState,
    /// [`Telemetry::off`] unless attached — a standalone matcher costs
    /// nothing until someone wants its traces.
    telemetry: Telemetry,
}

impl DynamicMatcher {
    /// Materializes the state for `q` over `g`.
    pub fn new(g: &DiGraph, q: Pattern, cfg: IncrementalConfig) -> Result<Self, IncrementalError> {
        let graph = DynGraph::from_digraph(g);
        let state = PatternState::new(&graph, q, cfg)?;
        Ok(DynamicMatcher { graph, state, telemetry: Telemetry::off() })
    }

    /// Attaches a shared [`Telemetry`] bundle; each subsequent apply
    /// records one batch trace (`apply` root with `plan`/`prepare`/
    /// `extract` children) and the corresponding phase histograms.
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        self.telemetry = telemetry;
    }

    /// The attached observability bundle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The maintained graph.
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// The pattern being served.
    pub fn pattern(&self) -> &Pattern {
        self.state.pattern()
    }

    /// Maintenance counters.
    pub fn stats(&self) -> &ApplyStats {
        self.state.stats()
    }

    /// Immutable snapshot of the maintained graph (fallbacks, baselines,
    /// equivalence tests).
    pub fn snapshot(&self) -> DiGraph {
        self.graph.snapshot()
    }

    /// Applies one update batch and returns the fresh top-k answer.
    ///
    /// On error the graph and all maintained state are unchanged.
    pub fn apply(&mut self, delta: &GraphDelta) -> Result<TopKResult, IncrementalError> {
        self.apply_diffed(delta).map(|(top, _)| top)
    }

    /// As [`Self::apply`], also returning the [`AnswerDiff`] against the
    /// answer served before the batch (empty ⇔ the top-k did not
    /// materially change) — what a push consumer forwards to subscribers.
    pub fn apply_diffed(
        &mut self,
        delta: &GraphDelta,
    ) -> Result<(TopKResult, AnswerDiff), IncrementalError> {
        let t0 = Instant::now();
        let root = self.telemetry.root_span("apply");

        let out = (|| {
            let churn = worst_churn(&self.graph, delta);
            if self.state.needs_rebuild(churn, self.graph.edge_count()) {
                // Whole-state rebuild: apply the batch graph-only, then
                // refine from scratch and refill the cache.
                root.event("churn-rebuild");
                self.graph.apply(delta)?;
                self.state.note_apply(); // rejected batches are not applies
                let plan = self.state.rebuild(&self.graph);
                self.state.materialize(&self.graph, &plan);
                return Ok(self.state.serve_timed(t0));
            }

            // Incremental path: replay each effective mutation through the
            // simulation state in lockstep with the graph.
            let state = &mut self.state;
            let applied = {
                let _replay = root.child("replay");
                self.graph.apply_with(delta, |g, eff| state.replay(g, eff))?
            };
            state.note_apply(); // rejected batches are not applies
            state.refresh_ranking_traced(&self.graph, &applied, &root);
            Ok(state.serve_timed(t0))
        })();
        if out.is_ok() {
            self.record_bound_metrics();
        }
        self.telemetry.finish_batch(root, self.state.stats().applies);
        out
    }

    /// Folds the last batch's bound-index accounting into the attached
    /// metrics (counters record even when telemetry is disabled).
    fn record_bound_metrics(&self) {
        let stats = self.state.stats();
        let m = self.telemetry.metrics();
        if stats.last_bound_refold_ns > 0 {
            m.histogram(names::BOUNDS_REFOLD_SECONDS).record_ns(stats.last_bound_refold_ns);
        }
        if stats.last_pruned_outputs > 0 {
            m.counter(names::BOUNDS_PRUNED).add(stats.last_pruned_outputs as u64);
        }
        if stats.last_bound_rebuilds > 0 {
            m.counter(names::BOUNDS_REBUILDS).add(stats.last_bound_rebuilds);
        }
    }

    /// The current top-k by relevance — identical to running
    /// `top_k_by_match`/`top_k_cyclic` on [`Self::snapshot`].
    pub fn top_k(&self) -> TopKResult {
        self.state.top_k()
    }

    /// The current diversified top-k (`λ` from the config) — identical to
    /// running `top_k_diversified` on [`Self::snapshot`]. Takes `&mut
    /// self`: a bound-pruned backlog must materialize first, since the
    /// diversity term needs every match's relevant set.
    pub fn top_k_diversified(&mut self) -> DivResult {
        let lambda = self.state.cfg().lambda;
        self.state.diversified(&self.graph, lambda)
    }

    /// As [`Self::top_k_diversified`] with an explicit `λ`.
    pub fn diversified(&mut self, lambda: f64) -> DivResult {
        self.state.diversified(&self.graph, lambda)
    }

    /// The active bound-index mode: `"per-component"`, `"global"`, or
    /// `"off"` (disabled, or the maintained reach state is down).
    pub fn bound_mode(&self) -> &'static str {
        self.state.bound_mode()
    }

    /// The normalizer `Cuo` currently feeding the diversified objective —
    /// maintained incrementally, but by the same
    /// [`gpm_ranking::objective::c_uo_with`] definition the static
    /// pipeline evaluates, so the two can be drift-checked.
    pub fn normalizer(&self) -> u64 {
        self.state.normalizer()
    }

    /// Test access to the maintained state (the DP ≡ BFS oracle).
    #[cfg(test)]
    pub(crate) fn state(&self) -> &PatternState {
        &self.state
    }

    /// Differential-oracle hook for test harnesses: panics when the
    /// maintained pair view or condensation diverges from a from-scratch
    /// build (no-op while the budget keeps maintained mode off).
    #[doc(hidden)]
    pub fn check_maintained(&self) {
        self.state.check_maintained(&self.graph);
    }
}
