//! [`WorkerPool`]: a persistent indexed-task pool for per-batch fan-out.
//!
//! The registry's phase-2 ranking refreshes are independent per pattern,
//! so they parallelize trivially — but spawning OS threads per batch
//! (`std::thread::scope`, the PR 2 approach) pays thread creation and
//! teardown on *every* delta, which dominates at serving batch rates.
//! This pool spawns its workers **once**, parks them on a condvar, and
//! hands each batch an indexed job: workers claim indices `0..items` from
//! a shared cursor, run the job closure on each, and go back to sleep.
//! Determinism is unaffected — the pool only decides *who* runs an index,
//! never what order results are merged in (callers merge by index).
//!
//! Safety model: [`WorkerPool::run`] smuggles the borrowed job closure to
//! the workers as a `'static` reference (one contained `transmute`), and
//! does not return until every claimed index has **finished** executing —
//! workers only dereference the closure between claiming an index and
//! reporting it complete, and no index can be claimed after the job is
//! cleared. The closure therefore never outlives the `run` call that
//! borrowed it; this is the same contract `std::thread::scope` enforces,
//! kept across a pool that outlives any single scope.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Task = dyn Fn(usize) + Sync;

struct Job {
    /// The borrowed closure, lifetime-erased; valid until `run` returns.
    task: &'static Task,
    /// Next unclaimed index.
    next: usize,
    /// One past the last index.
    items: usize,
    /// Indices whose execution has finished (panicked ones included — a
    /// crash must never leave `run` waiting forever).
    completed: usize,
    /// Whether any task invocation panicked; `run` re-raises.
    panicked: bool,
}

#[derive(Default)]
struct PoolState {
    job: Option<Job>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    /// Workers park here; signaled on new jobs and shutdown.
    work: Condvar,
    /// `run` parks here; signaled when a job's last index completes.
    done: Condvar,
    /// Occupancy accounting (always on — two relaxed atomics per task):
    /// total nanoseconds workers spent inside task closures, and the
    /// total number of task invocations. Telemetry reads these through
    /// [`WorkerPool::busy_nanos`] / [`WorkerPool::tasks_run`].
    busy_ns: AtomicU64,
    tasks: AtomicU64,
}

/// A fixed-size pool executing indexed jobs. See the module docs.
pub(crate) struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns `workers` threads (at least 1), parked until the first job.
    pub(crate) fn new(workers: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState::default()),
            work: Condvar::new(),
            done: Condvar::new(),
            busy_ns: AtomicU64::new(0),
            tasks: AtomicU64::new(0),
        });
        let workers = (1..=workers.max(1))
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("gpm-registry-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn registry worker")
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// Number of worker threads.
    pub(crate) fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Total nanoseconds workers have spent executing task closures
    /// since the pool was created — divided by `workers() · wall time`,
    /// this is the pool's occupancy.
    pub(crate) fn busy_nanos(&self) -> u64 {
        self.shared.busy_ns.load(Ordering::Relaxed)
    }

    /// Total task invocations executed since the pool was created.
    pub(crate) fn tasks_run(&self) -> u64 {
        self.shared.tasks.load(Ordering::Relaxed)
    }

    /// Items of the current job not yet completed — 0 between jobs. A
    /// point-in-time sample (the snapshot-time queue-depth gauge); the
    /// pool is busy exactly while this is nonzero.
    pub(crate) fn queued_items(&self) -> usize {
        let st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        st.job.as_ref().map_or(0, |j| j.items - j.completed)
    }

    /// Runs `task(i)` for every `i in 0..items` across the pool, returning
    /// once **all** invocations have finished. The caller's thread only
    /// coordinates (the pool is sized to the parallelism wanted).
    pub(crate) fn run(&self, items: usize, task: &(impl Fn(usize) + Sync)) {
        if items == 0 {
            return;
        }
        // SAFETY: the reference is only dereferenced by workers between
        // claiming an index and marking it complete; we block below until
        // `completed == items` and clear the job before returning, so no
        // dereference can happen after this borrow ends.
        let task: &(dyn Fn(usize) + Sync) = task;
        let task: &'static Task =
            unsafe { std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static Task>(task) };
        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        debug_assert!(st.job.is_none(), "one job at a time");
        st.job = Some(Job { task, next: 0, items, completed: 0, panicked: false });
        drop(st);
        self.shared.work.notify_all();

        let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
        while st.job.as_ref().is_some_and(|j| j.completed < j.items) {
            st = self.shared.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        let panicked = st.job.take().is_some_and(|j| j.panicked);
        drop(st);
        if panicked {
            // Mirror std::thread::scope: a crashed task surfaces at the
            // caller instead of wedging the pool (which stays usable).
            panic!("a worker-pool task panicked");
        }
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock().unwrap_or_else(|e| e.into_inner());
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    let mut st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
    loop {
        if st.shutdown {
            return;
        }
        // Claim the next index of the current job, if any remain.
        let claim = st.job.as_mut().and_then(|j| {
            (j.next < j.items).then(|| {
                let i = j.next;
                j.next += 1;
                (j.task, i)
            })
        });
        match claim {
            Some((task, i)) => {
                drop(st);
                // A panicking task must still count as completed, or the
                // coordinator waits forever; the panic is recorded and
                // re-raised by `run`, and this worker keeps serving.
                let started = std::time::Instant::now();
                let crashed =
                    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| task(i))).is_err();
                let busy = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                shared.busy_ns.fetch_add(busy, Ordering::Relaxed);
                shared.tasks.fetch_add(1, Ordering::Relaxed);
                st = shared.state.lock().unwrap_or_else(|e| e.into_inner());
                if let Some(j) = st.job.as_mut() {
                    j.completed += 1;
                    j.panicked |= crashed;
                    if j.completed == j.items {
                        shared.done.notify_all();
                    }
                }
            }
            None => {
                st = shared.work.wait(st).unwrap_or_else(|e| e.into_inner());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn runs_every_index_exactly_once_across_batches() {
        let pool = WorkerPool::new(3);
        assert_eq!(pool.workers(), 3);
        for round in 0..50 {
            let n = 1 + round % 17;
            let hits: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
            pool.run(n, &|i| {
                hits[i].fetch_add(1, Ordering::SeqCst);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1), "round {round}");
        }
        pool.run(0, &|_| panic!("empty jobs never dispatch"));
    }

    #[test]
    fn results_can_be_merged_deterministically() {
        let pool = WorkerPool::new(4);
        let out: Vec<Mutex<Option<usize>>> = (0..100).map(|_| Mutex::new(None)).collect();
        pool.run(100, &|i| {
            *out[i].lock().unwrap() = Some(i * i);
        });
        let merged: Vec<usize> = out.iter().map(|m| m.lock().unwrap().expect("all ran")).collect();
        assert_eq!(merged, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn occupancy_counters_accumulate() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.tasks_run(), 0);
        pool.run(8, &|_| {
            std::thread::sleep(std::time::Duration::from_millis(1));
        });
        assert_eq!(pool.tasks_run(), 8);
        assert!(pool.busy_nanos() >= 8_000_000, "8 tasks × ≥1ms each");
    }

    #[test]
    fn queued_items_tracks_the_current_job() {
        let pool = WorkerPool::new(2);
        assert_eq!(pool.queued_items(), 0, "idle pool has no queue");
        let seen = AtomicUsize::new(0);
        pool.run(4, &|_| {
            seen.fetch_max(pool.queued_items(), Ordering::SeqCst);
        });
        assert!(seen.load(Ordering::SeqCst) >= 1, "mid-job depth is visible");
        assert_eq!(pool.queued_items(), 0, "drained after run returns");
    }

    #[test]
    fn drop_shuts_workers_down() {
        let pool = WorkerPool::new(2);
        pool.run(5, &|_| {});
        drop(pool); // joins without deadlock
    }

    #[test]
    fn task_panic_propagates_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let crashed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.run(4, &|i| {
                if i == 2 {
                    panic!("boom");
                }
            });
        }));
        assert!(crashed.is_err(), "run re-raises the task panic");
        // The pool is still serviceable afterwards.
        let hits: Vec<AtomicUsize> = (0..6).map(|_| AtomicUsize::new(0)).collect();
        pool.run(6, &|i| {
            hits[i].fetch_add(1, Ordering::SeqCst);
        });
        assert!(hits.iter().all(|h| h.load(Ordering::SeqCst) == 1));
    }
}
