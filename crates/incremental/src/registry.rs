//! [`PatternRegistry`]: many patterns maintained over **one** dynamic graph.
//!
//! A serving system rarely answers a single query shape: N registered
//! patterns watch the same evolving graph. Running N independent
//! [`DynamicMatcher`](crate::DynamicMatcher)s works, but wastes the work
//! they would share — each one mirrors the whole graph, applies every
//! delta to its private copy, and replays every mutation through its own
//! simulation even when the mutation provably cannot touch its pattern.
//!
//! The registry amortizes all three:
//!
//! * **one graph**: a single [`DynGraph`] is mutated per batch; per-pattern
//!   state follows it by reference (the
//!   [`PatternState`](crate::state::PatternState) layer is graph-agnostic);
//! * **one shared candidate index**: the graph's label index plus each
//!   pattern's interest sets let the fan-out skip replaying mutations
//!   that provably cannot touch it — structural ops whose labels the
//!   pattern never names, and attribute ops on keys none of its
//!   predicates mention — the *shared-index hit rate* in
//!   [`RegistryStats`] reports how much that saves;
//! * **parallel ranking maintenance**: after the (inherently sequential)
//!   lockstep replay, per-pattern dirtiness sweeps and relevant-set
//!   refreshes are independent, so they are dispatched across a small
//!   thread pool and merged back in registration order — answers are
//!   deterministic regardless of interleaving because no worker touches
//!   another pattern's state.
//!
//! Answers are **bit-identical** to N independent matchers and to the
//! static pipeline on a snapshot (property-tested by
//! `tests/registry_differential.rs`).

use gpm_core::result::{AnswerDiff, DivResult, TopKResult};
use gpm_graph::dynamic::DynGraph;
use gpm_graph::{BitSet, DiGraph, GraphDelta, Label};
use gpm_pattern::Pattern;
use gpm_telemetry::{names, Counter, Gauge, Histogram, Span, Telemetry};
use parking_lot::Mutex;

use crate::matcher::{ApplyStats, IncrementalConfig, IncrementalError};
use crate::pool::WorkerPool;
use crate::state::{removed_label_map, worst_churn, PatternState, PreparedSets, RefreshPlan};

/// Stable handle of a registered pattern. Ids are never reused, so a
/// handle kept across a deregistration simply stops resolving.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PatternId(u64);

impl std::fmt::Display for PatternId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pattern#{}", self.0)
    }
}

/// Registry-level maintenance counters: the multi-pattern extension of the
/// per-pattern [`ApplyStats`]. Since the telemetry PR this is a
/// **snapshot** assembled from the registry's [`Telemetry`] counters —
/// the same cells `render()`/`snapshot()` expose — so the struct and the
/// exposition can never disagree.
#[derive(Debug, Clone, Default)]
pub struct RegistryStats {
    /// Batches applied to the shared graph.
    pub batches: u64,
    /// Patterns ever registered.
    pub registrations: u64,
    /// Patterns deregistered.
    pub deregistrations: u64,
    /// Effective mutations replayed into some pattern's simulation.
    pub ops_replayed: u64,
    /// Effective mutations skipped for some pattern because the shared
    /// label index proved them irrelevant to it.
    pub ops_skipped: u64,
    /// Patterns whose state the last batch actually touched (replayed at
    /// least one mutation into, or rebuilt).
    pub last_patterns_touched: usize,
    /// Patterns the last batch rebuilt wholesale (per-pattern churn
    /// threshold exceeded).
    pub last_rebuilds: usize,
    /// Phase-2b split **decisions**: refreshes of a single pattern whose
    /// prepared extraction was chunked across the pool. Deterministic for
    /// a given workload — counted when the decision is taken, not when a
    /// second worker happens to be observed (that scheduling-dependent
    /// count is [`Self::observed_multi_worker_refreshes`]).
    pub intra_pattern_splits: u64,
    /// Chunked refreshes whose chunks were *observed* on ≥ 2 distinct
    /// pool workers — the stronger, scheduling-dependent proof that a
    /// split actually ran multi-threaded. On an idle pool one worker may
    /// legally claim every chunk, so this can lag the decision counter.
    pub observed_multi_worker_refreshes: u64,
    /// Patterns the last batch chunked across the pool (whether or not
    /// ≥ 2 workers ended up claiming chunks).
    pub last_intra_splits: usize,
}

impl RegistryStats {
    /// Fraction of (mutation × pattern) fan-out edges the shared index
    /// pruned; 0.0 before any batch. High values mean the registry is
    /// doing the per-pattern work N independent matchers would all repeat.
    pub fn shared_index_hit_rate(&self) -> f64 {
        let total = self.ops_replayed + self.ops_skipped;
        if total == 0 {
            0.0
        } else {
            self.ops_skipped as f64 / total as f64
        }
    }
}

struct Slot {
    id: PatternId,
    /// Interior mutability so phase-2 workers can refresh disjoint slots
    /// through a shared borrow of the slot list.
    state: Mutex<PatternState>,
}

/// The registry's metric handles, resolved once per attached
/// [`Telemetry`]. Counters/gauges record unconditionally (they are the
/// cells behind [`RegistryStats`]); only histograms and spans honor the
/// telemetry enabled flag.
struct RegistryCounters {
    batches: Counter,
    registrations: Counter,
    deregistrations: Counter,
    ops_replayed: Counter,
    ops_skipped: Counter,
    intra_splits: Counter,
    multi_worker: Counter,
    last_touched: Gauge,
    last_rebuilds: Gauge,
    last_intra_splits: Gauge,
    pool_busy_nanos: Gauge,
    pool_tasks: Gauge,
    bounds_pruned: Counter,
    bounds_rebuilds: Counter,
    /// Per-batch bound-refold latency samples (histograms honor the
    /// enabled flag; the counters above always record).
    bounds_refold: Histogram,
}

impl RegistryCounters {
    fn resolve(t: &Telemetry) -> Self {
        let m = t.metrics();
        RegistryCounters {
            batches: m.counter(names::REGISTRY_BATCHES),
            registrations: m.counter(names::REGISTRY_REGISTRATIONS),
            deregistrations: m.counter(names::REGISTRY_DEREGISTRATIONS),
            ops_replayed: m.counter(names::REGISTRY_OPS_REPLAYED),
            ops_skipped: m.counter(names::REGISTRY_OPS_SKIPPED),
            intra_splits: m.counter(names::REGISTRY_INTRA_SPLITS),
            multi_worker: m.counter(names::REGISTRY_MULTI_WORKER),
            last_touched: m.gauge(names::REGISTRY_LAST_TOUCHED),
            last_rebuilds: m.gauge(names::REGISTRY_LAST_REBUILDS),
            last_intra_splits: m.gauge(names::REGISTRY_LAST_INTRA_SPLITS),
            pool_busy_nanos: m.gauge(names::POOL_BUSY_NANOS),
            pool_tasks: m.gauge(names::POOL_TASKS),
            bounds_pruned: m.counter(names::BOUNDS_PRUNED),
            bounds_rebuilds: m.counter(names::BOUNDS_REBUILDS),
            bounds_refold: m.histogram(names::BOUNDS_REFOLD_SECONDS),
        }
    }

    /// Carries accumulated counts into a freshly attached telemetry's
    /// cells, so re-attaching never loses or double-counts history.
    fn migrate_to(&self, next: &RegistryCounters) {
        next.batches.add(self.batches.get());
        next.registrations.add(self.registrations.get());
        next.deregistrations.add(self.deregistrations.get());
        next.ops_replayed.add(self.ops_replayed.get());
        next.ops_skipped.add(self.ops_skipped.get());
        next.intra_splits.add(self.intra_splits.get());
        next.multi_worker.add(self.multi_worker.get());
        next.last_touched.set(self.last_touched.get());
        next.last_rebuilds.set(self.last_rebuilds.get());
        next.last_intra_splits.set(self.last_intra_splits.get());
        next.pool_busy_nanos.set(self.pool_busy_nanos.get());
        next.pool_tasks.set(self.pool_tasks.get());
        next.bounds_pruned.add(self.bounds_pruned.get());
        next.bounds_rebuilds.add(self.bounds_rebuilds.get());
        // Histogram samples are not migrated — the refold histogram
        // restarts with the new bundle, like every other histogram.
    }
}

/// One pattern's outcome of a batch the shared index could not prove
/// irrelevant to it: the fresh answer plus the **change set** against the
/// answer the registry served before the batch. `diff.is_empty()` means
/// the pattern was touched but its top-k survived unchanged — push
/// consumers suppress those; the serving layer forwards only material
/// changes to subscribers.
#[derive(Debug, Clone)]
pub struct AnswerChange {
    /// The pattern whose state the batch touched.
    pub id: PatternId,
    /// Its fresh top-k answer.
    pub top: TopKResult,
    /// What moved relative to the previously served answer.
    pub diff: AnswerDiff,
}

impl AnswerChange {
    /// `true` when the answer materially changed (some node entered, left
    /// or moved).
    pub fn changed(&self) -> bool {
        !self.diff.is_empty()
    }
}

/// Introspection snapshot of one registered pattern — what the admin
/// plane's `/patterns` endpoint serves. Everything here is a copy; the
/// slot lock is held only while assembling it.
#[derive(Debug, Clone)]
pub struct PatternInfo {
    /// The pattern's registry handle.
    pub id: PatternId,
    /// Number of pattern nodes.
    pub nodes: usize,
    /// Number of pattern edges.
    pub edges: usize,
    /// Configured answer size `k`.
    pub k: usize,
    /// Configured diversification trade-off `λ`.
    pub lambda: f64,
    /// How relevant-set preparation currently runs: `"maintained"`,
    /// `"readopt-pending"` or `"engine"`.
    pub reach_mode: &'static str,
    /// The active maintained-bound mode: `"per-component"`, `"global"`
    /// or `"off"`.
    pub bound_mode: &'static str,
    /// Per-pattern maintenance counters (includes
    /// [`ApplyStats::last_refresh_ns`], the last refresh latency, and the
    /// bound-pruning tallies).
    pub stats: ApplyStats,
}

/// Dirty-set size past which a single pattern's relevant-set extraction
/// is split across the pool (phase 2b) instead of running inline on the
/// worker that claimed the pattern. Below it, the chunking barrier costs
/// more than the parallelism wins.
const INTRA_SPLIT_MIN_OUTPUTS: usize = 16;

/// Runs phase-2 extraction of one prepared pattern across the pool in
/// per-worker output ranges, returning the sets in output order plus the
/// number of **distinct** workers that claimed a chunk (the observable
/// proof the refresh really ran on more than one thread). Each chunk
/// opens an `extract` span on `span`, so the trace records which worker
/// thread ran which chunk.
fn extract_chunked(
    pool: &WorkerPool,
    prepared: &PreparedSets,
    span: &Span,
) -> (Vec<BitSet>, usize) {
    type ChunkResult = Mutex<Option<(Vec<BitSet>, std::thread::ThreadId)>>;
    let n = prepared.len();
    let chunk = n.div_ceil(pool.workers()).max(1);
    let chunks = n.div_ceil(chunk);
    let results: Vec<ChunkResult> = (0..chunks).map(|_| Mutex::new(None)).collect();
    pool.run(chunks, &|ci| {
        let lo = ci * chunk;
        let hi = (lo + chunk).min(n);
        let chunk_span = span.child("extract");
        if chunk_span.is_enabled() {
            chunk_span.detail(format!("chunk={ci} outputs={}", hi - lo));
        }
        let mut ex = prepared.extractor();
        let sets: Vec<BitSet> = (lo..hi).map(|j| ex.extract(j)).collect();
        *results[ci].lock() = Some((sets, std::thread::current().id()));
    });
    let mut sets = Vec::with_capacity(n);
    let mut workers = std::collections::HashSet::new();
    for r in results {
        let (chunk_sets, tid) = r.into_inner().expect("every chunk ran");
        sets.extend(chunk_sets);
        workers.insert(tid);
    }
    (sets, workers.len())
}

/// Many patterns served over one dynamic graph. See the module docs.
pub struct PatternRegistry {
    graph: DynGraph,
    slots: Vec<Slot>,
    next_id: u64,
    /// Persistent phase-2 pool (`None` ⇒ fully sequential fan-out). Sized
    /// once at construction; batches reuse the parked workers instead of
    /// respawning scoped threads.
    pool: Option<WorkerPool>,
    /// Shared observability bundle — [`Telemetry::off`] unless an owner
    /// (the serving layer, a bench) attaches its own: counters always
    /// record, spans/histograms only when the bundle is enabled.
    telemetry: Telemetry,
    counters: RegistryCounters,
}

impl PatternRegistry {
    /// An empty registry over (a dynamic mirror of) `g`, with the thread
    /// pool sized by [`Self::default_threads`].
    pub fn new(g: &DiGraph) -> Self {
        Self::with_threads(g, Self::default_threads())
    }

    /// The maintenance-pool size [`Self::new`] picks: the machine's
    /// parallelism capped at 4 — ranking refreshes are short; more workers
    /// than that just contend on spawn overhead. Benchmarks and CLIs
    /// should default to this so recorded thread counts match the library.
    pub fn default_threads() -> usize {
        std::thread::available_parallelism().map_or(1, |n| n.get()).min(4)
    }

    /// An empty registry with an explicit maintenance-pool size
    /// (`threads = 1` forces fully sequential fan-out). The pool threads
    /// are spawned **once** here and parked between batches.
    pub fn with_threads(g: &DiGraph, threads: usize) -> Self {
        let telemetry = Telemetry::off();
        let counters = RegistryCounters::resolve(&telemetry);
        PatternRegistry {
            graph: DynGraph::from_digraph(g),
            slots: Vec::new(),
            next_id: 0,
            pool: (threads > 1).then(|| WorkerPool::new(threads)),
            telemetry,
            counters,
        }
    }

    /// Attaches a shared [`Telemetry`] bundle: subsequent batches trace
    /// into it and all counters continue there (accumulated counts are
    /// migrated, so [`Self::stats`] never goes backwards).
    pub fn set_telemetry(&mut self, telemetry: Telemetry) {
        let next = RegistryCounters::resolve(&telemetry);
        self.counters.migrate_to(&next);
        self.counters = next;
        self.telemetry = telemetry;
    }

    /// The attached observability bundle.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The maintenance-pool size this registry runs with.
    pub fn threads(&self) -> usize {
        self.pool.as_ref().map_or(1, WorkerPool::workers)
    }

    /// The shared graph.
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// Immutable snapshot of the shared graph (baselines, equivalence
    /// tests, late registrations elsewhere).
    pub fn snapshot(&self) -> DiGraph {
        self.graph.snapshot()
    }

    /// Registry-level counters, snapshotted from the telemetry cells (the
    /// single source of truth `render()`/`snapshot()` also read).
    pub fn stats(&self) -> RegistryStats {
        let c = &self.counters;
        RegistryStats {
            batches: c.batches.get(),
            registrations: c.registrations.get(),
            deregistrations: c.deregistrations.get(),
            ops_replayed: c.ops_replayed.get(),
            ops_skipped: c.ops_skipped.get(),
            last_patterns_touched: c.last_touched.get().max(0) as usize,
            last_rebuilds: c.last_rebuilds.get().max(0) as usize,
            intra_pattern_splits: c.intra_splits.get(),
            observed_multi_worker_refreshes: c.multi_worker.get(),
            last_intra_splits: c.last_intra_splits.get().max(0) as usize,
        }
    }

    /// Number of registered patterns.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// `true` when no pattern is registered.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Registered ids in registration order.
    pub fn pattern_ids(&self) -> Vec<PatternId> {
        self.slots.iter().map(|s| s.id).collect()
    }

    /// Registers `q`, materializing its state from the **current** graph —
    /// a pattern registered mid-stream answers exactly as if it had been
    /// built from [`Self::snapshot`]. Duplicate registrations are allowed
    /// and independent (two subscribers may serve the same shape with
    /// different configs).
    pub fn register(
        &mut self,
        q: Pattern,
        cfg: IncrementalConfig,
    ) -> Result<PatternId, IncrementalError> {
        let state = PatternState::new(&self.graph, q, cfg)?;
        let id = PatternId(self.next_id);
        self.next_id += 1;
        self.slots.push(Slot { id, state: Mutex::new(state) });
        self.counters.registrations.inc();
        Ok(id)
    }

    /// Drops a pattern and all its maintained state (pending dirtiness
    /// included — per-pattern state is self-contained, so this is safe at
    /// any point between batches). Returns `false` for unknown ids.
    pub fn deregister(&mut self, id: PatternId) -> bool {
        match self.slots.iter().position(|s| s.id == id) {
            Some(i) => {
                self.slots.remove(i);
                self.counters.deregistrations.inc();
                true
            }
            None => false,
        }
    }

    /// Applies one update batch to the shared graph and fans it out to
    /// every registered pattern, returning an [`AnswerChange`] — fresh
    /// answer **plus the change set** against the previously served one —
    /// for each pattern the batch **touched** (replayed into or rebuilt),
    /// in registration order. An untouched pattern's answer provably did
    /// not change — the shared index only skips mutations that are no-ops
    /// for it — so omitting it both tells subscribers whose answers moved
    /// and avoids re-ranking N cached match sets per batch; a touched
    /// pattern whose top-k survived intact reports with an empty diff.
    /// [`Self::answers`] (or [`Self::top_k`]) reads any answer on demand.
    ///
    /// On error (invalid delta) the graph and every pattern's state are
    /// unchanged. An empty registry still advances the graph.
    pub fn apply(&mut self, delta: &GraphDelta) -> Result<Vec<AnswerChange>, IncrementalError> {
        let root = self.telemetry.root_span("apply");
        let out = self.apply_traced(delta, &root);
        let seq = self.counters.batches.get();
        self.telemetry.finish_batch(root, seq);
        out
    }

    /// As [`Self::apply`] under a caller-owned trace: every phase of the
    /// batch (`replay`, per-pattern `refresh` with `plan`/`prepare`/
    /// `extract` children, per-chunk phase-2b `extract`s) lands as
    /// children of `parent`. The serving layer passes its ingest root so
    /// one batch yields one tree; standalone callers can pass
    /// [`Span::disabled`] (or just call [`Self::apply`]).
    pub fn apply_traced(
        &mut self,
        delta: &GraphDelta,
        parent: &Span,
    ) -> Result<Vec<AnswerChange>, IncrementalError> {
        let churn = worst_churn(&self.graph, delta);
        let edges = self.graph.edge_count();
        let removed_labels = removed_label_map(&self.graph, delta);
        let n = self.slots.len();

        // Phase 1 (sequential): mutate the shared graph ONCE, replaying
        // each effective mutation through the interested patterns in
        // lockstep — the hook observes exactly the intermediate graph
        // states a private DynamicMatcher replay would. Patterns whose
        // churn threshold the batch exceeds skip the replay entirely and
        // rebuild from the final graph in phase 2.
        let mut replayed = 0u64;
        let mut skipped = 0u64;
        let mut touched = vec![false; n];
        let (applied, rebuild) = {
            let replay_span = parent.child("replay");
            let mut guards: Vec<_> = self.slots.iter().map(|s| s.state.lock()).collect();
            let rebuild: Vec<bool> = guards.iter().map(|g| g.needs_rebuild(churn, edges)).collect();
            let applied = self.graph.apply_with(delta, |g, eff| {
                for (i, st) in guards.iter_mut().enumerate() {
                    if rebuild[i] {
                        continue;
                    }
                    if st.wants(g, eff, &removed_labels) {
                        st.replay(g, eff);
                        touched[i] = true;
                        replayed += 1;
                    } else {
                        skipped += 1;
                    }
                }
            })?;
            if replay_span.is_enabled() {
                replay_span.detail(format!("replayed={replayed} skipped={skipped}"));
            }
            (applied, rebuild)
        };

        // Phase 2a (parallel across patterns): per-pattern ranking
        // maintenance is independent given the final graph. The
        // persistent pool's workers claim whole slots by index; since no
        // slot is shared, the per-pattern result is identical under any
        // interleaving, and answers are merged in registration order
        // below. Patterns the index proved the whole batch irrelevant to
        // skip the seed scan entirely. A pattern whose dirty set is small
        // finishes here (plan + materialize + serve under one lock); one
        // whose dirty set crosses [`INTRA_SPLIT_MIN_OUTPUTS`] only runs
        // phase 1 of the reach engine (view + condensation) and parks the
        // prepared extraction for phase 2b — so N small patterns keep
        // their cross-pattern parallelism, and a giant one stops
        // monopolizing a single worker.
        let graph = &self.graph;
        let slots = &self.slots;
        let touched_ref = &touched;
        let counters = &self.counters;
        // Per-pattern bound-index accounting is final once the plan
        // exists (refold in `maintain_reach`, pruning in `plan_refresh`),
        // so each worker folds its pattern's `last_*` contribution into
        // the shared cells right after planning. Counters are atomic —
        // safe from any pool worker.
        let note_bounds = |st: &PatternState| {
            let s = st.stats();
            if s.last_bound_refold_ns > 0 {
                counters.bounds_refold.record_ns(s.last_bound_refold_ns);
            }
            if s.last_pruned_outputs > 0 {
                counters.bounds_pruned.add(s.last_pruned_outputs as u64);
            }
            if s.last_bound_rebuilds > 0 {
                counters.bounds_rebuilds.add(s.last_bound_rebuilds);
            }
        };
        let split_threshold = self.pool.as_ref().map(|_| INTRA_SPLIT_MIN_OUTPUTS);
        let fresh: Vec<Mutex<Option<(TopKResult, AnswerDiff)>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let pending: Vec<Mutex<Option<(RefreshPlan, PreparedSets)>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let refresh = |i: usize| {
            let refresh_span = parent.child("refresh");
            if refresh_span.is_enabled() {
                refresh_span.detail(format!("pattern={}", slots[i].id));
            }
            let mut st = slots[i].state.lock();
            st.note_apply();
            let plan = if rebuild[i] {
                let plan_span = refresh_span.child("plan");
                plan_span.event("churn-rebuild");
                st.rebuild(graph)
            } else if touched_ref[i] {
                // Fold the batch into the maintained condensation first
                // (`condense_incremental` child span), then plan off the
                // flips it drained.
                let flips = st.maintain_reach(graph, &applied, &refresh_span);
                let plan_span = refresh_span.child("plan");
                let plan = st.plan_refresh(graph, &applied, flips);
                if plan_span.is_enabled() {
                    plan_span.detail(format!("outputs={} pruned={}", plan.len(), plan.pruned()));
                }
                plan
            } else {
                st.refresh_untouched(graph);
                return;
            };
            note_bounds(&st);
            if split_threshold.is_some_and(|min| plan.len() >= min) {
                let prepared = st.prepare_sets_traced(graph, &plan, &refresh_span);
                // Only park extractions a pool barrier can actually help
                // with: per-source BFS (the budget fallback) is always
                // real work, while DP extraction is bitset memcpys —
                // worth splitting only at real volume.
                if prepared.split_worthwhile() {
                    refresh_span.event("intra-pattern-split");
                    *pending[i].lock() = Some((plan, prepared));
                    return;
                }
                let ex_span = refresh_span.child("extract");
                if ex_span.is_enabled() {
                    ex_span.detail(format!("outputs={}", prepared.len()));
                }
                let mut ex = prepared.extractor();
                let sets = (0..prepared.len()).map(|j| ex.extract(j)).collect();
                drop(ex);
                drop(ex_span);
                st.apply_sets(&plan, sets);
                *fresh[i].lock() = Some(st.serve());
                return;
            }
            st.materialize_seq_traced(graph, &plan, &refresh_span);
            *fresh[i].lock() = Some(st.serve());
        };
        match &self.pool {
            Some(pool) if n >= 2 => pool.run(n, &refresh),
            _ => (0..n).for_each(refresh),
        }

        // Phase 2b (parallel within a pattern): each parked extraction is
        // chunked into per-worker output ranges and fanned across the
        // pool; the condensation and its component bitsets are shared
        // read-only, and the merge back into the cache is by index —
        // deterministic regardless of which worker produced which chunk.
        // `pending` is only ever populated when a pool exists (the
        // split_threshold gate above).
        let mut last_intra_splits = 0i64;
        if let Some(pool) = &self.pool {
            for i in 0..n {
                let Some((plan, prepared)) = pending[i].lock().take() else { continue };
                last_intra_splits += 1;
                // The split *decision* is counted here, deterministically —
                // a parked extraction IS a split, whether or not the pool's
                // scheduling let a second worker claim a chunk.
                self.counters.intra_splits.inc();
                let split_span = parent.child("refresh");
                if split_span.is_enabled() {
                    split_span.detail(format!("pattern={} phase=2b", slots[i].id));
                }
                let (sets, workers) = extract_chunked(pool, &prepared, &split_span);
                if workers >= 2 {
                    self.counters.multi_worker.inc();
                }
                let mut st = slots[i].state.lock();
                st.apply_sets(&plan, sets);
                *fresh[i].lock() = Some(st.serve());
            }
        }

        self.counters.batches.inc();
        self.counters.ops_replayed.add(replayed);
        self.counters.ops_skipped.add(skipped);
        self.counters.last_intra_splits.set(last_intra_splits);
        self.counters.last_rebuilds.set(rebuild.iter().filter(|&&r| r).count() as i64);
        self.counters
            .last_touched
            .set(touched.iter().zip(&rebuild).filter(|&(&t, &r)| t || r).count() as i64);
        if let Some(pool) = &self.pool {
            self.counters.pool_busy_nanos.set(pool.busy_nanos().min(i64::MAX as u64) as i64);
            self.counters.pool_tasks.set(pool.tasks_run().min(i64::MAX as u64) as i64);
        }

        Ok(fresh
            .into_iter()
            .enumerate()
            .filter_map(|(i, slot)| {
                slot.into_inner().map(|(top, diff)| AnswerChange {
                    id: self.slots[i].id,
                    top,
                    diff,
                })
            })
            .collect())
    }

    /// Current top-k of every registered pattern, in registration order.
    pub fn answers(&self) -> Vec<(PatternId, TopKResult)> {
        self.slots.iter().map(|s| (s.id, s.state.lock().top_k())).collect()
    }

    /// Current top-k of one pattern (`None` for unknown ids).
    pub fn top_k(&self, id: PatternId) -> Option<TopKResult> {
        self.with_slot(id, |st| st.top_k())
    }

    /// Current diversified top-k of one pattern with its configured `λ`.
    /// Materializes any bound-deferred backlog first (the diversity term
    /// needs every match's relevant set), hence the mutable slot access.
    pub fn top_k_diversified(&self, id: PatternId) -> Option<DivResult> {
        self.with_slot_mut(id, |st| {
            let lambda = st.cfg().lambda;
            st.diversified(&self.graph, lambda)
        })
    }

    /// As [`Self::top_k_diversified`] with an explicit `λ`.
    pub fn diversified(&self, id: PatternId, lambda: f64) -> Option<DivResult> {
        self.with_slot_mut(id, |st| st.diversified(&self.graph, lambda))
    }

    /// The registered pattern behind `id`.
    pub fn pattern(&self, id: PatternId) -> Option<Pattern> {
        self.with_slot(id, |st| st.pattern().clone())
    }

    /// Per-pattern maintenance counters.
    pub fn stats_of(&self, id: PatternId) -> Option<ApplyStats> {
        self.with_slot(id, |st| st.stats().clone())
    }

    /// The diversification normalizer `Cuo` one pattern currently serves
    /// with (drift checks against the static pipeline).
    pub fn normalizer(&self, id: PatternId) -> Option<u64> {
        self.with_slot(id, |st| st.normalizer())
    }

    /// Estimated candidate count of a label under the shared index —
    /// what one pattern node with that label would enumerate today.
    pub fn candidates_for_label(&self, label: Label) -> usize {
        self.graph.label_count(label)
    }

    /// Live-label histogram of the shared graph (observability; sizes the
    /// shared candidate index).
    pub fn label_histogram(&self) -> Vec<(Label, usize)> {
        self.graph.live_labels().collect()
    }

    fn with_slot<T>(&self, id: PatternId, f: impl FnOnce(&PatternState) -> T) -> Option<T> {
        self.slots.iter().find(|s| s.id == id).map(|s| f(&s.state.lock()))
    }

    fn with_slot_mut<T>(&self, id: PatternId, f: impl FnOnce(&mut PatternState) -> T) -> Option<T> {
        self.slots.iter().find(|s| s.id == id).map(|s| f(&mut s.state.lock()))
    }

    /// Introspection snapshot of one pattern (`None` for unknown ids).
    pub fn pattern_info(&self, id: PatternId) -> Option<PatternInfo> {
        self.with_slot(id, |st| PatternInfo {
            id,
            nodes: st.pattern().node_count(),
            edges: st.pattern().edge_count(),
            k: st.cfg().k,
            lambda: st.cfg().lambda,
            reach_mode: st.reach_mode(),
            bound_mode: st.bound_mode(),
            stats: st.stats().clone(),
        })
    }

    /// Introspection snapshots of every pattern, in registration order.
    pub fn pattern_infos(&self) -> Vec<PatternInfo> {
        self.slots.iter().map(|s| self.pattern_info(s.id).expect("slot exists")).collect()
    }

    /// Items of the current maintenance-pool job not yet completed —
    /// 0 between batches or without a pool. The snapshot-time queue-depth
    /// gauge the serving layer samples.
    pub fn pool_queue_depth(&self) -> usize {
        self.pool.as_ref().map_or(0, WorkerPool::queued_items)
    }

    /// Full correctness audit of one pattern against the shared graph:
    /// simulation invariants plus the maintained-reach oracle, non-fatal.
    /// `None` for unknown ids. This is what the sampled production
    /// auditor runs; it holds the slot lock for the audit's duration, so
    /// callers should sample rather than run it per batch.
    pub fn audit_pattern(&self, id: PatternId) -> Option<Result<(), String>> {
        self.with_slot(id, |st| st.audit(&self.graph))
    }

    /// Deliberately desynchronizes one pattern's maintained reach view
    /// from its simulation so [`Self::audit_pattern`] must fail — test
    /// harnesses inject production corruption with this. Returns `false`
    /// when there was nothing to corrupt (unknown id, budget-disabled
    /// maintained mode, or an edgeless view).
    #[doc(hidden)]
    pub fn corrupt_maintained_for_test(&self, id: PatternId) -> bool {
        let Some(slot) = self.slots.iter().find(|s| s.id == id) else { return false };
        slot.state.lock().corrupt_maintained_for_test(&self.graph)
    }

    /// Differential-oracle hook for test harnesses: panics when any
    /// pattern's maintained condensation state diverges from a
    /// from-scratch build.
    #[doc(hidden)]
    pub fn check_maintained_all(&self) {
        for s in &self.slots {
            s.state.lock().check_maintained(&self.graph);
        }
    }

    /// Weak handles on one pattern's maintained `Full(c)` bitsets (`None`
    /// for unknown ids or budget-disabled maintained mode) — the
    /// deregister leak audit upgrades these after the slot is dropped.
    #[doc(hidden)]
    pub fn maintained_weak_fulls(&self, id: PatternId) -> Option<Vec<std::sync::Weak<BitSet>>> {
        self.with_slot(id, |st| st.maintained_weak_fulls())?
    }
}
