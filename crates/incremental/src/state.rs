//! [`PatternState`]: the per-pattern maintenance state shared by
//! [`DynamicMatcher`](crate::DynamicMatcher) (one pattern, own graph) and
//! [`PatternRegistry`](crate::PatternRegistry) (many patterns, one graph).
//!
//! Everything here is **graph-agnostic**: methods take the [`DynGraph`]
//! they maintain against as a parameter, so N states can follow one shared
//! graph. A state bundles the incremental simulation ([`IncSimState`]),
//! the relevant-set cache ([`RelevanceCache`]) and the per-pattern
//! [`ApplyStats`], plus the **interest sets** the registry's shared
//! candidate index consults to skip replaying mutations that provably
//! cannot touch this pattern: a pattern only reacts to nodes whose label
//! it names, to edges whose endpoint-label pair matches one of its own
//! edges, and to attribute mutations on keys its predicates mention.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::time::Instant;

use gpm_core::result::{rank_top_k, AnswerDiff, DivResult, RankedMatch, RunStats, TopKResult};
use gpm_core::topk_div::greedy_diversified;
use gpm_graph::dynamic::DynGraph;
use gpm_graph::{AppliedDelta, DeltaOp, EffectiveOp, GraphDelta, Label, NodeId, TOMBSTONE_LABEL};
use gpm_pattern::Pattern;
use gpm_ranking::objective::{c_uo_with, Objective};
use gpm_ranking::RelevanceCache;
use gpm_simulation::incremental::DynPair;
use gpm_simulation::IncSimState;

use crate::matcher::{ApplyStats, IncrementalConfig, IncrementalError};

/// Estimated effective edge churn of `delta` against the current `g`,
/// judged before touching anything: every op changes at most one edge,
/// except `RemoveNode` which drops the node's whole incidence list, and
/// attribute ops which change **no** adjacency and count zero — an
/// attr-only batch must never trip the edge-churn rebuild threshold (the
/// dirtiness-sweep cap still bounds its ranking cost). A heuristic, not a
/// bound: self-loops and edges an earlier op already removed are counted
/// twice, while edges added and then dropped by a later `RemoveNode` of
/// the same batch are undercounted (`RemoveNode` sees pre-batch degrees).
/// A borderline batch can land on either side of the rebuild threshold —
/// that costs time, never correctness.
pub(crate) fn worst_churn(g: &DynGraph, delta: &GraphDelta) -> usize {
    delta
        .ops
        .iter()
        .map(|op| match *op {
            DeltaOp::RemoveNode(v) if (v as usize) < g.node_count() => {
                (g.successors(v).count() + g.predecessors(v).count()).max(1)
            }
            DeltaOp::SetAttr { .. } | DeltaOp::UnsetAttr { .. } => 0,
            _ => 1,
        })
        .sum()
}

/// Pre-batch labels of the nodes `delta` removes, keyed by node id. By the
/// time the `NodeRemoved` effective op reaches a hook the slot is already
/// tombstoned, so interest filtering needs the label captured up front —
/// including for nodes the same batch adds (their ids are simulated).
pub(crate) fn removed_label_map(g: &DynGraph, delta: &GraphDelta) -> HashMap<NodeId, Label> {
    let mut next = g.node_count() as NodeId;
    let mut added: HashMap<NodeId, Label> = HashMap::new();
    let mut out = HashMap::new();
    for op in &delta.ops {
        match *op {
            DeltaOp::AddNode(label) => {
                added.insert(next, label);
                next += 1;
            }
            DeltaOp::RemoveNode(v) => {
                let label = added.get(&v).copied().unwrap_or_else(|| {
                    if (v as usize) < g.node_count() {
                        g.label(v)
                    } else {
                        TOMBSTONE_LABEL // out of range: the batch will be rejected
                    }
                });
                out.insert(v, label);
            }
            _ => {}
        }
    }
    out
}

/// Materialized simulation + ranking state of one pattern, maintained
/// against a [`DynGraph`] owned by the caller.
#[derive(Debug, Clone)]
pub(crate) struct PatternState {
    pattern: Pattern,
    cfg: IncrementalConfig,
    sim: IncSimState,
    cache: RelevanceCache,
    stats: ApplyStats,
    /// Primary labels of the pattern's nodes — candidates of a node always
    /// carry its primary label (candidate enumeration scans the label
    /// class), so structural ops on other labels are no-ops. `None` when
    /// some pattern node's predicate implies no label (e.g. a bare `Or`):
    /// then *any* node could be its candidate and label filtering is
    /// unsound — fall back to dispatching every structural op.
    node_labels: Option<BTreeSet<Label>>,
    /// `(label(u), label(u'))` for every pattern edge `(u, u')`; `None`
    /// when some pattern edge has an endpoint without a primary label.
    edge_label_pairs: Option<BTreeSet<(Label, Label)>>,
    /// Attribute keys mentioned by any of the pattern's predicates — the
    /// registry's *attribute-key interest*: a `SetAttr`/`UnsetAttr` on any
    /// other key cannot change any candidacy, hence is a provable no-op
    /// for this pattern.
    attr_keys: BTreeSet<String>,
    /// The ranked answer last surfaced through [`Self::serve_timed`] — the
    /// baseline the next answer is diffed against, so consumers (the
    /// registry's change sets, the serving layer's subscriptions) learn
    /// *what moved*, not just the fresh list.
    served: Vec<RankedMatch>,
}

impl PatternState {
    /// Materializes the state for `q` over the current contents of `g`.
    pub(crate) fn new(
        g: &DynGraph,
        pattern: Pattern,
        cfg: IncrementalConfig,
    ) -> Result<Self, IncrementalError> {
        let sim = IncSimState::new(g, &pattern).ok_or(IncrementalError::UnsupportedPattern)?;
        let node_labels: Option<BTreeSet<Label>> =
            pattern.nodes().map(|u| pattern.predicate(u).primary_label()).collect();
        let edge_label_pairs: Option<BTreeSet<(Label, Label)>> = pattern
            .edges()
            .map(|(u, uc)| {
                Some((
                    pattern.predicate(u).primary_label()?,
                    pattern.predicate(uc).primary_label()?,
                ))
            })
            .collect();
        let mut attr_keys = BTreeSet::new();
        for u in pattern.nodes() {
            pattern.predicate(u).collect_attr_keys(&mut attr_keys);
        }
        let mut state = PatternState {
            cache: RelevanceCache::new(g.node_count()),
            pattern,
            cfg,
            sim,
            stats: ApplyStats::default(),
            node_labels,
            edge_label_pairs,
            attr_keys,
            served: Vec::new(),
        };
        state.rebuild_cache(g);
        state.sim.take_dirty();
        state.served = state.top_k().matches;
        Ok(state)
    }

    /// The pattern being served.
    pub(crate) fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The maintenance configuration.
    pub(crate) fn cfg(&self) -> &IncrementalConfig {
        &self.cfg
    }

    /// Maintenance counters.
    pub(crate) fn stats(&self) -> &ApplyStats {
        &self.stats
    }

    /// Counts one applied batch (rejected batches are not applies).
    pub(crate) fn note_apply(&mut self) {
        self.stats.applies += 1;
    }

    /// `true` when a batch of `churn` effective edge changes against a
    /// graph of `edge_count` edges should rebuild this pattern's state
    /// wholesale instead of replaying — the single definition of the
    /// rebuild policy, shared by `DynamicMatcher` and the registry.
    pub(crate) fn needs_rebuild(&self, churn: usize, edge_count: usize) -> bool {
        churn as f64 > self.cfg.max_delta_fraction * (edge_count.max(1) as f64)
    }

    /// `true` when `eff` can possibly affect this pattern's simulation —
    /// the shared-index test the registry uses to skip replays. Skipping a
    /// mutation this returns `false` for is a provable no-op: candidates
    /// are label-matched, so a node whose label the pattern never names
    /// has no pairs; an edge whose endpoint-label pair matches no pattern
    /// edge touches no support counter and seeds no revival; and an
    /// attribute mutation on a key no predicate mentions cannot change any
    /// candidacy (candidacy is a pure function of `(label, attrs)`).
    /// Patterns with label-free predicates degrade gracefully: their label
    /// filters report interested for every structural op.
    pub(crate) fn wants(
        &self,
        g: &DynGraph,
        eff: &EffectiveOp,
        removed_labels: &HashMap<NodeId, Label>,
    ) -> bool {
        match *eff {
            EffectiveOp::NodeAdded(_, label) => {
                self.node_labels.as_ref().is_none_or(|set| set.contains(&label))
            }
            EffectiveOp::EdgeAdded(s, t) | EffectiveOp::EdgeRemoved(s, t) => {
                // Labels are still intact here: RemoveNode strips incident
                // edges (emitting these ops) before tombstoning the slot.
                self.edge_label_pairs
                    .as_ref()
                    .is_none_or(|set| set.contains(&(g.label(s), g.label(t))))
            }
            EffectiveOp::NodeRemoved(v) => match removed_labels.get(&v) {
                Some(label) => self.node_labels.as_ref().is_none_or(|set| set.contains(label)),
                None => true, // unknown pre-batch label: dispatch conservatively
            },
            EffectiveOp::AttrSet { ref key, .. } | EffectiveOp::AttrUnset { ref key, .. } => {
                self.attr_keys.contains(&**key)
            }
        }
    }

    /// Replays one effective mutation through the simulation state, with
    /// `g` in exactly the intermediate state the mutation produced.
    pub(crate) fn replay(&mut self, g: &DynGraph, eff: &EffectiveOp) {
        let q = &self.pattern;
        match *eff {
            EffectiveOp::NodeAdded(v, _) => self.sim.on_node_added(g, q, v),
            EffectiveOp::EdgeAdded(s, t) => self.sim.on_edge_inserted(g, q, s, t),
            EffectiveOp::EdgeRemoved(s, t) => self.sim.on_edge_removed(g, q, s, t),
            EffectiveOp::NodeRemoved(v) => self.sim.on_node_removed(q, v),
            EffectiveOp::AttrSet { node, ref key, .. }
            | EffectiveOp::AttrUnset { node, ref key } => self.sim.on_attr_changed(g, q, node, key),
        }
    }

    /// Discards the materialized state and re-derives it from the current
    /// contents of `g` (the past-the-churn-threshold fallback).
    pub(crate) fn rebuild(&mut self, g: &DynGraph) {
        self.sim = IncSimState::new(g, &self.pattern).expect("pattern validated at construction");
        self.rebuild_cache(g);
        self.sim.take_dirty();
        self.stats.full_rebuilds += 1;
    }

    /// Post-batch bookkeeping for a pattern the shared index proved the
    /// whole batch irrelevant to: no mutation was replayed, so no pair
    /// flipped and — because a seedable changed edge needs a pattern edge
    /// with its exact endpoint-label pair, and a candidacy-changing attr
    /// flip needs a mentioned key (the same tests [`Self::wants`] applies)
    /// — the edge scan of [`Self::refresh_ranking`] could not yield a
    /// seed either. Only the width guard and the per-batch counters
    /// remain.
    pub(crate) fn refresh_untouched(&mut self, g: &DynGraph) {
        let seeds = self.sim.take_dirty();
        debug_assert!(seeds.is_empty(), "untouched pattern has no flips");
        self.cache.ensure_width(g.node_count());
        self.stats.incremental_applies += 1;
        self.stats.last_swept_pairs = 0;
        self.stats.last_dirty_outputs = 0;
    }

    /// Post-batch ranking maintenance: derives the dirty seeds from the
    /// simulation flips and the changed data edges, sweeps backward to the
    /// affected output matches, and re-derives only those relevant sets
    /// (or, past the dirtiness threshold, all of them). `g` must already
    /// be in the post-batch state described by `applied`.
    pub(crate) fn refresh_ranking(&mut self, g: &DynGraph, applied: &AppliedDelta) {
        // Seeds of the dirtiness sweep: every alive-flip, plus the source
        // pairs of every changed data edge (an edge between two alive pairs
        // changes match-graph reachability without flipping anybody).
        // Target candidacy is tested with the ever-candidate map, not the
        // valid flag: for edges dropped by a node tombstone the target's
        // valid flag is already cleared by the time this runs, but the
        // surviving source pairs still lost a relevant descendant. Sources
        // tombstoned in the same batch need no seed of their own — their
        // incoming edges were removed too, seeding every live ancestor.
        let mut seeds: Vec<DynPair> = self.sim.take_dirty();
        for &(v, w) in applied.added_edges.iter().chain(&applied.removed_edges) {
            for u in self.pattern.nodes() {
                if !self.sim.is_candidate(u, v) {
                    continue;
                }
                let touches =
                    self.pattern.successors(u).iter().any(|&uc| self.sim.ever_candidate(uc, w));
                if touches {
                    seeds.push((u, v));
                }
            }
        }
        self.cache.ensure_width(g.node_count());

        if seeds.is_empty() {
            self.stats.incremental_applies += 1;
            self.stats.last_swept_pairs = 0;
            self.stats.last_dirty_outputs = 0;
            return;
        }

        // Backward sweep: every valid candidate pair that can reach a seed
        // in the candidate-pair graph (alive-agnostic — old paths may run
        // through freshly dead pairs) might have gained or lost relevant
        // descendants.
        let uo = self.pattern.output();
        let total_pairs: usize = self.pattern.nodes().map(|u| self.sim.candidate_count(u)).sum();
        let sweep_cap = (self.cfg.max_dirty_fraction * total_pairs.max(1) as f64).ceil() as usize;
        let mut visited: HashSet<DynPair> = seeds.iter().copied().collect();
        let mut queue: Vec<DynPair> = visited.iter().copied().collect();
        let mut overflow = false;
        let mut cursor = 0;
        while cursor < queue.len() {
            if visited.len() > sweep_cap {
                overflow = true;
                break;
            }
            let (u, x) = queue[cursor];
            cursor += 1;
            for &t in self.pattern.predecessors(u) {
                for y in g.predecessors(x) {
                    if self.sim.is_candidate(t, y) && visited.insert((t, y)) {
                        queue.push((t, y));
                    }
                }
            }
        }
        self.stats.last_swept_pairs = visited.len();

        if overflow {
            // The affected region is most of the graph: rebuild the whole
            // cache (simulation stays incremental — it already converged).
            self.rebuild_cache(g);
            self.stats.full_rank_refreshes += 1;
            return;
        }

        // Partial refresh: re-derive only the affected output matches.
        let dirty_outputs: Vec<NodeId> =
            visited.iter().filter(|&&(u, _)| u == uo).map(|&(_, v)| v).collect();
        self.stats.last_dirty_outputs = dirty_outputs.len();
        for v in dirty_outputs {
            if self.sim.pair_alive(uo, v) {
                let set = self.relevant_set_bfs(g, v);
                self.cache.upsert(v, set);
                self.stats.sets_recomputed += 1;
            } else {
                self.cache.remove(v);
            }
        }
        self.stats.incremental_applies += 1;
    }

    /// The current top-k by relevance.
    pub(crate) fn top_k(&self) -> TopKResult {
        self.top_k_timed(Instant::now())
    }

    /// As [`Self::serve_timed`] measured from now.
    pub(crate) fn serve(&mut self) -> (TopKResult, AnswerDiff) {
        self.serve_timed(Instant::now())
    }

    /// Serves the current answer together with its diff against the
    /// previously served one, advancing the served baseline. The diff is
    /// empty exactly when the answer did not materially change (same
    /// `(node, δr)` sequence) — the signal push consumers key on.
    pub(crate) fn serve_timed(&mut self, t0: Instant) -> (TopKResult, AnswerDiff) {
        let top = self.top_k_timed(t0);
        let diff = AnswerDiff::between(&self.served, &top.matches);
        if !diff.is_empty() {
            self.served = top.matches.clone();
        }
        (top, diff)
    }

    /// As [`Self::top_k`] with timing measured from `t0` (so `apply`
    /// latencies include the maintenance work).
    pub(crate) fn top_k_timed(&self, t0: Instant) -> TopKResult {
        let q = &self.pattern;
        // Under the paper's emptiness rule Mu(Q,G,uo) = ∅ even though the
        // cache stays structurally maintained — report stats the way the
        // static pipeline would (total known to be 0).
        let (matches, total) = if self.sim.graph_matches(q) {
            (rank_top_k(self.cache.relevances(), self.cfg.k), self.cache.len())
        } else {
            (Vec::new(), 0)
        };
        TopKResult {
            matches,
            stats: RunStats {
                output_candidates: self.sim.candidate_count(q.output()),
                inspected_matches: total,
                total_matches: Some(total),
                waves: 1,
                early_terminated: false,
                elapsed: t0.elapsed(),
                ..Default::default()
            },
        }
    }

    /// The normalizer `Cuo` the diversified objective divides `δr` by —
    /// computed from the maintained candidate counts through the same
    /// [`c_uo_with`] definition the static pipeline uses.
    pub(crate) fn normalizer(&self) -> u64 {
        c_uo_with(&self.pattern, |u| self.sim.candidate_count(u))
    }

    /// The current diversified top-k with an explicit `λ`.
    pub(crate) fn diversified(&self, lambda: f64) -> DivResult {
        let t0 = Instant::now();
        let q = &self.pattern;
        if !self.sim.graph_matches(q) {
            // Mirror the static pipeline's stats: Mu(Q,G,uo) = ∅, known.
            return DivResult {
                matches: Vec::new(),
                f_value: 0.0,
                stats: RunStats {
                    output_candidates: self.sim.candidate_count(q.output()),
                    total_matches: Some(0),
                    elapsed: t0.elapsed(),
                    ..Default::default()
                },
            };
        }
        let objective = Objective::new(lambda, self.cfg.k, self.normalizer());
        let (matches, rel): (Vec<NodeId>, Vec<f64>) =
            self.cache.relevances().map(|(v, r)| (v, r as f64)).unzip();
        let d = |i: usize, j: usize| self.cache.distance(matches[i], matches[j]).expect("cached");
        let (selected, f_value) = greedy_diversified(&objective, &rel, &d);
        let picked: Vec<RankedMatch> = selected
            .iter()
            .map(|&i| RankedMatch { node: matches[i], relevance: rel[i] as u64 })
            .collect();
        DivResult {
            matches: picked,
            f_value,
            stats: RunStats {
                output_candidates: self.sim.candidate_count(q.output()),
                inspected_matches: matches.len(),
                total_matches: Some(matches.len()),
                elapsed: t0.elapsed(),
                ..Default::default()
            },
        }
    }

    // ---------------------------------------------------------- internals

    /// Relevant set of output match `v` by forward BFS over the alive
    /// match graph (adjacency derived on the fly from the dynamic graph
    /// and the simulation state). Strict reachability: seeded from the
    /// pair's successors, so `v` itself only enters through a cycle.
    fn relevant_set_bfs(&self, g: &DynGraph, v: NodeId) -> Vec<usize> {
        let q = &self.pattern;
        let uo = q.output();
        let mut visited: HashSet<DynPair> = HashSet::new();
        let mut queue: Vec<DynPair> = Vec::new();
        let push_children =
            |from: DynPair, visited: &mut HashSet<DynPair>, queue: &mut Vec<DynPair>| {
                let (u, x) = from;
                for &uc in q.successors(u) {
                    for w in g.successors(x) {
                        if self.sim.pair_alive(uc, w) && visited.insert((uc, w)) {
                            queue.push((uc, w));
                        }
                    }
                }
            };
        push_children((uo, v), &mut visited, &mut queue);
        let mut cursor = 0;
        while cursor < queue.len() {
            let p = queue[cursor];
            cursor += 1;
            push_children(p, &mut visited, &mut queue);
        }
        let nodes: HashSet<usize> = visited.iter().map(|&(_, x)| x as usize).collect();
        let mut out: Vec<usize> = nodes.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Recomputes every output match's relevant set.
    fn rebuild_cache(&mut self, g: &DynGraph) {
        self.cache = RelevanceCache::new(g.node_count());
        let q = &self.pattern;
        for v in self.sim.structural_matches_of(q.output()) {
            let set = self.relevant_set_bfs(g, v);
            self.cache.upsert(v, set);
            self.stats.sets_recomputed += 1;
        }
    }
}
