//! [`PatternState`]: the per-pattern maintenance state shared by
//! [`DynamicMatcher`](crate::DynamicMatcher) (one pattern, own graph) and
//! [`PatternRegistry`](crate::PatternRegistry) (many patterns, one graph).
//!
//! Everything here is **graph-agnostic**: methods take the [`DynGraph`]
//! they maintain against as a parameter, so N states can follow one shared
//! graph. A state bundles the incremental simulation ([`IncSimState`]),
//! the relevant-set cache ([`RelevanceCache`]) and the per-pattern
//! [`ApplyStats`], plus the **interest sets** the registry's shared
//! candidate index consults to skip replaying mutations that provably
//! cannot touch this pattern: a pattern only reacts to nodes whose label
//! it names, to edges whose endpoint-label pair matches one of its own
//! edges, and to attribute mutations on keys its predicates mention.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::time::Instant;

use gpm_core::result::{rank_top_k, AnswerDiff, DivResult, RankedMatch, RunStats, TopKResult};
use gpm_core::topk_div::greedy_diversified;
use gpm_core::BoundedSelector;
use gpm_graph::dynamic::DynGraph;
use gpm_graph::{
    AppliedDelta, BitSet, DeltaOp, EffectiveOp, GraphDelta, Label, NodeId, TOMBSTONE_LABEL,
};
use gpm_pattern::Pattern;
use gpm_ranking::objective::{c_uo_with, Objective};
use gpm_ranking::{
    BoundState, CondPolicy, CondensationState, MaintainError, ReachEngine, ReachExtractor,
    RelevanceCache, SetHandle,
};
use gpm_simulation::incremental::DynPair;
use gpm_simulation::{DynMatchGraph, IncSimState, ReachView};
use gpm_telemetry::Span;

use crate::matcher::{ApplyStats, IncrementalConfig, IncrementalError};

/// Below this absolute churn the maintained-condensation churn gate
/// ([`IncrementalConfig::max_cond_churn_fraction`], default 12.5% — the
/// `dirty_region` sweep shows in-place maintenance winning clearly at 2%
/// dirty and losing by 25%, so the crossover is pinned conservatively
/// between them) never fires: on small graphs the incremental paths are
/// always cheap enough, and they should stay exercised.
const COND_MAINT_CHURN_FLOOR: usize = 512;

/// `true` when a batch's churn is past the maintained-condensation gate
/// relative to `alive` pairs.
fn churn_high(churn: usize, alive: usize, max_fraction: f64) -> bool {
    churn > COND_MAINT_CHURN_FLOOR && churn as f64 > alive as f64 * max_fraction
}

/// Effective edge churn of `delta` against the current `g`, judged
/// before touching anything: the number of `EdgeAdded`/`EdgeRemoved`
/// effective ops the batch will emit, plus one per effective node
/// add/tombstone (a `RemoveNode` counts its stripped edges, floor one).
/// Attribute ops change **no** adjacency and count zero — an attr-only
/// batch must never trip the edge-churn rebuild threshold (the
/// dirtiness-sweep cap still bounds its ranking cost).
///
/// Computed from an **effective-op mirror** of [`DynGraph::apply_with`]'s
/// semantics, without mutating the graph: the in-batch edge state is
/// `(pre-batch ∖ removed) ∪ added`, and in-batch tombstones strip their
/// incident edges into `removed`. The old degree-sum heuristic counted
/// self-loops and already-removed edges twice (a `RemoveNode` saw
/// pre-batch degrees) while missing in-batch `AddEdge`s a later
/// `RemoveNode` drops — borderline batches landed on the wrong side of
/// the rebuild threshold. Ops an invalid batch would be rejected for
/// (out-of-range ids) contribute nothing; such a batch never reaches the
/// rebuild decision anyway.
pub(crate) fn worst_churn(g: &DynGraph, delta: &GraphDelta) -> usize {
    let n0 = g.node_count() as NodeId;
    let mut next = n0;
    let mut dead: HashSet<NodeId> = HashSet::new();
    let mut added: HashSet<(NodeId, NodeId)> = HashSet::new();
    let mut removed: HashSet<(NodeId, NodeId)> = HashSet::new();
    let alive = |v: NodeId, next: NodeId, dead: &HashSet<NodeId>| {
        v < next && !dead.contains(&v) && (v >= n0 || !g.is_removed(v))
    };
    // Pre-batch tombstones hold no edges, and in-batch deaths push their
    // strips into `removed` — so edge existence needs no endpoint checks
    // beyond these sets.
    let has_now = |s: NodeId, t: NodeId, added: &HashSet<_>, removed: &HashSet<_>| {
        added.contains(&(s, t))
            || (!removed.contains(&(s, t)) && s < n0 && t < n0 && g.has_edge(s, t))
    };
    let mut churn = 0usize;
    for op in &delta.ops {
        match *op {
            DeltaOp::AddNode(_) => {
                next += 1;
                churn += 1;
            }
            DeltaOp::AddEdge(s, t) => {
                if alive(s, next, &dead)
                    && alive(t, next, &dead)
                    && !has_now(s, t, &added, &removed)
                {
                    removed.remove(&(s, t));
                    added.insert((s, t));
                    churn += 1;
                }
            }
            DeltaOp::RemoveEdge(s, t) => {
                if s < next && t < next && has_now(s, t, &added, &removed) {
                    added.remove(&(s, t));
                    removed.insert((s, t));
                    churn += 1;
                }
            }
            DeltaOp::RemoveNode(v) => {
                if !alive(v, next, &dead) {
                    continue;
                }
                // Each incident in-batch-live edge strips exactly once —
                // a self-loop appears in both adjacency lists but is one
                // edge, hence the set.
                let mut incident: BTreeSet<(NodeId, NodeId)> = BTreeSet::new();
                if v < n0 {
                    for t in g.successors(v) {
                        if !removed.contains(&(v, t)) {
                            incident.insert((v, t));
                        }
                    }
                    for s in g.predecessors(v) {
                        if !removed.contains(&(s, v)) {
                            incident.insert((s, v));
                        }
                    }
                }
                incident.extend(added.iter().copied().filter(|&(s, t)| s == v || t == v));
                for &e in &incident {
                    added.remove(&e);
                    removed.insert(e);
                }
                churn += incident.len().max(1);
                dead.insert(v);
            }
            DeltaOp::SetAttr { .. } | DeltaOp::UnsetAttr { .. } => {}
        }
    }
    churn
}

/// Pre-batch labels of the nodes `delta` removes, keyed by node id. By the
/// time the `NodeRemoved` effective op reaches a hook the slot is already
/// tombstoned, so interest filtering needs the label captured up front —
/// including for nodes the same batch adds (their ids are simulated).
pub(crate) fn removed_label_map(g: &DynGraph, delta: &GraphDelta) -> HashMap<NodeId, Label> {
    let mut next = g.node_count() as NodeId;
    let mut added: HashMap<NodeId, Label> = HashMap::new();
    let mut out = HashMap::new();
    for op in &delta.ops {
        match *op {
            DeltaOp::AddNode(label) => {
                added.insert(next, label);
                next += 1;
            }
            DeltaOp::RemoveNode(v) => {
                let label = added.get(&v).copied().unwrap_or_else(|| {
                    if (v as usize) < g.node_count() {
                        g.label(v)
                    } else {
                        TOMBSTONE_LABEL // out of range: the batch will be rejected
                    }
                });
                out.insert(v, label);
            }
            _ => {}
        }
    }
    out
}

/// The stateful half of the reach engine: the alive-pair view kept
/// packed across batches plus the incrementally maintained condensation
/// over it. Present only while the reach budget admits the retained
/// `Full(c)` bitsets — dropped (never half-trusted) when it stops
/// fitting, at which point [`PatternState::prepare_sets_traced`] falls
/// back to the per-batch [`ReachEngine`] prepare.
#[derive(Debug, Clone)]
struct MaintainedReach {
    view: DynMatchGraph,
    cond: CondensationState,
    /// Maintained upper bounds `h(uo, v)` derived from the condensation's
    /// `Full` popcounts, refolded per batch over exactly the components
    /// the condensation recomputed. `None` when bounds are disabled.
    bounds: Option<BoundState>,
}

/// Materialized simulation + ranking state of one pattern, maintained
/// against a [`DynGraph`] owned by the caller.
#[derive(Debug, Clone)]
pub(crate) struct PatternState {
    pattern: Pattern,
    cfg: IncrementalConfig,
    sim: IncSimState,
    cache: RelevanceCache,
    stats: ApplyStats,
    /// Maintained condensation state, when the budget admits one.
    maintained: Option<MaintainedReach>,
    /// Set when `maintained` was dropped by the churn gate (not the
    /// budget): the next calm batch re-adopts it with one from-scratch
    /// build. Budget drops leave this `false` so a too-big state is not
    /// rebuilt just to be re-measured and re-dropped every batch.
    maint_readopt: bool,
    /// Primary labels of the pattern's nodes — candidates of a node always
    /// carry its primary label (candidate enumeration scans the label
    /// class), so structural ops on other labels are no-ops. `None` when
    /// some pattern node's predicate implies no label (e.g. a bare `Or`):
    /// then *any* node could be its candidate and label filtering is
    /// unsound — fall back to dispatching every structural op.
    node_labels: Option<BTreeSet<Label>>,
    /// `(label(u), label(u'))` for every pattern edge `(u, u')`; `None`
    /// when some pattern edge has an endpoint without a primary label.
    edge_label_pairs: Option<BTreeSet<(Label, Label)>>,
    /// Attribute keys mentioned by any of the pattern's predicates — the
    /// registry's *attribute-key interest*: a `SetAttr`/`UnsetAttr` on any
    /// other key cannot change any candidacy, hence is a provable no-op
    /// for this pattern.
    attr_keys: BTreeSet<String>,
    /// The ranked answer last surfaced through [`Self::serve_timed`] — the
    /// baseline the next answer is diffed against, so consumers (the
    /// registry's change sets, the serving layer's subscriptions) learn
    /// *what moved*, not just the fresh list.
    served: Vec<RankedMatch>,
    /// Alive output matches whose relevant-set materialization was
    /// skipped because their maintained upper bound cannot displace the
    /// k-th answer. Invariant: `cache ∪ deferred` = the alive structural
    /// output matches, and no deferred output belongs to the true top-k.
    /// Every batch re-checks the whole set (the k-th answer can drop);
    /// they materialize eagerly when bounds become unavailable or a
    /// diversified answer needs the full cache.
    deferred: BTreeSet<NodeId>,
}

impl PatternState {
    /// Materializes the state for `q` over the current contents of `g`.
    pub(crate) fn new(
        g: &DynGraph,
        pattern: Pattern,
        cfg: IncrementalConfig,
    ) -> Result<Self, IncrementalError> {
        let sim = IncSimState::new(g, &pattern).ok_or(IncrementalError::UnsupportedPattern)?;
        let node_labels: Option<BTreeSet<Label>> =
            pattern.nodes().map(|u| pattern.predicate(u).primary_label()).collect();
        let edge_label_pairs: Option<BTreeSet<(Label, Label)>> = pattern
            .edges()
            .map(|(u, uc)| {
                Some((
                    pattern.predicate(u).primary_label()?,
                    pattern.predicate(uc).primary_label()?,
                ))
            })
            .collect();
        let mut attr_keys = BTreeSet::new();
        for u in pattern.nodes() {
            pattern.predicate(u).collect_attr_keys(&mut attr_keys);
        }
        let mut state = PatternState {
            cache: RelevanceCache::new(g.node_count()),
            pattern,
            cfg,
            sim,
            stats: ApplyStats::default(),
            node_labels,
            edge_label_pairs,
            attr_keys,
            served: Vec::new(),
            maintained: None,
            maint_readopt: false,
            deferred: BTreeSet::new(),
        };
        state.maintained = state.build_maintained(g);
        let plan = state.full_plan(g);
        state.materialize(g, &plan);
        state.sim.take_dirty();
        state.served = state.top_k().matches;
        Ok(state)
    }

    /// The pattern being served.
    pub(crate) fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The maintenance configuration.
    pub(crate) fn cfg(&self) -> &IncrementalConfig {
        &self.cfg
    }

    /// Maintenance counters.
    pub(crate) fn stats(&self) -> &ApplyStats {
        &self.stats
    }

    /// Counts one applied batch (rejected batches are not applies).
    pub(crate) fn note_apply(&mut self) {
        self.stats.applies += 1;
    }

    /// `true` when a batch of `churn` effective edge changes against a
    /// graph of `edge_count` edges should rebuild this pattern's state
    /// wholesale instead of replaying — the single definition of the
    /// rebuild policy, shared by `DynamicMatcher` and the registry.
    pub(crate) fn needs_rebuild(&self, churn: usize, edge_count: usize) -> bool {
        churn as f64 > self.cfg.max_delta_fraction * (edge_count.max(1) as f64)
    }

    /// `true` when `eff` can possibly affect this pattern's simulation —
    /// the shared-index test the registry uses to skip replays. Skipping a
    /// mutation this returns `false` for is a provable no-op: candidates
    /// are label-matched, so a node whose label the pattern never names
    /// has no pairs; an edge whose endpoint-label pair matches no pattern
    /// edge touches no support counter and seeds no revival; and an
    /// attribute mutation on a key no predicate mentions cannot change any
    /// candidacy (candidacy is a pure function of `(label, attrs)`).
    /// Patterns with label-free predicates degrade gracefully: their label
    /// filters report interested for every structural op.
    pub(crate) fn wants(
        &self,
        g: &DynGraph,
        eff: &EffectiveOp,
        removed_labels: &HashMap<NodeId, Label>,
    ) -> bool {
        match *eff {
            EffectiveOp::NodeAdded(_, label) => {
                self.node_labels.as_ref().is_none_or(|set| set.contains(&label))
            }
            EffectiveOp::EdgeAdded(s, t) | EffectiveOp::EdgeRemoved(s, t) => {
                // Labels are still intact here: RemoveNode strips incident
                // edges (emitting these ops) before tombstoning the slot.
                self.edge_label_pairs
                    .as_ref()
                    .is_none_or(|set| set.contains(&(g.label(s), g.label(t))))
            }
            EffectiveOp::NodeRemoved(v) => match removed_labels.get(&v) {
                Some(label) => self.node_labels.as_ref().is_none_or(|set| set.contains(label)),
                None => true, // unknown pre-batch label: dispatch conservatively
            },
            EffectiveOp::AttrSet { ref key, .. } | EffectiveOp::AttrUnset { ref key, .. } => {
                self.attr_keys.contains(&**key)
            }
        }
    }

    /// Replays one effective mutation through the simulation state, with
    /// `g` in exactly the intermediate state the mutation produced.
    pub(crate) fn replay(&mut self, g: &DynGraph, eff: &EffectiveOp) {
        let q = &self.pattern;
        match *eff {
            EffectiveOp::NodeAdded(v, _) => self.sim.on_node_added(g, q, v),
            EffectiveOp::EdgeAdded(s, t) => self.sim.on_edge_inserted(g, q, s, t),
            EffectiveOp::EdgeRemoved(s, t) => self.sim.on_edge_removed(g, q, s, t),
            EffectiveOp::NodeRemoved(v) => self.sim.on_node_removed(q, v),
            EffectiveOp::AttrSet { node, ref key, .. }
            | EffectiveOp::AttrUnset { node, ref key } => self.sim.on_attr_changed(g, q, node, key),
        }
    }

    /// Discards the materialized simulation and re-derives it from the
    /// current contents of `g` (the past-the-churn-threshold fallback),
    /// returning the full-cache [`RefreshPlan`] the caller materializes.
    pub(crate) fn rebuild(&mut self, g: &DynGraph) -> RefreshPlan {
        self.sim = IncSimState::new(g, &self.pattern).expect("pattern validated at construction");
        self.sim.take_dirty();
        self.stats.full_rebuilds += 1;
        self.reset_batch_bound_stats();
        let plan = self.full_plan(g);
        if let Some(mr) = &self.maintained {
            self.stats.cond_rebuilds += 1;
            if mr.bounds.is_some() {
                self.note_bound_rebuild();
            }
        }
        self.maintained = self.build_maintained(g);
        self.maint_readopt = false;
        plan
    }

    /// Post-batch bookkeeping for a pattern the shared index proved the
    /// whole batch irrelevant to: no mutation was replayed, so no pair
    /// flipped and — because a seedable changed edge needs a pattern edge
    /// with its exact endpoint-label pair, and a candidacy-changing attr
    /// flip needs a mentioned key (the same tests [`Self::wants`] applies)
    /// — the edge scan of [`Self::refresh_ranking`] could not yield a
    /// seed either. Only the width guard and the per-batch counters
    /// remain.
    pub(crate) fn refresh_untouched(&mut self, g: &DynGraph) {
        let seeds = self.sim.take_dirty();
        debug_assert!(seeds.is_empty(), "untouched pattern has no flips");
        self.cache.ensure_width(g.node_count());
        self.reset_batch_bound_stats();
        self.stats.incremental_applies += 1;
        self.stats.last_swept_pairs = 0;
        self.stats.last_dirty_outputs = 0;
    }

    /// Post-batch ranking maintenance: plan + materialize in one go (the
    /// sequential path — `DynamicMatcher`, or registry patterns whose
    /// dirty set is too small to split across the pool). `g` must already
    /// be in the post-batch state described by `applied`; `plan`,
    /// `prepare` and `extract` children land on `span` (pass
    /// [`Span::disabled`] for an untraced refresh).
    pub(crate) fn refresh_ranking_traced(
        &mut self,
        g: &DynGraph,
        applied: &AppliedDelta,
        span: &Span,
    ) {
        let flips = self.maintain_reach(g, applied, span);
        let plan = {
            let plan_span = span.child("plan");
            let plan = self.plan_refresh(g, applied, flips);
            if plan_span.is_enabled() {
                plan_span.detail(format!("outputs={} pruned={}", plan.len(), plan.pruned()));
            }
            plan
        };
        self.materialize_threads(g, &plan, self.cfg.reach.threads, span);
    }

    /// Folds the batch into the maintained reach state (pair view +
    /// condensation), **draining the simulation's flips** — which it
    /// returns for [`Self::plan_refresh`] to seed from, so the two
    /// consumers of `take_dirty` stay one. Must run once per applied
    /// batch, before planning. Emits a `condense_incremental` child span
    /// and counts incremental applies vs. full re-condensation fallbacks.
    ///
    /// Batch churn above [`COND_MAINT_MAX_CHURN_FRACTION`] of the alive
    /// pairs (with an absolute floor of [`COND_MAINT_CHURN_FLOOR`] so
    /// tiny graphs always maintain) rebuilds the packing and the
    /// condensation from scratch instead — incremental maintenance only
    /// pays off while the touched region is small.
    pub(crate) fn maintain_reach(
        &mut self,
        g: &DynGraph,
        applied: &AppliedDelta,
        span: &Span,
    ) -> Vec<DynPair> {
        let flips = self.sim.take_dirty();
        self.cache.ensure_width(g.node_count());
        self.reset_batch_bound_stats();
        let churn = flips.len() + applied.added_edges.len() + applied.removed_edges.len();
        let Some(mut mr) = self.maintained.take() else {
            // Re-adoption after a churn drop: once the stream is calm
            // again one from-scratch build restores the maintained state,
            // paid back over the cheap batches that follow. A build the
            // budget rejects clears the flag so it is not retried.
            if self.maint_readopt {
                let alive: usize = self.pattern.nodes().map(|u| self.sim.candidate_count(u)).sum();
                if !churn_high(churn, alive, self.cfg.max_cond_churn_fraction) {
                    let ci = span.child("condense_incremental");
                    ci.event("cond-churn-readopt");
                    self.stats.cond_rebuilds += 1;
                    self.maintained = self.build_maintained(g);
                    self.maint_readopt = false;
                }
            }
            return flips;
        };
        let ci = span.child("condense_incremental");
        if mr.view.universe_size() != self.cache.width() {
            // The cache migrated to a wider universe: the retained bitsets
            // are the wrong width, so the view/condensation restart there.
            ci.event("cond-width-rebuild");
            self.stats.cond_rebuilds += 1;
            if mr.bounds.is_some() {
                self.note_bound_rebuild();
            }
            self.maintained = self.build_maintained(g);
            return flips;
        }
        // Past a churn threshold the incremental dance — per-edge CSR
        // surgery in the view plus the bounded-region re-condensation —
        // costs more than the per-batch engine pipeline (the dirty_region
        // sweep crosses between 2% and 25% dirty). The PR 1
        // rebuild-threshold pattern, one layer down: drop the maintained
        // state and let `prepare_sets` run the from-scratch engine
        // prepare, which only materializes the planned sources. The
        // absolute floor keeps small graphs (and the adversarial unit
        // streams) on the incremental path, where maintenance is always
        // cheap enough.
        if churn_high(churn, mr.view.alive_count(), self.cfg.max_cond_churn_fraction) {
            ci.event("cond-churn-drop");
            self.stats.cond_rebuilds += 1;
            self.maintained = None;
            self.maint_readopt = true;
            return flips;
        }
        let delta = mr.view.apply_pair_delta(
            g,
            &self.pattern,
            &self.sim,
            &flips,
            &applied.added_edges,
            &applied.removed_edges,
        );
        if delta.is_empty() {
            self.stats.cond_incremental += 1;
            self.maintained = Some(mr);
            return flips;
        }
        match mr.cond.apply(&mr.view, &delta, &CondPolicy::default()) {
            Ok(ms) => {
                self.stats.cond_incremental += 1;
                if ci.is_enabled() {
                    ci.detail(format!(
                        "changes={} region={} fulls={}",
                        delta.change_count(),
                        ms.region_pairs,
                        ms.recomputed_fulls
                    ));
                }
                if mr.cond.retained_bytes() > self.cfg.reach.budget_bytes {
                    // Outgrew the budget: drop to the per-batch engine
                    // (which makes its own budget decision every prepare).
                    ci.event("cond-budget-drop");
                    self.maintained = None;
                    self.maint_readopt = false;
                    return flips;
                }
                if let Some(bs) = mr.bounds.as_mut() {
                    let br = span.child("bound_refold");
                    let t0 = Instant::now();
                    let r = bs.apply(&mr.cond, mr.view.alive_count(), &self.cfg.bounds);
                    self.stats.last_bound_refold_ns =
                        (t0.elapsed().as_nanos().min(u64::MAX as u128) as u64).max(1);
                    self.stats.bound_refolds += 1;
                    if r.rebuilt_all {
                        self.note_bound_rebuild();
                    }
                    if br.is_enabled() {
                        br.detail(format!(
                            "refolded={} rebuilt_all={} mode={}",
                            r.refolded,
                            r.rebuilt_all,
                            bs.mode_label()
                        ));
                    }
                }
                self.maintained = Some(mr);
            }
            Err(e) => {
                // Past the policy thresholds a from-scratch condensation
                // is cheaper than the bounded-region dance — the PR 1
                // rebuild-threshold pattern, one layer down. The view is
                // already post-batch; only the condensation restarts.
                ci.event(match e {
                    MaintainError::ProbeOverflow => "cond-probe-fallback",
                    MaintainError::RegionOverflow => "cond-region-fallback",
                });
                self.stats.cond_rebuilds += 1;
                mr.cond = CondensationState::build(&mr.view, |p| mr.view.is_alive(p));
                if let Some(bs) = mr.bounds.as_mut() {
                    *bs = BoundState::build(&mr.cond, mr.view.alive_count(), &self.cfg.bounds);
                    self.note_bound_rebuild();
                }
                self.maintained = Some(mr);
            }
        }
        flips
    }

    /// Per-batch bound accounting reset — every refresh entry point
    /// (maintained, rebuild, untouched) starts here so the registry can
    /// read `last_*` fields as exactly this batch's contribution.
    fn reset_batch_bound_stats(&mut self) {
        self.stats.last_bound_refold_ns = 0;
        self.stats.last_bound_rebuilds = 0;
        self.stats.last_pruned_outputs = 0;
    }

    fn note_bound_rebuild(&mut self) {
        self.stats.bound_rebuilds += 1;
        self.stats.last_bound_rebuilds += 1;
    }

    /// Derives the dirty seeds from the simulation flips and the changed
    /// data edges, sweeps backward to the affected output matches, and
    /// returns the [`RefreshPlan`] naming the relevant sets to re-derive
    /// (or, past the dirtiness threshold, all of them). Output matches
    /// that died are dropped from the cache here; the plan holds only
    /// alive ones.
    pub(crate) fn plan_refresh(
        &mut self,
        g: &DynGraph,
        applied: &AppliedDelta,
        flips: Vec<DynPair>,
    ) -> RefreshPlan {
        // Seeds of the dirtiness sweep: every alive-flip (drained by
        // [`Self::maintain_reach`], which must run first), plus the source
        // pairs of every changed data edge (an edge between two alive pairs
        // changes match-graph reachability without flipping anybody).
        // Target candidacy is tested with the ever-candidate map, not the
        // valid flag: for edges dropped by a node tombstone the target's
        // valid flag is already cleared by the time this runs, but the
        // surviving source pairs still lost a relevant descendant. Sources
        // tombstoned in the same batch need no seed of their own — their
        // incoming edges were removed too, seeding every live ancestor.
        let mut seeds: Vec<DynPair> = flips;
        for &(v, w) in applied.added_edges.iter().chain(&applied.removed_edges) {
            for u in self.pattern.nodes() {
                if !self.sim.is_candidate(u, v) {
                    continue;
                }
                let touches =
                    self.pattern.successors(u).iter().any(|&uc| self.sim.ever_candidate(uc, w));
                if touches {
                    seeds.push((u, v));
                }
            }
        }
        self.cache.ensure_width(g.node_count());

        if seeds.is_empty() {
            self.stats.incremental_applies += 1;
            self.stats.last_swept_pairs = 0;
            self.stats.last_dirty_outputs = 0;
            return RefreshPlan::default();
        }

        // Backward sweep: every valid candidate pair that can reach a seed
        // in the candidate-pair graph (alive-agnostic — old paths may run
        // through freshly dead pairs) might have gained or lost relevant
        // descendants.
        let uo = self.pattern.output();
        let total_pairs: usize = self.pattern.nodes().map(|u| self.sim.candidate_count(u)).sum();
        let sweep_cap = (self.cfg.max_dirty_fraction * total_pairs.max(1) as f64).ceil() as usize;
        let mut visited: HashSet<DynPair> = seeds.iter().copied().collect();
        let mut queue: Vec<DynPair> = visited.iter().copied().collect();
        let mut overflow = false;
        let mut cursor = 0;
        while cursor < queue.len() {
            if visited.len() > sweep_cap {
                overflow = true;
                break;
            }
            let (u, x) = queue[cursor];
            cursor += 1;
            for &t in self.pattern.predecessors(u) {
                for y in g.predecessors(x) {
                    if self.sim.is_candidate(t, y) && visited.insert((t, y)) {
                        queue.push((t, y));
                    }
                }
            }
        }
        self.stats.last_swept_pairs = visited.len();

        if overflow {
            // The affected region is most of the graph: rebuild the whole
            // cache (simulation stays incremental — it already converged).
            self.stats.full_rank_refreshes += 1;
            return self.full_plan(g);
        }

        // Partial refresh: only the affected output matches need work.
        let mut dirty_outputs: Vec<NodeId> =
            visited.iter().filter(|&&(u, _)| u == uo).map(|&(_, v)| v).collect();
        dirty_outputs.sort_unstable();
        self.stats.last_dirty_outputs = dirty_outputs.len();

        // Candidates needing fresh sets: the dirty alive outputs plus the
        // whole deferred backlog. The k-th answer can *drop*, readmitting
        // a deferred output — and a non-dirty deferred output's bound is
        // provably unchanged (any reach change seeds the sweep, which
        // would have made it dirty), so re-checking it against the
        // current k-th stays exact. Dead outputs leave both sides.
        let mut candidates: Vec<NodeId> =
            Vec::with_capacity(dirty_outputs.len() + self.deferred.len());
        for v in dirty_outputs {
            if self.sim.pair_alive(uo, v) {
                candidates.push(v);
            } else {
                self.cache.remove(v);
                self.deferred.remove(&v);
            }
        }
        let dirty_alive = candidates.len();
        for &v in &self.deferred {
            if candidates[..dirty_alive].binary_search(&v).is_err() {
                candidates.push(v);
            }
        }
        candidates.sort_unstable();
        self.stats.incremental_applies += 1;
        if candidates.is_empty() {
            return RefreshPlan::default();
        }

        // Bound-driven pruning, when the maintained index is live and
        // width-aligned with the cache (the same filter prepare applies).
        let bounds_live = self
            .maintained
            .as_ref()
            .is_some_and(|mr| mr.bounds.is_some() && mr.cond.width() == self.cache.width());
        if !bounds_live {
            // No usable bound index: flush — materialize everything,
            // including any backlog deferred under a previous index.
            self.deferred.clear();
            return RefreshPlan { outputs: candidates, pruned_outputs: 0 };
        }

        // Seed the selector with surviving clean answers: their cached
        // relevances are exact, and materializing planned outputs can only
        // improve the k-th entry under `(relevance desc, node asc)` — so a
        // candidate dominated now stays dominated by the final answer
        // (single-round pruning is exact, no second pass needed). Any
        // lower bound on the final k-th entry keeps that argument, so the
        // last served top-k (clean members re-read from the cache, whose
        // relevances cannot have moved without making them candidates) is
        // enough — O(k) instead of a cache-wide scan. When fewer than k
        // served entries survive cleanly (top-k churn, nothing served
        // yet), fall back to the exhaustive scan: an under-filled
        // selector dominates nothing and would disable pruning outright.
        let mut sel = BoundedSelector::new(self.cfg.k);
        let mut seeded = 0usize;
        for mch in &self.served {
            if candidates.binary_search(&mch.node).is_ok() {
                continue;
            }
            if let Some(r) = self.cache.relevance_of(mch.node) {
                sel.offer(mch.node as usize, mch.node, r);
                seeded += 1;
            }
        }
        if seeded < self.cfg.k {
            sel = BoundedSelector::new(self.cfg.k);
            for (v, r) in self.cache.relevances() {
                if candidates.binary_search(&v).is_err() {
                    sel.offer(v as usize, v, r);
                }
            }
        }
        let mr = self.maintained.as_ref().expect("bounds_live");
        let bs = mr.bounds.as_ref().expect("bounds_live");
        let mut outputs = Vec::with_capacity(candidates.len());
        let mut pruned = 0usize;
        for v in candidates {
            let h = mr.view.compact_of(uo, v).and_then(|p| bs.h_for(&mr.cond, p));
            match h {
                Some(h) if sel.dominates(h, v) => {
                    pruned += 1;
                    self.cache.remove(v);
                    self.deferred.insert(v);
                }
                _ => {
                    self.deferred.remove(&v);
                    outputs.push(v);
                }
            }
        }
        self.stats.last_pruned_outputs = pruned;
        self.stats.pruned_outputs += pruned as u64;
        RefreshPlan { outputs, pruned_outputs: pruned }
    }

    /// The current top-k by relevance.
    pub(crate) fn top_k(&self) -> TopKResult {
        self.top_k_timed(Instant::now())
    }

    /// As [`Self::serve_timed`] measured from now.
    pub(crate) fn serve(&mut self) -> (TopKResult, AnswerDiff) {
        self.serve_timed(Instant::now())
    }

    /// Serves the current answer together with its diff against the
    /// previously served one, advancing the served baseline. The diff is
    /// empty exactly when the answer did not materially change (same
    /// `(node, δr)` sequence) — the signal push consumers key on.
    pub(crate) fn serve_timed(&mut self, t0: Instant) -> (TopKResult, AnswerDiff) {
        let top = self.top_k_timed(t0);
        self.stats.last_refresh_ns = top.stats.elapsed.as_nanos().min(u64::MAX as u128) as u64;
        let diff = AnswerDiff::between(&self.served, &top.matches);
        if !diff.is_empty() {
            self.served = top.matches.clone();
        }
        (top, diff)
    }

    /// As [`Self::top_k`] with timing measured from `t0` (so `apply`
    /// latencies include the maintenance work).
    pub(crate) fn top_k_timed(&self, t0: Instant) -> TopKResult {
        let q = &self.pattern;
        // Under the paper's emptiness rule Mu(Q,G,uo) = ∅ even though the
        // cache stays structurally maintained — report stats the way the
        // static pipeline would (total known to be 0). Deferred outputs
        // are alive matches whose sets were never inspected — they count
        // toward the total but not the inspected tally, and their
        // existence is exactly what "early terminated" means here.
        let (matches, inspected, total) = if self.sim.graph_matches(q) {
            (
                rank_top_k(self.cache.relevances(), self.cfg.k),
                self.cache.len(),
                self.cache.len() + self.deferred.len(),
            )
        } else {
            (Vec::new(), 0, 0)
        };
        TopKResult {
            matches,
            stats: RunStats {
                output_candidates: self.sim.candidate_count(q.output()),
                inspected_matches: inspected,
                total_matches: Some(total),
                waves: 1,
                early_terminated: total > inspected,
                elapsed: t0.elapsed(),
                ..Default::default()
            },
        }
    }

    /// The normalizer `Cuo` the diversified objective divides `δr` by —
    /// computed from the maintained candidate counts through the same
    /// [`c_uo_with`] definition the static pipeline uses.
    pub(crate) fn normalizer(&self) -> u64 {
        c_uo_with(&self.pattern, |u| self.sim.candidate_count(u))
    }

    /// Materializes every deferred output's relevant set, emptying the
    /// deferred set — the eager escape hatch for consumers that need the
    /// **full** cache (the diversified objective scores pairwise
    /// distances over all matches, so bounds on relevance alone cannot
    /// prune for it honestly).
    pub(crate) fn ensure_complete(&mut self, g: &DynGraph) {
        if self.deferred.is_empty() {
            return;
        }
        let outputs: Vec<NodeId> = std::mem::take(&mut self.deferred).into_iter().collect();
        let plan = RefreshPlan { outputs, pruned_outputs: 0 };
        self.materialize(g, &plan);
    }

    /// The current diversified top-k with an explicit `λ`. Takes the
    /// graph because a deferred backlog must materialize first: `F(S)`
    /// mixes relevance with pairwise set distances, and a relevance
    /// upper bound says nothing about diversity — pruning here would be
    /// dishonest, so the answer is computed on the complete cache.
    pub(crate) fn diversified(&mut self, g: &DynGraph, lambda: f64) -> DivResult {
        self.ensure_complete(g);
        let t0 = Instant::now();
        let q = &self.pattern;
        if !self.sim.graph_matches(q) {
            // Mirror the static pipeline's stats: Mu(Q,G,uo) = ∅, known.
            return DivResult {
                matches: Vec::new(),
                f_value: 0.0,
                stats: RunStats {
                    output_candidates: self.sim.candidate_count(q.output()),
                    total_matches: Some(0),
                    elapsed: t0.elapsed(),
                    ..Default::default()
                },
            };
        }
        let objective = Objective::new(lambda, self.cfg.k, self.normalizer());
        let (matches, rel): (Vec<NodeId>, Vec<f64>) =
            self.cache.relevances().map(|(v, r)| (v, r as f64)).unzip();
        let d = |i: usize, j: usize| self.cache.distance(matches[i], matches[j]).expect("cached");
        let (selected, f_value) = greedy_diversified(&objective, &rel, &d);
        let picked: Vec<RankedMatch> = selected
            .iter()
            .map(|&i| RankedMatch { node: matches[i], relevance: rel[i] as u64 })
            .collect();
        DivResult {
            matches: picked,
            f_value,
            stats: RunStats {
                output_candidates: self.sim.candidate_count(q.output()),
                inspected_matches: matches.len(),
                total_matches: Some(matches.len()),
                elapsed: t0.elapsed(),
                ..Default::default()
            },
        }
    }

    // ---------------------------------------------------------- internals

    /// Resets the cache and plans a re-derivation of **every** structural
    /// output match (fresh registration, churn rebuild, sweep overflow).
    fn full_plan(&mut self, g: &DynGraph) -> RefreshPlan {
        self.cache = RelevanceCache::new(g.node_count());
        self.deferred.clear();
        RefreshPlan {
            outputs: self.sim.structural_matches_of(self.pattern.output()),
            pruned_outputs: 0,
        }
    }

    /// Builds the maintained reach state from scratch over the current
    /// graph, or `None` when the reach budget can't hold it: if a single
    /// universe-wide bitset doesn't fit, neither would any `Full(c)` (the
    /// same early bail the per-batch engine takes), and a built state
    /// whose retained bytes exceed the budget is discarded rather than
    /// kept on credit.
    fn build_maintained(&self, g: &DynGraph) -> Option<MaintainedReach> {
        let budget = self.cfg.reach.budget_bytes;
        if self.cache.width().div_ceil(64) * 8 > budget {
            return None;
        }
        let view = DynMatchGraph::over_alive(g, &self.pattern, &self.sim, self.cache.width());
        let cond = CondensationState::build(&view, |p| view.is_alive(p));
        if cond.retained_bytes() > budget {
            return None;
        }
        let bounds = self
            .cfg
            .bounds
            .enabled
            .then(|| BoundState::build(&cond, view.alive_count(), &self.cfg.bounds));
        Some(MaintainedReach { view, cond, bounds })
    }

    /// Phase 1 of the shared reach engine over the current graph: builds
    /// the alive-pair view **once** and condenses it — the work every
    /// planned output amortizes, however many there are. Extraction
    /// (phase 2) is read-only, so the returned value can be fanned out
    /// across worker threads. Opens a `prepare` child span on `span`
    /// (whose `tarjan`/`bitsets` sub-phases and budget-fallback events
    /// the reach engine fills in) so per-batch traces show where DP
    /// preparation time goes.
    pub(crate) fn prepare_sets_traced(
        &self,
        g: &DynGraph,
        plan: &RefreshPlan,
        span: &Span,
    ) -> PreparedSets {
        let prep = span.child("prepare");
        let q = &self.pattern;
        let uo = q.output();
        // Maintained mode: phase 1 already happened, spread over every
        // batch since the state was built — prepare is just refcounting
        // the planned outputs' component handles, O(plan), not O(view).
        // The width filter covers a sweep-overflow `full_plan` re-padding
        // the cache after this batch's width check already ran: one
        // engine-path batch, and the next `maintain_reach` rebuilds.
        if let Some(mr) =
            self.maintained.as_ref().filter(|mr| mr.cond.width() == self.cache.width())
        {
            let handles: Vec<SetHandle> = plan
                .outputs
                .iter()
                .map(|&v| {
                    let c = mr.view.compact_of(uo, v).expect("planned outputs are alive");
                    mr.cond.handle_for(c)
                })
                .collect();
            if prep.is_enabled() {
                prep.detail(format!("sources={} dp=true maintained=true", plan.len()));
            }
            return PreparedSets::Maintained { handles, width: mr.cond.width() };
        }
        let view = DynMatchGraph::over_alive(g, q, &self.sim, self.cache.width());
        let sources: Vec<u32> = plan
            .outputs
            .iter()
            .map(|&v| view.compact_of(uo, v).expect("planned outputs are alive"))
            .collect();
        let engine = ReachEngine::prepare_traced(view, sources, &self.cfg.reach, &prep);
        if prep.is_enabled() {
            prep.detail(format!("sources={} dp={}", plan.len(), engine.used_dp()));
        }
        PreparedSets::Engine { engine: Box::new(engine) }
    }

    /// Stores the extracted relevant sets under the plan's outputs — the
    /// deterministic merge step (`sets[i]` belongs to `plan.outputs[i]`,
    /// whatever thread produced it).
    pub(crate) fn apply_sets(&mut self, plan: &RefreshPlan, sets: Vec<BitSet>) {
        debug_assert_eq!(plan.outputs.len(), sets.len());
        for (&v, set) in plan.outputs.iter().zip(sets) {
            self.cache.upsert_bits(v, set);
            self.stats.sets_recomputed += 1;
        }
    }

    /// Materializes a plan with the configured fallback parallelism:
    /// prepare once, extract every output (scoped threads in BFS-fallback
    /// mode per `reach.threads`), merge. For standalone owners
    /// (`DynamicMatcher`, registration) — registry pool workers call
    /// [`Self::materialize_seq`] instead.
    pub(crate) fn materialize(&mut self, g: &DynGraph, plan: &RefreshPlan) {
        self.materialize_threads(g, plan, self.cfg.reach.threads, &Span::disabled());
    }

    /// As [`Self::materialize`] pinned to the calling thread — the form a
    /// registry pool worker uses, where spawning scoped threads would
    /// reintroduce the per-batch thread churn the persistent pool exists
    /// to avoid (big dirty sets go through the pool split instead).
    /// `prepare` + `extract` children land on `span`.
    pub(crate) fn materialize_seq_traced(&mut self, g: &DynGraph, plan: &RefreshPlan, span: &Span) {
        self.materialize_threads(g, plan, 1, span);
    }

    fn materialize_threads(
        &mut self,
        g: &DynGraph,
        plan: &RefreshPlan,
        threads: usize,
        span: &Span,
    ) {
        if plan.outputs.is_empty() {
            return;
        }
        let prepared = self.prepare_sets_traced(g, plan, span);
        let sets = {
            let ex = span.child("extract");
            if ex.is_enabled() {
                ex.detail(format!("outputs={}", plan.len()));
            }
            match &prepared {
                PreparedSets::Engine { engine } => engine.extract_all(threads),
                // Handle resolution is a bitset clone (or a short union)
                // per output — memcpy-bound, no point spawning threads.
                PreparedSets::Maintained { handles, width } => {
                    handles.iter().map(|h| h.resolve(*width)).collect()
                }
            }
        };
        self.apply_sets(plan, sets);
    }

    /// Relevant set of output match `v` by forward BFS over the alive
    /// match graph (adjacency derived on the fly from the dynamic graph
    /// and the simulation state) — the pre-DP derivation, kept **only**
    /// as a differential oracle for the shared reach engine. Strict
    /// reachability: seeded from the pair's successors, so `v` itself
    /// only enters through a cycle.
    #[cfg(test)]
    pub(crate) fn relevant_set_bfs(&self, g: &DynGraph, v: NodeId) -> Vec<usize> {
        let q = &self.pattern;
        let uo = q.output();
        let mut visited: HashSet<DynPair> = HashSet::new();
        let mut queue: Vec<DynPair> = Vec::new();
        let push_children =
            |from: DynPair, visited: &mut HashSet<DynPair>, queue: &mut Vec<DynPair>| {
                let (u, x) = from;
                for &uc in q.successors(u) {
                    for w in g.successors(x) {
                        if self.sim.pair_alive(uc, w) && visited.insert((uc, w)) {
                            queue.push((uc, w));
                        }
                    }
                }
            };
        push_children((uo, v), &mut visited, &mut queue);
        let mut cursor = 0;
        while cursor < queue.len() {
            let p = queue[cursor];
            cursor += 1;
            push_children(p, &mut visited, &mut queue);
        }
        let nodes: HashSet<usize> = visited.iter().map(|&(_, x)| x as usize).collect();
        let mut out: Vec<usize> = nodes.into_iter().collect();
        out.sort_unstable();
        out
    }

    /// Test access to the cache (the DP ≡ BFS oracle reads it).
    #[cfg(test)]
    pub(crate) fn cache(&self) -> &RelevanceCache {
        &self.cache
    }

    /// Test access to the simulation state.
    #[cfg(test)]
    pub(crate) fn sim(&self) -> &IncSimState {
        &self.sim
    }

    /// Test access to the deferred (bound-pruned, unmaterialized) outputs.
    #[cfg(test)]
    pub(crate) fn deferred_outputs(&self) -> &BTreeSet<NodeId> {
        &self.deferred
    }

    /// Differential oracle for the maintained reach state (trivially `Ok`
    /// when the budget keeps it off): the maintained pair view must equal
    /// a scratch packing over the current simulation, and the maintained
    /// condensation must validate against a from-scratch build — the
    /// partition, triviality and every retained `Full(c)`. Returns the
    /// first divergence as a message; the production auditor surfaces it
    /// through health instead of crashing the service.
    pub(crate) fn verify_maintained(&self, g: &DynGraph) -> Result<(), String> {
        let Some(mr) = &self.maintained else { return Ok(()) };
        let fresh = DynMatchGraph::over_alive(g, &self.pattern, &self.sim, mr.view.universe_size());
        if mr.view.alive_count() != fresh.len() {
            return Err(format!(
                "maintained view: alive pair count {} != fresh {}",
                mr.view.alive_count(),
                fresh.len()
            ));
        }
        if mr.view.edge_count() != fresh.edge_count() {
            return Err(format!(
                "maintained view: pair edge count {} != fresh {}",
                mr.view.edge_count(),
                fresh.edge_count()
            ));
        }
        for fc in 0..fresh.len() as u32 {
            let (u, v) = (fresh.pattern_node(fc), fresh.data_node(fc));
            let Some(mc) = mr.view.compact_of(u, v) else {
                return Err(format!("maintained view: alive pair ({u},{v}) missing"));
            };
            let want: BTreeSet<(u32, u32)> = fresh
                .successors(fc)
                .iter()
                .map(|&s| (fresh.pattern_node(s), fresh.data_node(s)))
                .collect();
            let got: BTreeSet<(u32, u32)> = mr
                .view
                .successors(mc)
                .iter()
                .map(|&s| (mr.view.pattern_node(s), mr.view.data_node(s)))
                .collect();
            if got != want {
                return Err(format!(
                    "maintained view: adjacency of ({u},{v}) diverged: {got:?} != {want:?}"
                ));
            }
        }
        mr.cond
            .validate(&mr.view, |p| mr.view.is_alive(p))
            .map_err(|msg| format!("maintained condensation diverged: {msg}"))?;
        if let Some(bs) = &mr.bounds {
            bs.validate(&mr.cond, mr.view.alive_count())
                .map_err(|msg| format!("maintained bounds diverged: {msg}"))?;
        }
        Ok(())
    }

    /// Panicking wrapper over [`Self::verify_maintained`] — test
    /// harnesses call this after every batch.
    pub(crate) fn check_maintained(&self, g: &DynGraph) {
        if let Err(msg) = self.verify_maintained(g) {
            panic!("{msg}");
        }
    }

    /// Full correctness audit of this pattern against `g`: the
    /// simulation-invariant oracle (match-condition closure plus the
    /// fixpoint check) and the maintained-reach oracle, both non-fatal.
    /// This is what the sampled production auditor runs in the background.
    pub(crate) fn audit(&self, g: &DynGraph) -> Result<(), String> {
        if !self.sim.check_invariants(g, &self.pattern) {
            return Err("simulation invariants violated (see stderr for detail)".to_string());
        }
        self.verify_maintained(g)
    }

    /// How relevant-set preparation currently runs: `"maintained"` while
    /// the incremental condensation is alive, `"readopt-pending"` when the
    /// churn gate dropped it and the next calm batch will rebuild it, and
    /// `"engine"` for the per-batch prepare (budget drop or never adopted).
    pub(crate) fn reach_mode(&self) -> &'static str {
        if self.maintained.is_some() {
            "maintained"
        } else if self.maint_readopt {
            "readopt-pending"
        } else {
            "engine"
        }
    }

    /// The active bound mode: `"per-component"` / `"global"` while the
    /// maintained bound index is alive, `"off"` otherwise (disabled by
    /// config, or the maintained reach state itself is down).
    pub(crate) fn bound_mode(&self) -> &'static str {
        match self.maintained.as_ref().and_then(|mr| mr.bounds.as_ref()) {
            Some(bs) => bs.mode_label(),
            None => "off",
        }
    }

    /// Deliberately desynchronizes the maintained pair view from the
    /// simulation by unlinking the pair edges one real data edge induces
    /// (the graph and simulation are untouched, so [`Self::audit`] must
    /// report the divergence). Returns `false` when there is nothing to
    /// corrupt — no maintained state, or a view with no pair edges.
    #[doc(hidden)]
    pub(crate) fn corrupt_maintained_for_test(&mut self, g: &DynGraph) -> bool {
        let Some(mr) = self.maintained.as_mut() else { return false };
        let mut edge = None;
        for c in 0..mr.view.len() as u32 {
            if !mr.view.is_alive(c) {
                continue;
            }
            if let Some(&s) = mr.view.successors(c).first() {
                edge = Some((mr.view.data_node(c), mr.view.data_node(s)));
                break;
            }
        }
        let Some((v, w)) = edge else { return false };
        let delta = mr.view.apply_pair_delta(g, &self.pattern, &self.sim, &[], &[], &[(v, w)]);
        !delta.is_empty()
    }

    /// Weak handles on the maintained condensation's retained `Full(c)`
    /// bitsets — the leak audit upgrades them after a `deregister` to
    /// prove nothing but parked extraction handles keeps them alive.
    #[doc(hidden)]
    pub(crate) fn maintained_weak_fulls(&self) -> Option<Vec<std::sync::Weak<BitSet>>> {
        self.maintained.as_ref().map(|mr| mr.cond.weak_fulls())
    }
}

/// Which output matches a batch left needing fresh relevant sets —
/// produced by [`PatternState::plan_refresh`] / [`PatternState::rebuild`],
/// consumed by [`PatternState::materialize`] (sequential) or the
/// registry's intra-pattern split (parallel extraction).
#[derive(Debug, Default)]
pub(crate) struct RefreshPlan {
    /// Alive output matches to (re)derive, ascending.
    outputs: Vec<NodeId>,
    /// Alive output matches the maintained bound index proved unable to
    /// displace the k-th answer — parked in the deferred set instead of
    /// materialized. Already excluded from `outputs`.
    pruned_outputs: usize,
}

impl RefreshPlan {
    /// Number of sets to materialize.
    pub(crate) fn len(&self) -> usize {
        self.outputs.len()
    }

    /// Outputs the bound index pruned from this plan.
    pub(crate) fn pruned(&self) -> usize {
        self.pruned_outputs
    }
}

/// A reach computation ready for extraction. Two provenances: a
/// per-batch [`ReachEngine`] phase 1 (the alive-pair view plus the
/// condensation DP's retained bitsets, or the BFS-fallback decision), or
/// refcounted [`SetHandle`]s snapshotted off the maintained condensation
/// — the handles stay valid however the state mutates afterwards, so a
/// parked `PreparedSets` can cross into registry phase 2b (or outlive a
/// `deregister`) holding only its own bitsets alive. Extraction is
/// `&self` and thread-safe either way.
pub(crate) enum PreparedSets {
    Engine { engine: Box<ReachEngine<DynMatchGraph>> },
    Maintained { handles: Vec<SetHandle>, width: usize },
}

impl PreparedSets {
    /// Number of planned outputs.
    pub(crate) fn len(&self) -> usize {
        match self {
            PreparedSets::Engine { engine } => engine.len(),
            PreparedSets::Maintained { handles, .. } => handles.len(),
        }
    }

    /// A per-thread extraction handle over this prepared computation
    /// (shares the retained sets read-only; owns any BFS scratch).
    pub(crate) fn extractor(&self) -> SetsExtractor<'_> {
        match self {
            PreparedSets::Engine { engine } => SetsExtractor::Engine(engine.extractor()),
            PreparedSets::Maintained { handles, width } => {
                SetsExtractor::Maintained { handles, width: *width }
            }
        }
    }

    /// `true` when fanning this extraction across pool workers can pay:
    /// per-source BFS (the budget fallback) is always a real traversal
    /// per output, while DP extraction — engine-prepared or maintained —
    /// is a bitset clone per output, worth a pool barrier only at real
    /// memcpy volume.
    pub(crate) fn split_worthwhile(&self) -> bool {
        /// Total bytes of DP extraction below which the barrier costs
        /// more than parallel memcpy saves.
        const MIN_DP_SPLIT_BYTES: usize = 4 << 20;
        let (n, universe) = match self {
            PreparedSets::Engine { engine } => {
                if !engine.used_dp() {
                    return true;
                }
                (engine.len(), engine.universe_size())
            }
            PreparedSets::Maintained { handles, width } => (handles.len(), *width),
        };
        n.saturating_mul(universe.div_ceil(8)) >= MIN_DP_SPLIT_BYTES
    }

    /// `true` when the condensation DP ran (vs. the budget-forced BFS).
    #[cfg(test)]
    pub(crate) fn used_dp(&self) -> bool {
        match self {
            PreparedSets::Engine { engine } => engine.used_dp(),
            PreparedSets::Maintained { .. } => true,
        }
    }
}

/// Extraction handle over a [`PreparedSets`], one per worker thread.
pub(crate) enum SetsExtractor<'a> {
    Engine(ReachExtractor<'a, DynMatchGraph>),
    Maintained { handles: &'a [SetHandle], width: usize },
}

impl SetsExtractor<'_> {
    /// The strict-reach set of planned output `i`, as an owned bitset.
    pub(crate) fn extract(&mut self, i: usize) -> BitSet {
        match self {
            SetsExtractor::Engine(ex) => ex.extract(i),
            SetsExtractor::Maintained { handles, width } => handles[i].resolve(*width),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DynamicMatcher;
    use gpm_graph::builder::graph_from_parts;
    use gpm_graph::DiGraph;
    use gpm_pattern::builder::label_pattern;
    use gpm_ranking::ReachConfig;
    use proptest::prelude::*;

    /// The oracle: every cached relevant set must equal the pre-DP
    /// per-source BFS derivation, cache ∪ deferred must hold exactly the
    /// structural output matches, the maintained condensation and bound
    /// index (when the budget keeps them on) must equal from-scratch
    /// builds, and the served top-k must equal the rank over exact BFS
    /// relevances of **every** match — deferral must be answer-invisible.
    fn assert_cache_matches_bfs(m: &DynamicMatcher) {
        let st = m.state();
        let g = m.graph();
        st.check_maintained(g);
        let uo = st.pattern().output();
        let expect = st.sim().structural_matches_of(uo);
        let mut have = st.cache().matches();
        have.extend(st.deferred_outputs().iter().copied());
        have.sort_unstable();
        assert_eq!(have, expect, "cache ∪ deferred != structural matches");
        for v in st.cache().matches() {
            let bfs = st.relevant_set_bfs(g, v);
            let dp: Vec<usize> = st.cache().set_of(v).expect("cached").iter().collect();
            assert_eq!(dp, bfs, "relevant set of output match {v}");
        }
        if st.sim().graph_matches(st.pattern()) {
            let truth =
                expect.iter().map(|&v| (v, st.relevant_set_bfs(g, v).len() as u64));
            let want = rank_top_k(truth, st.cfg().k);
            assert_eq!(st.top_k().matches, want, "bound pruning changed the answer");
        }
    }

    /// Raw op codes decoded into a `GraphDelta` against the current graph
    /// (the root property harness's scheme: 0..6 edges, 6..8 nodes).
    fn decode(g: &DynGraph, ops: &[(u8, u32, u32)]) -> GraphDelta {
        let mut delta = GraphDelta::new();
        let n = g.node_count() as u32;
        for &(code, a, b) in ops {
            let (a, b) = (a % n, b % n);
            if code % 2 == 0 {
                if code >= 6 {
                    delta = delta.add_node(a % 3);
                } else if a != b {
                    delta = delta.add_edge(a, b);
                }
            } else if code >= 6 {
                delta = delta.remove_node(a);
            } else {
                let t = g.successors(a).nth(b as usize % g.out_degree(a).max(1));
                delta = delta.remove_edge(a, t.unwrap_or(b));
            }
        }
        delta
    }

    fn run_stream(
        g: &DiGraph,
        q: gpm_pattern::Pattern,
        cfg: IncrementalConfig,
        batches: &[Vec<(u8, u32, u32)>],
    ) -> DynamicMatcher {
        let mut m = DynamicMatcher::new(g, q, cfg).expect("supported pattern");
        assert_cache_matches_bfs(&m);
        for raw in batches {
            let delta = decode(m.graph(), raw);
            m.apply(&delta).expect("decoded deltas are valid");
            assert_cache_matches_bfs(&m);
        }
        m
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        // DP-derived relevant sets ≡ the old BFS derivation, after every
        // batch of a generated update stream — the shared reach engine
        // must be a drop-in for the per-output BFS it replaced.
        #[test]
        fn dp_relevant_sets_equal_bfs_oracle(
            (labels, edges) in (4usize..16).prop_flat_map(|n| (
                proptest::collection::vec(0u32..3, n),
                proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 0..n * 2),
            )),
            (plabels, pextra) in (1usize..4).prop_flat_map(|k| (
                proptest::collection::vec(0u32..3, k),
                proptest::collection::vec((0u32..k as u32, 0u32..k as u32), 0..k),
            )),
            batches in proptest::collection::vec(
                proptest::collection::vec((0u8..8, 0u32..64, 0u32..64), 1..5), 1..7),
        ) {
            let g = graph_from_parts(&labels, &edges).unwrap();
            let mut pedges: Vec<(u32, u32)> = (1..plabels.len() as u32).map(|i| (i - 1, i)).collect();
            pedges.extend(pextra.into_iter().filter(|(a, b)| a != b));
            pedges.sort_unstable();
            pedges.dedup();
            let q = label_pattern(&plabels, &pedges, 0).unwrap();
            run_stream(&g, q, IncrementalConfig::new(4), &batches);
        }

        // The churn estimate is exact: it equals the per-op effective
        // churn (edge effects, node adds, tombstones floored at one)
        // observed by actually applying the batch op by op.
        #[test]
        fn worst_churn_counts_effective_ops(
            (labels, edges) in (4usize..14).prop_flat_map(|n| (
                proptest::collection::vec(0u32..3, n),
                proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 0..n * 2),
            )),
            batches in proptest::collection::vec(
                proptest::collection::vec((0u8..8, 0u32..64, 0u32..64), 1..6), 1..5),
        ) {
            let g = graph_from_parts(&labels, &edges).unwrap();
            let mut dg = DynGraph::from_digraph(&g);
            for raw in &batches {
                let delta = decode(&dg, raw);
                let churn = worst_churn(&dg, &delta);
                let mut expect = 0usize;
                for op in &delta.ops {
                    let single = match *op {
                        DeltaOp::AddNode(l) => GraphDelta::new().add_node(l),
                        DeltaOp::AddEdge(s, t) => GraphDelta::new().add_edge(s, t),
                        DeltaOp::RemoveEdge(s, t) => GraphDelta::new().remove_edge(s, t),
                        DeltaOp::RemoveNode(v) => GraphDelta::new().remove_node(v),
                        DeltaOp::SetAttr { node, ref key, ref value } => {
                            GraphDelta::new().set_attr(node, key.clone(), value.clone())
                        }
                        DeltaOp::UnsetAttr { node, ref key } => {
                            GraphDelta::new().unset_attr(node, key.clone())
                        }
                    };
                    let applied = dg.apply(&single).expect("decoded deltas are valid");
                    expect += match *op {
                        DeltaOp::AddNode(_) => 1,
                        DeltaOp::RemoveNode(_) if !applied.removed_nodes.is_empty() => {
                            applied.removed_edges.len().max(1)
                        }
                        DeltaOp::RemoveNode(_) => 0,
                        _ => applied.added_edges.len() + applied.removed_edges.len(),
                    };
                }
                prop_assert_eq!(churn, expect, "churn of {:?}", delta);
            }
        }

        // The same property with the reach budget forced to zero: every
        // materialization takes the BFS-fallback path through the dynamic
        // view, and the answers must not move.
        #[test]
        fn budget_fallback_matches_dp(
            (labels, edges) in (4usize..14).prop_flat_map(|n| (
                proptest::collection::vec(0u32..3, n),
                proptest::collection::vec((0u32..n as u32, 0u32..n as u32), 0..n * 2),
            )),
            batches in proptest::collection::vec(
                proptest::collection::vec((0u8..8, 0u32..64, 0u32..64), 1..5), 1..5),
        ) {
            let g = graph_from_parts(&labels, &edges).unwrap();
            let q = label_pattern(&[0, 1, 2], &[(0, 1), (1, 2), (2, 0)], 0).unwrap();
            let mut starved = IncrementalConfig::new(4);
            starved.reach = ReachConfig { budget_bytes: 0, threads: 1 };
            let a = run_stream(&g, q.clone(), starved, &batches);
            let b = run_stream(&g, q, IncrementalConfig::new(4), &batches);
            prop_assert_eq!(a.top_k().nodes(), b.top_k().nodes());
        }
    }

    /// Regression for the degree-sum churn heuristic this mirror
    /// replaced: removing a self-loop and then its node counted the loop
    /// three times (once for the `RemoveEdge`, twice more via the stale
    /// successor + predecessor degrees of the `RemoveNode`), pushing this
    /// borderline batch over the 20% rebuild threshold of a 10-edge graph.
    /// Effectively it is one edge removal plus one bare tombstone.
    #[test]
    fn borderline_self_loop_batch_stays_incremental() {
        let labels = [0, 1, 2, 0, 1, 2, 0, 1, 2, 0];
        let edges =
            [(0, 1), (1, 2), (3, 4), (4, 5), (6, 7), (7, 8), (0, 4), (3, 7), (6, 1), (9, 9)];
        let g = graph_from_parts(&labels, &edges).unwrap();
        let q = label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        let delta = GraphDelta::new().remove_edge(9, 9).remove_node(9);

        let dg = DynGraph::from_digraph(&g);
        assert_eq!(worst_churn(&dg, &delta), 2, "one edge removal + one bare tombstone");

        let mut m = DynamicMatcher::new(&g, q, IncrementalConfig::new(4)).unwrap();
        m.apply(&delta).expect("valid batch");
        assert_eq!(m.stats().full_rebuilds, 0, "borderline batch must stay incremental");
        assert_eq!(m.stats().incremental_applies, 1);
        assert_cache_matches_bfs(&m);
    }

    /// The budget fallback really flips the engine mode when driven
    /// through the dynamic view (not just through the static adapter).
    #[test]
    fn zero_budget_forces_bfs_extraction_through_dynamic_view() {
        let g = graph_from_parts(&[0, 1, 2, 0, 0], &[(0, 1), (1, 2), (3, 1), (4, 1)]).unwrap();
        let q = label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();

        let mut starved = IncrementalConfig::new(3);
        starved.reach = ReachConfig { budget_bytes: 0, threads: 1 };
        let dyn_g = DynGraph::from_digraph(&g);
        let dp = PatternState::new(&dyn_g, q.clone(), IncrementalConfig::new(3)).unwrap();
        let bfs = PatternState::new(&dyn_g, q, starved).unwrap();

        let plan = RefreshPlan { outputs: dp.sim().structural_matches_of(0), pruned_outputs: 0 };
        assert_eq!(plan.len(), 3);
        let dp_prepared = dp.prepare_sets_traced(&dyn_g, &plan, &Span::disabled());
        let bfs_prepared = bfs.prepare_sets_traced(&dyn_g, &plan, &Span::disabled());
        assert!(dp_prepared.used_dp());
        assert!(!bfs_prepared.used_dp(), "zero budget must force BFS extraction");
        let mut dp_ex = dp_prepared.extractor();
        let mut bfs_ex = bfs_prepared.extractor();
        for i in 0..plan.len() {
            assert_eq!(dp_ex.extract(i), bfs_ex.extract(i), "source {i}");
        }
        // And the two states converged on identical cached sets: every
        // root reaches {1, 2} whichever engine mode derived it.
        assert_eq!(dp.cache().matches(), bfs.cache().matches());
        for v in dp.cache().matches() {
            assert_eq!(dp.cache().set_of(v), bfs.cache().set_of(v));
            assert_eq!(dp.cache().relevance_of(v), Some(2));
        }
    }
}
