//! Differential property harness for [`PatternRegistry`].
//!
//! The registry's one promise: sharing graph application, candidate
//! indexing and the maintenance pool across N patterns changes **nothing**
//! about any answer. For generated update streams (insert-only /
//! delete-only / mixed, via `gpm_datagen::update_stream`, with or without
//! attribute mutations mixed in), after **every** batch and for **every**
//! registered pattern — label-only or carrying full attribute-predicate
//! trees — the registry must agree bit-for-bit with
//!
//! 1. an independent [`DynamicMatcher`] serving the same pattern over its
//!    own private graph, and
//! 2. the static pipeline (`top_k_by_match` / `top_k_cyclic` /
//!    `top_k_diversified`) recomputing from scratch on `snapshot()`,
//!
//! including patterns registered mid-stream (which must answer as if built
//! from the snapshot at registration time) and after deregistrations.

use gpm_core::config::{DivConfig, TopKConfig};
use gpm_core::{top_k_by_match, top_k_cyclic, top_k_diversified};
use gpm_datagen::update_stream::{attr_key, update_stream, UpdateStreamConfig};
use gpm_graph::builder::graph_from_parts;
use gpm_graph::{AttrValue, Attributes, DiGraph, GraphBuilder};
use gpm_incremental::{DynamicMatcher, IncrementalConfig, PatternId, PatternRegistry};
use gpm_pattern::builder::label_pattern;
use gpm_pattern::{CmpOp, Pattern, PatternBuilder, Predicate};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const LABELS: u32 = 4;
/// Attribute alphabet shared by graphs, streams and pattern predicates —
/// streams mutate [`attr_key`]`(0..ATTR_KEYS)` with ints below
/// `ATTR_VALUES`, so generated thresholds actually flip candidacy.
const ATTR_KEYS: u32 = 3;
const ATTR_VALUES: i64 = 8;

fn random_graph(rng: &mut StdRng, n: usize, density: usize) -> DiGraph {
    let node_labels: Vec<u32> = (0..n).map(|_| rng.random_range(0..LABELS)).collect();
    let m = rng.random_range(0..n * density + 1);
    let edges: Vec<(u32, u32)> = (0..m)
        .map(|_| (rng.random_range(0..n as u32), rng.random_range(0..n as u32)))
        .filter(|(a, b)| a != b)
        .collect();
    graph_from_parts(&node_labels, &edges).unwrap()
}

/// As [`random_graph`], with ~half the nodes carrying initial attributes
/// over the shared alphabet (so attribute predicates have matches before
/// the stream's first `SetAttr` lands).
fn random_attr_graph(rng: &mut StdRng, n: usize, density: usize) -> DiGraph {
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        let label = rng.random_range(0..LABELS);
        if rng.random_range(0..2u32) == 0 {
            let mut pairs: Vec<(String, AttrValue)> = Vec::new();
            for k in 0..ATTR_KEYS {
                if rng.random_range(0..2u32) == 0 {
                    pairs.push((attr_key(k), AttrValue::Int(rng.random_range(0..ATTR_VALUES))));
                }
            }
            b.add_node_with_attrs(label, Attributes::from_pairs(pairs));
        } else {
            b.add_node(label);
        }
    }
    let m = rng.random_range(0..n * density + 1);
    for _ in 0..m {
        let s = rng.random_range(0..n as u32);
        let t = rng.random_range(0..n as u32);
        if s != t {
            b.add_edge(s, t).unwrap();
        }
    }
    b.build()
}

fn random_pattern(rng: &mut StdRng) -> Pattern {
    let pn = rng.random_range(1..5usize);
    let plabels: Vec<u32> = (0..pn).map(|_| rng.random_range(0..LABELS)).collect();
    let mut pedges: Vec<(u32, u32)> = (1..pn as u32).map(|i| (i - 1, i)).collect();
    for _ in 0..rng.random_range(0..pn * 2) {
        let a = rng.random_range(0..pn as u32);
        let b = rng.random_range(0..pn as u32);
        if a != b && !pedges.contains(&(a, b)) {
            pedges.push((a, b));
        }
    }
    label_pattern(&plabels, &pedges, 0).unwrap()
}

/// A random condition over the shared attribute alphabet.
fn random_attr_condition(rng: &mut StdRng) -> Predicate {
    let key = attr_key(rng.random_range(0..ATTR_KEYS));
    let op = match rng.random_range(0..4u32) {
        0 => CmpOp::Ge,
        1 => CmpOp::Lt,
        2 => CmpOp::Eq,
        _ => CmpOp::Ne,
    };
    Predicate::attr(key, op, rng.random_range(0..ATTR_VALUES))
}

/// As [`random_pattern`], but ~60% of the nodes carry attribute conditions
/// on top of their label — single comparisons, conjunctions, and the
/// occasional disjunction, over the keys the streams actually mutate.
fn random_attr_pattern(rng: &mut StdRng) -> Pattern {
    let pn = rng.random_range(1..5usize);
    let mut b = PatternBuilder::new();
    for i in 0..pn {
        let label = rng.random_range(0..LABELS);
        let pred = match rng.random_range(0..5u32) {
            0 | 1 => Predicate::Label(label),
            2 => Predicate::labeled(label, [random_attr_condition(rng)]),
            3 => {
                Predicate::labeled(label, [random_attr_condition(rng), random_attr_condition(rng)])
            }
            _ => Predicate::labeled(
                label,
                [Predicate::Or(vec![random_attr_condition(rng), random_attr_condition(rng)])],
            ),
        };
        b.node(format!("u{i}"), pred);
    }
    for i in 1..pn as u32 {
        b.edge(i - 1, i).unwrap();
    }
    for _ in 0..rng.random_range(0..pn * 2) {
        let s = rng.random_range(0..pn as u32);
        let t = rng.random_range(0..pn as u32);
        if s != t {
            let _ = b.edge(s, t);
        }
    }
    b.output(0).unwrap();
    b.build().unwrap()
}

/// The differential oracle: one pattern's registry answer vs its
/// independent matcher vs static recompute on the registry snapshot.
fn assert_pattern_agrees(
    reg: &PatternRegistry,
    id: PatternId,
    matcher: &mut DynamicMatcher,
    snap: &DiGraph,
    k: usize,
    lambda: f64,
    ctx: &str,
) {
    let q = &matcher.pattern().clone();

    // Registry vs independent matcher: identical nodes AND δr values.
    let reg_top = reg.top_k(id).expect("registered");
    let ind_top = matcher.top_k();
    assert_eq!(reg_top.nodes(), ind_top.nodes(), "registry vs matcher nodes: {ctx}");
    let reg_rel: Vec<u64> = reg_top.matches.iter().map(|r| r.relevance).collect();
    let ind_rel: Vec<u64> = ind_top.matches.iter().map(|r| r.relevance).collect();
    assert_eq!(reg_rel, ind_rel, "registry vs matcher δr: {ctx}");

    // Registry vs static recompute on the shared snapshot.
    let base = top_k_by_match(snap, q, &TopKConfig::new(k));
    assert_eq!(reg_top.nodes(), base.nodes(), "registry vs static nodes: {ctx}");
    let base_rel: Vec<u64> = base.matches.iter().map(|r| r.relevance).collect();
    assert_eq!(reg_rel, base_rel, "registry vs static δr: {ctx}");

    // The early-terminating static algorithm agrees on the total.
    let fast = top_k_cyclic(snap, q, &TopKConfig::new(k));
    assert_eq!(fast.total_relevance(), reg_top.total_relevance(), "vs top_k_cyclic: {ctx}");

    // Diversified: identical selection and F-value (same greedy, same
    // ties, same normalizer) across all three paths.
    let reg_div = reg.diversified(id, lambda).expect("registered");
    let ind_div = matcher.diversified(lambda);
    let base_div = top_k_diversified(snap, q, &DivConfig::new(k, lambda));
    assert_eq!(reg_div.nodes(), ind_div.nodes(), "diversified registry vs matcher: {ctx}");
    assert_eq!(reg_div.nodes(), base_div.nodes(), "diversified registry vs static: {ctx}");
    assert!(
        (reg_div.f_value - base_div.f_value).abs() < 1e-9,
        "F diverged: {} vs {} ({ctx})",
        reg_div.f_value,
        base_div.f_value
    );
    assert!(
        (reg_div.f_value - ind_div.f_value).abs() < 1e-9,
        "F registry vs matcher: {} vs {} ({ctx})",
        reg_div.f_value,
        ind_div.f_value
    );
}

struct StreamSpec {
    insert_fraction: f64,
    node_churn: f64,
    /// Fraction of stream ops that are attribute mutations; > 0.0 also
    /// switches the trial to attribute-carrying graphs and patterns.
    attr_churn: f64,
}

const INSERT_ONLY: StreamSpec =
    StreamSpec { insert_fraction: 1.0, node_churn: 0.15, attr_churn: 0.0 };
const DELETE_ONLY: StreamSpec =
    StreamSpec { insert_fraction: 0.0, node_churn: 0.15, attr_churn: 0.0 };
const MIXED: StreamSpec = StreamSpec { insert_fraction: 0.55, node_churn: 0.15, attr_churn: 0.0 };
/// Structural + attribute churn mixed in one stream.
const ATTR_MIXED: StreamSpec =
    StreamSpec { insert_fraction: 0.55, node_churn: 0.15, attr_churn: 0.45 };
/// Every op is an attribute mutation (batches contain no structural op).
const ATTR_ONLY: StreamSpec =
    StreamSpec { insert_fraction: 0.55, node_churn: 0.0, attr_churn: 1.0 };

/// One end-to-end differential trial: N patterns, one generated stream,
/// full oracle after every batch. `forced` maxes the thresholds so the
/// incremental path has no rebuild safety net to hide behind.
fn run_differential(spec: &StreamSpec, seed: u64, trials: usize, forced: bool) {
    let attrs = spec.attr_churn > 0.0;
    let mut rng = StdRng::seed_from_u64(seed);
    for trial in 0..trials {
        let n = rng.random_range(8..30usize);
        let g =
            if attrs { random_attr_graph(&mut rng, n, 3) } else { random_graph(&mut rng, n, 3) };
        let n_patterns = rng.random_range(2..6usize);

        let mut reg = PatternRegistry::with_threads(&g, 3);
        let mut matchers: Vec<DynamicMatcher> = Vec::new();
        let mut handles: Vec<(PatternId, usize, f64)> = Vec::new();
        for _ in 0..n_patterns {
            let q = if attrs { random_attr_pattern(&mut rng) } else { random_pattern(&mut rng) };
            let k = rng.random_range(1..5usize);
            let lambda = rng.random_range(0.0..1.0f64);
            let mut cfg = IncrementalConfig::new(k).lambda(lambda);
            if forced {
                cfg.max_delta_fraction = f64::INFINITY;
                cfg.max_dirty_fraction = f64::INFINITY;
            }
            let id = reg.register(q.clone(), cfg.clone()).unwrap();
            matchers.push(DynamicMatcher::new(&g, q, cfg).unwrap());
            handles.push((id, k, lambda));
        }

        let stream_cfg = UpdateStreamConfig {
            batches: rng.random_range(4..8usize),
            batch_size: rng.random_range(1..6usize),
            insert_fraction: spec.insert_fraction,
            node_churn: spec.node_churn,
            attr_churn: spec.attr_churn,
            attr_keys: ATTR_KEYS,
            attr_values: ATTR_VALUES,
            labels: LABELS,
            seed: seed ^ (trial as u64) << 7,
        };
        for (step, delta) in update_stream(&g, &stream_cfg).iter().enumerate() {
            reg.apply(delta).unwrap();
            let snap = reg.snapshot();
            for (i, m) in matchers.iter_mut().enumerate() {
                m.apply(delta).unwrap();
                // The shared graph and the private mirrors stay in lockstep.
                assert_eq!(reg.graph().edge_count(), m.graph().edge_count());
                assert_eq!(reg.graph().node_count(), m.graph().node_count());
                let (id, k, lambda) = handles[i];
                let ctx =
                    format!("trial {trial} step {step} pattern {i} (forced={forced}): {delta:?}");
                assert_pattern_agrees(&reg, id, m, &snap, k, lambda, &ctx);
            }
        }
        if forced {
            // No rebuild fallback may have fired on any pattern.
            for &(id, _, _) in &handles {
                let st = reg.stats_of(id).unwrap();
                assert_eq!(st.full_rebuilds, 0, "forced-incremental trial hit a rebuild");
                assert_eq!(st.full_rank_refreshes, 0);
            }
        }
    }
}

#[test]
fn insert_only_streams_registry_agrees_with_matchers_and_static() {
    run_differential(&INSERT_ONLY, 0x5EED_0001, 10, false);
}

#[test]
fn delete_only_streams_registry_agrees_with_matchers_and_static() {
    run_differential(&DELETE_ONLY, 0x5EED_0002, 10, false);
}

#[test]
fn mixed_streams_registry_agrees_with_matchers_and_static() {
    run_differential(&MIXED, 0x5EED_0003, 14, false);
}

#[test]
fn forced_incremental_registry_agrees() {
    run_differential(&MIXED, 0x5EED_0004, 10, true);
    run_differential(&DELETE_ONLY, 0x5EED_0005, 6, true);
}

#[test]
fn attr_mixed_streams_registry_agrees_with_matchers_and_static() {
    run_differential(&ATTR_MIXED, 0x5EED_0A01, 14, false);
}

#[test]
fn attr_only_streams_registry_agrees_with_matchers_and_static() {
    run_differential(&ATTR_ONLY, 0x5EED_0A02, 10, false);
}

#[test]
fn forced_incremental_attr_streams_agree() {
    run_differential(&ATTR_MIXED, 0x5EED_0A03, 10, true);
    run_differential(&ATTR_ONLY, 0x5EED_0A04, 6, true);
}

/// Stress variants for the nightly CI job: same oracles, an order of
/// magnitude more trials. Run with `cargo test -- --ignored`.
#[test]
#[ignore = "stress variant — run explicitly or via the nightly CI job"]
fn stress_attr_differential() {
    run_differential(&ATTR_MIXED, 0x5EED_5001, 80, false);
    run_differential(&ATTR_ONLY, 0x5EED_5002, 50, false);
    run_differential(&ATTR_MIXED, 0x5EED_5003, 50, true);
}

#[test]
#[ignore = "stress variant — run explicitly or via the nightly CI job"]
fn stress_structural_differential() {
    run_differential(&MIXED, 0x5EED_5004, 80, false);
    run_differential(&MIXED, 0x5EED_5005, 50, true);
    run_differential(&INSERT_ONLY, 0x5EED_5006, 40, false);
    run_differential(&DELETE_ONLY, 0x5EED_5007, 40, false);
}

/// An attr-only batch must be absorbed without any full rebuild: attribute
/// flips contribute zero edge churn, so the rebuild threshold can never
/// fire, and `ApplyStats`/`RegistryStats` must show the batches were
/// handled incrementally while the answers still match the oracle.
#[test]
fn attr_only_batches_stay_incremental() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0A05);
    for trial in 0..8 {
        let n = rng.random_range(10..28usize);
        let g = random_attr_graph(&mut rng, n, 3);
        let mut reg = PatternRegistry::with_threads(&g, 2);
        let mut pairs: Vec<(PatternId, DynamicMatcher)> = Vec::new();
        for _ in 0..3 {
            let q = random_attr_pattern(&mut rng);
            let cfg = IncrementalConfig::new(3);
            let id = reg.register(q.clone(), cfg.clone()).unwrap();
            pairs.push((id, DynamicMatcher::new(&g, q, cfg).unwrap()));
        }
        let stream = update_stream(
            &g,
            &UpdateStreamConfig {
                attr_keys: ATTR_KEYS,
                attr_values: ATTR_VALUES,
                labels: LABELS,
                ..UpdateStreamConfig::new(6, 4, 0xA77 + trial).with_attr_churn(1.0)
            },
        );
        let mut attr_effects = 0usize;
        for (step, delta) in stream.iter().enumerate() {
            assert!(
                delta.ops.iter().all(|op| matches!(
                    op,
                    gpm_graph::DeltaOp::SetAttr { .. } | gpm_graph::DeltaOp::UnsetAttr { .. }
                )),
                "attr-only stream emitted a structural op"
            );
            attr_effects += delta.len();
            reg.apply(delta).unwrap();
            let snap = reg.snapshot();
            for (i, (id, m)) in pairs.iter_mut().enumerate() {
                m.apply(delta).unwrap();
                let ctx = format!("attr-only trial {trial} step {step} pattern {i}");
                assert_pattern_agrees(&reg, *id, m, &snap, 3, 0.5, &ctx);
            }
        }
        assert!(attr_effects > 0, "stream mutated something");
        for (id, m) in &pairs {
            let st = reg.stats_of(*id).unwrap();
            assert_eq!(st.full_rebuilds, 0, "attr flips must never trigger a full rebuild");
            assert_eq!(m.stats().full_rebuilds, 0);
            assert_eq!(st.applies, stream.len() as u64);
            // Attr flips leave the alive-pair trajectory flat or shrinking:
            // the maintained bound index refolds dirty components but never
            // falls back to a from-scratch rebuild.
            assert_eq!(st.bound_rebuilds, 0, "attr-only batch rebuilt the bound index");
            assert_eq!(m.stats().bound_rebuilds, 0);
        }
    }
}

/// Satellite: a pure-attribute batch on keys **no registered pattern
/// mentions** is pruned wholesale by the attribute-key interest index —
/// every fan-out edge is a skip, no pattern is touched, and `apply`
/// returns no fresh answers.
#[test]
fn uninterested_attr_keys_are_skipped_by_the_interest_index() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0A06);
    let g = random_attr_graph(&mut rng, 20, 3);
    let mut reg = PatternRegistry::with_threads(&g, 2);
    // Two label-only patterns (mention no keys at all) and one attribute
    // pattern over the shared alphabet (attr0..attr2).
    let ids = [
        reg.register(random_pattern(&mut rng), IncrementalConfig::new(3)).unwrap(),
        reg.register(random_pattern(&mut rng), IncrementalConfig::new(3)).unwrap(),
        reg.register(random_attr_pattern(&mut rng), IncrementalConfig::new(3)).unwrap(),
    ];
    let before: Vec<_> = ids.iter().map(|&id| reg.top_k(id).unwrap().nodes()).collect();

    // Keys outside every pattern's interest: never replayed into anybody.
    let delta = gpm_graph::GraphDelta::new()
        .set_attr(0, "unwatched_a", 1i64)
        .set_attr(3, "unwatched_b", 2i64)
        .set_attr(5, "unwatched_a", 7i64);
    let touched = reg.apply(&delta).unwrap();
    assert!(touched.is_empty(), "no pattern cares about these keys");
    let s = reg.stats();
    assert_eq!(s.ops_replayed, 0);
    assert_eq!(s.ops_skipped, 3 * ids.len() as u64, "3 effects × N patterns, all pruned");
    assert_eq!(s.last_patterns_touched, 0);
    assert_eq!(s.last_rebuilds, 0);
    assert_eq!(s.shared_index_hit_rate(), 1.0);
    for (id, nodes) in ids.iter().zip(&before) {
        assert_eq!(&reg.top_k(*id).unwrap().nodes(), nodes, "answers unchanged");
        let st = reg.stats_of(*id).unwrap();
        assert_eq!(st.applies, 1, "the batch still counts as an apply");
        assert_eq!(st.full_rebuilds, 0);
        assert_eq!(st.last_swept_pairs, 0, "untouched patterns skip the seed scan");
    }

    // Contrast: the same keys with a watched key mixed in touch exactly
    // the pattern(s) that mention it.
    let watched = reg.pattern(ids[2]).unwrap();
    let mut keys = std::collections::BTreeSet::new();
    for u in watched.nodes() {
        watched.predicate(u).collect_attr_keys(&mut keys);
    }
    if let Some(key) = keys.iter().next() {
        // 999 is outside the generator's value range, so the set is
        // guaranteed effective (an ineffective op would not fan out).
        let delta = gpm_graph::GraphDelta::new().set_attr(1, "unwatched_a", 9i64).set_attr(
            2,
            key.clone(),
            999i64,
        );
        reg.apply(&delta).unwrap();
        let s = reg.stats();
        assert_eq!(s.ops_replayed, 1, "only the attr pattern saw the watched key");
        assert_eq!(s.ops_skipped, 3 * ids.len() as u64 + 2 * ids.len() as u64 - 1);
    }
}

#[test]
fn midstream_register_and_deregister_agree() {
    let mut rng = StdRng::seed_from_u64(0x5EED_0006);
    for trial in 0..8 {
        let n = rng.random_range(10..25usize);
        // Attr graphs + a mix of label-only and attribute patterns: late
        // registrations must pick the attribute tables up from the
        // snapshot too.
        let g = random_attr_graph(&mut rng, n, 3);
        let mut reg = PatternRegistry::with_threads(&g, 2);

        // Start with two patterns.
        let mut live: Vec<(PatternId, DynamicMatcher, usize, f64)> = Vec::new();
        for i in 0..2 {
            let q = if i == 0 { random_pattern(&mut rng) } else { random_attr_pattern(&mut rng) };
            let (k, lambda) = (rng.random_range(1..4usize), 0.5);
            let cfg = IncrementalConfig::new(k).lambda(lambda);
            let id = reg.register(q.clone(), cfg.clone()).unwrap();
            live.push((id, DynamicMatcher::new(&g, q, cfg).unwrap(), k, lambda));
        }

        let stream = update_stream(
            &g,
            &UpdateStreamConfig {
                batches: 8,
                batch_size: 3,
                insert_fraction: 0.5,
                node_churn: 0.2,
                attr_churn: 0.3,
                attr_keys: ATTR_KEYS,
                attr_values: ATTR_VALUES,
                labels: LABELS,
                seed: 77 + trial,
            },
        );
        for (step, delta) in stream.iter().enumerate() {
            reg.apply(delta).unwrap();
            for (_, m, _, _) in live.iter_mut() {
                m.apply(delta).unwrap();
            }

            if step == 2 {
                // Mid-stream registration: the new pattern must answer as
                // if built from the *current* snapshot — its independent
                // twin is constructed from exactly that.
                let q = random_attr_pattern(&mut rng);
                let (k, lambda) = (rng.random_range(1..4usize), rng.random_range(0.0..1.0f64));
                let cfg = IncrementalConfig::new(k).lambda(lambda);
                let id = reg.register(q.clone(), cfg.clone()).unwrap();
                let twin = DynamicMatcher::new(&reg.snapshot(), q, cfg).unwrap();
                live.push((id, twin, k, lambda));
            }
            if step == 5 {
                // Mid-stream deregistration: survivors must be unaffected.
                let (id, _, _, _) = live.remove(0);
                assert!(reg.deregister(id));
                assert!(!reg.deregister(id), "ids are never reused");
                assert!(reg.top_k(id).is_none());
            }

            let snap = reg.snapshot();
            for (i, (id, m, k, lambda)) in live.iter_mut().enumerate() {
                let ctx = format!("midstream trial {trial} step {step} pattern {i}");
                assert_pattern_agrees(&reg, *id, m, &snap, *k, *lambda, &ctx);
            }
        }
        assert_eq!(reg.len(), live.len());
        assert_eq!(reg.stats().deregistrations, 1);
    }
}

#[test]
fn registry_normalizers_never_drift_from_static() {
    // The drift-regression for the shared `Cuo` definition: the registry's
    // incrementally-maintained normalizer must equal the one the static
    // pipeline derives from a fresh CandidateSpace on every snapshot.
    use gpm_ranking::objective::c_uo;
    use gpm_simulation::CandidateSpace;

    let mut rng = StdRng::seed_from_u64(0x5EED_0007);
    for trial in 0..8 {
        let n = rng.random_range(8..24usize);
        // Attribute candidacy feeds |can(u)| too: Cuo must track attr flips.
        let g = random_attr_graph(&mut rng, n, 3);
        let mut reg = PatternRegistry::new(&g);
        let mut ids = Vec::new();
        for i in 0..3 {
            let q = if i == 0 { random_pattern(&mut rng) } else { random_attr_pattern(&mut rng) };
            ids.push(reg.register(q, IncrementalConfig::new(3)).unwrap());
        }
        let stream = update_stream(
            &g,
            &UpdateStreamConfig {
                batches: 6,
                batch_size: 4,
                insert_fraction: 0.5,
                node_churn: 0.2,
                attr_churn: 0.35,
                attr_keys: ATTR_KEYS,
                attr_values: ATTR_VALUES,
                labels: LABELS,
                seed: 1234 + trial,
            },
        );
        for (step, delta) in stream.iter().enumerate() {
            reg.apply(delta).unwrap();
            let snap = reg.snapshot();
            for &id in &ids {
                let q = reg.pattern(id).unwrap();
                let space = CandidateSpace::compute(&snap, &q);
                assert_eq!(
                    reg.normalizer(id),
                    Some(c_uo(&q, &space)),
                    "Cuo drifted: trial {trial} step {step}"
                );
            }
        }
    }
}

/// Telemetry is observational only. Two registries consume the same
/// mixed structural+attribute stream — one tracing every batch into an
/// enabled [`Telemetry`] bundle, one left at the default (disabled)
/// bundle — and must agree bit-for-bit with each other and with the
/// static oracle after every batch. The traced side must actually have
/// traced (batch trees filed with the flight recorder, phase histograms
/// populated); the untraced side must have recorded nothing.
#[test]
fn telemetry_on_and_off_registries_agree() {
    use gpm_incremental::Telemetry;

    let mut rng = StdRng::seed_from_u64(0x7e1e);
    for trial in 0..8u64 {
        let n = rng.random_range(8..26usize);
        let g = random_attr_graph(&mut rng, n, 3);
        let mut traced = PatternRegistry::with_threads(&g, 3);
        let telemetry = Telemetry::on();
        traced.set_telemetry(telemetry.clone());
        let mut plain = PatternRegistry::with_threads(&g, 3);

        let mut ids: Vec<(PatternId, PatternId, usize)> = Vec::new();
        for _ in 0..rng.random_range(2..5usize) {
            let q = random_attr_pattern(&mut rng);
            let k = rng.random_range(1..5usize);
            let cfg = IncrementalConfig::new(k).lambda(rng.random_range(0.0..1.0f64));
            let a = traced.register(q.clone(), cfg.clone()).unwrap();
            let b = plain.register(q, cfg).unwrap();
            ids.push((a, b, k));
        }

        let stream = update_stream(
            &g,
            &UpdateStreamConfig {
                batches: 5,
                batch_size: 4,
                insert_fraction: 0.5,
                node_churn: 0.15,
                attr_churn: 0.35,
                attr_keys: ATTR_KEYS,
                attr_values: ATTR_VALUES,
                labels: LABELS,
                seed: 0x0b5e ^ trial,
            },
        );
        for (step, delta) in stream.iter().enumerate() {
            traced.apply(delta).unwrap();
            plain.apply(delta).unwrap();
            let snap = traced.snapshot();
            for &(a, b, k) in &ids {
                let ta = traced.top_k(a).unwrap();
                let tb = plain.top_k(b).unwrap();
                assert_eq!(
                    ta.matches, tb.matches,
                    "telemetry changed an answer: trial {trial} step {step}"
                );
                assert_eq!(
                    traced.top_k_diversified(a).unwrap().matches,
                    plain.top_k_diversified(b).unwrap().matches,
                );
                let oracle =
                    top_k_by_match(&snap, &traced.pattern(a).unwrap(), &TopKConfig::new(k));
                assert_eq!(ta.matches, oracle.matches, "trial {trial} step {step}");
            }
        }

        // The enabled side really observed the stream…
        assert!(!telemetry.recorder().recent().is_empty(), "no batch traces filed");
        let snap = telemetry.metrics().snapshot();
        let apply = snap.histogram(&gpm_telemetry_phase("apply"));
        assert!(apply.is_some_and(|h| h.count > 0), "no apply-phase samples");
        // …and the disabled side stayed silent (counters still count).
        assert!(plain.telemetry().recorder().recent().is_empty());
        assert_eq!(plain.stats().batches, traced.stats().batches);
    }
}

/// `gpm_telemetry::names::phase` without taking a direct gpm-telemetry
/// dev-dependency: the label format is part of the metric contract.
fn gpm_telemetry_phase(name: &str) -> String {
    format!("gpm_phase_seconds{{phase=\"{name}\"}}")
}

/// Maintained output bounds are a pure pruning accelerator: a matcher
/// with bounds disabled must produce bit-identical answers (top-k nodes
/// **and** δr values) on every batch of mixed / attr-mixed / delete-only
/// streams, and both must agree with the early-terminating static
/// pipeline on the same snapshot. The bounded side's maintained `h` is
/// re-derived from scratch per component after every batch by
/// `check_maintained` (which folds `BoundState::validate` into the
/// condensation oracle).
#[test]
fn bounded_and_unbounded_matchers_agree() {
    let mut refolds_total = 0u64;
    for (spec, seed) in
        [(&MIXED, 0x0B0D_0001u64), (&ATTR_MIXED, 0x0B0D_0002), (&DELETE_ONLY, 0x0B0D_0003)]
    {
        let attrs = spec.attr_churn > 0.0;
        let mut rng = StdRng::seed_from_u64(seed);
        for trial in 0..8 {
            let n = rng.random_range(10..30usize);
            let g = if attrs {
                random_attr_graph(&mut rng, n, 3)
            } else {
                random_graph(&mut rng, n, 3)
            };
            let q = if attrs { random_attr_pattern(&mut rng) } else { random_pattern(&mut rng) };
            let k = rng.random_range(1..4usize);
            let mut bounded_cfg = IncrementalConfig::new(k);
            bounded_cfg.max_delta_fraction = f64::INFINITY;
            bounded_cfg.max_dirty_fraction = f64::INFINITY;
            assert!(bounded_cfg.bounds.enabled, "bounds are on by default");
            let mut plain_cfg = bounded_cfg.clone();
            plain_cfg.bounds.enabled = false;
            let mut bounded = DynamicMatcher::new(&g, q.clone(), bounded_cfg).unwrap();
            let mut plain = DynamicMatcher::new(&g, q, plain_cfg).unwrap();
            assert_eq!(plain.bound_mode(), "off", "disabled bounds report off");

            let stream = update_stream(
                &g,
                &UpdateStreamConfig {
                    batches: 6,
                    batch_size: 4,
                    insert_fraction: spec.insert_fraction,
                    node_churn: spec.node_churn,
                    attr_churn: spec.attr_churn,
                    attr_keys: ATTR_KEYS,
                    attr_values: ATTR_VALUES,
                    labels: LABELS,
                    seed: seed ^ trial,
                },
            );
            for (step, delta) in stream.iter().enumerate() {
                let a = bounded.apply(delta).unwrap();
                let b = plain.apply(delta).unwrap();
                let ctx = format!("bounded-vs-plain trial {trial} step {step}: {delta:?}");
                assert_eq!(a.matches, b.matches, "bound pruning changed the answer: {ctx}");

                let snap = bounded.snapshot();
                let fast = top_k_cyclic(&snap, bounded.pattern(), &TopKConfig::new(k));
                assert_eq!(a.nodes(), fast.nodes(), "bounded vs static top_k_cyclic: {ctx}");
                assert_eq!(
                    a.total_relevance(),
                    fast.total_relevance(),
                    "bounded vs static δr total: {ctx}"
                );

                // Maintained h ≡ from-scratch per-component bounds.
                bounded.check_maintained();
            }
            refolds_total += bounded.stats().bound_refolds;
            assert_eq!(plain.stats().pruned_outputs, 0, "disabled bounds never prune");
            assert_eq!(plain.stats().bound_refolds, 0, "disabled bounds never refold");
        }
    }
    // Across 24 forced-incremental trials the index must actually have
    // been exercised. (Pruning itself needs a stable high-relevance head
    // the stream never touches — random tiny streams churn everything —
    // so the pruning path has its own deterministic scenario below.)
    assert!(refolds_total > 0, "no batch ever refolded the bound index");
}

/// The pruning path end to end, on a graph shaped like the workload that
/// motivates it: two high-relevance "head" outputs the stream never
/// touches hold the top-2, and a low-reach "tail" output absorbs the
/// churn. A delta touching only the tail must be pruned — its maintained
/// upper bound (component popcount, ≤ 3) cannot displace the k-th answer
/// (relevance 10) — leaving the answer untouched without materializing
/// the tail's relevant set. A later delta that pushes the tail's bound
/// past the k-th must pull it back out of the deferred backlog and into
/// the answer.
#[test]
fn dominated_outputs_are_pruned_and_revived() {
    // ids 0..9: B-nodes shared by both heads; 10/11: heads (A, rel 10);
    // 12/13: tails (A, rel 1); 14/15: the tails' private B-children.
    let mut labels = vec![1u32; 10];
    labels.extend([0, 0, 0, 0, 1, 1]);
    let mut edges: Vec<(u32, u32)> = Vec::new();
    for b in 0..10u32 {
        edges.push((10, b));
        edges.push((11, b));
    }
    edges.push((12, 14));
    edges.push((13, 15));
    let g = graph_from_parts(&labels, &edges).unwrap();
    let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
    let mut cfg = IncrementalConfig::new(2);
    cfg.max_delta_fraction = f64::INFINITY;
    cfg.max_dirty_fraction = f64::INFINITY;
    let mut m = DynamicMatcher::new(&g, q, cfg).unwrap();
    assert_eq!(m.bound_mode(), "per-component");
    assert_eq!(m.top_k().nodes(), vec![10, 11]);

    // Tail 12 gains a second child: dirty = {12}, bound h ≤ 3 < 10 — the
    // batch must not re-derive 12's relevant set at all.
    m.apply(&gpm_graph::GraphDelta::new().add_edge(12, 15)).unwrap();
    let st = m.stats().clone();
    assert_eq!(st.last_pruned_outputs, 1, "the tail output must be bound-pruned");
    assert_eq!(st.pruned_outputs, 1);
    assert!(st.bound_refolds > 0);
    assert_eq!(st.bound_rebuilds, 0);
    let top = m.top_k();
    assert_eq!(top.nodes(), vec![10, 11], "pruning must not change the answer");
    assert!(top.stats.early_terminated, "a deferred output means the scan was cut short");
    m.check_maintained();

    // The same tail gains enough reach to displace the k-th answer: the
    // deferred backlog must be re-checked and 12 materialized.
    let mut delta = gpm_graph::GraphDelta::new();
    for b in 0..10u32 {
        delta = delta.add_edge(12, b);
    }
    m.apply(&delta).unwrap();
    let top = m.top_k();
    assert_eq!(top.nodes(), vec![12, 10], "revived tail must rank first");
    assert_eq!(
        top.matches.iter().map(|r| r.relevance).collect::<Vec<_>>(),
        vec![12, 10],
        "materialized relevance must be exact, not the bound"
    );
    assert_eq!(m.stats().last_pruned_outputs, 0, "nothing dominated this batch");
    m.check_maintained();

    // Diversified access materializes any remaining backlog first.
    let div = m.diversified(0.5);
    assert_eq!(div.matches.len(), 2);
    m.check_maintained();
}

/// The bound index absorbs attribute-only and tombstone-only batches
/// without ever rebuilding from scratch: attr flips leave the pair-count
/// trajectory flat and tombstones only shrink it, so `Auto`'s
/// grow-only hysteresis never flips mode and the churn gate stays quiet.
/// Counter-asserted via `ApplyStats::bound_rebuilds` on the forced
/// incremental path (no full-rebuild fallback to hide behind).
#[test]
fn bound_index_never_rebuilds_on_attr_or_tombstone_batches() {
    let mut refolds_total = 0u64;
    for (spec, seed) in [(&ATTR_ONLY, 0x0B0D_0A01u64), (&DELETE_ONLY, 0x0B0D_0A02)] {
        let attrs = spec.attr_churn > 0.0;
        let mut rng = StdRng::seed_from_u64(seed);
        for trial in 0..8 {
            let n = rng.random_range(12..30usize);
            let g = if attrs {
                random_attr_graph(&mut rng, n, 3)
            } else {
                random_graph(&mut rng, n, 3)
            };
            let q = if attrs { random_attr_pattern(&mut rng) } else { random_pattern(&mut rng) };
            let mut cfg = IncrementalConfig::new(3);
            cfg.max_delta_fraction = f64::INFINITY;
            cfg.max_dirty_fraction = f64::INFINITY;
            let mut m = DynamicMatcher::new(&g, q, cfg).unwrap();
            let stream = update_stream(
                &g,
                &UpdateStreamConfig {
                    batches: 6,
                    batch_size: 4,
                    insert_fraction: spec.insert_fraction,
                    node_churn: spec.node_churn,
                    attr_churn: spec.attr_churn,
                    attr_keys: ATTR_KEYS,
                    attr_values: ATTR_VALUES,
                    labels: LABELS,
                    seed: seed ^ trial,
                },
            );
            for delta in stream.iter() {
                m.apply(delta).unwrap();
                m.check_maintained();
            }
            assert_eq!(m.stats().full_rebuilds, 0, "must exercise the incremental path");
            assert_eq!(
                m.stats().bound_rebuilds,
                0,
                "attr/tombstone-only stream rebuilt the bound index from scratch"
            );
            refolds_total += m.stats().bound_refolds;
        }
    }
    assert!(refolds_total > 0, "streams never exercised a bound refold");
}
