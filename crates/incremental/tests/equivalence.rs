//! Equivalence: a `DynamicMatcher` maintained across random delta streams
//! must answer exactly like the static pipeline on the final graph —
//! matches, relevances, and diversified `F`-values alike.

use gpm_core::config::{DivConfig, TopKConfig};
use gpm_core::{top_k_by_match, top_k_cyclic, top_k_diversified};
use gpm_graph::builder::graph_from_parts;
use gpm_graph::{DiGraph, GraphDelta};
use gpm_incremental::{DynamicMatcher, IncrementalConfig};
use gpm_pattern::builder::label_pattern;
use gpm_pattern::Pattern;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

fn assert_agrees(m: &mut DynamicMatcher, k: usize, lambda: f64, ctx: &str) {
    let snap = m.snapshot();
    let q = &m.pattern().clone();

    let base = top_k_by_match(&snap, q, &TopKConfig::new(k));
    let inc = m.top_k();
    assert_eq!(inc.nodes(), base.nodes(), "top-k nodes diverged: {ctx}");
    let base_rel: Vec<u64> = base.matches.iter().map(|r| r.relevance).collect();
    let inc_rel: Vec<u64> = inc.matches.iter().map(|r| r.relevance).collect();
    assert_eq!(inc_rel, base_rel, "δr diverged: {ctx}");

    // The early-terminating algorithm agrees on the relevance multiset.
    let fast = top_k_cyclic(&snap, q, &TopKConfig::new(k));
    assert_eq!(fast.total_relevance(), inc.total_relevance(), "vs top_k_cyclic: {ctx}");

    // Diversified: identical selection and F-value (same greedy, same ties).
    let div_base = top_k_diversified(&snap, q, &DivConfig::new(k, lambda));
    let div_inc = m.diversified(lambda);
    assert_eq!(div_inc.nodes(), div_base.nodes(), "diversified set diverged: {ctx}");
    assert!(
        (div_inc.f_value - div_base.f_value).abs() < 1e-9,
        "F diverged: {} vs {} ({ctx})",
        div_inc.f_value,
        div_base.f_value
    );
}

fn random_graph(rng: &mut StdRng, n: usize, labels: u32, density: usize) -> DiGraph {
    let node_labels: Vec<u32> = (0..n).map(|_| rng.random_range(0..labels)).collect();
    let m = rng.random_range(0..n * density + 1);
    let edges: Vec<(u32, u32)> = (0..m)
        .map(|_| (rng.random_range(0..n as u32), rng.random_range(0..n as u32)))
        .filter(|(a, b)| a != b)
        .collect();
    graph_from_parts(&node_labels, &edges).unwrap()
}

fn random_pattern(rng: &mut StdRng, labels: u32) -> Pattern {
    let pn = rng.random_range(1..5usize);
    let plabels: Vec<u32> = (0..pn).map(|_| rng.random_range(0..labels)).collect();
    let mut pedges: Vec<(u32, u32)> = (1..pn as u32).map(|i| (i - 1, i)).collect();
    for _ in 0..rng.random_range(0..pn * 2) {
        let a = rng.random_range(0..pn as u32);
        let b = rng.random_range(0..pn as u32);
        if a != b && !pedges.contains(&(a, b)) {
            pedges.push((a, b));
        }
    }
    label_pattern(&plabels, &pedges, 0).unwrap()
}

/// Kind-restricted random delta batches.
#[derive(Clone, Copy)]
enum StreamKind {
    InsertOnly,
    DeleteOnly,
    Mixed,
}

fn random_delta(rng: &mut StdRng, g: &gpm_graph::DynGraph, kind: StreamKind) -> GraphDelta {
    let mut delta = GraphDelta::new();
    let n = g.node_count() as u32;
    for _ in 0..rng.random_range(1..5usize) {
        let insert = match kind {
            StreamKind::InsertOnly => true,
            StreamKind::DeleteOnly => false,
            StreamKind::Mixed => rng.random::<f64>() < 0.5,
        };
        if insert {
            match rng.random_range(0..4u32) {
                0 => delta = delta.add_node(rng.random_range(0..3u32)),
                _ => {
                    let a = rng.random_range(0..n);
                    let b = rng.random_range(0..n);
                    if a != b {
                        delta = delta.add_edge(a, b);
                    }
                }
            }
        } else {
            match rng.random_range(0..5u32) {
                0 => delta = delta.remove_node(rng.random_range(0..n)),
                _ => {
                    // Bias towards existing edges so deletions actually land.
                    let a = rng.random_range(0..n);
                    let b = g.successors(a).next().unwrap_or_else(|| rng.random_range(0..n));
                    delta = delta.remove_edge(a, b);
                }
            }
        }
    }
    delta
}

fn run_stream(kind: StreamKind, seed: u64, trials: usize, steps: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    for trial in 0..trials {
        let n = rng.random_range(4..18usize);
        let g = random_graph(&mut rng, n, 3, 2);
        let q = random_pattern(&mut rng, 3);
        let k = rng.random_range(1..5usize);
        let lambda = rng.random_range(0.0..1.0f64);
        let mut m =
            DynamicMatcher::new(&g, q.clone(), IncrementalConfig::new(k).lambda(lambda)).unwrap();
        assert_agrees(&mut m, k, lambda, &format!("trial {trial} init"));
        for step in 0..steps {
            let delta = random_delta(&mut rng, m.graph(), kind);
            m.apply(&delta).unwrap();
            assert_agrees(&mut m, k, lambda, &format!("trial {trial} step {step}: {delta:?}"));
        }
    }
}

#[test]
fn insert_only_streams_agree_with_from_scratch() {
    run_stream(StreamKind::InsertOnly, 0xA11CE, 30, 8);
}

#[test]
fn delete_only_streams_agree_with_from_scratch() {
    run_stream(StreamKind::DeleteOnly, 0xB0B, 30, 8);
}

#[test]
fn mixed_streams_agree_with_from_scratch() {
    run_stream(StreamKind::Mixed, 0xC0FFEE, 40, 10);
}

#[test]
fn forced_incremental_path_agrees() {
    // Thresholds maxed out so the incremental path is always taken (no
    // full-rebuild safety net hiding bugs).
    let mut rng = StdRng::seed_from_u64(7);
    for trial in 0..25 {
        let g = random_graph(&mut rng, 12, 3, 2);
        let q = random_pattern(&mut rng, 3);
        let mut cfg = IncrementalConfig::new(3);
        cfg.max_delta_fraction = f64::INFINITY;
        cfg.max_dirty_fraction = f64::INFINITY;
        let mut m = DynamicMatcher::new(&g, q, cfg).unwrap();
        for step in 0..10 {
            let delta = random_delta(&mut rng, m.graph(), StreamKind::Mixed);
            m.apply(&delta).unwrap();
            assert_agrees(&mut m, 3, 0.5, &format!("forced trial {trial} step {step}"));
        }
        assert_eq!(m.stats().full_rebuilds, 0);
        assert_eq!(m.stats().full_rank_refreshes, 0);
        assert_eq!(m.stats().incremental_applies, 10);
    }
}

#[test]
fn forced_rebuild_path_agrees() {
    // Zero thresholds: every *effective* batch goes through the
    // full-rebuild fallback; the answers must be the same ones the
    // incremental path produces. The churn estimate is exact since the
    // effective-op mirror, so a batch whose ops are all no-ops (removing
    // an absent edge, re-tombstoning a node) counts zero churn and
    // legitimately stays off the rebuild path.
    let mut rng = StdRng::seed_from_u64(9);
    for trial in 0..10 {
        let g = random_graph(&mut rng, 12, 3, 2);
        let q = random_pattern(&mut rng, 3);
        let mut cfg = IncrementalConfig::new(3);
        cfg.max_delta_fraction = 0.0;
        let mut m = DynamicMatcher::new(&g, q, cfg).unwrap();
        let mut mirror = gpm_graph::dynamic::DynGraph::from_digraph(&g);
        let mut effective = 0;
        for step in 0..6 {
            let delta = random_delta(&mut rng, m.graph(), StreamKind::Mixed);
            let applied = mirror.apply(&delta).unwrap();
            if !applied.added_nodes.is_empty()
                || !applied.removed_nodes.is_empty()
                || !applied.added_edges.is_empty()
                || !applied.removed_edges.is_empty()
            {
                effective += 1;
            }
            m.apply(&delta).unwrap();
            assert_agrees(&mut m, 3, 0.5, &format!("rebuild trial {trial} step {step}"));
        }
        assert_eq!(m.stats().full_rebuilds, effective, "every effective batch rebuilds");
    }
}

#[test]
fn tombstone_keeps_surviving_ancestors_fresh() {
    // Regression: node 0 has children 1 and 2 (both B-candidates);
    // tombstoning node 1 on the forced-incremental path must shrink 0's
    // relevant set from {1, 2} to {2}. The seed computation runs after the
    // batch, when (B, 1)'s valid flag is already cleared — seeding must use
    // the ever-candidate map or (A, 0) is never swept and its cached
    // relevance stays 2.
    let g = graph_from_parts(&[0, 1, 1], &[(0, 1), (0, 2)]).unwrap();
    let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
    let mut cfg = IncrementalConfig::new(2);
    cfg.max_delta_fraction = f64::INFINITY;
    cfg.max_dirty_fraction = f64::INFINITY;
    let mut m = DynamicMatcher::new(&g, q, cfg).unwrap();
    assert_eq!(m.top_k().matches[0].relevance, 2);

    m.apply(&GraphDelta::new().remove_node(1)).unwrap();
    assert_eq!(m.stats().full_rebuilds, 0, "must exercise the incremental path");
    assert_eq!(m.stats().full_rank_refreshes, 0);
    let top = m.top_k();
    assert_eq!(top.nodes(), vec![0]);
    assert_eq!(top.matches[0].relevance, 1, "relevant set still counts the tombstoned node");
    assert_agrees(&mut m, 2, 0.5, "after tombstoning a leaf with a surviving sibling");
}

#[test]
fn attribute_patterns_are_maintained() {
    use gpm_pattern::{CmpOp, PatternBuilder, Predicate};
    let g = graph_from_parts(&[0, 1], &[(0, 1)]).unwrap();
    let mut b = PatternBuilder::new();
    b.node("V", Predicate::labeled(0, [Predicate::attr("views", CmpOp::Gt, 10i64)]));
    b.output(0).unwrap();
    let q = b.build().unwrap();
    let mut m = DynamicMatcher::new(&g, q, IncrementalConfig::new(2)).unwrap();
    assert!(m.top_k().nodes().is_empty(), "no node carries `views` yet");
    assert_agrees(&mut m, 2, 0.5, "attr pattern before any attribute lands");

    // The attribute arriving creates the match; dropping it removes it.
    let top = m.apply(&GraphDelta::new().set_attr(0, "views", 50i64)).unwrap();
    assert_eq!(top.nodes(), vec![0]);
    assert_agrees(&mut m, 2, 0.5, "after SetAttr creates the candidate");
    let top = m.apply(&GraphDelta::new().set_attr(0, "views", 5i64)).unwrap();
    assert!(top.nodes().is_empty(), "below the threshold candidacy is gone");
    assert_agrees(&mut m, 2, 0.5, "after SetAttr leaves the candidate");
    let top = m.apply(&GraphDelta::new().set_attr(0, "views", 11i64)).unwrap();
    assert_eq!(top.nodes(), vec![0]);
    let top = m.apply(&GraphDelta::new().unset_attr(0, "views")).unwrap();
    assert!(top.nodes().is_empty());
    assert_agrees(&mut m, 2, 0.5, "after UnsetAttr");
    assert_eq!(m.stats().full_rebuilds, 0, "attr flips are handled incrementally");
}

#[test]
fn oversized_patterns_are_rejected() {
    // The real remaining restriction: the candidate bitmask is 64 bits.
    use gpm_pattern::{PatternBuilder, Predicate};
    let g = graph_from_parts(&[0, 1], &[(0, 1)]).unwrap();
    let mut b = PatternBuilder::new();
    for i in 0..65u32 {
        b.node(format!("u{i}"), Predicate::Label(0));
    }
    for i in 1..65u32 {
        b.edge(i - 1, i).unwrap();
    }
    b.output(0).unwrap();
    let q = b.build().unwrap();
    assert!(DynamicMatcher::new(&g, q, IncrementalConfig::new(2)).is_err());
}

#[test]
fn invalid_delta_leaves_state_intact() {
    let g = graph_from_parts(&[0, 1], &[(0, 1)]).unwrap();
    let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
    let mut m = DynamicMatcher::new(&g, q, IncrementalConfig::new(2)).unwrap();
    let before = m.top_k();
    assert!(m.apply(&GraphDelta::new().add_edge(0, 99)).is_err());
    assert_eq!(m.top_k().nodes(), before.nodes());
    assert_eq!(m.graph().version(), 0);
    assert_agrees(&mut m, 2, 0.5, "after rejected delta");
}
