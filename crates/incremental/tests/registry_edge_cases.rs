//! Edge cases of the [`PatternRegistry`] lifecycle: empty registries,
//! duplicate registrations, deregistration under pending dirtiness, and a
//! tombstone-heavy stream replaying PR 1's
//! `tombstone_keeps_surviving_ancestors_fresh` regression through the
//! registry path.

use gpm_core::config::TopKConfig;
use gpm_core::top_k_by_match;
use gpm_datagen::update_stream::{update_stream, UpdateStreamConfig};
use gpm_graph::builder::graph_from_parts;
use gpm_graph::GraphDelta;
use gpm_incremental::{DynamicMatcher, IncrementalConfig, PatternRegistry};
use gpm_pattern::builder::label_pattern;

/// Forced-incremental config: thresholds maxed so no rebuild safety net
/// can mask maintenance bugs.
fn forced(k: usize) -> IncrementalConfig {
    let mut cfg = IncrementalConfig::new(k);
    cfg.max_delta_fraction = f64::INFINITY;
    cfg.max_dirty_fraction = f64::INFINITY;
    cfg.max_cond_churn_fraction = f64::INFINITY;
    cfg
}

#[test]
fn empty_registry_still_advances_the_graph() {
    let g = graph_from_parts(&[0, 1, 1], &[(0, 1)]).unwrap();
    let mut reg = PatternRegistry::new(&g);
    assert!(reg.is_empty());

    let answers = reg.apply(&GraphDelta::new().add_edge(0, 2)).unwrap();
    assert!(answers.is_empty());
    assert_eq!(reg.graph().version(), 1);
    assert_eq!(reg.graph().edge_count(), 2);
    assert_eq!(reg.stats().batches, 1);
    assert_eq!(reg.stats().ops_replayed + reg.stats().ops_skipped, 0, "nobody to fan out to");

    // A pattern registered after the fact sees the advanced graph.
    let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
    let id = reg.register(q, IncrementalConfig::new(2)).unwrap();
    let top = reg.top_k(id).unwrap();
    assert_eq!(top.nodes(), vec![0]);
    assert_eq!(top.matches[0].relevance, 2, "both edges present at registration");
}

#[test]
fn duplicate_registrations_are_independent() {
    let g = graph_from_parts(&[0, 1, 1], &[(0, 1), (0, 2)]).unwrap();
    let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
    let mut reg = PatternRegistry::new(&g);

    // Same shape twice, different k — distinct ids, both served.
    let a = reg.register(q.clone(), forced(1)).unwrap();
    let b = reg.register(q.clone(), forced(2)).unwrap();
    assert_ne!(a, b);
    assert_eq!(reg.len(), 2);

    reg.apply(&GraphDelta::new().add_node(1).add_edge(0, 3)).unwrap();
    assert_eq!(reg.top_k(a).unwrap().matches[0].relevance, 3);
    assert_eq!(reg.top_k(b).unwrap().matches[0].relevance, 3);

    // Dropping one copy leaves the twin fully live.
    assert!(reg.deregister(a));
    assert!(reg.top_k(a).is_none());
    reg.apply(&GraphDelta::new().remove_node(3)).unwrap();
    let top = reg.top_k(b).unwrap();
    assert_eq!(top.matches[0].relevance, 2);
    let snap = reg.snapshot();
    let base = top_k_by_match(&snap, &q, &TopKConfig::new(2));
    assert_eq!(top.nodes(), base.nodes());
}

#[test]
fn deregister_under_pending_dirtiness_leaves_survivors_consistent() {
    // Two patterns over one graph; a batch that dirties both is applied,
    // then one pattern is dropped *between* batches while the stream keeps
    // flowing. The survivor must keep answering exactly.
    let g =
        graph_from_parts(&[0, 1, 1, 2, 2, 0], &[(0, 1), (0, 2), (1, 3), (2, 4), (5, 2), (5, 4)])
            .unwrap();
    let q_ab = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
    let q_abc = label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
    let mut reg = PatternRegistry::with_threads(&g, 2);
    let id_ab = reg.register(q_ab.clone(), forced(3)).unwrap();
    let id_abc = reg.register(q_abc, forced(3)).unwrap();

    // This batch flips pairs in both patterns (edge into a B node with a C
    // successor) — both states carry fresh dirtiness through the sweep.
    reg.apply(&GraphDelta::new().remove_edge(1, 3).add_edge(5, 1)).unwrap();
    assert!(reg.stats().last_patterns_touched > 0);

    // Drop the wider pattern right on top of that churn.
    assert!(reg.deregister(id_abc));

    // Keep streaming; the survivor stays bit-identical to static recompute.
    for (step, delta) in [
        GraphDelta::new().add_edge(1, 3),
        GraphDelta::new().remove_node(2),
        GraphDelta::new().add_node(1).add_edge(0, 6).add_edge(5, 6),
    ]
    .iter()
    .enumerate()
    {
        reg.apply(delta).unwrap();
        let snap = reg.snapshot();
        let base = top_k_by_match(&snap, &q_ab, &TopKConfig::new(3));
        let top = reg.top_k(id_ab).unwrap();
        assert_eq!(top.nodes(), base.nodes(), "step {step}");
        let st = reg.stats_of(id_ab).unwrap();
        assert_eq!(st.full_rebuilds, 0, "forced-incremental path");
    }
}

#[test]
fn tombstone_keeps_surviving_ancestors_fresh_through_registry() {
    // PR 1's stale-relevance regression, replayed through the registry's
    // fan-out: node 0 has children 1 and 2 (both B-candidates); tombstoning
    // node 1 on the forced-incremental path must shrink 0's relevant set
    // from {1, 2} to {2} even though (B, 1)'s valid flag is already cleared
    // when the ranking seeds are computed. A second registered pattern
    // rides along to prove the fan-out isolates the scenario per pattern.
    let g = graph_from_parts(&[0, 1, 1], &[(0, 1), (0, 2)]).unwrap();
    let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
    let q_b = label_pattern(&[1], &[], 0).unwrap();
    let mut reg = PatternRegistry::with_threads(&g, 2);
    let id = reg.register(q.clone(), forced(2)).unwrap();
    let id_b = reg.register(q_b, forced(3)).unwrap();
    assert_eq!(reg.top_k(id).unwrap().matches[0].relevance, 2);
    assert_eq!(reg.top_k(id_b).unwrap().nodes(), vec![1, 2]);

    reg.apply(&GraphDelta::new().remove_node(1)).unwrap();

    let st = reg.stats_of(id).unwrap();
    assert_eq!(st.full_rebuilds, 0, "must exercise the incremental path");
    assert_eq!(st.full_rank_refreshes, 0);
    let top = reg.top_k(id).unwrap();
    assert_eq!(top.nodes(), vec![0]);
    assert_eq!(top.matches[0].relevance, 1, "relevant set still counts the tombstoned node");
    assert_eq!(reg.top_k(id_b).unwrap().nodes(), vec![2]);

    let snap = reg.snapshot();
    let base = top_k_by_match(&snap, &q, &TopKConfig::new(2));
    assert_eq!(top.nodes(), base.nodes());
}

#[test]
fn tombstone_heavy_stream_agrees_everywhere() {
    // A delete-heavy, node-churn-heavy generated stream: the hardest diet
    // for tombstone bookkeeping. Registry vs independent matcher vs static,
    // forced-incremental, after every batch.
    let base = graph_from_parts(
        &[0, 1, 1, 2, 0, 2, 1, 0],
        &[(0, 1), (0, 2), (1, 3), (2, 3), (4, 6), (6, 5), (4, 2), (7, 1), (7, 6)],
    )
    .unwrap();
    let q = label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
    let mut reg = PatternRegistry::with_threads(&base, 2);
    let id = reg.register(q.clone(), forced(3)).unwrap();
    let mut m = DynamicMatcher::new(&base, q.clone(), forced(3)).unwrap();

    let stream = update_stream(
        &base,
        &UpdateStreamConfig {
            insert_fraction: 0.25,
            node_churn: 0.6,
            labels: 3,
            ..UpdateStreamConfig::new(10, 2, 0x70B5)
        },
    );
    let mut removed = 0usize;
    for (step, delta) in stream.iter().enumerate() {
        removed +=
            delta.ops.iter().filter(|op| matches!(op, gpm_graph::DeltaOp::RemoveNode(_))).count();
        reg.apply(delta).unwrap();
        m.apply(delta).unwrap();
        let snap = reg.snapshot();
        let base_top = top_k_by_match(&snap, &q, &TopKConfig::new(3));
        let reg_top = reg.top_k(id).unwrap();
        assert_eq!(reg_top.nodes(), m.top_k().nodes(), "step {step}");
        assert_eq!(reg_top.nodes(), base_top.nodes(), "step {step}");
    }
    assert!(removed > 0, "the stream actually tombstones nodes");
    assert_eq!(reg.stats_of(id).unwrap().full_rebuilds, 0);
}

#[test]
fn oversized_patterns_are_rejected_and_leave_registry_clean() {
    use gpm_pattern::{PatternBuilder, Predicate};
    let g = graph_from_parts(&[0, 1], &[(0, 1)]).unwrap();
    let mut b = PatternBuilder::new();
    for i in 0..65u32 {
        b.node(format!("u{i}"), Predicate::Label(0));
    }
    for i in 1..65u32 {
        b.edge(i - 1, i).unwrap();
    }
    b.output(0).unwrap();
    let q = b.build().unwrap();
    let mut reg = PatternRegistry::new(&g);
    assert!(reg.register(q, IncrementalConfig::new(2)).is_err());
    assert!(reg.is_empty());
    assert_eq!(reg.stats().registrations, 0, "failed registrations are not counted");
}

#[test]
fn attribute_patterns_register_and_answer() {
    use gpm_pattern::{CmpOp, PatternBuilder, Predicate};
    let g = graph_from_parts(&[0, 1], &[(0, 1)]).unwrap();
    let mut b = PatternBuilder::new();
    b.node("V", Predicate::labeled(0, [Predicate::attr("views", CmpOp::Gt, 10i64)]));
    b.output(0).unwrap();
    let q = b.build().unwrap();
    let mut reg = PatternRegistry::new(&g);
    let id = reg.register(q, IncrementalConfig::new(2)).unwrap();
    assert!(reg.top_k(id).unwrap().nodes().is_empty());

    // The attr landing touches the pattern (its answer changes)…
    let touched = reg.apply(&GraphDelta::new().set_attr(0, "views", 99i64)).unwrap();
    assert_eq!(touched.len(), 1);
    assert_eq!(touched[0].top.nodes(), vec![0]);
    assert!(touched[0].changed(), "node 0 entered the answer");
    assert_eq!(touched[0].diff.entered, vec![0]);
    // …while a mutation on a key the pattern never mentions is skipped by
    // the attribute-key interest index.
    let touched = reg.apply(&GraphDelta::new().set_attr(0, "age", 3i64)).unwrap();
    assert!(touched.is_empty(), "uninterested key cannot touch the pattern");
    assert_eq!(reg.top_k(id).unwrap().nodes(), vec![0]);
    assert_eq!(reg.stats_of(id).unwrap().full_rebuilds, 0);
}

#[test]
fn invalid_delta_leaves_every_pattern_intact() {
    let g = graph_from_parts(&[0, 1, 1], &[(0, 1), (0, 2)]).unwrap();
    let mut reg = PatternRegistry::new(&g);
    let id = reg.register(label_pattern(&[0, 1], &[(0, 1)], 0).unwrap(), forced(2)).unwrap();
    let before = reg.top_k(id).unwrap();

    assert!(reg.apply(&GraphDelta::new().add_edge(0, 99)).is_err());
    assert_eq!(reg.graph().version(), 0);
    assert_eq!(reg.stats().batches, 0, "rejected batches are not batches");
    let after = reg.top_k(id).unwrap();
    assert_eq!(after.nodes(), before.nodes());
    assert_eq!(reg.stats_of(id).unwrap().applies, 0);
}

/// A single giant pattern's refresh is split across pool workers: one
/// changed edge dirties every output at once, the registry *decides* to
/// chunk the extraction into per-worker output ranges
/// (`intra_pattern_splits` — deterministic, counted at the decision),
/// ≥ 2 distinct workers are then *observed* claiming chunks
/// (`observed_multi_worker_refreshes` — scheduling-dependent), and the
/// answer stays bit-identical to a static recompute — the merge is by
/// output index, never by thread arrival order.
///
/// The workload makes per-chunk extraction genuinely heavy (a cyclic
/// pattern over one big data cycle, reach budget forced to the BFS
/// fallback) so the pool's dynamic chunk claiming reliably overlaps;
/// the apply is retried a few times to keep the *observation* robust on
/// a loaded machine (the *decision* needs no retries).
#[test]
fn giant_pattern_refresh_splits_across_workers() {
    // One 1500-node cycle alternating labels a/b: with the cyclic pattern
    // A ⇄ B every pair is alive and every relevant set is the whole
    // cycle, so each of the 750 outputs costs a real BFS to re-derive.
    let n = 1500u32;
    let labels: Vec<u32> = (0..n).map(|i| i % 2).collect();
    let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    let g = graph_from_parts(&labels, &edges).unwrap();
    let q = label_pattern(&[0, 1], &[(0, 1), (1, 0)], 0).unwrap();

    let mut cfg = forced(8);
    cfg.reach = gpm_ranking::ReachConfig { budget_bytes: 0, threads: 1 };
    let mut reg = PatternRegistry::with_threads(&g, 4);
    assert_eq!(reg.threads(), 4);
    let id = reg.register(q.clone(), cfg).unwrap();

    // Toggling one cycle edge kills everything, then revives everything:
    // the revival batch leaves all 750 outputs dirty and alive.
    let mut revivals = 0u64;
    for _round in 0..6 {
        reg.apply(&GraphDelta::new().remove_edge(0, 1)).unwrap();
        reg.apply(&GraphDelta::new().add_edge(0, 1)).unwrap();
        revivals += 1;
        assert_eq!(reg.stats().last_rebuilds, 0, "forced incremental never rebuilds");
        assert_eq!(reg.stats().last_intra_splits, 1, "revival chunked across the pool");
        // The split *decision* is deterministic: exactly one per revival.
        assert_eq!(reg.stats().intra_pattern_splits, revivals);
        if reg.stats().observed_multi_worker_refreshes >= 1 {
            break;
        }
    }
    assert!(
        reg.stats().observed_multi_worker_refreshes >= 1,
        "≥ 2 distinct workers must have claimed chunks: {:?}",
        reg.stats()
    );

    let top = reg.top_k(id).unwrap();
    let base = top_k_by_match(&reg.snapshot(), &q, &TopKConfig::new(8));
    assert_eq!(top.matches, base.matches, "relevances survive the parallel merge");

    // Single-threaded registries never split (and never claim to).
    let mut seq = PatternRegistry::with_threads(&g, 1);
    seq.register(q, forced(8)).unwrap();
    seq.apply(&GraphDelta::new().remove_edge(0, 1)).unwrap();
    seq.apply(&GraphDelta::new().add_edge(0, 1)).unwrap();
    assert_eq!(seq.stats().intra_pattern_splits, 0);
    assert_eq!(seq.stats().last_intra_splits, 0);
    assert_eq!(seq.stats().observed_multi_worker_refreshes, 0);
}

#[test]
fn deregister_frees_maintained_component_bitsets() {
    // The leak audit for the maintained condensation's refcounted
    // `Full(c)` bitsets. A cycle large enough that the revival batch
    // parks a `PreparedSets::Maintained` for registry phase 2b (the
    // parked handles clone the component Arcs), then the pattern is
    // deregistered mid-stream. Nothing — not the parked extraction, not
    // the answer cache, not the serving merge — may keep a component
    // bitset alive past the path that owned it.
    let n = 9000u32;
    let labels: Vec<u32> = (0..n).map(|i| i % 2).collect();
    let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    let g = graph_from_parts(&labels, &edges).unwrap();
    let q = label_pattern(&[0, 1], &[(0, 1), (1, 0)], 0).unwrap();

    // Default reach budget: the condensation DP (and with it maintained
    // mode) stays on — `budget_bytes: 0` would force the BFS fallback
    // and leave nothing to audit.
    let mut reg = PatternRegistry::with_threads(&g, 4);
    let id = reg.register(q.clone(), forced(8)).unwrap();
    let before_kill =
        reg.maintained_weak_fulls(id).expect("maintained mode is on after registration");
    assert!(
        before_kill.iter().all(|w| w.upgrade().is_some()),
        "live components hold their bitsets"
    );

    // Breaking the cycle kills every alive pair: the components are
    // tombstoned and must drop their bitsets *eagerly*, not at the next
    // rebuild — the pre-kill weak handles go dead while the pattern is
    // still registered.
    reg.apply(&GraphDelta::new().remove_edge(0, 1)).unwrap();
    assert!(
        before_kill.iter().all(|w| w.upgrade().is_none()),
        "tombstoned components freed their bitsets eagerly"
    );

    // Revival dirties every output at once: big enough that the prepared
    // maintained extraction is parked for phase 2b.
    reg.apply(&GraphDelta::new().add_edge(0, 1)).unwrap();
    assert_eq!(reg.stats().last_rebuilds, 0, "forced incremental never rebuilds");
    assert_eq!(reg.stats().last_intra_splits, 1, "revival parked a phase-2b extraction");
    let top = reg.top_k(id).unwrap();
    let base = top_k_by_match(&reg.snapshot(), &q, &TopKConfig::new(8));
    assert_eq!(top.matches, base.matches, "answers exact through the parked extraction");

    let weak = reg.maintained_weak_fulls(id).expect("maintained mode survived the toggle");
    assert!(!weak.is_empty(), "the revived cycle retains at least one component bitset");
    assert!(weak.iter().all(|w| w.upgrade().is_some()), "still alive while registered");

    // Mid-stream deregister: the slot drop must be the last strong
    // reference — every component bitset frees immediately.
    assert!(reg.deregister(id));
    assert!(
        weak.iter().all(|w| w.upgrade().is_none()),
        "deregister leaked a maintained component bitset"
    );

    // The registry itself keeps serving: the graph advances and a fresh
    // registration over the same shape answers exactly.
    reg.apply(&GraphDelta::new().remove_edge(0, 1)).unwrap();
    reg.apply(&GraphDelta::new().add_edge(0, 1)).unwrap();
    let id2 = reg.register(q.clone(), forced(8)).unwrap();
    let base = top_k_by_match(&reg.snapshot(), &q, &TopKConfig::new(8));
    assert_eq!(reg.top_k(id2).unwrap().matches, base.matches);
}
