//! Pattern construction errors.

use std::fmt;

/// Errors raised while building or validating a pattern.
#[derive(Debug, PartialEq, Eq)]
pub enum PatternError {
    /// The pattern has no nodes.
    Empty,
    /// No output node was designated.
    NoOutput,
    /// A node name was used twice.
    DuplicateName(String),
    /// An edge or the output designation referenced an unknown node.
    UnknownNode(String),
    /// An edge referenced an out-of-range node id.
    UnknownNodeId(u32),
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::Empty => write!(f, "pattern has no nodes"),
            PatternError::NoOutput => write!(f, "no output node designated"),
            PatternError::DuplicateName(n) => write!(f, "duplicate pattern node name {n:?}"),
            PatternError::UnknownNode(n) => write!(f, "unknown pattern node {n:?}"),
            PatternError::UnknownNodeId(id) => write!(f, "unknown pattern node id {id}"),
        }
    }
}

impl std::error::Error for PatternError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert!(PatternError::Empty.to_string().contains("no nodes"));
        assert!(PatternError::NoOutput.to_string().contains("output"));
        assert!(PatternError::DuplicateName("PM".into()).to_string().contains("PM"));
        assert!(PatternError::UnknownNode("X".into()).to_string().contains('X'));
        assert!(PatternError::UnknownNodeId(4).to_string().contains('4'));
    }
}
