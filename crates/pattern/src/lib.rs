//! # gpm-pattern
//!
//! Pattern graphs for graph-simulation matching, revised per Section 2.2 of
//! the paper: `Q = (Vp, Ep, fv, uo)` where `uo` is the designated **output
//! node** (marked `*` in the paper's figures). Given `Q` and a data graph
//! `G`, the revised semantics asks for `Mu(Q, G, uo) = { v | (uo, v) ∈
//! M(Q,G) }` — the matches of the output node in the unique maximum
//! simulation — instead of the whole relation `M(Q,G)`.
//!
//! Pattern nodes carry [`Predicate`]s: the paper's basic formulation is a
//! single label equality (`fv(u) = L(v)`), and Section 2.2 notes the
//! extension to "multiple predicates" on node attributes, which the paper's
//! own case-study queries use (e.g. Fig. 4: `C = "music" ∧ R > 2`). Both are
//! supported; a pure-label pattern enjoys `O(1)` candidate lookups.

pub mod builder;
pub mod error;
pub mod pattern;
pub mod predicate;

pub use builder::PatternBuilder;
pub use error::PatternError;
pub use pattern::{PNodeId, Pattern};
pub use predicate::{CmpOp, Predicate};
