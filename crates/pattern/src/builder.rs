//! Ergonomic pattern construction.

use gpm_graph::{GraphBuilder, Label};

use crate::error::PatternError;
use crate::pattern::{PNodeId, Pattern};
use crate::predicate::Predicate;

/// Builds a [`Pattern`], by node id or by node name.
#[derive(Debug, Default)]
pub struct PatternBuilder {
    predicates: Vec<Predicate>,
    names: Vec<String>,
    edges: Vec<(PNodeId, PNodeId)>,
    output: Option<PNodeId>,
}

impl PatternBuilder {
    /// Empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a named pattern node with a predicate.
    pub fn node(&mut self, name: impl Into<String>, predicate: Predicate) -> PNodeId {
        let id = self.predicates.len() as PNodeId;
        self.predicates.push(predicate);
        self.names.push(name.into());
        id
    }

    /// Adds an anonymous label-predicate node (paper's basic `fv`).
    pub fn label_node(&mut self, label: Label) -> PNodeId {
        self.node(String::new(), Predicate::Label(label))
    }

    /// Adds a pattern edge by node ids.
    pub fn edge(&mut self, from: PNodeId, to: PNodeId) -> Result<(), PatternError> {
        let n = self.predicates.len() as u32;
        if from >= n {
            return Err(PatternError::UnknownNodeId(from));
        }
        if to >= n {
            return Err(PatternError::UnknownNodeId(to));
        }
        self.edges.push((from, to));
        Ok(())
    }

    /// Adds a pattern edge by node names.
    pub fn edge_by_name(&mut self, from: &str, to: &str) -> Result<(), PatternError> {
        let f = self.lookup(from)?;
        let t = self.lookup(to)?;
        self.edge(f, t)
    }

    /// Designates the output node `uo` by id.
    pub fn output(&mut self, u: PNodeId) -> Result<(), PatternError> {
        if u >= self.predicates.len() as u32 {
            return Err(PatternError::UnknownNodeId(u));
        }
        self.output = Some(u);
        Ok(())
    }

    /// Designates the output node by name.
    pub fn output_by_name(&mut self, name: &str) -> Result<(), PatternError> {
        let u = self.lookup(name)?;
        self.output = Some(u);
        Ok(())
    }

    fn lookup(&self, name: &str) -> Result<PNodeId, PatternError> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| i as PNodeId)
            .ok_or_else(|| PatternError::UnknownNode(name.to_owned()))
    }

    /// Validates and freezes the pattern.
    pub fn build(self) -> Result<Pattern, PatternError> {
        if self.predicates.is_empty() {
            return Err(PatternError::Empty);
        }
        let output = self.output.ok_or(PatternError::NoOutput)?;
        // Reject duplicate non-empty names: name-based lookups must be
        // unambiguous.
        let mut seen = std::collections::HashSet::new();
        for n in self.names.iter().filter(|n| !n.is_empty()) {
            if !seen.insert(n.as_str()) {
                return Err(PatternError::DuplicateName(n.clone()));
            }
        }
        let mut g = GraphBuilder::with_capacity(self.predicates.len(), self.edges.len());
        for i in 0..self.predicates.len() {
            // Topology labels are unused; store the node index.
            g.add_node(i as Label);
        }
        for (f, t) in self.edges {
            g.add_edge(f, t).expect("edges validated at insertion");
        }
        Ok(Pattern { topology: g.build(), predicates: self.predicates, names: self.names, output })
    }
}

/// One-call construction of a pure-label pattern: `nodes[i]` is the label of
/// pattern node `i`, `edges` are index pairs, `output` is the index of `uo`.
/// This mirrors the paper's `(|Vp|, |Ep|)`-controlled pattern generator
/// interface and is heavily used by tests and workloads.
pub fn label_pattern(
    nodes: &[Label],
    edges: &[(PNodeId, PNodeId)],
    output: PNodeId,
) -> Result<Pattern, PatternError> {
    let mut b = PatternBuilder::new();
    for &l in nodes {
        b.label_node(l);
    }
    for &(f, t) in edges {
        b.edge(f, t)?;
    }
    b.output(output)?;
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_minimal() {
        let q = label_pattern(&[5], &[], 0).unwrap();
        assert_eq!(q.node_count(), 1);
        assert_eq!(q.output(), 0);
        assert!(q.is_dag());
        assert!(q.output_is_root());
    }

    #[test]
    fn validation_errors() {
        assert_eq!(PatternBuilder::new().build().unwrap_err(), PatternError::Empty);

        let mut b = PatternBuilder::new();
        b.label_node(0);
        assert_eq!(b.build().unwrap_err(), PatternError::NoOutput);

        let mut b = PatternBuilder::new();
        let a = b.label_node(0);
        assert_eq!(b.edge(a, 7).unwrap_err(), PatternError::UnknownNodeId(7));
        assert_eq!(b.edge(9, a).unwrap_err(), PatternError::UnknownNodeId(9));
        assert_eq!(b.output(3).unwrap_err(), PatternError::UnknownNodeId(3));

        let mut b = PatternBuilder::new();
        b.node("X", Predicate::Label(0));
        b.node("X", Predicate::Label(1));
        b.output(0).unwrap();
        assert_eq!(b.build().unwrap_err(), PatternError::DuplicateName("X".into()));

        let mut b = PatternBuilder::new();
        b.node("A", Predicate::Label(0));
        assert_eq!(b.edge_by_name("A", "B").unwrap_err(), PatternError::UnknownNode("B".into()));
        assert_eq!(b.output_by_name("Z").unwrap_err(), PatternError::UnknownNode("Z".into()));
    }

    #[test]
    fn duplicate_edges_deduplicated() {
        let q = label_pattern(&[0, 1], &[(0, 1), (0, 1)], 0).unwrap();
        assert_eq!(q.edge_count(), 1);
    }

    #[test]
    fn anonymous_display() {
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        assert_eq!(q.display(1), "u1");
        assert_eq!(q.name(1), "");
    }
}
