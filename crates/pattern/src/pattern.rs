//! The pattern graph `Q = (Vp, Ep, fv, uo)`.

use gpm_graph::scc::Successors;
use gpm_graph::{BitSet, Condensation, DiGraph, NodeId};

use crate::predicate::Predicate;

/// Pattern node identifier (dense index in `0..node_count`).
pub type PNodeId = NodeId;

/// An immutable pattern graph with a designated output node.
///
/// The topology is stored as a [`DiGraph`] (labels unused there), so all the
/// SCC / rank machinery of `gpm-graph` applies directly — `TopK` (Section
/// 4.2) condenses `Q` into `Q_SCC` exactly like a data graph.
#[derive(Debug, Clone)]
pub struct Pattern {
    pub(crate) topology: DiGraph,
    pub(crate) predicates: Vec<Predicate>,
    pub(crate) names: Vec<String>,
    pub(crate) output: PNodeId,
}

impl Pattern {
    /// Number of pattern nodes `|Vp|`.
    pub fn node_count(&self) -> usize {
        self.topology.node_count()
    }

    /// Number of pattern edges `|Ep|`.
    pub fn edge_count(&self) -> usize {
        self.topology.edge_count()
    }

    /// `|Q| = |Vp| + |Ep|`, the paper's pattern size measure.
    pub fn size(&self) -> usize {
        self.node_count() + self.edge_count()
    }

    /// The designated output node `uo`.
    pub fn output(&self) -> PNodeId {
        self.output
    }

    /// Predicate of pattern node `u` (the generalized `fv(u)`).
    pub fn predicate(&self, u: PNodeId) -> &Predicate {
        &self.predicates[u as usize]
    }

    /// Display name of `u` (empty string if none was given).
    pub fn name(&self, u: PNodeId) -> &str {
        &self.names[u as usize]
    }

    /// Name or `u{id}` for display.
    pub fn display(&self, u: PNodeId) -> String {
        if self.names[u as usize].is_empty() {
            format!("u{u}")
        } else {
            self.names[u as usize].clone()
        }
    }

    /// Resolves a node by name.
    pub fn node_by_name(&self, name: &str) -> Option<PNodeId> {
        self.names.iter().position(|n| n == name).map(|i| i as PNodeId)
    }

    /// Children `u'` with `(u, u') ∈ Ep`.
    pub fn successors(&self, u: PNodeId) -> &[PNodeId] {
        self.topology.successors(u)
    }

    /// Parents `u'` with `(u', u) ∈ Ep`.
    pub fn predecessors(&self, u: PNodeId) -> &[PNodeId] {
        self.topology.predecessors(u)
    }

    /// Iterates over pattern node ids.
    pub fn nodes(&self) -> impl Iterator<Item = PNodeId> + '_ {
        self.topology.nodes()
    }

    /// Iterates over pattern edges.
    pub fn edges(&self) -> impl Iterator<Item = (PNodeId, PNodeId)> + '_ {
        self.topology.edges().map(|e| (e.source, e.target))
    }

    /// The raw topology graph.
    pub fn topology(&self) -> &DiGraph {
        &self.topology
    }

    /// Condenses the pattern into `Q_SCC` (Section 4.2).
    pub fn condensation(&self) -> Condensation {
        Condensation::compute(&self.topology)
    }

    /// `true` iff the pattern is a DAG — selects `TopKDAG` vs `TopK`.
    pub fn is_dag(&self) -> bool {
        let c = self.condensation();
        (0..c.component_count() as u32).all(|comp| !c.is_nontrivial(comp))
    }

    /// Pattern nodes reachable from the output node via ≥1 edge — the query
    /// nodes whose candidates the normalizer `Cuo` counts (Section 3.3).
    pub fn reachable_from_output(&self) -> BitSet {
        gpm_graph::reach::strict_descendants(&self.topology, self.output)
    }

    /// `true` iff `uo` reaches every other pattern node (the paper's default
    /// "root" assumption for `TopKDAG`; non-root outputs are also supported
    /// by the algorithms, with an extra global match-existence check).
    pub fn output_is_root(&self) -> bool {
        let reach = self.reachable_from_output();
        self.nodes().all(|u| u == self.output || reach.contains(u as usize))
    }

    /// Height of the pattern = the largest topological rank (the paper notes
    /// in Exp-2 that algorithms do better on patterns with smaller height).
    pub fn height(&self) -> u32 {
        self.condensation().height()
    }
}

impl Successors for Pattern {
    fn node_count(&self) -> usize {
        Pattern::node_count(self)
    }
    fn successors_of(&self, v: NodeId) -> &[NodeId] {
        self.successors(v)
    }
}

#[cfg(test)]
mod tests {
    use crate::builder::PatternBuilder;
    use crate::predicate::Predicate;

    /// The paper's Fig. 1 pattern: PM* → DB, PM → PRG, DB ⇄ PRG, DB → ST,
    /// PRG → ST (labels: PM=0, DB=1, PRG=2, ST=3).
    fn fig1_pattern() -> crate::Pattern {
        let mut b = PatternBuilder::new();
        b.node("PM", Predicate::Label(0));
        b.node("DB", Predicate::Label(1));
        b.node("PRG", Predicate::Label(2));
        b.node("ST", Predicate::Label(3));
        b.edge_by_name("PM", "DB").unwrap();
        b.edge_by_name("PM", "PRG").unwrap();
        b.edge_by_name("DB", "PRG").unwrap();
        b.edge_by_name("PRG", "DB").unwrap();
        b.edge_by_name("DB", "ST").unwrap();
        b.edge_by_name("PRG", "ST").unwrap();
        b.output_by_name("PM").unwrap();
        b.build().unwrap()
    }

    #[test]
    fn fig1_shape() {
        let q = fig1_pattern();
        assert_eq!(q.node_count(), 4);
        assert_eq!(q.edge_count(), 6);
        assert_eq!(q.size(), 10);
        assert_eq!(q.display(q.output()), "PM");
        assert!(!q.is_dag(), "DB ⇄ PRG is a cycle");
        assert!(q.output_is_root());
        // Q_SCC: {PM}, {DB,PRG}, {ST} — ranks ST=0, {DB,PRG}=1, PM=2.
        let c = q.condensation();
        assert_eq!(c.component_count(), 3);
        let db = q.node_by_name("DB").unwrap();
        let prg = q.node_by_name("PRG").unwrap();
        let st = q.node_by_name("ST").unwrap();
        assert_eq!(c.component_of(db), c.component_of(prg));
        assert_eq!(c.node_rank(st), 0);
        assert_eq!(c.node_rank(db), 1);
        assert_eq!(c.node_rank(q.output()), 2);
        assert_eq!(q.height(), 2);
        // Cuo counts DB, PRG, ST candidates — PM is not reachable from itself.
        let reach = q.reachable_from_output();
        assert!(!reach.contains(q.output() as usize));
        assert_eq!(reach.count(), 3);
    }

    #[test]
    fn dag_pattern_q1_of_example7() {
        // Q1: PM→DB, PM→PRG, PRG→DB.
        let mut b = PatternBuilder::new();
        let pm = b.node("PM", Predicate::Label(0));
        let db = b.node("DB", Predicate::Label(1));
        let prg = b.node("PRG", Predicate::Label(2));
        b.edge(pm, db).unwrap();
        b.edge(pm, prg).unwrap();
        b.edge(prg, db).unwrap();
        b.output(pm).unwrap();
        let q = b.build().unwrap();
        assert!(q.is_dag());
        assert!(q.output_is_root());
        let c = q.condensation();
        assert_eq!(c.node_rank(db), 0);
        assert_eq!(c.node_rank(prg), 1);
        assert_eq!(c.node_rank(pm), 2);
    }

    #[test]
    fn non_root_output() {
        let mut b = PatternBuilder::new();
        let a = b.node("A", Predicate::Label(0));
        let c = b.node("C", Predicate::Label(1));
        b.edge(a, c).unwrap();
        b.output(c).unwrap();
        let q = b.build().unwrap();
        assert!(!q.output_is_root());
        assert_eq!(q.reachable_from_output().count(), 0);
    }

    #[test]
    fn edges_iteration_and_preds() {
        let q = fig1_pattern();
        let pm = q.node_by_name("PM").unwrap();
        let db = q.node_by_name("DB").unwrap();
        let st = q.node_by_name("ST").unwrap();
        assert_eq!(q.edges().count(), 6);
        assert!(q.successors(pm).contains(&db));
        assert!(q.predecessors(st).contains(&db));
        assert_eq!(q.predicate(st), &Predicate::Label(3));
        assert_eq!(q.node_by_name("nope"), None);
    }
}
