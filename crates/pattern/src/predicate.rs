//! Search conditions on pattern nodes.
//!
//! The basic formulation of the paper assigns each pattern node a label
//! (`fv(u)`), and a data node `v` is a *candidate* of `u` iff `L(v) = fv(u)`.
//! Real queries (Fig. 4) add attribute comparisons; `Predicate` closes both
//! under conjunction and disjunction.

use gpm_graph::{AttrValue, DiGraph, Label, NodeId};

/// Comparison operator for attribute predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn holds<T: PartialOrd>(self, a: &T, b: &T) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A search condition evaluated against a data node.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `L(v) = label` — the paper's basic `fv`.
    Label(Label),
    /// Attribute comparison, e.g. `views > 5000`. A node without the
    /// attribute fails the predicate; numeric comparisons coerce `Int` and
    /// `Float`, string comparisons require `Str`.
    Attr { key: String, op: CmpOp, value: AttrValue },
    /// Conjunction (empty = `true`).
    And(Vec<Predicate>),
    /// Disjunction (empty = `false`).
    Or(Vec<Predicate>),
}

impl Predicate {
    /// Convenience constructor for an attribute comparison.
    pub fn attr(key: impl Into<String>, op: CmpOp, value: impl Into<AttrValue>) -> Self {
        Predicate::Attr { key: key.into(), op, value: value.into() }
    }

    /// `label ∧ attr-conditions`, the common shape of the paper's queries.
    pub fn labeled(label: Label, conds: impl IntoIterator<Item = Predicate>) -> Self {
        let mut v = vec![Predicate::Label(label)];
        v.extend(conds);
        Predicate::And(v)
    }

    /// Evaluates the predicate on node `v` of `g`.
    pub fn matches(&self, g: &DiGraph, v: NodeId) -> bool {
        match self {
            Predicate::Label(l) => g.label(v) == *l,
            Predicate::Attr { key, op, value } => {
                let Some(attrs) = g.attributes(v) else { return false };
                let Some(actual) = attrs.get(key) else { return false };
                match (actual, value) {
                    (AttrValue::Str(a), AttrValue::Str(b)) => op.holds(a, b),
                    (a, b) => match (a.as_f64(), b.as_f64()) {
                        (Some(x), Some(y)) => op.holds(&x, &y),
                        _ => false,
                    },
                }
            }
            Predicate::And(ps) => ps.iter().all(|p| p.matches(g, v)),
            Predicate::Or(ps) => ps.iter().any(|p| p.matches(g, v)),
        }
    }

    /// If the predicate *implies* a specific label (a top-level `Label` or a
    /// conjunction containing one), returns it. Candidate enumeration then
    /// scans only `g.nodes_with_label(l)` instead of all of `V`.
    pub fn primary_label(&self) -> Option<Label> {
        match self {
            Predicate::Label(l) => Some(*l),
            Predicate::And(ps) => ps.iter().find_map(|p| p.primary_label()),
            _ => None,
        }
    }

    /// `true` when the predicate is a bare label test.
    pub fn is_pure_label(&self) -> bool {
        matches!(self, Predicate::Label(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::{Attributes, GraphBuilder};

    fn attributed_graph() -> DiGraph {
        let mut b = GraphBuilder::new();
        b.add_node_with_attrs(
            0,
            Attributes::from_pairs([
                ("category", AttrValue::from("music")),
                ("rate", AttrValue::Float(3.5)),
                ("views", AttrValue::Int(9000)),
            ]),
        );
        b.add_node_with_attrs(
            0,
            Attributes::from_pairs([
                ("category", AttrValue::from("news")),
                ("rate", AttrValue::Float(1.0)),
            ]),
        );
        b.add_node(1);
        b.build()
    }

    #[test]
    fn label_predicate() {
        let g = attributed_graph();
        let p = Predicate::Label(0);
        assert!(p.matches(&g, 0));
        assert!(p.matches(&g, 1));
        assert!(!p.matches(&g, 2));
        assert_eq!(p.primary_label(), Some(0));
        assert!(p.is_pure_label());
    }

    #[test]
    fn fig4_style_predicate() {
        // C = "music" ∧ R > 2 (pattern Q1's output node in the paper).
        let g = attributed_graph();
        let p = Predicate::labeled(
            0,
            [
                Predicate::attr("category", CmpOp::Eq, "music"),
                Predicate::attr("rate", CmpOp::Gt, 2.0),
            ],
        );
        assert!(p.matches(&g, 0));
        assert!(!p.matches(&g, 1), "category mismatch");
        assert!(!p.matches(&g, 2), "label mismatch and no attrs");
        assert_eq!(p.primary_label(), Some(0));
        assert!(!p.is_pure_label());
    }

    #[test]
    fn numeric_coercion_and_ops() {
        let g = attributed_graph();
        assert!(Predicate::attr("views", CmpOp::Ge, 9000i64).matches(&g, 0));
        assert!(Predicate::attr("views", CmpOp::Ne, 1i64).matches(&g, 0));
        assert!(!Predicate::attr("views", CmpOp::Lt, 9000i64).matches(&g, 0));
        assert!(Predicate::attr("rate", CmpOp::Le, 3.5).matches(&g, 0));
        // Missing attribute fails.
        assert!(!Predicate::attr("views", CmpOp::Gt, 0i64).matches(&g, 1));
        // String/number mismatch fails.
        assert!(!Predicate::attr("category", CmpOp::Gt, 1i64).matches(&g, 0));
    }

    #[test]
    fn boolean_combinators() {
        let g = attributed_graph();
        let any = Predicate::Or(vec![
            Predicate::attr("category", CmpOp::Eq, "news"),
            Predicate::attr("category", CmpOp::Eq, "music"),
        ]);
        assert!(any.matches(&g, 0));
        assert!(any.matches(&g, 1));
        assert!(!any.matches(&g, 2));
        assert!(Predicate::And(vec![]).matches(&g, 2), "empty And is true");
        assert!(!Predicate::Or(vec![]).matches(&g, 2), "empty Or is false");
        assert_eq!(any.primary_label(), None);
    }

    #[test]
    fn cmp_display() {
        assert_eq!(CmpOp::Ge.to_string(), ">=");
        assert_eq!(CmpOp::Eq.to_string(), "=");
    }
}
