//! Search conditions on pattern nodes.
//!
//! The basic formulation of the paper assigns each pattern node a label
//! (`fv(u)`), and a data node `v` is a *candidate* of `u` iff `L(v) = fv(u)`.
//! Real queries (Fig. 4) add attribute comparisons; `Predicate` closes both
//! under conjunction and disjunction.

use std::collections::BTreeSet;

use gpm_graph::{AttrValue, Attributes, DiGraph, Label, NodeId};

/// Comparison operator for attribute predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    fn holds<T: PartialOrd>(self, a: &T, b: &T) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }
}

impl std::fmt::Display for CmpOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
        };
        f.write_str(s)
    }
}

/// A search condition evaluated against a data node.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `L(v) = label` — the paper's basic `fv`.
    Label(Label),
    /// Attribute comparison, e.g. `views > 5000`. A node without the
    /// attribute fails the predicate; numeric comparisons coerce `Int` and
    /// `Float`, string comparisons require `Str`.
    Attr { key: String, op: CmpOp, value: AttrValue },
    /// Conjunction (empty = `true`).
    And(Vec<Predicate>),
    /// Disjunction (empty = `false`).
    Or(Vec<Predicate>),
}

impl Predicate {
    /// Convenience constructor for an attribute comparison.
    pub fn attr(key: impl Into<String>, op: CmpOp, value: impl Into<AttrValue>) -> Self {
        Predicate::Attr { key: key.into(), op, value: value.into() }
    }

    /// `label ∧ attr-conditions`, the common shape of the paper's queries.
    pub fn labeled(label: Label, conds: impl IntoIterator<Item = Predicate>) -> Self {
        let mut v = vec![Predicate::Label(label)];
        v.extend(conds);
        Predicate::And(v)
    }

    /// Evaluates the predicate on node `v` of `g`.
    pub fn matches(&self, g: &DiGraph, v: NodeId) -> bool {
        self.eval(g.label(v), g.attributes(v))
    }

    /// Evaluates the predicate against a node view: its label and (when the
    /// graph carries an attribute table) its attributes. This is the single
    /// evaluation both the static [`DiGraph`] path and the dynamic
    /// `DynGraph` path go through — candidacy is a function of exactly
    /// `(label, attrs)`, which is what makes attribute-key interest
    /// filtering sound.
    ///
    /// `And`/`Or` short-circuit: conjunctions stop at the first failing
    /// conjunct, disjunctions at the first holding disjunct.
    pub fn eval(&self, label: Label, attrs: Option<&Attributes>) -> bool {
        match self {
            Predicate::Label(l) => label == *l,
            Predicate::Attr { key, op, value } => {
                let Some(actual) = attrs.and_then(|a| a.get(key)) else { return false };
                match (actual, value) {
                    (AttrValue::Str(a), AttrValue::Str(b)) => op.holds(a, b),
                    (a, b) => match (a.as_f64(), b.as_f64()) {
                        (Some(x), Some(y)) => op.holds(&x, &y),
                        _ => false,
                    },
                }
            }
            Predicate::And(ps) => ps.iter().all(|p| p.eval(label, attrs)),
            Predicate::Or(ps) => ps.iter().any(|p| p.eval(label, attrs)),
        }
    }

    /// If the predicate *implies* a specific label (a top-level `Label` or a
    /// conjunction containing one), returns it. Candidate enumeration then
    /// scans only `g.nodes_with_label(l)` instead of all of `V`.
    pub fn primary_label(&self) -> Option<Label> {
        match self {
            Predicate::Label(l) => Some(*l),
            Predicate::And(ps) => ps.iter().find_map(|p| p.primary_label()),
            _ => None,
        }
    }

    /// `true` when the predicate is a bare label test.
    pub fn is_pure_label(&self) -> bool {
        matches!(self, Predicate::Label(_))
    }

    /// `true` when evaluating the predicate can read attribute `key`.
    /// Mutating any *other* key provably cannot change the predicate's
    /// value on any node — the test the dynamic path's attribute-interest
    /// index relies on.
    pub fn mentions_key(&self, key: &str) -> bool {
        match self {
            Predicate::Label(_) => false,
            Predicate::Attr { key: k, .. } => k == key,
            Predicate::And(ps) | Predicate::Or(ps) => ps.iter().any(|p| p.mentions_key(key)),
        }
    }

    /// Collects every attribute key the predicate mentions into `out`.
    pub fn collect_attr_keys(&self, out: &mut BTreeSet<String>) {
        match self {
            Predicate::Label(_) => {}
            Predicate::Attr { key, .. } => {
                out.insert(key.clone());
            }
            Predicate::And(ps) | Predicate::Or(ps) => {
                for p in ps {
                    p.collect_attr_keys(out);
                }
            }
        }
    }

    /// The set of attribute keys the predicate mentions.
    pub fn attr_keys(&self) -> BTreeSet<String> {
        let mut out = BTreeSet::new();
        self.collect_attr_keys(&mut out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::{Attributes, GraphBuilder};

    fn attributed_graph() -> DiGraph {
        let mut b = GraphBuilder::new();
        b.add_node_with_attrs(
            0,
            Attributes::from_pairs([
                ("category", AttrValue::from("music")),
                ("rate", AttrValue::Float(3.5)),
                ("views", AttrValue::Int(9000)),
            ]),
        );
        b.add_node_with_attrs(
            0,
            Attributes::from_pairs([
                ("category", AttrValue::from("news")),
                ("rate", AttrValue::Float(1.0)),
            ]),
        );
        b.add_node(1);
        b.build()
    }

    #[test]
    fn label_predicate() {
        let g = attributed_graph();
        let p = Predicate::Label(0);
        assert!(p.matches(&g, 0));
        assert!(p.matches(&g, 1));
        assert!(!p.matches(&g, 2));
        assert_eq!(p.primary_label(), Some(0));
        assert!(p.is_pure_label());
    }

    #[test]
    fn fig4_style_predicate() {
        // C = "music" ∧ R > 2 (pattern Q1's output node in the paper).
        let g = attributed_graph();
        let p = Predicate::labeled(
            0,
            [
                Predicate::attr("category", CmpOp::Eq, "music"),
                Predicate::attr("rate", CmpOp::Gt, 2.0),
            ],
        );
        assert!(p.matches(&g, 0));
        assert!(!p.matches(&g, 1), "category mismatch");
        assert!(!p.matches(&g, 2), "label mismatch and no attrs");
        assert_eq!(p.primary_label(), Some(0));
        assert!(!p.is_pure_label());
    }

    #[test]
    fn numeric_coercion_and_ops() {
        let g = attributed_graph();
        assert!(Predicate::attr("views", CmpOp::Ge, 9000i64).matches(&g, 0));
        assert!(Predicate::attr("views", CmpOp::Ne, 1i64).matches(&g, 0));
        assert!(!Predicate::attr("views", CmpOp::Lt, 9000i64).matches(&g, 0));
        assert!(Predicate::attr("rate", CmpOp::Le, 3.5).matches(&g, 0));
        // Missing attribute fails.
        assert!(!Predicate::attr("views", CmpOp::Gt, 0i64).matches(&g, 1));
        // String/number mismatch fails.
        assert!(!Predicate::attr("category", CmpOp::Gt, 1i64).matches(&g, 0));
    }

    #[test]
    fn boolean_combinators() {
        let g = attributed_graph();
        let any = Predicate::Or(vec![
            Predicate::attr("category", CmpOp::Eq, "news"),
            Predicate::attr("category", CmpOp::Eq, "music"),
        ]);
        assert!(any.matches(&g, 0));
        assert!(any.matches(&g, 1));
        assert!(!any.matches(&g, 2));
        assert!(Predicate::And(vec![]).matches(&g, 2), "empty And is true");
        assert!(!Predicate::Or(vec![]).matches(&g, 2), "empty Or is false");
        assert_eq!(any.primary_label(), None);
    }

    #[test]
    fn cmp_display() {
        assert_eq!(CmpOp::Ge.to_string(), ">=");
        assert_eq!(CmpOp::Eq.to_string(), "=");
    }

    #[test]
    fn eval_matches_graph_free_view() {
        // `eval` over (label, attrs) is the single evaluation `matches`
        // delegates to — the contract the dynamic path builds on.
        let g = attributed_graph();
        let p = Predicate::labeled(
            0,
            [
                Predicate::attr("category", CmpOp::Eq, "music"),
                Predicate::attr("views", CmpOp::Gt, 100i64),
            ],
        );
        for v in g.nodes() {
            assert_eq!(p.matches(&g, v), p.eval(g.label(v), g.attributes(v)), "node {v}");
        }
        // No attribute table at all: attr conditions fail, labels still work.
        assert!(!p.eval(0, None));
        assert!(Predicate::Label(0).eval(0, None));
    }

    #[test]
    fn cross_variant_comparisons() {
        let mut b = GraphBuilder::new();
        b.add_node_with_attrs(
            0,
            Attributes::from_pairs([
                ("views", AttrValue::Int(9000)),
                ("rate", AttrValue::Float(9000.0)),
                ("category", AttrValue::from("music")),
            ]),
        );
        let g = b.build();
        // Int widens to f64: Int(9000) stored vs Float(9000.0) queried (and
        // vice versa) compare equal under every numeric operator.
        assert!(Predicate::attr("views", CmpOp::Eq, 9000.0f64).matches(&g, 0));
        assert!(Predicate::attr("rate", CmpOp::Eq, 9000i64).matches(&g, 0));
        assert!(Predicate::attr("views", CmpOp::Le, 9000.0f64).matches(&g, 0));
        assert!(!Predicate::attr("views", CmpOp::Ne, 9000.0f64).matches(&g, 0));
        // Str vs numeric never holds, under equality, inequality *or*
        // ordering — `Ne` included: a type mismatch is "no comparison",
        // not "unequal".
        for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
            assert!(!Predicate::attr("category", op, 1i64).matches(&g, 0), "category {op} 1");
            assert!(!Predicate::attr("views", op, "9000").matches(&g, 0), "views {op} '9000'");
        }
        // Str vs Str uses lexicographic ordering.
        assert!(Predicate::attr("category", CmpOp::Lt, "news").matches(&g, 0));
        assert!(!Predicate::attr("category", CmpOp::Gt, "news").matches(&g, 0));
    }

    #[test]
    fn and_or_short_circuit() {
        let g = attributed_graph();
        // A failing label conjunct decides the And before the attr
        // conditions are reached; a holding first disjunct decides the Or.
        // Observable contract: the combined value never depends on what
        // comes after the deciding operand.
        let fail_fast = Predicate::And(vec![
            Predicate::Label(99),
            Predicate::attr("category", CmpOp::Eq, "music"),
        ]);
        assert!(!fail_fast.matches(&g, 0), "And is false once any conjunct fails");
        let hold_fast = Predicate::Or(vec![
            Predicate::Label(0),
            Predicate::attr("nonexistent", CmpOp::Gt, 1i64),
        ]);
        assert!(hold_fast.matches(&g, 0), "Or is true once any disjunct holds");
        // Nested combinators reduce the same way.
        let nested = Predicate::And(vec![
            Predicate::Or(vec![Predicate::Label(1), Predicate::Label(0)]),
            Predicate::Or(vec![
                Predicate::attr("category", CmpOp::Eq, "podcast"),
                Predicate::attr("rate", CmpOp::Ge, 3.0),
            ]),
        ]);
        assert!(nested.matches(&g, 0));
        assert!(!nested.matches(&g, 1), "rate 1.0 fails both inner disjuncts");
        // Identity elements: And([]) = true, Or([]) = false, also nested.
        assert!(Predicate::And(vec![Predicate::Or(vec![Predicate::And(vec![])])]).matches(&g, 2));
        assert!(!Predicate::Or(vec![Predicate::And(vec![Predicate::Or(vec![])])]).matches(&g, 2));
    }

    #[test]
    fn attr_key_introspection() {
        let p = Predicate::labeled(
            0,
            [
                Predicate::attr("views", CmpOp::Gt, 10i64),
                Predicate::Or(vec![
                    Predicate::attr("category", CmpOp::Eq, "music"),
                    Predicate::attr("views", CmpOp::Lt, 100i64),
                ]),
            ],
        );
        assert!(p.mentions_key("views"));
        assert!(p.mentions_key("category"));
        assert!(!p.mentions_key("rate"));
        let keys: Vec<String> = p.attr_keys().into_iter().collect();
        assert_eq!(keys, vec!["category".to_string(), "views".to_string()]);
        assert!(Predicate::Label(3).attr_keys().is_empty());
        assert!(!Predicate::Label(3).mentions_key("views"));
    }
}
