//! Multi-pattern serving benchmark: one [`PatternRegistry`] vs N
//! independent [`DynamicMatcher`]s over the same update stream.
//!
//! The registry's amortization claim is that serving N patterns over one
//! graph shares the per-batch work — one graph mutation instead of N, a
//! label index that prunes the per-pattern replay fan-out, and a thread
//! pool over the independent ranking refreshes. This bench replays the
//! same generated stream through both serving architectures for growing N
//! and records mean per-batch latencies, plus the shared-index hit rate.
//! Results are printed as a table and written to `BENCH_registry.json` so
//! the perf trajectory accumulates across PRs.

use std::time::Instant;

use gpm_datagen::update_stream::{update_stream, UpdateStreamConfig};
use gpm_graph::{DiGraph, GraphDelta};
use gpm_incremental::{DynamicMatcher, IncrementalConfig, PatternRegistry};
use gpm_pattern::builder::label_pattern;
use gpm_pattern::Pattern;
use serde::{Serialize, Value};

use crate::table::Table;

/// One measured point of the N-sweep.
#[derive(Debug, Clone)]
pub struct RegistryPoint {
    /// Registered patterns.
    pub patterns: usize,
    /// Mean `PatternRegistry::apply` latency (ms/batch, all patterns).
    pub registry_ms: f64,
    /// Mean latency of N independent `DynamicMatcher::apply` calls
    /// (ms/batch, summed over the N matchers).
    pub independent_ms: f64,
    /// Fraction of the (mutation × pattern) fan-out the shared label
    /// index pruned.
    pub shared_index_hit_rate: f64,
}

impl RegistryPoint {
    /// `independent / registry` — above 1.0 the shared layer pays off.
    pub fn speedup(&self) -> f64 {
        if self.registry_ms <= 0.0 {
            return f64::INFINITY;
        }
        self.independent_ms / self.registry_ms
    }
}

impl Serialize for RegistryPoint {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("patterns".into(), self.patterns.to_value()),
            ("registry_ms_per_batch".into(), self.registry_ms.to_value()),
            ("independent_ms_per_batch".into(), self.independent_ms.to_value()),
            ("speedup".into(), self.speedup().to_value()),
            ("shared_index_hit_rate".into(), self.shared_index_hit_rate.to_value()),
        ])
    }
}

/// The whole experiment record written to `BENCH_registry.json`.
#[derive(Debug, Clone)]
pub struct RegistryBenchResult {
    /// `|V|`, `|E|` of the base graph.
    pub nodes: usize,
    pub edges: usize,
    /// Ops per batch and batches replayed.
    pub batch_size: usize,
    pub batches: usize,
    /// Maintenance-pool size the registry ran with.
    pub threads: usize,
    /// The N-sweep.
    pub points: Vec<RegistryPoint>,
}

impl Serialize for RegistryBenchResult {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("bench".into(), "registry_multi_pattern".to_value()),
            ("nodes".into(), self.nodes.to_value()),
            ("edges".into(), self.edges.to_value()),
            ("batch_size".into(), self.batch_size.to_value()),
            ("batches".into(), self.batches.to_value()),
            ("threads".into(), self.threads.to_value()),
            ("points".into(), self.points.to_value()),
        ])
    }
}

/// The paper-style cyclic synthetic base graph the stream mutates.
pub fn registry_graph(nodes: usize, seed: u64) -> DiGraph {
    gpm_datagen::synthetic::synthetic_graph(&gpm_datagen::synthetic::SyntheticConfig::paper(
        nodes,
        4 * nodes,
        seed,
    ))
}

/// A deterministic pool of `n` small label-only patterns over a
/// `labels`-letter alphabet: chains of 2–4 nodes, every other one closed
/// into a cycle. Deliberately diverse in label coverage so the shared
/// index has real pruning to do (each pattern names a handful of the
/// alphabet's label pairs, while the stream churns them all).
pub fn registry_patterns(n: usize, labels: u32, seed: u64) -> Vec<Pattern> {
    let labels = labels.max(2);
    (0..n)
        .map(|i| {
            let len = 2 + (i + seed as usize) % 3; // 2..=4 nodes
            let plabels: Vec<u32> =
                (0..len).map(|j| ((i * 5 + j * 7 + seed as usize * 3) as u32) % labels).collect();
            let mut pedges: Vec<(u32, u32)> = (1..len as u32).map(|j| (j - 1, j)).collect();
            if i % 2 == 0 && len > 2 {
                pedges.push((len as u32 - 1, 0)); // cyclic pattern
            }
            label_pattern(&plabels, &pedges, 0).expect("valid chain pattern")
        })
        .collect()
}

/// Runs the N-sweep: the same stream through a shared registry and
/// through N private matchers, cross-checking that both serve identical
/// answers at the end of every sweep point.
pub fn run(
    g: &DiGraph,
    pool: &[Pattern],
    k: usize,
    pattern_counts: &[usize],
    batches: usize,
    batch_size: usize,
    threads: usize,
) -> RegistryBenchResult {
    let stream: Vec<GraphDelta> =
        update_stream(g, &UpdateStreamConfig::new(batches, batch_size, 0x5EAC7));

    let mut points = Vec::new();
    for &n in pattern_counts {
        let n = n.min(pool.len());

        // Shared path: one registry, one graph, one apply per batch.
        let mut reg = PatternRegistry::with_threads(g, threads);
        let ids: Vec<_> = pool[..n]
            .iter()
            .map(|q| reg.register(q.clone(), IncrementalConfig::new(k)).expect("label-only"))
            .collect();
        let t0 = Instant::now();
        for delta in &stream {
            reg.apply(delta).expect("stream is valid");
        }
        let registry_ms = t0.elapsed().as_secs_f64() * 1e3 / batches as f64;
        let hit_rate = reg.stats().shared_index_hit_rate();

        // Independent path: N matchers, each with a private graph mirror,
        // each applying every batch — what a server would run without the
        // registry layer.
        let mut matchers: Vec<DynamicMatcher> = pool[..n]
            .iter()
            .map(|q| {
                DynamicMatcher::new(g, q.clone(), IncrementalConfig::new(k)).expect("label-only")
            })
            .collect();
        let t0 = Instant::now();
        for delta in &stream {
            for m in matchers.iter_mut() {
                m.apply(delta).expect("stream is valid");
            }
        }
        let independent_ms = t0.elapsed().as_secs_f64() * 1e3 / batches as f64;

        // Cross-check: both serving architectures agree on every answer.
        for (id, m) in ids.iter().zip(&matchers) {
            let shared = reg.top_k(*id).expect("registered");
            assert_eq!(shared.nodes(), m.top_k().nodes(), "architectures diverged at N = {n}");
        }

        points.push(RegistryPoint {
            patterns: n,
            registry_ms,
            independent_ms,
            shared_index_hit_rate: hit_rate,
        });
    }
    RegistryBenchResult {
        nodes: g.node_count(),
        edges: g.edge_count(),
        batch_size,
        batches,
        threads,
        points,
    }
}

/// Renders the sweep as a printable table.
pub fn as_table(r: &RegistryBenchResult) -> Table {
    let mut t = Table::new(
        "registry_multi_pattern",
        format!(
            "shared registry vs N independent matchers, |V|={} |E|={} |Δ|={} threads={}",
            r.nodes, r.edges, r.batch_size, r.threads
        ),
        "N",
        &["registry ms", "indep ms", "speedup", "index hits"],
    );
    for p in &r.points {
        t.push(
            p.patterns.to_string(),
            vec![p.registry_ms, p.independent_ms, p.speedup(), p.shared_index_hit_rate],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_runs_and_serializes() {
        let g = registry_graph(400, 11);
        let pool = registry_patterns(4, 15, 11);
        let r = run(&g, &pool, 5, &[1, 4], 3, 10, 2);
        assert_eq!(r.points.len(), 2);
        assert!(r.points[1].shared_index_hit_rate > 0.0, "pruning happened");
        let json = serde_json::to_string_pretty(&r).unwrap();
        assert!(json.contains("registry_multi_pattern"));
        assert!(json.contains("\"patterns\": 4"));
        let rendered = as_table(&r).render();
        assert!(rendered.contains("registry_multi_pattern"));
    }
}
