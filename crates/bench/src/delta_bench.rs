//! Delta-scaling benchmark: incremental maintenance vs from-scratch
//! recomputation as a function of delta size.
//!
//! A base graph is materialized in a [`DynamicMatcher`]; for each delta
//! size `|Δ| ∈ {1, 10, 100, 1000}` a stream of update batches is replayed
//! twice — once through `DynamicMatcher::apply`, once through the static
//! pipeline (`apply_delta` + `top_k_by_match` per batch, i.e. what a
//! server without the incremental subsystem would run) — and mean
//! per-batch latencies are recorded. Results are printed as a table and
//! written to `BENCH_incremental.json` so the perf trajectory accumulates
//! across PRs.

use std::time::Instant;

use gpm_core::config::TopKConfig;
use gpm_core::top_k_by_match;
use gpm_datagen::update_stream::{update_stream, UpdateStreamConfig};
use gpm_graph::{apply_delta, DiGraph};
use gpm_incremental::{DynamicMatcher, IncrementalConfig};
use gpm_pattern::Pattern;
use serde::{Serialize, Value};

use crate::table::Table;
use crate::workloads::{self, Settings};

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct DeltaPoint {
    /// Operations per batch.
    pub delta_size: usize,
    /// Batches replayed.
    pub batches: usize,
    /// Mean `DynamicMatcher::apply` latency (ms/batch).
    pub incremental_ms: f64,
    /// Mean static-pipeline latency (ms/batch).
    pub scratch_ms: f64,
    /// How many of the incremental batches fell back to a full rebuild.
    pub full_rebuilds: u64,
}

impl DeltaPoint {
    /// `scratch / incremental` — above 1.0 the subsystem pays off.
    pub fn speedup(&self) -> f64 {
        if self.incremental_ms <= 0.0 {
            return f64::INFINITY;
        }
        self.scratch_ms / self.incremental_ms
    }
}

impl Serialize for DeltaPoint {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("delta_size".into(), self.delta_size.to_value()),
            ("batches".into(), self.batches.to_value()),
            ("incremental_ms_per_batch".into(), self.incremental_ms.to_value()),
            ("scratch_ms_per_batch".into(), self.scratch_ms.to_value()),
            ("speedup".into(), self.speedup().to_value()),
            ("full_rebuilds".into(), self.full_rebuilds.to_value()),
        ])
    }
}

/// The whole experiment record written to `BENCH_incremental.json`.
#[derive(Debug, Clone)]
pub struct DeltaBenchResult {
    /// `|V|`, `|E|` of the base graph.
    pub nodes: usize,
    pub edges: usize,
    /// Pattern shape `(|Vp|, |Ep|)`.
    pub pattern: (usize, usize),
    /// The sweep.
    pub points: Vec<DeltaPoint>,
}

impl Serialize for DeltaBenchResult {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("bench".into(), "incremental_delta_scaling".to_value()),
            ("nodes".into(), self.nodes.to_value()),
            ("edges".into(), self.edges.to_value()),
            (
                "pattern".into(),
                Value::Array(vec![self.pattern.0.to_value(), self.pattern.1.to_value()]),
            ),
            ("points".into(), self.points.to_value()),
        ])
    }
}

/// Builds the benchmark workload: a paper-style cyclic synthetic graph and
/// a verified label-only pattern.
pub fn delta_workload(nodes: usize, seed: u64) -> (DiGraph, Pattern) {
    // Paper-style generator at 4·|V| edges: reciprocity/closure high
    // enough that (4,8) near-cliques exist robustly across seeds.
    let g = gpm_datagen::synthetic::synthetic_graph(
        &gpm_datagen::synthetic::SyntheticConfig::paper(nodes, 4 * nodes, seed),
    );
    let mut s = Settings::new(gpm_datagen::datasets::Scale::Small);
    s.attr_selectivity = None; // the delta-scaling sweep stays label-only
    s.min_matches = 10;
    let q = workloads::patterns_for(&g, (4, 8), false, &s)
        .into_iter()
        .next()
        .expect("workload pattern");
    (g, q)
}

/// Value range of the attr-churn workload's single attribute — matched by
/// the stream config so generated `SetAttr`s actually cross predicate
/// thresholds.
const ATTR_RANGE: i64 = 100;

/// Builds the attribute-churn workload: the same paper-style topology with
/// an [`attr_key(0)`](gpm_datagen::update_stream::attr_key) integer
/// attribute on every node, and a verified pattern that carries attribute
/// conditions over it (so `SetAttr`/`UnsetAttr` churn actually flips
/// candidacy).
pub fn attr_workload(nodes: usize, seed: u64) -> (DiGraph, Pattern) {
    use gpm_graph::{Attributes, GraphBuilder};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    let base = gpm_datagen::synthetic::synthetic_graph(
        &gpm_datagen::synthetic::SyntheticConfig::paper(nodes, 4 * nodes, seed),
    );
    let key = gpm_datagen::update_stream::attr_key(0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA77);
    let mut b = GraphBuilder::with_capacity(base.node_count(), base.edge_count());
    for v in base.nodes() {
        b.add_node_with_attrs(
            base.label(v),
            Attributes::from_pairs([(key.clone(), rng.random_range(0..ATTR_RANGE))]),
        );
    }
    for e in base.edges() {
        b.add_edge(e.source, e.target).expect("base edges are in range");
    }
    let g = b.build();

    let mut s = Settings::new(gpm_datagen::datasets::Scale::Small);
    s.min_matches = 10;
    // Pattern extraction adds attr conditions probabilistically; insist on
    // a pattern that actually mentions the churned key.
    for round in 0..16u64 {
        s.seed = seed.wrapping_add(round * 7919);
        if let Some(q) = workloads::patterns_for(&g, (4, 8), false, &s)
            .into_iter()
            .find(|q| q.nodes().any(|u| q.predicate(u).mentions_key(&key)))
        {
            return (g, q);
        }
    }
    panic!("no attribute-conditioned workload pattern found");
}

/// Runs the sweep. `k` is the served top-k size.
pub fn run(g: &DiGraph, q: &Pattern, k: usize, delta_sizes: &[usize]) -> DeltaBenchResult {
    let mut points = Vec::new();
    for &size in delta_sizes {
        // Keep total replayed ops roughly constant across sizes.
        let batches = (2_000 / size.max(1)).clamp(3, 40);
        let stream =
            update_stream(g, &UpdateStreamConfig::new(batches, size, 0xD017A ^ size as u64));

        // Incremental path.
        let mut matcher = DynamicMatcher::new(g, q.clone(), IncrementalConfig::new(k))
            .expect("label-only pattern");
        let t0 = Instant::now();
        for delta in &stream {
            matcher.apply(delta).expect("stream is valid");
        }
        let incremental_ms = t0.elapsed().as_secs_f64() * 1e3 / batches as f64;
        let full_rebuilds = matcher.stats().full_rebuilds;

        // Static path: rebuild + re-rank per batch.
        let mut current = g.clone();
        let t0 = Instant::now();
        let mut sink = 0u64;
        for delta in &stream {
            current = apply_delta(&current, delta).expect("stream is valid");
            sink ^= top_k_by_match(&current, q, &TopKConfig::new(k)).total_relevance();
        }
        let scratch_ms = t0.elapsed().as_secs_f64() * 1e3 / batches as f64;
        std::hint::black_box(sink);

        // Cross-check: both pipelines agree on the final answer.
        let inc = matcher.top_k();
        let base = top_k_by_match(&current, q, &TopKConfig::new(k));
        assert_eq!(inc.nodes(), base.nodes(), "pipelines diverged at |Δ| = {size}");

        points.push(DeltaPoint {
            delta_size: size,
            batches,
            incremental_ms,
            scratch_ms,
            full_rebuilds,
        });
    }
    DeltaBenchResult {
        nodes: g.node_count(),
        edges: g.edge_count(),
        pattern: (q.node_count(), q.edge_count()),
        points,
    }
}

/// One measured point of the structural:attr mix sweep.
#[derive(Debug, Clone)]
pub struct AttrMixPoint {
    /// Fraction of stream ops that are attribute mutations.
    pub attr_churn: f64,
    /// Batches replayed.
    pub batches: usize,
    /// Mean `DynamicMatcher::apply` latency (ms/batch).
    pub incremental_ms: f64,
    /// Mean static-pipeline latency (ms/batch).
    pub scratch_ms: f64,
    /// Full rebuilds the incremental path fell back to (attr flips are
    /// zero edge churn, so a pure-attr stream must report 0).
    pub full_rebuilds: u64,
}

impl AttrMixPoint {
    /// `scratch / incremental`.
    pub fn speedup(&self) -> f64 {
        if self.incremental_ms <= 0.0 {
            return f64::INFINITY;
        }
        self.scratch_ms / self.incremental_ms
    }
}

impl Serialize for AttrMixPoint {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("attr_churn".into(), self.attr_churn.to_value()),
            ("batches".into(), self.batches.to_value()),
            ("incremental_ms_per_batch".into(), self.incremental_ms.to_value()),
            ("scratch_ms_per_batch".into(), self.scratch_ms.to_value()),
            ("speedup".into(), self.speedup().to_value()),
            ("full_rebuilds".into(), self.full_rebuilds.to_value()),
        ])
    }
}

/// The attr-churn experiment record: attribute-flip maintenance cost vs
/// from-scratch recomputation across structural:attr op mixes.
#[derive(Debug, Clone)]
pub struct AttrMixResult {
    /// `|V|`, `|E|` of the base graph.
    pub nodes: usize,
    pub edges: usize,
    /// Pattern shape `(|Vp|, |Ep|)`.
    pub pattern: (usize, usize),
    /// Ops per batch (fixed across the sweep — only the mix varies).
    pub batch_size: usize,
    /// The sweep.
    pub points: Vec<AttrMixPoint>,
}

impl Serialize for AttrMixResult {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("bench".into(), "incremental_attr_churn_mix".to_value()),
            ("nodes".into(), self.nodes.to_value()),
            ("edges".into(), self.edges.to_value()),
            (
                "pattern".into(),
                Value::Array(vec![self.pattern.0.to_value(), self.pattern.1.to_value()]),
            ),
            ("batch_size".into(), self.batch_size.to_value()),
            ("points".into(), self.points.to_value()),
        ])
    }
}

/// Runs the structural:attr mix sweep at a fixed batch size. `mixes` are
/// attr-churn fractions (0.0 = pure structural, 1.0 = pure attribute).
pub fn run_attr_mix(
    g: &DiGraph,
    q: &Pattern,
    k: usize,
    batch_size: usize,
    mixes: &[f64],
) -> AttrMixResult {
    let mut points = Vec::new();
    for &mix in mixes {
        let batches = (1_500 / batch_size.max(1)).clamp(3, 30);
        let cfg = UpdateStreamConfig {
            attr_keys: 1,
            attr_values: ATTR_RANGE,
            ..UpdateStreamConfig::new(batches, batch_size, 0xA77B ^ (mix * 64.0) as u64)
        }
        .with_attr_churn(mix);
        let stream = update_stream(g, &cfg);

        // Incremental path.
        let mut matcher = DynamicMatcher::new(g, q.clone(), IncrementalConfig::new(k))
            .expect("attr patterns are maintainable");
        let t0 = Instant::now();
        for delta in &stream {
            matcher.apply(delta).expect("stream is valid");
        }
        let incremental_ms = t0.elapsed().as_secs_f64() * 1e3 / batches as f64;
        let full_rebuilds = matcher.stats().full_rebuilds;

        // Static path: rebuild + re-rank per batch.
        let mut current = g.clone();
        let t0 = Instant::now();
        let mut sink = 0u64;
        for delta in &stream {
            current = apply_delta(&current, delta).expect("stream is valid");
            sink ^= top_k_by_match(&current, q, &TopKConfig::new(k)).total_relevance();
        }
        let scratch_ms = t0.elapsed().as_secs_f64() * 1e3 / batches as f64;
        std::hint::black_box(sink);

        // Cross-check: both pipelines agree on the final answer.
        let inc = matcher.top_k();
        let base = top_k_by_match(&current, q, &TopKConfig::new(k));
        assert_eq!(inc.nodes(), base.nodes(), "pipelines diverged at mix = {mix}");

        points.push(AttrMixPoint {
            attr_churn: mix,
            batches,
            incremental_ms,
            scratch_ms,
            full_rebuilds,
        });
    }
    AttrMixResult {
        nodes: g.node_count(),
        edges: g.edge_count(),
        pattern: (q.node_count(), q.edge_count()),
        batch_size,
        points,
    }
}

/// Renders the mix sweep as a printable table.
pub fn attr_mix_table(r: &AttrMixResult) -> Table {
    let mut t = Table::new(
        "attr_churn_mix",
        format!(
            "structural:attr op mix at |Δ|={}, |V|={} |E|={} Q=({},{})",
            r.batch_size, r.nodes, r.edges, r.pattern.0, r.pattern.1
        ),
        "attr frac",
        &["incr ms", "scratch ms", "speedup", "rebuilds"],
    );
    for p in &r.points {
        t.push(
            format!("{:.2}", p.attr_churn),
            vec![p.incremental_ms, p.scratch_ms, p.speedup(), p.full_rebuilds as f64],
        );
    }
    t
}

/// Renders the sweep as a printable table.
pub fn as_table(r: &DeltaBenchResult) -> Table {
    let mut t = Table::new(
        "delta_scaling",
        format!(
            "incremental vs from-scratch, |V|={} |E|={} Q=({},{})",
            r.nodes, r.edges, r.pattern.0, r.pattern.1
        ),
        "|Δ|",
        &["incr ms", "scratch ms", "speedup", "rebuilds"],
    );
    for p in &r.points {
        t.push(
            p.delta_size.to_string(),
            vec![p.incremental_ms, p.scratch_ms, p.speedup(), p.full_rebuilds as f64],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_runs_and_serializes() {
        let (g, q) = delta_workload(1_500, 3);
        let r = run(&g, &q, 5, &[1, 8]);
        assert_eq!(r.points.len(), 2);
        let json = serde_json::to_string_pretty(&r).unwrap();
        assert!(json.contains("incremental_delta_scaling"));
        assert!(json.contains("\"delta_size\": 1"));
        let rendered = as_table(&r).render();
        assert!(rendered.contains("delta_scaling"));
    }

    #[test]
    fn tiny_attr_mix_runs_and_serializes() {
        let (g, q) = attr_workload(1_200, 3);
        assert!(g.has_attributes());
        let key = gpm_datagen::update_stream::attr_key(0);
        assert!(q.nodes().any(|u| q.predicate(u).mentions_key(&key)));
        let r = run_attr_mix(&g, &q, 5, 8, &[0.0, 1.0]);
        assert_eq!(r.points.len(), 2);
        assert_eq!(r.points[1].full_rebuilds, 0, "a pure-attr stream must never trigger a rebuild");
        let json = serde_json::to_string_pretty(&r).unwrap();
        assert!(json.contains("incremental_attr_churn_mix"));
        assert!(json.contains("\"attr_churn\": 1"));
        let rendered = attr_mix_table(&r).render();
        assert!(rendered.contains("attr_churn_mix"));
    }
}
