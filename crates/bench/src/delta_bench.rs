//! Delta-scaling benchmark: incremental maintenance vs from-scratch
//! recomputation as a function of delta size.
//!
//! A base graph is materialized in a [`DynamicMatcher`]; for each delta
//! size `|Δ| ∈ {1, 10, 100, 1000}` a stream of update batches is replayed
//! twice — once through `DynamicMatcher::apply`, once through the static
//! pipeline (`apply_delta` + `top_k_by_match` per batch, i.e. what a
//! server without the incremental subsystem would run) — and mean
//! per-batch latencies are recorded. Results are printed as a table and
//! written to `BENCH_incremental.json` so the perf trajectory accumulates
//! across PRs.

use std::time::Instant;

use gpm_core::config::TopKConfig;
use gpm_core::top_k_by_match;
use gpm_datagen::update_stream::{update_stream, UpdateStreamConfig};
use gpm_graph::{apply_delta, DiGraph, GraphDelta};
use gpm_incremental::{DynamicMatcher, IncrementalConfig, Telemetry};
use gpm_pattern::Pattern;
use serde::{Serialize, Value};

use crate::table::Table;
use crate::telemetry_summary::{phase_latencies, PhaseLatency};
use crate::workloads::{self, Settings};

/// One measured point of the sweep.
#[derive(Debug, Clone)]
pub struct DeltaPoint {
    /// Operations per batch.
    pub delta_size: usize,
    /// Batches replayed.
    pub batches: usize,
    /// Mean `DynamicMatcher::apply` latency (ms/batch).
    pub incremental_ms: f64,
    /// Mean static-pipeline latency (ms/batch).
    pub scratch_ms: f64,
    /// How many of the incremental batches fell back to a full rebuild.
    pub full_rebuilds: u64,
}

impl DeltaPoint {
    /// `scratch / incremental` — above 1.0 the subsystem pays off.
    pub fn speedup(&self) -> f64 {
        if self.incremental_ms <= 0.0 {
            return f64::INFINITY;
        }
        self.scratch_ms / self.incremental_ms
    }
}

impl Serialize for DeltaPoint {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("delta_size".into(), self.delta_size.to_value()),
            ("batches".into(), self.batches.to_value()),
            ("incremental_ms_per_batch".into(), self.incremental_ms.to_value()),
            ("scratch_ms_per_batch".into(), self.scratch_ms.to_value()),
            ("speedup".into(), self.speedup().to_value()),
            ("full_rebuilds".into(), self.full_rebuilds.to_value()),
        ])
    }
}

/// The whole experiment record written to `BENCH_incremental.json`.
#[derive(Debug, Clone)]
pub struct DeltaBenchResult {
    /// `|V|`, `|E|` of the base graph.
    pub nodes: usize,
    pub edges: usize,
    /// Pattern shape `(|Vp|, |Ep|)`.
    pub pattern: (usize, usize),
    /// The sweep.
    pub points: Vec<DeltaPoint>,
}

impl Serialize for DeltaBenchResult {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("bench".into(), "incremental_delta_scaling".to_value()),
            ("nodes".into(), self.nodes.to_value()),
            ("edges".into(), self.edges.to_value()),
            (
                "pattern".into(),
                Value::Array(vec![self.pattern.0.to_value(), self.pattern.1.to_value()]),
            ),
            ("points".into(), self.points.to_value()),
        ])
    }
}

/// Builds the benchmark workload: a paper-style cyclic synthetic graph and
/// a verified label-only pattern.
pub fn delta_workload(nodes: usize, seed: u64) -> (DiGraph, Pattern) {
    // Paper-style generator at 4·|V| edges: reciprocity/closure high
    // enough that (4,8) near-cliques exist robustly across seeds.
    let g = gpm_datagen::synthetic::synthetic_graph(
        &gpm_datagen::synthetic::SyntheticConfig::paper(nodes, 4 * nodes, seed),
    );
    let mut s = Settings::new(gpm_datagen::datasets::Scale::Small);
    s.attr_selectivity = None; // the delta-scaling sweep stays label-only
    s.min_matches = 10;
    let q = workloads::patterns_for(&g, (4, 8), false, &s)
        .into_iter()
        .next()
        .expect("workload pattern");
    (g, q)
}

/// Value range of the attr-churn workload's single attribute — matched by
/// the stream config so generated `SetAttr`s actually cross predicate
/// thresholds.
const ATTR_RANGE: i64 = 100;

/// Builds the attribute-churn workload: the same paper-style topology with
/// an [`attr_key(0)`](gpm_datagen::update_stream::attr_key) integer
/// attribute on every node, and a verified pattern that carries attribute
/// conditions over it (so `SetAttr`/`UnsetAttr` churn actually flips
/// candidacy).
pub fn attr_workload(nodes: usize, seed: u64) -> (DiGraph, Pattern) {
    use gpm_graph::{Attributes, GraphBuilder};
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    let base = gpm_datagen::synthetic::synthetic_graph(
        &gpm_datagen::synthetic::SyntheticConfig::paper(nodes, 4 * nodes, seed),
    );
    let key = gpm_datagen::update_stream::attr_key(0);
    let mut rng = StdRng::seed_from_u64(seed ^ 0xA77);
    let mut b = GraphBuilder::with_capacity(base.node_count(), base.edge_count());
    for v in base.nodes() {
        b.add_node_with_attrs(
            base.label(v),
            Attributes::from_pairs([(key.clone(), rng.random_range(0..ATTR_RANGE))]),
        );
    }
    for e in base.edges() {
        b.add_edge(e.source, e.target).expect("base edges are in range");
    }
    let g = b.build();

    let mut s = Settings::new(gpm_datagen::datasets::Scale::Small);
    s.min_matches = 10;
    // Pattern extraction adds attr conditions probabilistically; insist on
    // a pattern that actually mentions the churned key.
    for round in 0..16u64 {
        s.seed = seed.wrapping_add(round * 7919);
        if let Some(q) = workloads::patterns_for(&g, (4, 8), false, &s)
            .into_iter()
            .find(|q| q.nodes().any(|u| q.predicate(u).mentions_key(&key)))
        {
            return (g, q);
        }
    }
    panic!("no attribute-conditioned workload pattern found");
}

/// Runs the sweep. `k` is the served top-k size.
pub fn run(g: &DiGraph, q: &Pattern, k: usize, delta_sizes: &[usize]) -> DeltaBenchResult {
    let mut points = Vec::new();
    for &size in delta_sizes {
        // Keep total replayed ops roughly constant across sizes.
        let batches = (2_000 / size.max(1)).clamp(3, 40);
        let stream =
            update_stream(g, &UpdateStreamConfig::new(batches, size, 0xD017A ^ size as u64));

        // Incremental path.
        let mut matcher = DynamicMatcher::new(g, q.clone(), IncrementalConfig::new(k))
            .expect("label-only pattern");
        let t0 = Instant::now();
        for delta in &stream {
            matcher.apply(delta).expect("stream is valid");
        }
        let incremental_ms = t0.elapsed().as_secs_f64() * 1e3 / batches as f64;
        let full_rebuilds = matcher.stats().full_rebuilds;

        // Static path: rebuild + re-rank per batch.
        let mut current = g.clone();
        let t0 = Instant::now();
        let mut sink = 0u64;
        for delta in &stream {
            current = apply_delta(&current, delta).expect("stream is valid");
            sink ^= top_k_by_match(&current, q, &TopKConfig::new(k)).total_relevance();
        }
        let scratch_ms = t0.elapsed().as_secs_f64() * 1e3 / batches as f64;
        std::hint::black_box(sink);

        // Cross-check: both pipelines agree on the final answer.
        let inc = matcher.top_k();
        let base = top_k_by_match(&current, q, &TopKConfig::new(k));
        assert_eq!(inc.nodes(), base.nodes(), "pipelines diverged at |Δ| = {size}");

        points.push(DeltaPoint {
            delta_size: size,
            batches,
            incremental_ms,
            scratch_ms,
            full_rebuilds,
        });
    }
    DeltaBenchResult {
        nodes: g.node_count(),
        edges: g.edge_count(),
        pattern: (q.node_count(), q.edge_count()),
        points,
    }
}

/// One measured point of the structural:attr mix sweep.
#[derive(Debug, Clone)]
pub struct AttrMixPoint {
    /// Fraction of stream ops that are attribute mutations.
    pub attr_churn: f64,
    /// Batches replayed.
    pub batches: usize,
    /// Mean `DynamicMatcher::apply` latency (ms/batch).
    pub incremental_ms: f64,
    /// Mean static-pipeline latency (ms/batch).
    pub scratch_ms: f64,
    /// Full rebuilds the incremental path fell back to (attr flips are
    /// zero edge churn, so a pure-attr stream must report 0).
    pub full_rebuilds: u64,
}

impl AttrMixPoint {
    /// `scratch / incremental`.
    pub fn speedup(&self) -> f64 {
        if self.incremental_ms <= 0.0 {
            return f64::INFINITY;
        }
        self.scratch_ms / self.incremental_ms
    }
}

impl Serialize for AttrMixPoint {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("attr_churn".into(), self.attr_churn.to_value()),
            ("batches".into(), self.batches.to_value()),
            ("incremental_ms_per_batch".into(), self.incremental_ms.to_value()),
            ("scratch_ms_per_batch".into(), self.scratch_ms.to_value()),
            ("speedup".into(), self.speedup().to_value()),
            ("full_rebuilds".into(), self.full_rebuilds.to_value()),
        ])
    }
}

/// The attr-churn experiment record: attribute-flip maintenance cost vs
/// from-scratch recomputation across structural:attr op mixes.
#[derive(Debug, Clone)]
pub struct AttrMixResult {
    /// `|V|`, `|E|` of the base graph.
    pub nodes: usize,
    pub edges: usize,
    /// Pattern shape `(|Vp|, |Ep|)`.
    pub pattern: (usize, usize),
    /// Ops per batch (fixed across the sweep — only the mix varies).
    pub batch_size: usize,
    /// The sweep.
    pub points: Vec<AttrMixPoint>,
}

impl Serialize for AttrMixResult {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("bench".into(), "incremental_attr_churn_mix".to_value()),
            ("nodes".into(), self.nodes.to_value()),
            ("edges".into(), self.edges.to_value()),
            (
                "pattern".into(),
                Value::Array(vec![self.pattern.0.to_value(), self.pattern.1.to_value()]),
            ),
            ("batch_size".into(), self.batch_size.to_value()),
            ("points".into(), self.points.to_value()),
        ])
    }
}

/// Runs the structural:attr mix sweep at a fixed batch size. `mixes` are
/// attr-churn fractions (0.0 = pure structural, 1.0 = pure attribute).
pub fn run_attr_mix(
    g: &DiGraph,
    q: &Pattern,
    k: usize,
    batch_size: usize,
    mixes: &[f64],
) -> AttrMixResult {
    let mut points = Vec::new();
    for &mix in mixes {
        let batches = (1_500 / batch_size.max(1)).clamp(3, 30);
        let cfg = UpdateStreamConfig {
            attr_keys: 1,
            attr_values: ATTR_RANGE,
            ..UpdateStreamConfig::new(batches, batch_size, 0xA77B ^ (mix * 64.0) as u64)
        }
        .with_attr_churn(mix);
        let stream = update_stream(g, &cfg);

        // Incremental path.
        let mut matcher = DynamicMatcher::new(g, q.clone(), IncrementalConfig::new(k))
            .expect("attr patterns are maintainable");
        let t0 = Instant::now();
        for delta in &stream {
            matcher.apply(delta).expect("stream is valid");
        }
        let incremental_ms = t0.elapsed().as_secs_f64() * 1e3 / batches as f64;
        let full_rebuilds = matcher.stats().full_rebuilds;

        // Static path: rebuild + re-rank per batch.
        let mut current = g.clone();
        let t0 = Instant::now();
        let mut sink = 0u64;
        for delta in &stream {
            current = apply_delta(&current, delta).expect("stream is valid");
            sink ^= top_k_by_match(&current, q, &TopKConfig::new(k)).total_relevance();
        }
        let scratch_ms = t0.elapsed().as_secs_f64() * 1e3 / batches as f64;
        std::hint::black_box(sink);

        // Cross-check: both pipelines agree on the final answer.
        let inc = matcher.top_k();
        let base = top_k_by_match(&current, q, &TopKConfig::new(k));
        assert_eq!(inc.nodes(), base.nodes(), "pipelines diverged at mix = {mix}");

        points.push(AttrMixPoint {
            attr_churn: mix,
            batches,
            incremental_ms,
            scratch_ms,
            full_rebuilds,
        });
    }
    AttrMixResult {
        nodes: g.node_count(),
        edges: g.edge_count(),
        pattern: (q.node_count(), q.edge_count()),
        batch_size,
        points,
    }
}

/// One measured point of the dirty-region sweep.
#[derive(Debug, Clone)]
pub struct DirtyRegionPoint {
    /// Fraction of the graph's cycles each batch touches (≈ the fraction
    /// of output matches whose relevant set the batch dirties).
    pub dirty_fraction: f64,
    /// Batches replayed per configuration.
    pub batches: usize,
    /// Mean dirty outputs per materializing batch (observed).
    pub mean_dirty_outputs: f64,
    /// Mean registry `apply` latency with the shared DP and the
    /// intra-pattern pool split engaged (ms/batch). Only faster than the
    /// sequential DP when the machine has real cores to split across.
    pub dp_parallel_ms: f64,
    /// Mean registry `apply` latency with the shared DP, single-threaded
    /// (ms/batch) — isolates the engine win from the parallelism win.
    pub dp_sequential_ms: f64,
    /// Mean latency of the pre-refactor derivation shape: per-output BFS
    /// extraction (reach budget 0), single-threaded (ms/batch).
    pub bfs_sequential_ms: f64,
    /// Mean static-pipeline latency (ms/batch).
    pub scratch_ms: f64,
    /// `RegistryStats::intra_pattern_splits` accumulated by the DP run —
    /// deterministic count of phase-2b refreshes the registry *decided*
    /// to split across the pool (scheduling-dependent multi-worker
    /// observations are `observed_multi_worker_refreshes`).
    pub intra_splits: u64,
}

impl DirtyRegionPoint {
    /// The DP configuration a deployment would pick on this machine:
    /// the faster of the parallel and the sequential run.
    pub fn dp_best_ms(&self) -> f64 {
        self.dp_parallel_ms.min(self.dp_sequential_ms)
    }

    /// `bfs_sequential / dp_best` — above 1.0 the shared DP beats the
    /// old per-output derivation.
    pub fn speedup_vs_bfs(&self) -> f64 {
        if self.dp_best_ms() <= 0.0 {
            return f64::INFINITY;
        }
        self.bfs_sequential_ms / self.dp_best_ms()
    }

    /// `scratch / dp_best`.
    pub fn speedup_vs_scratch(&self) -> f64 {
        if self.dp_best_ms() <= 0.0 {
            return f64::INFINITY;
        }
        self.scratch_ms / self.dp_best_ms()
    }
}

impl Serialize for DirtyRegionPoint {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("dirty_fraction".into(), self.dirty_fraction.to_value()),
            ("batches".into(), self.batches.to_value()),
            ("mean_dirty_outputs".into(), self.mean_dirty_outputs.to_value()),
            ("dp_parallel_ms_per_batch".into(), self.dp_parallel_ms.to_value()),
            ("dp_sequential_ms_per_batch".into(), self.dp_sequential_ms.to_value()),
            ("bfs_sequential_ms_per_batch".into(), self.bfs_sequential_ms.to_value()),
            ("scratch_ms_per_batch".into(), self.scratch_ms.to_value()),
            ("speedup_vs_bfs".into(), self.speedup_vs_bfs().to_value()),
            ("speedup_vs_scratch".into(), self.speedup_vs_scratch().to_value()),
            ("intra_pattern_splits".into(), self.intra_splits.to_value()),
        ])
    }
}

/// The dirty-region experiment record: shared-DP refresh cost against the
/// old per-output BFS derivation and against from-scratch recomputation,
/// as the dirtied fraction of the output set grows.
#[derive(Debug, Clone)]
pub struct DirtyRegionResult {
    /// `|V|`, `|E|` of the base graph.
    pub nodes: usize,
    pub edges: usize,
    /// Cycle decomposition of the workload graph.
    pub cycles: usize,
    pub cycle_len: usize,
    /// Output matches of the served pattern.
    pub outputs: usize,
    /// Pool size of the DP-parallel configuration.
    pub threads: usize,
    /// The sweep.
    pub points: Vec<DirtyRegionPoint>,
    /// Per-phase latency digests accumulated by the DP-parallel runs
    /// across the whole sweep (apply → refresh → prepare/extract).
    pub phase_latency: Vec<PhaseLatency>,
}

impl Serialize for DirtyRegionResult {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("bench".into(), "incremental_dirty_region".to_value()),
            ("nodes".into(), self.nodes.to_value()),
            ("edges".into(), self.edges.to_value()),
            ("cycles".into(), self.cycles.to_value()),
            ("cycle_len".into(), self.cycle_len.to_value()),
            ("outputs".into(), self.outputs.to_value()),
            ("threads".into(), self.threads.to_value()),
            ("points".into(), self.points.to_value()),
            ("phase_latency_ms".into(), self.phase_latency.to_value()),
        ])
    }
}

/// Cycle length of the dirty-region workload (even: labels alternate).
const DIRTY_CYCLE_LEN: usize = 50;

/// Builds the dirty-region workload: `nodes / DIRTY_CYCLE_LEN` disjoint
/// cycles of alternating labels, served by the cyclic pattern `A ⇄ B`.
/// Every pair is alive and each output's relevant set is exactly its own
/// cycle, so toggling one edge per cycle dirties that cycle's outputs and
/// nothing else — the dirty fraction is controlled precisely by how many
/// cycles a batch touches.
pub fn dirty_region_workload(nodes: usize) -> (DiGraph, Pattern) {
    let len = DIRTY_CYCLE_LEN;
    let cycles = (nodes / len).max(1);
    let mut labels = Vec::with_capacity(cycles * len);
    let mut edges = Vec::with_capacity(cycles * len);
    for c in 0..cycles {
        let base = (c * len) as u32;
        for i in 0..len {
            labels.push((i % 2) as u32);
            edges.push((base + i as u32, base + ((i + 1) % len) as u32));
        }
    }
    let g = gpm_graph::builder::graph_from_parts(&labels, &edges).expect("well-formed cycles");
    let q = gpm_pattern::builder::label_pattern(&[0, 1], &[(0, 1), (1, 0)], 0)
        .expect("cyclic 2-pattern");
    (g, q)
}

/// Replays the toggle stream for one registry configuration, returning
/// `(ms/batch, mean dirty outputs per batch, intra splits)`.
fn run_dirty_config(
    g: &DiGraph,
    q: &Pattern,
    k: usize,
    threads: usize,
    reach: gpm_ranking::ReachConfig,
    stream: &[GraphDelta],
    telemetry: Option<&Telemetry>,
) -> (f64, f64, u64) {
    use gpm_incremental::PatternRegistry;
    let mut cfg = IncrementalConfig::new(k);
    cfg.reach = reach;
    let mut reg = PatternRegistry::with_threads(g, threads);
    if let Some(t) = telemetry {
        reg.set_telemetry(t.clone());
    }
    let id = reg.register(q.clone(), cfg).expect("cyclic 2-pattern registers");
    // Registration already materialized every set once: count per-batch
    // re-derivations from here (covers both the partial-plan path and the
    // sweep-overflow full refresh).
    let mut prev_sets = reg.stats_of(id).expect("registered").sets_recomputed;
    let mut dirty_sum = 0u64;
    let mut dirty_batches = 0usize;
    let t0 = Instant::now();
    for delta in stream {
        reg.apply(delta).expect("stream is valid");
        let sets = reg.stats_of(id).expect("registered").sets_recomputed;
        if sets > prev_sets {
            dirty_sum += sets - prev_sets;
            dirty_batches += 1;
        }
        prev_sets = sets;
    }
    let ms = t0.elapsed().as_secs_f64() * 1e3 / stream.len() as f64;

    // Cross-check: the maintained answer equals a static recompute.
    let base = top_k_by_match(&reg.snapshot(), q, &TopKConfig::new(k));
    assert_eq!(reg.top_k(id).expect("registered").nodes(), base.nodes(), "pipelines diverged");

    let mean_dirty = if dirty_batches == 0 { 0.0 } else { dirty_sum as f64 / dirty_batches as f64 };
    (ms, mean_dirty, reg.stats().intra_pattern_splits)
}

/// Runs the dirty-region sweep: for each fraction, batches toggle one
/// edge in that fraction of the cycles (kill the cycles, then revive
/// them), so each revival batch re-derives exactly that share of the
/// relevant sets. Three configurations per point: shared DP + pool split
/// (`threads` workers — pass ≥ 2 so the intra-pattern split can engage
/// even on single-core CI runners), the old derivation shape (per-output
/// BFS, single thread), and the static pipeline.
pub fn run_dirty_region(
    g: &DiGraph,
    q: &Pattern,
    k: usize,
    threads: usize,
    fracs: &[f64],
) -> DirtyRegionResult {
    let len = DIRTY_CYCLE_LEN;
    let cycles = g.node_count() / len;
    let rounds = 3;
    let mut points = Vec::new();
    // One bundle across the whole sweep: the DP-parallel runs trace into
    // it, so the digests cover every dirty fraction. Recording is a few
    // atomic adds per span — well under the run-to-run noise of the
    // timed loop (the serving bench measures the exact overhead).
    let telemetry = Telemetry::on();
    for &frac in fracs {
        let touched = ((frac * cycles as f64).round() as usize).clamp(1, cycles);
        // Toggle stream: remove one edge of each touched cycle, then put
        // it back — `rounds` kill/revive rounds.
        let mut stream: Vec<GraphDelta> = Vec::with_capacity(rounds * 2);
        for _ in 0..rounds {
            let mut kill = GraphDelta::new();
            let mut revive = GraphDelta::new();
            for c in 0..touched {
                let base = (c * len) as u32;
                kill = kill.remove_edge(base, base + 1);
                revive = revive.add_edge(base, base + 1);
            }
            stream.push(kill);
            stream.push(revive);
        }

        let (dp_ms, mean_dirty, splits) = run_dirty_config(
            g,
            q,
            k,
            threads,
            gpm_ranking::ReachConfig::default(),
            &stream,
            Some(&telemetry),
        );
        let (dp_seq_ms, _, _) =
            run_dirty_config(g, q, k, 1, gpm_ranking::ReachConfig::default(), &stream, None);
        let (bfs_ms, _, _) = run_dirty_config(
            g,
            q,
            k,
            1,
            gpm_ranking::ReachConfig { budget_bytes: 0, threads: 1 },
            &stream,
            None,
        );

        // Static path: rebuild + re-rank per batch.
        let mut current = g.clone();
        let t0 = Instant::now();
        let mut sink = 0u64;
        for delta in &stream {
            current = apply_delta(&current, delta).expect("stream is valid");
            sink ^= top_k_by_match(&current, q, &TopKConfig::new(k)).total_relevance();
        }
        let scratch_ms = t0.elapsed().as_secs_f64() * 1e3 / stream.len() as f64;
        std::hint::black_box(sink);

        points.push(DirtyRegionPoint {
            dirty_fraction: frac,
            batches: stream.len(),
            mean_dirty_outputs: mean_dirty,
            dp_parallel_ms: dp_ms,
            dp_sequential_ms: dp_seq_ms,
            bfs_sequential_ms: bfs_ms,
            scratch_ms,
            intra_splits: splits,
        });
    }
    DirtyRegionResult {
        nodes: g.node_count(),
        edges: g.edge_count(),
        cycles,
        cycle_len: len,
        outputs: g.node_count() / 2,
        threads,
        points,
        phase_latency: phase_latencies(&telemetry),
    }
}

/// One measured point of the bounded-refresh sweep.
#[derive(Debug, Clone)]
pub struct BoundedRefreshPoint {
    /// Served answer size.
    pub k: usize,
    /// Fraction of the short cycles each batch touches.
    pub dirty_fraction: f64,
    /// Batches replayed per configuration.
    pub batches: usize,
    /// Mean `apply` latency with maintained bounds pruning (ms/batch).
    pub bounded_ms: f64,
    /// Mean `apply` latency with bounds disabled — every dirty output's
    /// relevant set is materialized, the rest of the partial planning
    /// stays (ms/batch).
    pub unbounded_ms: f64,
    /// Mean `apply` latency on the full-materialization path — every
    /// batch re-derives and re-ranks every relevant set, the refresh
    /// shape a server without dirty planning or bounds runs (ms/batch).
    pub full_ms: f64,
    /// Dirty outputs the bound index proved dominated (deferred, never
    /// materialized), accumulated over the bounded run.
    pub pruned_outputs: u64,
    /// Relevant sets the bounded run did re-derive.
    pub materialized_outputs: u64,
    /// Batches on which the bounded and unbounded answers differed in the
    /// joint verification replay — must be 0 (bounds are exact).
    pub answer_diffs: u64,
    /// From-scratch bound rebuilds during the bounded run.
    pub bound_rebuilds: u64,
}

impl BoundedRefreshPoint {
    /// Fraction of refresh candidates the bound index pruned.
    pub fn pruned_rate(&self) -> f64 {
        let total = self.pruned_outputs + self.materialized_outputs;
        if total == 0 {
            return 0.0;
        }
        self.pruned_outputs as f64 / total as f64
    }

    /// `full / bounded` — the bound-driven partial refresh against full
    /// materialization, the sweep's headline (and the CI gate's bar).
    pub fn speedup(&self) -> f64 {
        if self.bounded_ms <= 0.0 {
            return f64::INFINITY;
        }
        self.full_ms / self.bounded_ms
    }

    /// `unbounded / bounded` — the bound index's *marginal* effect over
    /// the same partial planning. Reported for honesty: at small graph
    /// sizes the avoided materialization is cheap (the shared reach
    /// engine already made it memcpy-bound) and this hovers near 1.0;
    /// the pruned counters show the work provably skipped.
    pub fn marginal(&self) -> f64 {
        if self.bounded_ms <= 0.0 {
            return f64::INFINITY;
        }
        self.unbounded_ms / self.bounded_ms
    }
}

impl Serialize for BoundedRefreshPoint {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("k".into(), self.k.to_value()),
            ("dirty_fraction".into(), self.dirty_fraction.to_value()),
            ("batches".into(), self.batches.to_value()),
            ("bounded_ms_per_batch".into(), self.bounded_ms.to_value()),
            ("unbounded_ms_per_batch".into(), self.unbounded_ms.to_value()),
            ("full_ms_per_batch".into(), self.full_ms.to_value()),
            ("speedup".into(), self.speedup().to_value()),
            ("marginal".into(), self.marginal().to_value()),
            ("pruned_outputs".into(), self.pruned_outputs.to_value()),
            ("materialized_outputs".into(), self.materialized_outputs.to_value()),
            ("pruned_rate".into(), self.pruned_rate().to_value()),
            ("answer_diffs".into(), self.answer_diffs.to_value()),
            ("bound_rebuilds".into(), self.bound_rebuilds.to_value()),
        ])
    }
}

/// The bounded-refresh experiment record: maintained-bound pruning vs
/// full materialization of every dirty relevant set, across `k` and
/// dirty-fraction settings.
#[derive(Debug, Clone)]
pub struct BoundedRefreshResult {
    /// `|V|`, `|E|` of the workload graph.
    pub nodes: usize,
    pub edges: usize,
    /// Length of the head cycle whose outputs hold the top-k.
    pub head_len: usize,
    /// Short (churned) cycles and their length.
    pub short_cycles: usize,
    pub short_len: usize,
    /// The sweep.
    pub points: Vec<BoundedRefreshPoint>,
}

impl Serialize for BoundedRefreshResult {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("bench".into(), "incremental_bounded_refresh".to_value()),
            ("nodes".into(), self.nodes.to_value()),
            ("edges".into(), self.edges.to_value()),
            ("head_len".into(), self.head_len.to_value()),
            ("short_cycles".into(), self.short_cycles.to_value()),
            ("short_len".into(), self.short_len.to_value()),
            ("points".into(), self.points.to_value()),
        ])
    }
}

/// Head-cycle length of the bounded-refresh workload: its 64 outputs all
/// carry relevance ≈ 128, far above any short-cycle bound, and hold every
/// k ≤ 64 the sweep serves.
const BOUND_HEAD_LEN: usize = 128;
/// Short-cycle length: each churned output's maintained upper bound is
/// ≈ 50 — always dominated by the head's k-th answer. Long enough that a
/// revival's avoided work (25 outputs × 50-pair sets per cycle) dwarfs
/// the sim/condensation maintenance both configurations share.
const BOUND_SHORT_LEN: usize = 50;

/// Builds the bounded-refresh workload: one long "head" cycle whose
/// outputs own the top-k, plus many short cycles that absorb all the
/// churn. Each short cycle carries a chord (an extra in-cycle `A → B`
/// edge): toggling it never changes the match simulation or any answer,
/// but a chord *removal* forces the condensation maintenance to
/// re-Tarjan the component and reinstall it — dirtying every one of its
/// outputs. The dirty outputs' maintained upper bounds can never
/// displace the k-th head answer, so the refresh asymmetry is pure:
/// the unbounded side re-materializes their relevant sets, the bounded
/// side proves them dominated from the refolded `h`. Labels alternate
/// so the cyclic pattern `A ⇄ B` matches every cycle.
pub fn bounded_workload(nodes: usize) -> (DiGraph, Pattern) {
    let shorts = nodes.saturating_sub(BOUND_HEAD_LEN) / BOUND_SHORT_LEN;
    assert!(shorts > 4, "workload needs short cycles to churn");
    let total = BOUND_HEAD_LEN + shorts * BOUND_SHORT_LEN;
    let mut labels = Vec::with_capacity(total);
    let mut edges = Vec::with_capacity(total + shorts);
    let cycle = |base: usize, len: usize, labels: &mut Vec<u32>, edges: &mut Vec<(u32, u32)>| {
        for i in 0..len {
            labels.push((i % 2) as u32);
            edges.push((base as u32 + i as u32, base as u32 + ((i + 1) % len) as u32));
        }
    };
    cycle(0, BOUND_HEAD_LEN, &mut labels, &mut edges);
    for c in 0..shorts {
        let base = BOUND_HEAD_LEN + c * BOUND_SHORT_LEN;
        cycle(base, BOUND_SHORT_LEN, &mut labels, &mut edges);
        edges.push(chord(base as u32));
    }
    let g = gpm_graph::builder::graph_from_parts(&labels, &edges).expect("well-formed cycles");
    let q = gpm_pattern::builder::label_pattern(&[0, 1], &[(0, 1), (1, 0)], 0)
        .expect("cyclic 2-pattern");
    (g, q)
}

/// The toggled chord of the short cycle at `base`: label 0 → label 1,
/// skipping ahead in the cycle (both nodes keep their in-cycle matches,
/// so the simulation never notices the toggle).
fn chord(base: u32) -> (u32, u32) {
    (base, base + 3)
}

/// Chord toggle stream over the first `touched` short cycles: each round
/// removes the chords (re-Tarjan + reinstall dirties the components at
/// near-zero shared cost), then puts them back (an intra-SCC insertion —
/// a maintenance no-op on both configurations).
fn bounded_stream(touched: usize, rounds: usize) -> Vec<GraphDelta> {
    let mut stream = Vec::with_capacity(rounds * 2);
    for _ in 0..rounds {
        let mut drop_chords = GraphDelta::new();
        let mut restore = GraphDelta::new();
        for c in 0..touched {
            let (x, y) = chord((BOUND_HEAD_LEN + c * BOUND_SHORT_LEN) as u32);
            drop_chords = drop_chords.remove_edge(x, y);
            restore = restore.add_edge(x, y);
        }
        stream.push(drop_chords);
        stream.push(restore);
    }
    stream
}

/// Timed replay of one bound configuration; returns the matcher for
/// stats and cross-checks.
fn replay_bounded(
    g: &DiGraph,
    q: &Pattern,
    k: usize,
    enabled: bool,
    full: bool,
    stream: &[GraphDelta],
) -> (f64, u64, DynamicMatcher) {
    let mut cfg = IncrementalConfig::new(k);
    cfg.bounds.enabled = enabled;
    if full {
        // Any dirty output overflows the plan: every batch re-derives
        // and re-ranks the whole cache — the full-materialization shape.
        cfg.max_dirty_fraction = 0.0;
    }
    let mut m = DynamicMatcher::new(g, q.clone(), cfg).expect("cyclic 2-pattern");
    // Construction materialized every set once: count only per-batch
    // re-derivations from here.
    let base_sets = m.stats().sets_recomputed;
    let t0 = Instant::now();
    for delta in stream {
        m.apply(delta).expect("stream is valid");
    }
    let ms = t0.elapsed().as_secs_f64() * 1e3 / stream.len() as f64;
    let materialized = m.stats().sets_recomputed - base_sets;
    (ms, materialized, m)
}

/// Runs the bounded-refresh sweep over `ks × fracs`. Each point replays
/// the same toggle stream through three configurations — bounds on,
/// bounds off (same partial planning), and the full-materialization
/// refresh path — timed separately, then once more jointly (untimed) to
/// count per-batch answer differences, which must be zero.
pub fn run_bounded_refresh(
    g: &DiGraph,
    q: &Pattern,
    ks: &[usize],
    fracs: &[f64],
) -> BoundedRefreshResult {
    let shorts = (g.node_count() - BOUND_HEAD_LEN) / BOUND_SHORT_LEN;
    let rounds = 4;
    let mut points = Vec::new();
    for &k in ks {
        for &frac in fracs {
            let touched = ((frac * shorts as f64).round() as usize).clamp(1, shorts);
            let stream = bounded_stream(touched, rounds);

            let (bounded_ms, materialized, bm) = replay_bounded(g, q, k, true, false, &stream);
            let (unbounded_ms, _, _) = replay_bounded(g, q, k, false, false, &stream);
            let (full_ms, _, _) = replay_bounded(g, q, k, false, true, &stream);
            let stats = bm.stats().clone();

            // Joint verification replay: all three configurations must
            // serve bit-identical answers after every batch.
            let make = |enabled: bool, full: bool| {
                let mut cfg = IncrementalConfig::new(k);
                cfg.bounds.enabled = enabled;
                if full {
                    cfg.max_dirty_fraction = 0.0;
                }
                DynamicMatcher::new(g, q.clone(), cfg).expect("cyclic 2-pattern")
            };
            let mut vb = make(true, false);
            let mut vu = make(false, false);
            let mut vf = make(false, true);
            let mut answer_diffs = 0u64;
            for delta in &stream {
                let a = vb.apply(delta).expect("stream is valid");
                let b = vu.apply(delta).expect("stream is valid");
                let c = vf.apply(delta).expect("stream is valid");
                if a.matches != b.matches || a.matches != c.matches {
                    answer_diffs += 1;
                }
            }
            // And all agree with the static pipeline on the final graph.
            let base = top_k_by_match(&vb.snapshot(), q, &TopKConfig::new(k));
            assert_eq!(vb.top_k().nodes(), base.nodes(), "bounded diverged from static");
            assert_eq!(vu.top_k().nodes(), base.nodes(), "unbounded diverged from static");
            assert_eq!(vf.top_k().nodes(), base.nodes(), "full diverged from static");

            points.push(BoundedRefreshPoint {
                k,
                dirty_fraction: frac,
                batches: stream.len(),
                bounded_ms,
                unbounded_ms,
                full_ms,
                pruned_outputs: stats.pruned_outputs,
                materialized_outputs: materialized,
                answer_diffs,
                bound_rebuilds: stats.bound_rebuilds,
            });
        }
    }
    BoundedRefreshResult {
        nodes: g.node_count(),
        edges: g.edge_count(),
        head_len: BOUND_HEAD_LEN,
        short_cycles: shorts,
        short_len: BOUND_SHORT_LEN,
        points,
    }
}

/// Renders the bounded-refresh sweep as a printable table.
pub fn bounded_refresh_table(r: &BoundedRefreshResult) -> Table {
    let mut t = Table::new(
        "bounded_refresh",
        format!(
            "maintained-bound pruning vs full materialization, head {} + {} × {} short cycles",
            r.head_len, r.short_cycles, r.short_len
        ),
        "k / dirty",
        &["bounded ms", "unbound ms", "full ms", "speedup", "marginal", "pruned rate", "diffs"],
    );
    for p in &r.points {
        t.push(
            format!("{} / {:.2}", p.k, p.dirty_fraction),
            vec![
                p.bounded_ms,
                p.unbounded_ms,
                p.full_ms,
                p.speedup(),
                p.marginal(),
                p.pruned_rate(),
                p.answer_diffs as f64,
            ],
        );
    }
    t
}

/// Renders the dirty-region sweep as a printable table.
pub fn dirty_region_table(r: &DirtyRegionResult) -> Table {
    let mut t = Table::new(
        "dirty_region",
        format!(
            "shared DP vs per-output BFS vs scratch, {} cycles × {} nodes, {} outputs, {} threads",
            r.cycles, r.cycle_len, r.outputs, r.threads
        ),
        "dirty frac",
        &["dp par ms", "dp seq ms", "bfs ms", "scratch ms", "vs bfs", "splits"],
    );
    for p in &r.points {
        t.push(
            format!("{:.2}", p.dirty_fraction),
            vec![
                p.dp_parallel_ms,
                p.dp_sequential_ms,
                p.bfs_sequential_ms,
                p.scratch_ms,
                p.speedup_vs_bfs(),
                p.intra_splits as f64,
            ],
        );
    }
    t
}

/// Renders the mix sweep as a printable table.
pub fn attr_mix_table(r: &AttrMixResult) -> Table {
    let mut t = Table::new(
        "attr_churn_mix",
        format!(
            "structural:attr op mix at |Δ|={}, |V|={} |E|={} Q=({},{})",
            r.batch_size, r.nodes, r.edges, r.pattern.0, r.pattern.1
        ),
        "attr frac",
        &["incr ms", "scratch ms", "speedup", "rebuilds"],
    );
    for p in &r.points {
        t.push(
            format!("{:.2}", p.attr_churn),
            vec![p.incremental_ms, p.scratch_ms, p.speedup(), p.full_rebuilds as f64],
        );
    }
    t
}

/// Renders the sweep as a printable table.
pub fn as_table(r: &DeltaBenchResult) -> Table {
    let mut t = Table::new(
        "delta_scaling",
        format!(
            "incremental vs from-scratch, |V|={} |E|={} Q=({},{})",
            r.nodes, r.edges, r.pattern.0, r.pattern.1
        ),
        "|Δ|",
        &["incr ms", "scratch ms", "speedup", "rebuilds"],
    );
    for p in &r.points {
        t.push(
            p.delta_size.to_string(),
            vec![p.incremental_ms, p.scratch_ms, p.speedup(), p.full_rebuilds as f64],
        );
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_sweep_runs_and_serializes() {
        let (g, q) = delta_workload(1_500, 3);
        let r = run(&g, &q, 5, &[1, 8]);
        assert_eq!(r.points.len(), 2);
        let json = serde_json::to_string_pretty(&r).unwrap();
        assert!(json.contains("incremental_delta_scaling"));
        assert!(json.contains("\"delta_size\": 1"));
        let rendered = as_table(&r).render();
        assert!(rendered.contains("delta_scaling"));
    }

    #[test]
    fn tiny_dirty_region_runs_and_serializes() {
        let (g, q) = dirty_region_workload(600);
        assert_eq!(g.node_count(), 600);
        let r = run_dirty_region(&g, &q, 5, 2, &[0.1, 1.0]);
        assert_eq!(r.points.len(), 2);
        assert_eq!(r.cycles, 12);
        // The largest fraction dirties every output on each revival batch.
        assert!(r.points[1].mean_dirty_outputs >= r.outputs as f64 - 0.5);
        assert!(r.points[0].mean_dirty_outputs < r.points[1].mean_dirty_outputs);
        let json = serde_json::to_string_pretty(&r).unwrap();
        assert!(json.contains("incremental_dirty_region"));
        assert!(json.contains("intra_pattern_splits"));
        let rendered = dirty_region_table(&r).render();
        assert!(rendered.contains("dirty_region"));
    }

    #[test]
    fn tiny_bounded_refresh_runs_and_serializes() {
        let (g, q) = bounded_workload(600);
        let r = run_bounded_refresh(&g, &q, &[5], &[0.05, 0.25]);
        assert_eq!(r.points.len(), 2);
        for p in &r.points {
            assert_eq!(p.answer_diffs, 0, "bound pruning must not change answers");
            assert_eq!(p.bound_rebuilds, 0, "toggle stream must stay on the refold path");
        }
        // Every churned short output is dominated by the head's k-th
        // answer: revival batches prune instead of materializing.
        assert!(r.points[0].pruned_outputs > 0);
        assert!(r.points[1].pruned_outputs >= r.points[0].pruned_outputs);
        let json = serde_json::to_string_pretty(&r).unwrap();
        assert!(json.contains("incremental_bounded_refresh"));
        assert!(json.contains("pruned_rate"));
        let rendered = bounded_refresh_table(&r).render();
        assert!(rendered.contains("bounded_refresh"));
    }

    #[test]
    fn tiny_attr_mix_runs_and_serializes() {
        let (g, q) = attr_workload(1_200, 3);
        assert!(g.has_attributes());
        let key = gpm_datagen::update_stream::attr_key(0);
        assert!(q.nodes().any(|u| q.predicate(u).mentions_key(&key)));
        let r = run_attr_mix(&g, &q, 5, 8, &[0.0, 1.0]);
        assert_eq!(r.points.len(), 2);
        assert_eq!(r.points[1].full_rebuilds, 0, "a pure-attr stream must never trigger a rebuild");
        let json = serde_json::to_string_pretty(&r).unwrap();
        assert!(json.contains("incremental_attr_churn_mix"));
        assert!(json.contains("\"attr_churn\": 1"));
        let rendered = attr_mix_table(&r).render();
        assert!(rendered.contains("attr_churn_mix"));
    }
}
