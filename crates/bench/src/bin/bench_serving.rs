//! Streaming-service benchmark CLI: end-to-end delta→notification latency
//! and sustained throughput at N∈{1,8,16} subscribers.
//!
//! ```text
//! bench_serving [--nodes N] [--k K] [--batch B] [--batches C]
//!               [--threads T] [--max-subscribers S] [--out PATH]
//! ```
//!
//! Writes `BENCH_serving.json` (repo root by default) and prints the
//! table. Runs on the registry workload (same graph generator, pattern
//! pool and stream seed as `bench_registry`) so the shared-index skip
//! rate stays comparable across benches and PRs.

use gpm_bench::{registry_bench, serving_bench};

fn main() {
    let mut nodes = 8_000usize;
    let mut k = 10usize;
    let mut seed = 20130826u64;
    let mut batch = 50usize;
    let mut batches = 40usize;
    let mut threads = gpm_incremental::PatternRegistry::default_threads();
    let mut max_subscribers = 16usize;
    let mut out = String::from("BENCH_serving.json");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |what: &str, v: Option<&String>| -> String {
            v.cloned().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        let parse_num = |flag: &str, v: String| -> u64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} expects a number, got {v:?}");
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--nodes" => nodes = parse_num("--nodes", need("--nodes", args.get(i + 1))) as usize,
            "--k" => k = parse_num("--k", need("--k", args.get(i + 1))) as usize,
            "--seed" => seed = parse_num("--seed", need("--seed", args.get(i + 1))),
            "--batch" => batch = parse_num("--batch", need("--batch", args.get(i + 1))) as usize,
            "--batches" => {
                batches = parse_num("--batches", need("--batches", args.get(i + 1))) as usize
            }
            "--threads" => {
                threads = parse_num("--threads", need("--threads", args.get(i + 1))) as usize
            }
            "--max-subscribers" => {
                max_subscribers =
                    parse_num("--max-subscribers", need("--max-subscribers", args.get(i + 1)))
                        as usize
            }
            "--out" => out = need("--out", args.get(i + 1)),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }

    println!("building workload: |V|={nodes}, subscriber sweep up to {max_subscribers}");
    let g = registry_bench::registry_graph(nodes, seed);
    let pool = registry_bench::registry_patterns(max_subscribers.max(1), 15, seed);
    println!("graph |V|={} |E|={}", g.node_count(), g.edge_count());

    // The acceptance sweep N ∈ {1, 8, 16}, clipped to --max-subscribers.
    let mut counts: Vec<usize> =
        [1usize, 8, 16].into_iter().filter(|&c| c <= max_subscribers).collect();
    if counts.last() != Some(&max_subscribers) {
        counts.push(max_subscribers.max(1));
    }

    let result = serving_bench::run(&g, &pool, k, &counts, batches, batch, threads);
    println!("{}", serving_bench::as_table(&result).render());

    println!("phase latency (largest-N point):");
    for p in &result.phase_latency {
        println!(
            "  {:<10} n={:<6} p50={:.3}ms p99={:.3}ms max={:.3}ms",
            p.phase, p.count, p.p50_ms, p.p99_ms, p.max_ms
        );
    }
    let o = &result.telemetry_overhead;
    println!(
        "telemetry overhead: full tracing {:+.2}%, sampled 1/16 {:+.2}%, recorder-off {:+.2}% \
         (enabled {:.0} / sampled {:.0} / recorder-off {:.0} / disabled {:.0} batches/s \
         over {} batches)",
        o.overhead_pct,
        o.sampled_overhead_pct,
        o.recorder_off_overhead_pct,
        o.enabled_batches_per_sec,
        o.sampled_batches_per_sec,
        o.recorder_off_batches_per_sec,
        o.disabled_batches_per_sec,
        o.batches
    );

    let json = serde_json::to_string_pretty(&result).expect("serializable");
    std::fs::write(&out, json).expect("write BENCH_serving.json");
    println!("wrote {out}");

    if o.recorder_off_overhead_pct > 2.0 {
        eprintln!(
            "WARNING: recorder-off telemetry overhead above the 2% target ({:+.2}%)",
            o.recorder_off_overhead_pct
        );
    }
    if o.sampled_overhead_pct > 2.0 {
        eprintln!(
            "WARNING: sampled (1/16) telemetry overhead above the 2% target ({:+.2}%)",
            o.sampled_overhead_pct
        );
    }
    for p in &result.points {
        if p.shared_index_hit_rate < 0.5 && p.subscribers >= 8 {
            eprintln!(
                "WARNING: shared-index hit rate collapsed at N = {} ({:.3})",
                p.subscribers, p.shared_index_hit_rate
            );
        }
    }
}
