//! Delta-scaling benchmark CLI: incremental `DynamicMatcher::apply` vs
//! from-scratch recompute, sweeping the delta size — plus the attr-churn
//! workload sweeping the structural:attr op mix (attribute-flip
//! maintenance cost vs rebuild).
//!
//! ```text
//! bench_incremental [--nodes N] [--k K] [--seed S] [--out PATH]
//!                   [--check-dirty-2pct] [--check-bounds-2pct]
//! ```
//!
//! `--check-dirty-2pct` turns the 2%-dirty-fraction acceptance bar into
//! a hard failure: the maintained-condensation DP must not regress
//! below the region-local BFS baseline measured in the same sweep (the
//! point PR 5 recorded at 0.83× and the maintained condensation is
//! required to hold ≥ 1×). CI passes it on the smoke run.
//!
//! `--check-bounds-2pct` does the same for the maintained output
//! bounds: at 2% dirty and k = 5 the bound-driven partial refresh must
//! beat the full-materialization refresh path (every set re-derived and
//! re-ranked per batch) by ≥ 1.3×, with zero answer differences across
//! the three-way joint replay.
//!
//! Writes `BENCH_incremental.json` (repo root by default) and prints the
//! tables. Delta sizes follow the issue spec: 1 / 10 / 100 / 1000; attr
//! mixes sweep 0 / 25% / 50% / 100% at a fixed batch size.

use gpm_bench::delta_bench;
use serde::{Serialize, Value};

fn main() {
    let mut nodes = 20_000usize;
    let mut k = 10usize;
    let mut seed = 20130826u64;
    let mut out = String::from("BENCH_incremental.json");
    let mut check_dirty_2pct = false;
    let mut check_bounds_2pct = false;

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |what: &str, v: Option<&String>| -> String {
            v.cloned().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        let parse_num = |flag: &str, v: String| -> u64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} expects a number, got {v:?}");
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--nodes" => nodes = parse_num("--nodes", need("--nodes", args.get(i + 1))) as usize,
            "--k" => k = parse_num("--k", need("--k", args.get(i + 1))) as usize,
            "--seed" => seed = parse_num("--seed", need("--seed", args.get(i + 1))),
            "--out" => out = need("--out", args.get(i + 1)),
            "--check-dirty-2pct" => {
                check_dirty_2pct = true;
                i += 1;
                continue;
            }
            "--check-bounds-2pct" => {
                check_bounds_2pct = true;
                i += 1;
                continue;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }

    println!("building workload: |V|={nodes}");
    let (g, q) = delta_bench::delta_workload(nodes, seed);
    println!(
        "pattern ({}, {}), graph |V|={} |E|={}",
        q.node_count(),
        q.edge_count(),
        g.node_count(),
        g.edge_count()
    );

    let result = delta_bench::run(&g, &q, k, &[1, 10, 100, 1000]);
    println!("{}", delta_bench::as_table(&result).render());

    println!("building attr-churn workload: |V|={nodes}");
    let (ga, qa) = delta_bench::attr_workload(nodes, seed);
    println!(
        "attr pattern ({}, {}), graph |V|={} |E|={}",
        qa.node_count(),
        qa.edge_count(),
        ga.node_count(),
        ga.edge_count()
    );
    let attr_result = delta_bench::run_attr_mix(&ga, &qa, k, 50, &[0.0, 0.25, 0.5, 1.0]);
    println!("{}", delta_bench::attr_mix_table(&attr_result).render());

    println!("building dirty-region workload: |V|={nodes}");
    let (gd, qd) = delta_bench::dirty_region_workload(nodes);
    println!("cycle graph |V|={} |E|={}", gd.node_count(), gd.edge_count());
    // ≥ 2 workers so the intra-pattern split engages even when the
    // machine reports a single core (wall-clock gains need real cores;
    // the split counter must not depend on them).
    let threads = gpm_incremental::PatternRegistry::default_threads().max(2);
    let dirty_result = delta_bench::run_dirty_region(&gd, &qd, k, threads, &[0.02, 0.25, 1.0]);
    println!("{}", delta_bench::dirty_region_table(&dirty_result).render());
    println!("phase latency (DP-parallel runs, whole sweep):");
    for p in &dirty_result.phase_latency {
        println!(
            "  {:<10} n={:<6} p50={:.3}ms p99={:.3}ms max={:.3}ms",
            p.phase, p.count, p.p50_ms, p.p99_ms, p.max_ms
        );
    }

    println!("building bounded-refresh workload: |V|={nodes}");
    let (gb, qb) = delta_bench::bounded_workload(nodes);
    println!("head+short cycle graph |V|={} |E|={}", gb.node_count(), gb.edge_count());
    let bounded_result = delta_bench::run_bounded_refresh(&gb, &qb, &[5, 20], &[0.02, 0.25]);
    println!("{}", delta_bench::bounded_refresh_table(&bounded_result).render());

    let combined = Value::Object(vec![
        ("bench".into(), "incremental".to_value()),
        ("delta_scaling".into(), result.to_value()),
        ("attr_churn_mix".into(), attr_result.to_value()),
        ("dirty_region".into(), dirty_result.to_value()),
        ("bounded_refresh".into(), bounded_result.to_value()),
    ]);
    let json = serde_json::to_string_pretty(&combined).expect("serializable");
    std::fs::write(&out, json).expect("write BENCH_incremental.json");
    println!("wrote {out}");

    // The acceptance bar: incremental wins for small deltas (≤ 1% of |E|).
    let one_percent = result.edges / 100;
    for p in &result.points {
        if p.delta_size <= one_percent && p.speedup() < 1.0 {
            eprintln!(
                "WARNING: |Δ| = {} (≤1% of edges) not faster than scratch ({:.2}x)",
                p.delta_size,
                p.speedup()
            );
        }
    }
    // And the dirty-region bar: on the largest dirty fraction the shared
    // DP with the intra-pattern split must beat the old per-output BFS
    // derivation, with the split actually observed on ≥ 2 workers.
    if let Some(p) = dirty_result.points.last() {
        if p.speedup_vs_bfs() < 1.0 {
            eprintln!(
                "WARNING: dirty fraction {:.2} not faster than per-output BFS ({:.2}x)",
                p.dirty_fraction,
                p.speedup_vs_bfs()
            );
        }
        // At smoke sizes a single worker can drain every chunk before the
        // rest wake, so only measurement-scale runs demand the proof.
        if dirty_result.threads >= 2 && dirty_result.outputs >= 5_000 && p.intra_splits == 0 {
            eprintln!("WARNING: intra-pattern split never engaged at the largest dirty fraction");
        }
    }
    // The maintained-condensation bar: at the 2% dirty fraction the DP
    // used to lose to the region-local BFS (0.83× in PR 5) because
    // *prepare* re-condensed the world; with the condensation maintained
    // across batches it must hold ≥ 1×. Opt-in hard failure for CI.
    if check_dirty_2pct {
        let p = dirty_result
            .points
            .iter()
            .find(|p| (p.dirty_fraction - 0.02).abs() < 1e-9)
            .expect("the sweep includes the 2% dirty fraction");
        if p.speedup_vs_bfs() < 1.0 {
            eprintln!(
                "FAIL: maintained-condensation DP regressed below the region-local BFS \
                 baseline at 2% dirty ({:.3}x, DP {:.3}ms vs BFS {:.3}ms per batch)",
                p.speedup_vs_bfs(),
                p.dp_parallel_ms,
                p.bfs_sequential_ms
            );
            std::process::exit(1);
        }
        println!(
            "dirty-2% gate: maintained DP {:.3}x vs region-local BFS (>= 1.0 required)",
            p.speedup_vs_bfs()
        );
    }
    // The maintained-bounds bar: at 2% dirty and k = 5 the bound index
    // must prove the churned outputs dominated without materializing
    // them, beating full materialization by ≥ 1.3× — and pruning must
    // never change an answer. Opt-in hard failure for CI.
    if check_bounds_2pct {
        let p = bounded_result
            .points
            .iter()
            .find(|p| p.k == 5 && (p.dirty_fraction - 0.02).abs() < 1e-9)
            .expect("the sweep includes the k=5, 2% dirty point");
        if p.speedup() < 1.3 || p.answer_diffs > 0 {
            eprintln!(
                "FAIL: bounded refresh below the acceptance bar at 2% dirty k=5 \
                 ({:.3}x required >= 1.3, bounded {:.3}ms vs full materialization {:.3}ms \
                 per batch, {} answer diffs required 0)",
                p.speedup(),
                p.bounded_ms,
                p.full_ms,
                p.answer_diffs
            );
            std::process::exit(1);
        }
        println!(
            "bounds-2% gate: bounded refresh {:.3}x vs full materialization \
             (>= 1.3 required, {:.3}x marginal over unbounded planning), \
             {} outputs pruned ({:.0}% of candidates), 0 answer diffs",
            p.speedup(),
            p.marginal(),
            p.pruned_outputs,
            p.pruned_rate() * 100.0
        );
    }
}
