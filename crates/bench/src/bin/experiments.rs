//! CLI for the experiment harness.
//!
//! ```text
//! experiments <exp> [--scale small|medium|paper] [--reps N] [--k N]
//!             [--points N] [--seed N] [--csv DIR]
//!
//! exp: all | datasets | fig4 | fig5a | fig5b | fig5c | fig5d | fig5e |
//!      fig5f | fig5g | fig5h | fig5i | fig5j | fig5k | fig5l | lambda
//! ```
//!
//! (`fig5a`/`fig5d`, `fig5b`/`fig5e`, `fig5c`/`fig5f` are produced in
//! pairs — one pass measures both MR and time.)

use std::path::PathBuf;

use gpm_bench::experiments as exp;
use gpm_bench::workloads::Settings;
use gpm_bench::Records;
use gpm_datagen::datasets::Scale;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage_and_exit();
    }
    let which = args[0].clone();
    let mut scale = Scale::Small;
    let mut reps: usize = 3;
    let mut k: usize = 10;
    let mut points: usize = 5;
    let mut seed: u64 = 20130826;
    let mut csv: Option<PathBuf> = None;

    let mut i = 1;
    while i < args.len() {
        let flag = args[i].as_str();
        let val = args.get(i + 1).cloned();
        let need = |what: &str| -> String {
            val.clone().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        match flag {
            "--scale" => {
                scale = Scale::parse(&need("--scale")).unwrap_or_else(|| {
                    eprintln!("bad scale (small|medium|paper)");
                    std::process::exit(2);
                });
                i += 2;
            }
            "--reps" => {
                reps = need("--reps").parse().expect("reps");
                i += 2;
            }
            "--k" => {
                k = need("--k").parse().expect("k");
                i += 2;
            }
            "--points" => {
                points = need("--points").parse().expect("points");
                i += 2;
            }
            "--seed" => {
                seed = need("--seed").parse().expect("seed");
                i += 2;
            }
            "--csv" => {
                csv = Some(PathBuf::from(need("--csv")));
                i += 2;
            }
            other => {
                eprintln!("unknown flag {other}");
                usage_and_exit();
            }
        }
    }

    let mut s = Settings::new(scale);
    s.reps = reps;
    s.k = k;
    s.seed = seed;
    let rec = Records::new();

    let t0 = std::time::Instant::now();
    match which.as_str() {
        "all" => exp::run_all(&s, &rec, points),
        "datasets" => exp::datasets(&s, &rec),
        "fig4" => exp::fig4(&s, &rec),
        "fig5a" | "fig5d" => exp::fig5a_5d(&s, &rec),
        "fig5b" | "fig5e" => exp::fig5b_5e(&s, &rec),
        "fig5c" | "fig5f" => exp::fig5c_5f(&s, &rec),
        "fig5g" => exp::fig5g(&s, &rec, points),
        "fig5h" => exp::fig5h(&s, &rec, points),
        "fig5i" => exp::fig5i(&s, &rec),
        "fig5j" => exp::fig5j(&s, &rec),
        "fig5k" => exp::fig5k(&s, &rec),
        "fig5l" => exp::fig5l(&s, &rec, points),
        "lambda" => exp::lambda_sensitivity(&s, &rec),
        _ => usage_and_exit(),
    }
    eprintln!("done in {:?} ({} tables)", t0.elapsed(), rec.len());

    if let Some(dir) = csv {
        rec.dump(&dir).expect("write results");
        eprintln!("wrote CSV/JSON to {}", dir.display());
    }
}

fn usage_and_exit() -> ! {
    eprintln!(
        "usage: experiments <all|datasets|fig4|fig5a..fig5l|lambda> \
         [--scale small|medium|paper] [--reps N] [--k N] [--points N] \
         [--seed N] [--csv DIR]"
    );
    std::process::exit(2);
}
