//! Diagnostic: proposal/verification hit rates per experiment workload.

use gpm_bench::workloads::{self, Settings};
use gpm_datagen::datasets::Scale;
use gpm_datagen::patterns::{extract_pattern, propose_pattern, PatternGenConfig};
use gpm_graph::DiGraph;

fn probe(name: &str, g: &DiGraph, size: (usize, usize), dag: bool, sel: Option<f64>) {
    let mut proposed = 0;
    let mut verified = 0;
    for t in 0..60u64 {
        let mut cfg = PatternGenConfig::new(size.0, size.1, dag, t);
        cfg.attr_selectivity = if g.has_attributes() { sel } else { None };
        cfg.max_tries = 1;
        if propose_pattern(g, &cfg, t.wrapping_mul(0x9E3779B97F4A7C15)).is_some() {
            proposed += 1;
        }
        if extract_pattern(g, &cfg).is_some() {
            verified += 1;
        }
    }
    println!("{name} size={size:?} dag={dag}: proposed {proposed}/60 verified {verified}/60");
}

fn main() {
    let s = Settings::new(Scale::Small);
    let cit = workloads::citation(&s);
    probe("citation", &cit.graph, (4, 6), true, s.attr_selectivity);
    probe("citation", &cit.graph, (10, 15), true, s.attr_selectivity);
    probe("citation", &cit.graph, (4, 3), true, s.attr_selectivity);
    let ama = workloads::amazon(&s);
    probe("amazon", &ama.graph, (4, 8), false, s.attr_selectivity);
    let syn = workloads::synthetic_cyclic(10_000, 30_000, 42);
    probe("sweep-cyc", &syn, (4, 8), false, None);
    let sdag = workloads::synthetic_dag(10_000, 30_000, 42);
    probe("sweep-dag", &sdag, (4, 6), true, None);
}
