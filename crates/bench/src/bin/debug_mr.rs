//! Diagnostic: distributions behind Proposition 3 on one workload.

use gpm_bench::workloads::{self, Settings};
use gpm_core::config::TopKConfig;
use gpm_core::{top_k, top_k_by_match};
use gpm_datagen::datasets::Scale;
use gpm_ranking::bounds::{output_upper_bounds, BoundConfig, BoundStrategy};
use gpm_ranking::relevant_set::RelevantSets;
use gpm_simulation::compute_simulation;

fn main() {
    let mut s = Settings::new(Scale::Small);
    s.reps = 1;
    let d = workloads::youtube(&s);
    let ps = workloads::patterns_for(&d.graph, (5, 10), false, &s);
    let Some(q) = ps.first() else {
        println!("no pattern");
        return;
    };
    println!("pattern size {:?}, preds:", (q.node_count(), q.edge_count()));
    for u in q.nodes() {
        println!("  u{u}: {:?}", q.predicate(u));
    }
    let sim = compute_simulation(&d.graph, q);
    let space = sim.space();
    let mu = sim.output_matches(q);
    println!("|can(uo)| = {}, |Mu| = {}", space.candidate_count(q.output()), mu.len());

    let rs = RelevantSets::compute(&d.graph, q, &sim);
    let mut deltas: Vec<u64> = (0..rs.len()).map(|i| rs.relevance(i)).collect();
    deltas.sort_unstable_by(|a, b| b.cmp(a));
    println!("δr top10: {:?}", &deltas[..deltas.len().min(10)]);
    println!(
        "δr p50 = {}, p90 = {}, max = {}",
        deltas[deltas.len() / 2],
        deltas[deltas.len() / 10],
        deltas[0]
    );

    for strat in [BoundStrategy::DescLabelCount, BoundStrategy::ProductReach] {
        let b = output_upper_bounds(&d.graph, q, space, strat, &BoundConfig::default());
        let mut hs: Vec<u64> = b.as_slice().to_vec();
        hs.sort_unstable_by(|a, b| b.cmp(a));
        println!(
            "{strat:?}: h max = {}, p10 = {}, p50 = {}, min = {}",
            hs[0],
            hs[hs.len() / 10],
            hs[hs.len() / 2],
            hs[hs.len() - 1]
        );
        // How many candidates have h below the k-th best δr?
        let k = 10;
        if deltas.len() >= k {
            let kth = deltas[k - 1];
            let below = hs.iter().filter(|&&h| h < kth).count();
            println!(
                "  kth δr = {kth}; candidates with h < kth: {below}/{} ({:.0}%)",
                hs.len(),
                100.0 * below as f64 / hs.len() as f64
            );
        }
    }

    // Soundness audit: h must dominate δr for every match.
    {
        let b = output_upper_bounds(
            &d.graph,
            q,
            space,
            BoundStrategy::ProductReach,
            &BoundConfig::default(),
        );
        let mut bad = 0;
        for (i, &v) in mu.iter().enumerate() {
            let _ = i;
            let h = b.h_of(space, q, v).unwrap();
            let dr = rs.relevance_of(v).unwrap();
            if h < dr {
                bad += 1;
                if bad <= 5 {
                    println!("UNSOUND: match {v}: h = {h} < δr = {dr}");
                }
            }
        }
        println!("unsound bounds: {bad}/{}", mu.len());
    }

    let base = top_k_by_match(&d.graph, q, &TopKConfig::new(10));
    let fast = top_k(&d.graph, q, &TopKConfig::new(10));
    println!(
        "Match {:?}; TopK {:?} inspected {}/{} early={} waves={}",
        base.stats.elapsed,
        fast.stats.elapsed,
        fast.stats.inspected_matches,
        mu.len(),
        fast.stats.early_terminated,
        fast.stats.waves,
    );
}
