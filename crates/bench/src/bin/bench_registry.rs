//! Multi-pattern serving benchmark CLI: one shared `PatternRegistry` vs N
//! independent `DynamicMatcher`s, sweeping the number of registered
//! patterns.
//!
//! ```text
//! bench_registry [--nodes N] [--k K] [--seed S] [--batch B] [--batches C]
//!                [--threads T] [--max-patterns P] [--out PATH]
//! ```
//!
//! Writes `BENCH_registry.json` (repo root by default) and prints the
//! table. The sweep doubles N up to `--max-patterns` (default 16).

use gpm_bench::registry_bench;

fn main() {
    let mut nodes = 8_000usize;
    let mut k = 10usize;
    let mut seed = 20130826u64;
    let mut batch = 50usize;
    let mut batches = 20usize;
    let mut threads = gpm_incremental::PatternRegistry::default_threads();
    let mut max_patterns = 16usize;
    let mut out = String::from("BENCH_registry.json");

    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let need = |what: &str, v: Option<&String>| -> String {
            v.cloned().unwrap_or_else(|| {
                eprintln!("missing value for {what}");
                std::process::exit(2);
            })
        };
        let parse_num = |flag: &str, v: String| -> u64 {
            v.parse().unwrap_or_else(|_| {
                eprintln!("{flag} expects a number, got {v:?}");
                std::process::exit(2);
            })
        };
        match args[i].as_str() {
            "--nodes" => nodes = parse_num("--nodes", need("--nodes", args.get(i + 1))) as usize,
            "--k" => k = parse_num("--k", need("--k", args.get(i + 1))) as usize,
            "--seed" => seed = parse_num("--seed", need("--seed", args.get(i + 1))),
            "--batch" => batch = parse_num("--batch", need("--batch", args.get(i + 1))) as usize,
            "--batches" => {
                batches = parse_num("--batches", need("--batches", args.get(i + 1))) as usize
            }
            "--threads" => {
                threads = parse_num("--threads", need("--threads", args.get(i + 1))) as usize
            }
            "--max-patterns" => {
                max_patterns =
                    parse_num("--max-patterns", need("--max-patterns", args.get(i + 1))) as usize
            }
            "--out" => out = need("--out", args.get(i + 1)),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
        i += 2;
    }

    println!("building workload: |V|={nodes}, pattern pool of {max_patterns}");
    let g = registry_bench::registry_graph(nodes, seed);
    let pool = registry_bench::registry_patterns(max_patterns, 15, seed);
    println!("graph |V|={} |E|={}", g.node_count(), g.edge_count());

    let mut counts: Vec<usize> = Vec::new();
    let mut n = 1usize;
    while n < max_patterns {
        counts.push(n);
        n *= 2;
    }
    counts.push(max_patterns);

    let result = registry_bench::run(&g, &pool, k, &counts, batches, batch, threads);
    println!("{}", registry_bench::as_table(&result).render());

    let json = serde_json::to_string_pretty(&result).expect("serializable");
    std::fs::write(&out, json).expect("write BENCH_registry.json");
    println!("wrote {out}");

    // The acceptance bar: shared ingestion wins once enough patterns are
    // registered (N ≥ 8).
    for p in &result.points {
        if p.patterns >= 8 && p.speedup() < 1.0 {
            eprintln!(
                "WARNING: N = {} registry not faster than N independent matchers ({:.2}x)",
                p.patterns,
                p.speedup()
            );
        }
    }
}
