//! Streaming-service benchmark: end-to-end **delta → notification**
//! latency and sustained ingestion throughput at N subscribers.
//!
//! The serving layer's claim is that push costs what the registry costs,
//! plus a constant-ish fan-out: the delta log append, the change-set
//! diff, and a queue push per materially-changed subscription. This bench
//! measures it end to end on the registry workload — producer thread,
//! service loop thread, one consumer thread per subscriber — in two
//! phases over one generated stream:
//!
//! * **latency phase** (first half): batches are ingested synchronously;
//!   each subscriber timestamps update arrival against the producer's
//!   submit time — the unloaded delta→notification path;
//! * **throughput phase** (second half): batches are flooded through the
//!   async `submit` path and the wall clock measures sustained
//!   batches/sec with all consumers draining concurrently.
//!
//! Results are printed as a table and written to `BENCH_serving.json`.
//! The registry's shared-index skip rate is recorded per point — pushing
//! to subscribers must not erode the ~97% pruning the pull path enjoys.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use gpm_core::config::TopKConfig;
use gpm_core::top_k_by_match;
use gpm_datagen::update_stream::{update_stream, UpdateStreamConfig};
use gpm_graph::{DiGraph, GraphDelta};
use gpm_incremental::IncrementalConfig;
use gpm_pattern::Pattern;
use gpm_serving::{AnswerService, NotifyMode, ServiceConfig, ServiceHandle, TelemetryConfig};
use serde::{Serialize, Value};

use crate::table::Table;
use crate::telemetry_summary::{phase_latencies, PhaseLatency};

/// One measured point of the subscriber sweep.
#[derive(Debug, Clone)]
pub struct ServingPoint {
    /// Live subscriptions during the run.
    pub subscribers: usize,
    /// Sustained ingestion rate of the flood phase (batches/sec).
    pub batches_per_sec: f64,
    /// Mean synchronous ingest round-trip (ms, latency phase): apply +
    /// log append + fan-out, regardless of whether answers changed.
    pub mean_ingest_ms: f64,
    /// Mean delta→notification latency (ms, latency phase; 0 when no
    /// answer changed during that phase).
    pub mean_notify_ms: f64,
    /// 95th-percentile delta→notification latency (ms).
    pub p95_notify_ms: f64,
    /// Worst observed delta→notification latency (ms).
    pub max_notify_ms: f64,
    /// Updates delivered across all subscribers (whole run).
    pub updates: u64,
    /// Updates merged away by queue-overflow coalescing.
    pub coalesced: u64,
    /// Notifications suppressed (touched pattern, unchanged answer).
    pub suppressed: u64,
    /// Shared-index skip rate of the underlying registry.
    pub shared_index_hit_rate: f64,
}

impl Serialize for ServingPoint {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("subscribers".into(), self.subscribers.to_value()),
            ("batches_per_sec".into(), self.batches_per_sec.to_value()),
            ("mean_ingest_ms".into(), self.mean_ingest_ms.to_value()),
            ("mean_notify_ms".into(), self.mean_notify_ms.to_value()),
            ("p95_notify_ms".into(), self.p95_notify_ms.to_value()),
            ("max_notify_ms".into(), self.max_notify_ms.to_value()),
            ("updates".into(), self.updates.to_value()),
            ("coalesced".into(), self.coalesced.to_value()),
            ("suppressed".into(), self.suppressed.to_value()),
            ("shared_index_hit_rate".into(), self.shared_index_hit_rate.to_value()),
        ])
    }
}

/// The telemetry-cost experiment: the same single-subscriber flood run
/// with four configurations — full telemetry (tracing + recorder, the
/// serving default), **sampled** tracing (`trace_sample = 16`: 1 in 16
/// batches collects a full span tree, the rest pay one timing-only
/// root, and a slow sampled-out batch still files a skeleton capture in
/// the recorder's slow list), recorder-off (`recorder_off`: spans
/// degrade to free no-ops, counters and directly-recorded histograms
/// keep working), and disabled. The <2% acceptance target applies to
/// recorder-off **and** to sampled — the two configurations a
/// sub-100µs microbatch deployment actually runs; full every-batch
/// tracing pays for per-span clock reads, record collection and
/// flight-recorder retention, and its measured cost is reported, not
/// gated. Counters always record, so each delta isolates exactly what
/// its configuration gates.
#[derive(Debug, Clone)]
pub struct TelemetryOverhead {
    /// Batches each timed flood repetition ingested.
    pub batches: usize,
    /// Rate implied by the summed per-batch minima with full telemetry
    /// (the serving default).
    pub enabled_batches_per_sec: f64,
    /// Same, with 1-in-16 deterministic trace sampling: full span trees
    /// on the sampled batches, a timing-only root on the rest.
    pub sampled_batches_per_sec: f64,
    /// Same, with the recorder off: spans are no-ops, counters and
    /// direct histogram recordings still land.
    pub recorder_off_batches_per_sec: f64,
    /// Same, with histograms, spans and the recorder gated off.
    pub disabled_batches_per_sec: f64,
    /// `(t_enabled − t_disabled) / t_disabled`, percent; negative values
    /// are scheduler noise.
    pub overhead_pct: f64,
    /// `(t_sampled − t_disabled) / t_disabled`, percent — production
    /// tracing at `trace_sample = 16`, held to the <2% target.
    pub sampled_overhead_pct: f64,
    /// `(t_recorder_off − t_disabled) / t_disabled`, percent — the
    /// tracing-free floor, also held to the <2% target.
    pub recorder_off_overhead_pct: f64,
}

impl Serialize for TelemetryOverhead {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("batches".into(), self.batches.to_value()),
            ("enabled_batches_per_sec".into(), self.enabled_batches_per_sec.to_value()),
            ("sampled_batches_per_sec".into(), self.sampled_batches_per_sec.to_value()),
            ("recorder_off_batches_per_sec".into(), self.recorder_off_batches_per_sec.to_value()),
            ("disabled_batches_per_sec".into(), self.disabled_batches_per_sec.to_value()),
            ("overhead_pct".into(), self.overhead_pct.to_value()),
            ("sampled_overhead_pct".into(), self.sampled_overhead_pct.to_value()),
            ("recorder_off_overhead_pct".into(), self.recorder_off_overhead_pct.to_value()),
        ])
    }
}

/// The whole experiment record written to `BENCH_serving.json`.
#[derive(Debug, Clone)]
pub struct ServingBenchResult {
    pub nodes: usize,
    pub edges: usize,
    pub batch_size: usize,
    pub batches: usize,
    pub threads: usize,
    pub queue_capacity: usize,
    pub points: Vec<ServingPoint>,
    /// Per-phase latency digests from the largest-N sweep point (apply,
    /// refresh, prepare/extract, notify, log fsync, …).
    pub phase_latency: Vec<PhaseLatency>,
    /// Telemetry-on vs telemetry-off flood cost.
    pub telemetry_overhead: TelemetryOverhead,
}

impl Serialize for ServingBenchResult {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("bench".into(), "serving_stream".to_value()),
            ("nodes".into(), self.nodes.to_value()),
            ("edges".into(), self.edges.to_value()),
            ("batch_size".into(), self.batch_size.to_value()),
            ("batches".into(), self.batches.to_value()),
            ("threads".into(), self.threads.to_value()),
            ("queue_capacity".into(), self.queue_capacity.to_value()),
            ("points".into(), self.points.to_value()),
            ("phase_latency_ms".into(), self.phase_latency.to_value()),
            ("telemetry_overhead".into(), self.telemetry_overhead.to_value()),
        ])
    }
}

/// Runs the subscriber sweep over the registry workload (same base graph,
/// pattern pool and stream seed as `registry_bench`, so the recorded
/// skip rates are comparable across PRs).
pub fn run(
    g: &DiGraph,
    pool: &[Pattern],
    k: usize,
    subscriber_counts: &[usize],
    batches: usize,
    batch_size: usize,
    threads: usize,
) -> ServingBenchResult {
    let queue_capacity = 256usize;
    let stream: Vec<GraphDelta> =
        update_stream(g, &UpdateStreamConfig::new(batches, batch_size, 0x5EAC7));
    let latency_until = (stream.len() / 2).max(1) as u64; // seqs 1..=this: paced phase

    let mut points = Vec::new();
    // Phase digests of the largest-N point — overwritten per iteration,
    // so the record describes the heaviest fan-out configuration.
    let mut phase_latency: Vec<PhaseLatency> = Vec::new();
    for &n in subscriber_counts {
        let mut svc = AnswerService::new(
            g,
            ServiceConfig { queue_capacity, threads, ..ServiceConfig::default() },
        );
        let mut subs = Vec::new();
        let mut pattern_ids = Vec::new();
        for i in 0..n {
            let sub = svc
                .subscribe(
                    pool[i % pool.len()].clone(),
                    IncrementalConfig::new(k),
                    NotifyMode::Relevance,
                )
                .expect("label-only pattern");
            sub.try_recv().expect("bootstrap answer");
            pattern_ids.push(sub.pattern());
            subs.push(sub);
        }

        // Producer-visible submit timestamps, indexed by `seq - 1`,
        // written before the batch enters the loop's channel.
        let t_origin = Instant::now();
        let send_ns: Arc<Vec<AtomicU64>> =
            Arc::new((0..stream.len()).map(|_| AtomicU64::new(0)).collect());

        let handle = ServiceHandle::spawn(svc);
        let consumers: Vec<std::thread::JoinHandle<Vec<(u64, f64)>>> = subs
            .into_iter()
            .map(|sub| {
                let send_ns = Arc::clone(&send_ns);
                std::thread::spawn(move || {
                    let mut latencies = Vec::new();
                    loop {
                        match sub.recv_timeout(Duration::from_secs(5)) {
                            Some(update) => {
                                let sent =
                                    send_ns[(update.seq - 1) as usize].load(Ordering::Acquire);
                                let now = t_origin.elapsed().as_nanos() as u64;
                                latencies.push((update.seq, (now - sent) as f64 / 1e6));
                            }
                            None => {
                                if sub.is_closed() && sub.pending() == 0 {
                                    return latencies;
                                }
                            }
                        }
                    }
                })
            })
            .collect();

        // Phase 1 — paced: synchronous ingest, per-update latency.
        let mut ingest_ms = Vec::with_capacity(latency_until as usize);
        for (i, delta) in stream[..latency_until as usize].iter().enumerate() {
            send_ns[i].store(t_origin.elapsed().as_nanos() as u64, Ordering::Release);
            let t = Instant::now();
            handle.ingest(delta.clone()).expect("stream is valid");
            ingest_ms.push(t.elapsed().as_secs_f64() * 1e3);
        }

        // Phase 2 — flood: async submit, sustained throughput.
        let t_flood = Instant::now();
        for (i, delta) in stream.iter().enumerate().skip(latency_until as usize) {
            send_ns[i].store(t_origin.elapsed().as_nanos() as u64, Ordering::Release);
            handle.submit(delta.clone());
        }
        let head = handle.seq(); // barrier: all submitted batches applied
        let flood_secs = t_flood.elapsed().as_secs_f64();
        assert_eq!(head, stream.len() as u64);

        let svc = handle.shutdown();
        // Cross-check before tearing down: push state equals a static
        // recompute on the final graph for every subscribed pattern.
        let snap = svc.registry().snapshot();
        for (i, id) in pattern_ids.iter().enumerate() {
            let served = svc.current(*id).expect("still subscribed");
            let expect = top_k_by_match(&snap, &pool[i % pool.len()], &TopKConfig::new(k));
            assert_eq!(served.nodes(), expect.nodes(), "served answer drifted at N = {n}");
        }
        let stats = svc.stats().clone();
        let hit_rate = svc.registry_stats().shared_index_hit_rate();
        phase_latency = phase_latencies(svc.telemetry());
        drop(svc); // closes queues; consumers drain and exit

        let mut paced: Vec<f64> = consumers
            .into_iter()
            .flat_map(|c| c.join().expect("consumer thread"))
            .filter(|&(seq, _)| seq <= latency_until)
            .map(|(_, ms)| ms)
            .collect();
        paced.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let mean =
            if paced.is_empty() { 0.0 } else { paced.iter().sum::<f64>() / paced.len() as f64 };
        let p95 =
            paced.get((paced.len().saturating_mul(95) / 100).min(paced.len().saturating_sub(1)));
        let flood_batches = stream.len() - latency_until as usize;

        points.push(ServingPoint {
            subscribers: n,
            batches_per_sec: if flood_secs > 0.0 { flood_batches as f64 / flood_secs } else { 0.0 },
            mean_ingest_ms: ingest_ms.iter().sum::<f64>() / ingest_ms.len().max(1) as f64,
            mean_notify_ms: mean,
            p95_notify_ms: p95.copied().unwrap_or(0.0),
            max_notify_ms: paced.last().copied().unwrap_or(0.0),
            updates: stats.updates_pushed,
            coalesced: stats.updates_coalesced,
            suppressed: stats.suppressed,
            shared_index_hit_rate: hit_rate,
        });
    }

    let telemetry_overhead = telemetry_overhead(g, pool, k, batches, batch_size, threads);

    ServingBenchResult {
        nodes: g.node_count(),
        edges: g.edge_count(),
        batch_size,
        batches,
        threads,
        queue_capacity,
        points,
        phase_latency,
        telemetry_overhead,
    }
}

/// One synchronous flood through a fresh service with the given
/// telemetry configuration, appending each batch's ingest seconds to
/// `samples`. Four subscribers give the notify fan-out something to do;
/// queues overflow-coalesce identically in both configurations, and the
/// per-batch timing itself (two `Instant` reads) is paid identically on
/// both sides.
fn flood_batch_secs(
    g: &DiGraph,
    pool: &[Pattern],
    k: usize,
    stream: &[GraphDelta],
    threads: usize,
    telemetry: TelemetryConfig,
) -> Vec<f64> {
    let mut svc = AnswerService::new(
        g,
        ServiceConfig { queue_capacity: 256, threads, telemetry, ..ServiceConfig::default() },
    );
    let mut subs = Vec::new();
    for q in pool.iter().take(4) {
        let sub = svc
            .subscribe(q.clone(), IncrementalConfig::new(k), NotifyMode::Relevance)
            .expect("label-only pattern");
        sub.try_recv().expect("bootstrap answer");
        subs.push(sub);
    }
    let mut samples = Vec::with_capacity(stream.len());
    for delta in stream {
        let t = Instant::now();
        svc.ingest(delta).expect("stream is valid");
        samples.push(t.elapsed().as_secs_f64());
    }
    drop(svc);
    drop(subs);
    samples
}

/// Element-wise minimum across repetitions: `out[i]` becomes the fastest
/// observed execution of batch `i`.
fn min_per_index(reps: &[Vec<f64>]) -> Vec<f64> {
    let n = reps.first().map_or(0, Vec::len);
    (0..n).map(|i| reps.iter().map(|r| r[i]).fold(f64::INFINITY, f64::min)).collect()
}

/// Measures the telemetry-on vs telemetry-off flood cost on the sweep's
/// own workload. The batches in question take double-digit microseconds,
/// so a single-digit-percent delta drowns in scheduler noise if floods
/// are timed wall-to-wall. Instead the experiment is **paired**: both
/// configurations replay the same ≥200-batch stream (batch `i` is
/// identical work on both sides), every batch is timed individually
/// across five interleaved repetitions per configuration, and the
/// overhead is the relative difference of the summed per-batch minima —
/// the minimum discards preemption spikes while the sum keeps heavy
/// batches weighted by their true share of the flood. The question is
/// the instrumentation's cost floor, not the machine's jitter.
pub fn telemetry_overhead(
    g: &DiGraph,
    pool: &[Pattern],
    k: usize,
    batches: usize,
    batch_size: usize,
    threads: usize,
) -> TelemetryOverhead {
    let stream: Vec<GraphDelta> =
        update_stream(g, &UpdateStreamConfig::new(batches.max(200), batch_size, 0x7E1E));
    // Warm-up flood (untimed): page in the service path and the stream.
    let _ = flood_batch_secs(g, pool, k, &stream, threads, TelemetryConfig::disabled());
    let mut off_reps = Vec::new();
    let mut rec_off_reps = Vec::new();
    let mut sampled_reps = Vec::new();
    let mut on_reps = Vec::new();
    for _ in 0..5 {
        off_reps.push(flood_batch_secs(g, pool, k, &stream, threads, TelemetryConfig::disabled()));
        rec_off_reps.push(flood_batch_secs(
            g,
            pool,
            k,
            &stream,
            threads,
            TelemetryConfig::default().recorder_off(),
        ));
        sampled_reps.push(flood_batch_secs(
            g,
            pool,
            k,
            &stream,
            threads,
            TelemetryConfig::default().sampled(16),
        ));
        on_reps.push(flood_batch_secs(g, pool, k, &stream, threads, TelemetryConfig::default()));
    }
    let off: f64 = min_per_index(&off_reps).iter().sum();
    let rec_off: f64 = min_per_index(&rec_off_reps).iter().sum();
    let sampled: f64 = min_per_index(&sampled_reps).iter().sum();
    let on: f64 = min_per_index(&on_reps).iter().sum();
    TelemetryOverhead {
        batches: stream.len(),
        enabled_batches_per_sec: if on > 0.0 { stream.len() as f64 / on } else { 0.0 },
        sampled_batches_per_sec: if sampled > 0.0 { stream.len() as f64 / sampled } else { 0.0 },
        recorder_off_batches_per_sec: if rec_off > 0.0 {
            stream.len() as f64 / rec_off
        } else {
            0.0
        },
        disabled_batches_per_sec: if off > 0.0 { stream.len() as f64 / off } else { 0.0 },
        overhead_pct: if off > 0.0 { (on - off) / off * 100.0 } else { 0.0 },
        sampled_overhead_pct: if off > 0.0 { (sampled - off) / off * 100.0 } else { 0.0 },
        recorder_off_overhead_pct: if off > 0.0 { (rec_off - off) / off * 100.0 } else { 0.0 },
    }
}

/// Renders the sweep as a printable table.
pub fn as_table(r: &ServingBenchResult) -> Table {
    let mut t = Table::new(
        "serving_stream",
        format!(
            "delta→notification latency and throughput, |V|={} |E|={} |Δ|={} threads={}",
            r.nodes, r.edges, r.batch_size, r.threads
        ),
        "N subs",
        &["batches/s", "ingest ms", "notify ms", "p95 ms", "max ms", "updates", "index hits"],
    );
    for p in &r.points {
        t.push(
            p.subscribers.to_string(),
            vec![
                p.batches_per_sec,
                p.mean_ingest_ms,
                p.mean_notify_ms,
                p.p95_notify_ms,
                p.max_notify_ms,
                p.updates as f64,
                p.shared_index_hit_rate,
            ],
        );
    }
    t
}
