//! Per-figure experiment drivers (Section 6 of the paper).
//!
//! Every public function regenerates one table/figure of the evaluation and
//! registers its series with a [`Records`] sink. IDs match the paper:
//! `fig5a` … `fig5l`, `fig4`, `datasets`, plus the λ-sensitivity result the
//! text reports without a figure.

use gpm_core::config::{DivConfig, TopKConfig};
use gpm_core::{top_k, top_k_by_match, top_k_diversified, top_k_diversified_heuristic};
use gpm_datagen::patterns::{q1_youtube, q2_youtube, CYCLIC_SIZES, DAG_SIZES, SMALL_DAG_SIZES};
use gpm_graph::stats::GraphStats;
use gpm_graph::DiGraph;
use gpm_pattern::Pattern;

use crate::table::{Records, Table};
use crate::workloads::{self, Settings};

/// Averaged metrics for one algorithm over a pattern suite.
#[derive(Debug, Clone, Copy, Default)]
struct Avg {
    time_s: f64,
    mr: f64,
    n: usize,
}

impl Avg {
    fn push(&mut self, time_s: f64, mr: f64) {
        self.time_s += time_s;
        self.mr += mr;
        self.n += 1;
    }
    fn time(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.time_s / self.n as f64
        }
    }
    fn ratio(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.mr / self.n as f64
        }
    }
}

/// Runs Match / TopK(opt) / TopK(nopt) over one suite, returning
/// (match, opt, nopt) averages. Also asserts cross-algorithm agreement —
/// an experiment run doubles as a correctness check.
fn run_relevance_suite(g: &DiGraph, patterns: &[Pattern], k: usize, seed: u64) -> [Avg; 3] {
    let mut acc = [Avg::default(), Avg::default(), Avg::default()];
    for q in patterns {
        let base = top_k_by_match(g, q, &TopKConfig::new(k));
        let total = base.stats.total_matches.unwrap_or(0).max(1);
        acc[0].push(base.stats.elapsed.as_secs_f64(), 1.0);

        let opt = top_k(g, q, &TopKConfig::new(k));
        assert_eq!(opt.total_relevance(), base.total_relevance(), "TopK = Match");
        acc[1].push(opt.stats.elapsed.as_secs_f64(), opt.stats.match_ratio(total));

        let nopt = top_k(g, q, &TopKConfig::new(k).nopt(seed));
        assert_eq!(nopt.total_relevance(), base.total_relevance(), "TopKnopt = Match");
        acc[2].push(nopt.stats.elapsed.as_secs_f64(), nopt.stats.match_ratio(total));
    }
    acc
}

/// Runs TopKDiv / TopKDH over one suite, returning averages of
/// (time_div, time_dh, f_div, f_dh).
fn run_div_suite(g: &DiGraph, patterns: &[Pattern], k: usize, lambda: f64) -> [f64; 4] {
    let mut t = [0.0f64; 2];
    let mut f = [0.0f64; 2];
    let mut n = 0usize;
    for q in patterns {
        let cfg = DivConfig::new(k, lambda);
        let div = top_k_diversified(g, q, &cfg);
        let dh = top_k_diversified_heuristic(g, q, &cfg);
        t[0] += div.stats.elapsed.as_secs_f64();
        t[1] += dh.stats.elapsed.as_secs_f64();
        f[0] += div.f_value;
        f[1] += dh.f_value;
        n += 1;
    }
    if n == 0 {
        return [f64::NAN; 4];
    }
    let n = n as f64;
    [t[0] / n, t[1] / n, f[0] / n, f[1] / n]
}

fn size_label(size: (usize, usize)) -> String {
    format!("({},{})", size.0, size.1)
}

// ------------------------------------------------------------------ tables

/// Dataset statistics table (the §6 "Experimental setting" block).
pub fn datasets(s: &Settings, rec: &Records) {
    let mut t = Table::new(
        "datasets",
        format!("emulated datasets at scale {:?}", s.scale),
        "dataset",
        &["nodes", "edges", "labels", "max_out", "sccs", "dag"],
    );
    for d in [workloads::amazon(s), workloads::citation(s), workloads::youtube(s)] {
        let st = GraphStats::compute(&d.graph);
        t.push(
            d.name,
            vec![
                st.nodes as f64,
                st.edges as f64,
                st.distinct_labels as f64,
                st.max_out_degree as f64,
                st.scc_count as f64,
                if st.is_dag { 1.0 } else { 0.0 },
            ],
        );
    }
    rec.add(t);
}

/// Figures 5(a) + 5(d): MR and time vs cyclic `|Q|` on YouTube*.
pub fn fig5a_5d(s: &Settings, rec: &Records) {
    let d = workloads::youtube(s);
    let mut mr = Table::new(
        "fig5a",
        "MR vs |Q| (cyclic, YouTube*, k = 10)",
        "|Q|",
        &["MR[TopK]", "MR[TopKnopt]"],
    );
    let mut tt = Table::new(
        "fig5d",
        "time (s) vs |Q| (cyclic, YouTube*)",
        "|Q|",
        &["Match", "TopKnopt", "TopK"],
    );
    for size in CYCLIC_SIZES {
        let ps = workloads::patterns_for(&d.graph, size, false, s);
        let [m, opt, nopt] = run_relevance_suite(&d.graph, &ps, s.k, s.seed);
        mr.push(size_label(size), vec![opt.ratio(), nopt.ratio()]);
        tt.push(size_label(size), vec![m.time(), nopt.time(), opt.time()]);
    }
    rec.add(mr);
    rec.add(tt);
}

/// Figures 5(b) + 5(e): MR and time vs DAG `|Q|` on Citation*.
pub fn fig5b_5e(s: &Settings, rec: &Records) {
    let d = workloads::citation(s);
    let mut mr = Table::new(
        "fig5b",
        "MR vs |Q| (DAG, Citation*, k = 10)",
        "|Q|",
        &["MR[TopKDAG]", "MR[TopKDAGnopt]"],
    );
    let mut tt = Table::new(
        "fig5e",
        "time (s) vs |Q| (DAG, Citation*)",
        "|Q|",
        &["Match", "TopKDAGnopt", "TopKDAG"],
    );
    for size in DAG_SIZES {
        let ps = workloads::patterns_for(&d.graph, size, true, s);
        let [m, opt, nopt] = run_relevance_suite(&d.graph, &ps, s.k, s.seed);
        mr.push(size_label(size), vec![opt.ratio(), nopt.ratio()]);
        tt.push(size_label(size), vec![m.time(), nopt.time(), opt.time()]);
    }
    rec.add(mr);
    rec.add(tt);
}

/// Figures 5(c) + 5(f): MR and time vs k on Amazon* (|Q| = (4,8)).
pub fn fig5c_5f(s: &Settings, rec: &Records) {
    let d = workloads::amazon(s);
    let ps = workloads::patterns_for(&d.graph, (4, 8), false, s);
    let mut mr =
        Table::new("fig5c", "MR vs k (Amazon*, |Q| = (4,8))", "k", &["MR[TopK]", "MR[TopKnopt]"]);
    let mut tt = Table::new(
        "fig5f",
        "time (s) vs k (Amazon*, |Q| = (4,8))",
        "k",
        &["Match", "TopKnopt", "TopK"],
    );
    for k in [5usize, 10, 15, 20, 25, 30] {
        let [m, opt, nopt] = run_relevance_suite(&d.graph, &ps, k, s.seed);
        mr.push(k.to_string(), vec![opt.ratio(), nopt.ratio()]);
        tt.push(k.to_string(), vec![m.time(), nopt.time(), opt.time()]);
    }
    rec.add(mr);
    rec.add(tt);
}

/// Figure 5(g): scalability on synthetic DAGs (|Q| = (4,6), k = 10).
pub fn fig5g(s: &Settings, rec: &Records, points: usize) {
    let mut t = Table::new(
        "fig5g",
        "time (s) vs |G| (synthetic DAG, |Q| = (4,6))",
        "|G|",
        &["Match", "TopKDAGnopt", "TopKDAG"],
    );
    for (v, e) in workloads::synthetic_sweep_sizes(s.scale, points) {
        let g = workloads::synthetic_dag(v, e, s.seed ^ v as u64);
        let ps = workloads::patterns_for(&g, (4, 6), true, s);
        let [m, opt, nopt] = run_relevance_suite(&g, &ps, s.k, s.seed);
        t.push(format!("({v},{e})"), vec![m.time(), nopt.time(), opt.time()]);
    }
    rec.add(t);
}

/// Figure 5(h): scalability on cyclic synthetic graphs (|Q| = (4,8)).
pub fn fig5h(s: &Settings, rec: &Records, points: usize) {
    let mut t = Table::new(
        "fig5h",
        "time (s) vs |G| (synthetic cyclic, |Q| = (4,8))",
        "|G|",
        &["Match", "TopKnopt", "TopK"],
    );
    for (v, e) in workloads::synthetic_sweep_sizes(s.scale, points) {
        let g = workloads::synthetic_cyclic(v, e, s.seed ^ v as u64);
        let ps = workloads::patterns_for(&g, (4, 8), false, s);
        let [m, opt, nopt] = run_relevance_suite(&g, &ps, s.k, s.seed);
        t.push(format!("({v},{e})"), vec![m.time(), nopt.time(), opt.time()]);
    }
    rec.add(t);
}

/// Figure 5(i): F(TopKDiv) vs F(TopKDH) on Amazon*, λ = 0.5, k = 10.
pub fn fig5i(s: &Settings, rec: &Records) {
    let d = workloads::amazon(s);
    let mut t = Table::new(
        "fig5i",
        "F() vs |Q| (Amazon*, λ = 0.5, k = 10)",
        "|Q|",
        &["F[TopKDiv]", "F[TopKDH]", "ratio"],
    );
    for size in CYCLIC_SIZES {
        let ps = workloads::div_patterns_for(&d.graph, size, false, s);
        let [_, _, f_div, f_dh] = run_div_suite(&d.graph, &ps, s.k, 0.5);
        t.push(size_label(size), vec![f_div, f_dh, f_dh / f_div]);
    }
    rec.add(t);
}

/// Figure 5(j): TopKDiv vs TopKDAGDH time on Citation* (small DAG sizes).
pub fn fig5j(s: &Settings, rec: &Records) {
    let d = workloads::citation(s);
    let mut t = Table::new(
        "fig5j",
        "time (s) vs |Q| (DAG, Citation*, k = 10, λ = 0.5)",
        "|Q|",
        &["TopKDiv", "TopKDAGDH"],
    );
    for size in SMALL_DAG_SIZES {
        let ps = workloads::div_patterns_for(&d.graph, size, true, s);
        let [t_div, t_dh, _, _] = run_div_suite(&d.graph, &ps, s.k, 0.5);
        t.push(size_label(size), vec![t_div, t_dh]);
    }
    rec.add(t);
}

/// Figure 5(k): TopKDiv vs TopKDH time on YouTube* (cyclic sizes).
pub fn fig5k(s: &Settings, rec: &Records) {
    let d = workloads::youtube(s);
    let mut t = Table::new(
        "fig5k",
        "time (s) vs |Q| (cyclic, YouTube*, k = 10, λ = 0.5)",
        "|Q|",
        &["TopKDiv", "TopKDH"],
    );
    for size in CYCLIC_SIZES {
        let ps = workloads::div_patterns_for(&d.graph, size, false, s);
        let [t_div, t_dh, _, _] = run_div_suite(&d.graph, &ps, s.k, 0.5);
        t.push(size_label(size), vec![t_div, t_dh]);
    }
    rec.add(t);
}

/// Figure 5(l): TopKDiv vs TopKDH scalability on synthetic cyclic graphs.
pub fn fig5l(s: &Settings, rec: &Records, points: usize) {
    let mut t = Table::new(
        "fig5l",
        "time (s) vs |G| (synthetic cyclic, |Q| = (4,8), λ = 0.5)",
        "|G|",
        &["TopKDiv", "TopKDH"],
    );
    for (v, e) in workloads::synthetic_sweep_sizes(s.scale, points) {
        let g = workloads::synthetic_cyclic(v, e, s.seed ^ v as u64);
        let ps = workloads::div_patterns_for(&g, (4, 8), false, s);
        let [t_div, t_dh, _, _] = run_div_suite(&g, &ps, s.k, 0.5);
        t.push(format!("({v},{e})"), vec![t_div, t_dh]);
    }
    rec.add(t);
}

/// λ-sensitivity (reported in the text of Exp-3): both diversified
/// algorithms across λ ∈ {0, 0.2, …, 1.0} on a YouTube* pattern.
pub fn lambda_sensitivity(s: &Settings, rec: &Records) {
    let d = workloads::youtube(s);
    let ps = workloads::div_patterns_for(&d.graph, (4, 8), false, s);
    let mut t = Table::new(
        "lambda",
        "λ sensitivity (YouTube*, |Q| = (4,8), k = 10)",
        "lambda",
        &["t[TopKDiv]", "t[TopKDH]", "F[TopKDiv]", "F[TopKDH]"],
    );
    for i in 0..=5 {
        let lambda = i as f64 / 5.0;
        let [t_div, t_dh, f_div, f_dh] = run_div_suite(&d.graph, &ps, s.k, lambda);
        t.push(format!("{lambda:.1}"), vec![t_div, t_dh, f_div, f_dh]);
    }
    rec.add(t);
}

/// Figure 4: the case study — top-2 relevant vs top-2 diversified matches
/// of Q1/Q2 on YouTube*.
pub fn fig4(s: &Settings, rec: &Records) {
    let d = workloads::youtube(s);
    let mut t = Table::new(
        "fig4",
        "case study: Q1/Q2 on YouTube* (k = 2, λ = 0.5)",
        "query",
        &["|Mu|", "rel_dr_1", "rel_dr_2", "div_dr_1", "div_dr_2", "div_changed"],
    );
    for (name, q) in [("Q1", q1_youtube()), ("Q2", q2_youtube())] {
        let sim = gpm_simulation::compute_simulation(&d.graph, &q);
        let mu = sim.output_matches(&q);
        if mu.is_empty() {
            t.push(name, vec![0.0, f64::NAN, f64::NAN, f64::NAN, f64::NAN, f64::NAN]);
            continue;
        }
        let rel = top_k(&d.graph, &q, &TopKConfig::new(2));
        let div = top_k_diversified(&d.graph, &q, &DivConfig::new(2, 0.5));
        let rd: Vec<f64> = rel.matches.iter().map(|m| m.relevance as f64).collect();
        let dd: Vec<f64> = div.matches.iter().map(|m| m.relevance as f64).collect();
        let changed = rel.nodes().iter().any(|n| !div.nodes().contains(n));
        println!(
            "fig4 {name}: top-2 relevant = {:?}, top-2 diversified = {:?}",
            rel.nodes(),
            div.nodes()
        );
        t.push(
            name,
            vec![
                mu.len() as f64,
                rd.first().copied().unwrap_or(f64::NAN),
                rd.get(1).copied().unwrap_or(f64::NAN),
                dd.first().copied().unwrap_or(f64::NAN),
                dd.get(1).copied().unwrap_or(f64::NAN),
                if changed { 1.0 } else { 0.0 },
            ],
        );
    }
    rec.add(t);
}

/// Runs everything (the `all` subcommand).
pub fn run_all(s: &Settings, rec: &Records, points: usize) {
    datasets(s, rec);
    fig4(s, rec);
    fig5a_5d(s, rec);
    fig5b_5e(s, rec);
    fig5c_5f(s, rec);
    fig5g(s, rec, points);
    fig5h(s, rec, points);
    fig5i(s, rec);
    fig5j(s, rec);
    fig5k(s, rec);
    fig5l(s, rec, points);
    lambda_sensitivity(s, rec);
}
