//! Table rendering and machine-readable experiment records.

use std::fmt::Write as _;
use std::path::Path;

use parking_lot::Mutex;
use serde::{Serialize, Value};

/// A printable experiment table: one labelled row per x-axis point.
#[derive(Debug, Clone)]
pub struct Table {
    /// Experiment id, e.g. `fig5a`.
    pub id: String,
    /// Human title.
    pub title: String,
    /// x-axis column header.
    pub x_label: String,
    /// Value column headers.
    pub columns: Vec<String>,
    /// Rows: x label + one value per column (NaN = missing).
    pub rows: Vec<(String, Vec<f64>)>,
}

// The offline serde stub has no derive macro (see `crates/compat/serde`).
impl Serialize for Table {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("id".into(), self.id.to_value()),
            ("title".into(), self.title.to_value()),
            ("x_label".into(), self.x_label.to_value()),
            ("columns".into(), self.columns.to_value()),
            ("rows".into(), self.rows.to_value()),
        ])
    }
}

impl Table {
    /// New empty table.
    pub fn new(
        id: impl Into<String>,
        title: impl Into<String>,
        x_label: impl Into<String>,
        columns: &[&str],
    ) -> Self {
        Table {
            id: id.into(),
            title: title.into(),
            x_label: x_label.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    pub fn push(&mut self, x: impl Into<String>, values: Vec<f64>) {
        assert_eq!(values.len(), self.columns.len(), "row arity");
        self.rows.push((x.into(), values));
    }

    /// Renders an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "── {} ── {}", self.id, self.title);
        let width = 12usize;
        let xw =
            self.rows.iter().map(|(x, _)| x.len()).chain([self.x_label.len()]).max().unwrap_or(8)
                + 2;
        let _ = write!(out, "{:<xw$}", self.x_label);
        for c in &self.columns {
            let _ = write!(out, "{c:>width$}");
        }
        let _ = writeln!(out);
        for (x, vals) in &self.rows {
            let _ = write!(out, "{x:<xw$}");
            for v in vals {
                if v.is_nan() {
                    let _ = write!(out, "{:>width$}", "-");
                } else if *v >= 100.0 {
                    let _ = write!(out, "{v:>width$.1}");
                } else {
                    let _ = write!(out, "{v:>width$.4}");
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Renders CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{}", self.x_label);
        for c in &self.columns {
            let _ = write!(out, ",{c}");
        }
        let _ = writeln!(out);
        for (x, vals) in &self.rows {
            let _ = write!(out, "{x}");
            for v in vals {
                let _ = write!(out, ",{v}");
            }
            let _ = writeln!(out);
        }
        out
    }
}

/// Thread-safe collection of produced tables, dumpable as CSV + JSON.
#[derive(Default)]
pub struct Records {
    tables: Mutex<Vec<Table>>,
}

impl Records {
    /// Empty collection.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (and prints) a finished table.
    pub fn add(&self, table: Table) {
        println!("{}", table.render());
        self.tables.lock().push(table);
    }

    /// Writes `<id>.csv` files plus a combined `results.json`.
    pub fn dump(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let tables = self.tables.lock();
        for t in tables.iter() {
            std::fs::write(dir.join(format!("{}.csv", t.id)), t.to_csv())?;
        }
        let json = serde_json::to_string_pretty(&*tables).expect("serializable");
        std::fs::write(dir.join("results.json"), json)?;
        Ok(())
    }

    /// Number of stored tables.
    pub fn len(&self) -> usize {
        self.tables.lock().len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_csv() {
        let mut t = Table::new("fig5x", "demo", "|Q|", &["a", "b"]);
        t.push("(4,8)", vec![0.45, f64::NAN]);
        t.push("(5,10)", vec![123.4, 0.5]);
        let text = t.render();
        assert!(text.contains("fig5x"));
        assert!(text.contains("(4,8)"));
        assert!(text.contains('-'), "NaN rendered as dash");
        let csv = t.to_csv();
        assert!(csv.starts_with("|Q|,a,b"));
        assert!(csv.contains("(5,10),123.4,0.5"));
    }

    #[test]
    fn records_roundtrip() {
        let r = Records::new();
        assert!(r.is_empty());
        let t = Table::new("t1", "x", "n", &["v"]);
        r.add(t);
        assert_eq!(r.len(), 1);
        let dir = std::env::temp_dir().join("gpm_bench_records_test");
        r.dump(&dir).unwrap();
        assert!(dir.join("t1.csv").exists());
        assert!(dir.join("results.json").exists());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut t = Table::new("t", "t", "x", &["a", "b"]);
        t.push("r", vec![1.0]);
    }
}
