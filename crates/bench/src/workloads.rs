//! Workload assembly: graphs + verified pattern suites per experiment.

use gpm_datagen::datasets::{amazon_like, citation_like, youtube_like, Scale};
use gpm_datagen::patterns::{extract_pattern, PatternGenConfig};
use gpm_datagen::synthetic::{synthetic_graph, SyntheticConfig};
use gpm_graph::DiGraph;
use gpm_pattern::Pattern;

/// Shared experiment settings.
#[derive(Debug, Clone)]
pub struct Settings {
    /// Dataset scale (fraction of the paper's sizes).
    pub scale: Scale,
    /// Patterns per sweep point (the paper averages over its query sets).
    pub reps: usize,
    /// Default `k`.
    pub k: usize,
    /// Base seed.
    pub seed: u64,
    /// Minimum `|Mu|` for generated patterns (top-k needs headroom).
    pub min_matches: usize,
    /// Attribute-predicate selectivity for emulator patterns (the paper's
    /// real-life queries all carry attribute conditions); `None` for
    /// label-only patterns (synthetic sweeps).
    pub attr_selectivity: Option<f64>,
    /// Cap on `|Mu|` for TopKDiv workloads (its distance matrix is
    /// quadratic in `|Mu|`; the paper itself motivates TopKDH with this).
    pub div_mu_cap: usize,
}

impl Settings {
    /// Defaults for a scale.
    pub fn new(scale: Scale) -> Self {
        Settings {
            scale,
            reps: 3,
            k: 10,
            seed: 20130826,
            min_matches: 60,
            attr_selectivity: Some(0.6),
            div_mu_cap: 4_000,
        }
    }
}

/// A named dataset with cached construction.
pub struct Dataset {
    pub name: &'static str,
    pub graph: DiGraph,
}

/// Builds the YouTube emulator.
pub fn youtube(s: &Settings) -> Dataset {
    Dataset { name: "YouTube*", graph: youtube_like(s.scale, s.seed) }
}

/// Builds the Citation emulator.
pub fn citation(s: &Settings) -> Dataset {
    Dataset { name: "Citation*", graph: citation_like(s.scale, s.seed ^ 1) }
}

/// Builds the Amazon emulator.
pub fn amazon(s: &Settings) -> Dataset {
    Dataset { name: "Amazon*", graph: amazon_like(s.scale, s.seed ^ 2) }
}

/// Synthetic sweep sizes: the paper sweeps `|V|` from 1.0M to 2.8M with
/// `|E| = 2|V|`; we sweep the same multipliers over a scale-dependent base.
pub fn synthetic_sweep_sizes(scale: Scale, points: usize) -> Vec<(usize, usize)> {
    let base = match scale {
        Scale::Small => 10_000usize,
        Scale::Medium => 50_000,
        Scale::Paper => 1_000_000,
    };
    (0..points)
        .map(|i| {
            let f = 1.0 + 1.8 * i as f64 / (points.saturating_sub(1).max(1)) as f64;
            let v = (base as f64 * f) as usize;
            // |E|/|V| = 3, matching the paper's real graphs (2.8-3.3); the
            // paper does not pin the synthetic ratio.
            (v, 3 * v)
        })
        .collect()
}

/// Builds a cyclic synthetic graph of a sweep size.
pub fn synthetic_cyclic(nodes: usize, edges: usize, seed: u64) -> DiGraph {
    synthetic_graph(&SyntheticConfig::sweep(nodes, edges, seed))
}

/// Builds a DAG synthetic graph of a sweep size.
pub fn synthetic_dag(nodes: usize, edges: usize, seed: u64) -> DiGraph {
    synthetic_graph(&SyntheticConfig::dag(nodes, edges, seed))
}

/// Verified pattern suite of one size over a graph; logs when generation
/// falls short so truncated coverage is never silent.
pub fn patterns_for(g: &DiGraph, size: (usize, usize), dag: bool, s: &Settings) -> Vec<Pattern> {
    let mut out = Vec::with_capacity(s.reps);
    for i in 0..s.reps {
        let mut cfg =
            PatternGenConfig::new(size.0, size.1, dag, s.seed.wrapping_add(7919 * (i as u64 + 1)));
        cfg.min_matches = s.min_matches;
        cfg.max_tries = 80;
        cfg.attr_selectivity = if g.has_attributes() { s.attr_selectivity } else { None };
        // Fall back to smaller match floors (and finally to plain-label
        // patterns) rather than dropping the sweep point; relaxations are
        // logged, never silent.
        let mut found = extract_pattern(g, &cfg);
        while found.is_none() && cfg.min_matches > 1 {
            cfg.min_matches = (cfg.min_matches / 4).max(1);
            eprintln!(
                "warn: relaxing min_matches to {} for size {size:?} (dag={dag}) rep {i}",
                cfg.min_matches
            );
            found = extract_pattern(g, &cfg);
        }
        if found.is_none() && cfg.attr_selectivity.is_some() {
            eprintln!("warn: dropping attribute predicates for size {size:?} rep {i}");
            cfg.attr_selectivity = None;
            found = extract_pattern(g, &cfg);
        }
        match found {
            Some(q) => out.push(q),
            None => {
                eprintln!("warn: pattern extraction failed for size {size:?} (dag={dag}) rep {i}")
            }
        }
    }
    out
}

/// Patterns whose `|Mu|` stays under the TopKDiv cap.
pub fn div_patterns_for(
    g: &DiGraph,
    size: (usize, usize),
    dag: bool,
    s: &Settings,
) -> Vec<Pattern> {
    patterns_for(g, size, dag, s)
        .into_iter()
        .filter(|q| {
            let sim = gpm_simulation::compute_simulation(g, q);
            let mu = sim.output_matches(q).len();
            if mu > s.div_mu_cap {
                eprintln!("warn: skipping pattern with |Mu| = {mu} > cap {}", s.div_mu_cap);
                false
            } else {
                true
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_sizes() {
        let v = synthetic_sweep_sizes(Scale::Small, 5);
        assert_eq!(v.len(), 5);
        assert_eq!(v[0], (10_000, 30_000));
        assert_eq!(v[4], (28_000, 84_000));
        assert!(v.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn settings_defaults() {
        let s = Settings::new(Scale::Small);
        assert_eq!(s.k, 10);
        assert!(s.reps >= 1);
    }
}
