//! Phase-latency digests for the `BENCH_*.json` artifacts.
//!
//! Every bench that drives the instrumented stack (registry or serving)
//! ends up with a [`Telemetry`] bundle full of per-phase latency
//! histograms. This module folds each histogram into a small digest —
//! count, p50/p90/p99, max, mean — so the JSON artifacts record *where*
//! a batch spends its time (apply vs refresh vs prepare vs extract vs
//! notify vs fsync), not just the end-to-end number the sweep tables
//! already carry.

use gpm_serving::{names, Telemetry};
use gpm_telemetry::HistogramSnapshot;
use serde::{Serialize, Value};

/// One phase's latency digest, extracted from a run's telemetry snapshot.
#[derive(Debug, Clone)]
pub struct PhaseLatency {
    /// Phase name as spans record it (`ingest`, `apply`, `refresh`, …)
    /// or `log_fsync` for the delta-log durability histogram.
    pub phase: String,
    /// Samples recorded (spans finished / fsyncs performed).
    pub count: u64,
    pub p50_ms: f64,
    pub p90_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
    pub mean_ms: f64,
}

impl Serialize for PhaseLatency {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("phase".into(), self.phase.to_value()),
            ("count".into(), self.count.to_value()),
            ("p50_ms".into(), self.p50_ms.to_value()),
            ("p90_ms".into(), self.p90_ms.to_value()),
            ("p99_ms".into(), self.p99_ms.to_value()),
            ("max_ms".into(), self.max_ms.to_value()),
            ("mean_ms".into(), self.mean_ms.to_value()),
        ])
    }
}

fn digest(phase: &str, h: &HistogramSnapshot) -> PhaseLatency {
    let ms = |ns: u64| ns as f64 / 1e6;
    PhaseLatency {
        phase: phase.to_string(),
        count: h.count,
        p50_ms: ms(h.p50_ns()),
        p90_ms: ms(h.p90_ns()),
        p99_ms: ms(h.p99_ns()),
        max_ms: ms(h.max_ns),
        mean_ms: ms(h.mean_ns()),
    }
}

/// One digest per instrumented phase that recorded samples during the
/// run, in the canonical phase order, with the log-fsync histogram
/// appended. Phases the workload never reached are omitted rather than
/// reported as zeros.
pub fn phase_latencies(t: &Telemetry) -> Vec<PhaseLatency> {
    let snap = t.metrics().snapshot();
    let mut out = Vec::new();
    for phase in names::PHASES {
        if let Some(h) = snap.histogram(&names::phase(phase)) {
            if h.count > 0 {
                out.push(digest(phase, h));
            }
        }
    }
    if let Some(h) = snap.histogram(names::LOG_FSYNC_SECONDS) {
        if h.count > 0 {
            out.push(digest("log_fsync", h));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    #[test]
    fn digests_follow_canonical_phase_order_and_skip_silent_phases() {
        let t = Telemetry::on();
        t.metrics()
            .histogram_with(names::PHASE_SECONDS, &[("phase", "refresh")])
            .record(Duration::from_millis(4));
        t.metrics()
            .histogram_with(names::PHASE_SECONDS, &[("phase", "ingest")])
            .record(Duration::from_millis(9));
        t.metrics().histogram(names::LOG_FSYNC_SECONDS).record(Duration::from_micros(300));
        // `apply` exists but never fired: must not appear.
        let _ = t.metrics().histogram_with(names::PHASE_SECONDS, &[("phase", "apply")]);

        let phases = phase_latencies(&t);
        let order: Vec<&str> = phases.iter().map(|p| p.phase.as_str()).collect();
        assert_eq!(order, ["ingest", "refresh", "log_fsync"]);
        assert!(phases.iter().all(|p| p.count == 1));
        let ingest = &phases[0];
        assert!(ingest.p50_ms >= 9.0 && ingest.max_ms >= 9.0 && ingest.mean_ms >= 9.0);
    }
}
