//! # gpm-bench
//!
//! The experiment harness reproducing **every table and figure** of the
//! paper's evaluation (Section 6), plus criterion micro-benches.
//!
//! `cargo run -p gpm-bench --release --bin experiments -- all --scale medium`
//! regenerates the series behind Figures 4 and 5(a)–5(l), the dataset
//! table, and the λ-sensitivity result, printing paper-style tables and
//! optionally dumping CSV/JSON records. Absolute numbers differ from the
//! paper (different hardware, emulated datasets, configurable scale); the
//! *shapes* — who wins, by what factor, where crossovers fall — are the
//! reproduction targets recorded in `EXPERIMENTS.md`.

pub mod delta_bench;
pub mod experiments;
pub mod registry_bench;
pub mod serving_bench;
pub mod table;
pub mod telemetry_summary;
pub mod workloads;

pub use table::{Records, Table};
