//! Criterion benches over the core algorithms — the micro/meso counterparts
//! of the harness experiments (one group per paper figure family):
//!
//! * `simulation`       — maximum-simulation computation (plus naive oracle)
//! * `topk_cyclic`      — Match vs TopK vs TopKnopt (Fig. 5(d) family)
//! * `topk_dag`         — Match vs TopKDAG (Fig. 5(e) family)
//! * `scalability`      — |G| sweep (Fig. 5(g)/(h) family)
//! * `diversification`  — TopKDiv vs TopKDH (Fig. 5(j)/(k) family)
//! * `bounds_ablation`  — Global vs DescLabelCount vs ProductReach
//! * `ranking`          — relevant-set computation: shared DP vs BFS fallback

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use gpm_bench::workloads::{self, Settings};
use gpm_core::config::{DivConfig, TopKConfig};
use gpm_core::{top_k, top_k_by_match, top_k_diversified, top_k_diversified_heuristic};
use gpm_datagen::datasets::Scale;
use gpm_datagen::synthetic::{synthetic_graph, SyntheticConfig};
use gpm_graph::DiGraph;
use gpm_pattern::Pattern;
use gpm_ranking::bounds::{output_upper_bounds, BoundConfig, BoundStrategy};
use gpm_ranking::reach_sets::ReachConfig;
use gpm_ranking::relevant_set::RelevantSets;
use gpm_simulation::compute_simulation;

fn small_settings() -> Settings {
    let mut s = Settings::new(Scale::Small);
    s.reps = 1;
    s
}

fn workload_cyclic() -> (DiGraph, Pattern) {
    let s = small_settings();
    let d = workloads::youtube(&s);
    let q =
        workloads::patterns_for(&d.graph, (5, 10), false, &s).into_iter().next().expect("pattern");
    (d.graph, q)
}

fn workload_dag() -> (DiGraph, Pattern) {
    let s = small_settings();
    let d = workloads::citation(&s);
    let q =
        workloads::patterns_for(&d.graph, (4, 6), true, &s).into_iter().next().expect("pattern");
    (d.graph, q)
}

fn bench_simulation(c: &mut Criterion) {
    let (g, q) = workload_cyclic();
    let mut group = c.benchmark_group("simulation");
    group.sample_size(20);
    group.bench_function("refinement", |b| b.iter(|| black_box(compute_simulation(&g, &q)).len()));
    // The naive oracle only at a reduced size (it is quadratic-ish).
    let small = synthetic_graph(&SyntheticConfig::paper(2_000, 6_000, 3));
    group.bench_function("naive_2k", |b| {
        b.iter(|| black_box(gpm_simulation::naive::naive_simulation(&small, &q)).len())
    });
    group.finish();
}

fn bench_topk_cyclic(c: &mut Criterion) {
    let (g, q) = workload_cyclic();
    let mut group = c.benchmark_group("topk_cyclic");
    group.sample_size(15);
    let cfg = TopKConfig::new(10);
    group.bench_function("match", |b| {
        b.iter(|| black_box(top_k_by_match(&g, &q, &cfg)).total_relevance())
    });
    group.bench_function("topk", |b| b.iter(|| black_box(top_k(&g, &q, &cfg)).total_relevance()));
    group.bench_function("topk_nopt", |b| {
        let n = cfg.clone().nopt(7);
        b.iter(|| black_box(top_k(&g, &q, &n)).total_relevance())
    });
    group.finish();
}

fn bench_topk_dag(c: &mut Criterion) {
    let (g, q) = workload_dag();
    let mut group = c.benchmark_group("topk_dag");
    group.sample_size(15);
    let cfg = TopKConfig::new(10);
    group.bench_function("match", |b| {
        b.iter(|| black_box(top_k_by_match(&g, &q, &cfg)).total_relevance())
    });
    group
        .bench_function("topkdag", |b| b.iter(|| black_box(top_k(&g, &q, &cfg)).total_relevance()));
    group.finish();
}

fn bench_scalability(c: &mut Criterion) {
    let mut group = c.benchmark_group("scalability");
    group.sample_size(10);
    for nodes in [5_000usize, 10_000, 20_000] {
        let g = synthetic_graph(&SyntheticConfig::sweep(nodes, 2 * nodes, 9));
        let s = small_settings();
        let Some(q) = workloads::patterns_for(&g, (4, 8), false, &s).into_iter().next() else {
            continue;
        };
        let cfg = TopKConfig::new(10);
        group.bench_with_input(BenchmarkId::new("match", nodes), &nodes, |b, _| {
            b.iter(|| black_box(top_k_by_match(&g, &q, &cfg)).total_relevance())
        });
        group.bench_with_input(BenchmarkId::new("topk", nodes), &nodes, |b, _| {
            b.iter(|| black_box(top_k(&g, &q, &cfg)).total_relevance())
        });
    }
    group.finish();
}

fn bench_diversification(c: &mut Criterion) {
    let (g, q) = workload_cyclic();
    let mut group = c.benchmark_group("diversification");
    group.sample_size(10);
    let cfg = DivConfig::new(10, 0.5);
    group.bench_function("topkdiv", |b| {
        b.iter(|| black_box(top_k_diversified(&g, &q, &cfg)).f_value)
    });
    group.bench_function("topkdh", |b| {
        b.iter(|| black_box(top_k_diversified_heuristic(&g, &q, &cfg)).f_value)
    });
    group.finish();
}

fn bench_bounds_ablation(c: &mut Criterion) {
    let (g, q) = workload_cyclic();
    let sim = compute_simulation(&g, &q);
    let space = sim.space();
    let mut group = c.benchmark_group("bounds_ablation");
    group.sample_size(20);
    for strat in [BoundStrategy::Global, BoundStrategy::DescLabelCount, BoundStrategy::ProductReach]
    {
        group.bench_function(format!("{strat:?}"), |b| {
            b.iter(|| {
                black_box(output_upper_bounds(&g, &q, space, strat, &BoundConfig::default()))
                    .as_slice()
                    .len()
            })
        });
    }
    group.finish();
}

fn bench_ranking(c: &mut Criterion) {
    let (g, q) = workload_cyclic();
    let sim = compute_simulation(&g, &q);
    let mut group = c.benchmark_group("ranking");
    group.sample_size(15);
    group.bench_function("relevant_sets_dp", |b| {
        b.iter(|| black_box(RelevantSets::compute(&g, &q, &sim)).len())
    });
    group.bench_function("relevant_sets_bfs", |b| {
        let cfg = ReachConfig { budget_bytes: 0, threads: 2 };
        b.iter(|| black_box(RelevantSets::compute_with(&g, &q, &sim, &cfg)).len())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_simulation,
    bench_topk_cyclic,
    bench_topk_dag,
    bench_scalability,
    bench_diversification,
    bench_bounds_ablation,
    bench_ranking
);
criterion_main!(benches);
