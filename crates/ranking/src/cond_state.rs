//! [`CondensationState`]: incrementally maintained Tarjan condensation +
//! component reach bitsets over a mutable pair graph.
//!
//! PR 5's `dirty_region` sweep showed that at small dirty fractions the
//! reach DP's cost is dominated by *prepare* — a from-scratch Tarjan
//! condensation and bottom-up bitset build over the whole alive-pair
//! view, once per batch. The paper's incremental thesis (Fan et al.,
//! VLDB 2013) says that work should scale with |Δ|, not |G|: SCC
//! structure only changes around the touched region. This module keeps
//! the condensation **alive across batches**:
//!
//! * **Deletions only split.** A removed intra-component edge or a died
//!   member can only break its own SCC apart (every post-deletion SCC is
//!   a subset of the old one), so Tarjan re-runs inside the affected
//!   components' member union — a bounded region — and everything else
//!   keeps its component id.
//! * **Insertions only merge on a DAG cycle.** A new edge `x → y` with
//!   `comp(x) ≠ comp(y)` merges components exactly when `comp(y)` reaches
//!   `comp(x)` in the condensation DAG. A bounded reachability probe
//!   (over the cached successor lists, which are conservative supersets
//!   while dirty, plus the batch's earlier insertions) detects the cycle;
//!   the components on the connecting paths join the re-Tarjan region.
//!   Probes run sequentially over the batch so interacting multi-edge
//!   cycles are caught by the latest edge's probe.
//! * **Dirty `Full(c)` bitsets propagate only to ancestors.** Each live
//!   component holds `Full(c)` (member data nodes ∪ successors' `Full`)
//!   behind an [`Arc`] — extraction hands out refcounted snapshots, and
//!   replacing a set frees the old one as soon as the last parked reader
//!   drops it. After restructuring, only the changed components and
//!   their condensation-DAG ancestors (walked over exact predecessor
//!   sets) are recomputed, successors-first.
//!
//! When a batch's affected region outgrows [`CondPolicy`]'s thresholds
//! the state reports [`MaintainError`] and the caller falls back to a
//! full re-condensation ([`CondensationState::build`]) — mirroring the
//! PR 1 rebuild-threshold pattern. Correctness is pinned differentially:
//! [`CondensationState::validate`] compares partition, triviality and
//! every `Full(c)` against a from-scratch build.

use std::collections::{BTreeSet, HashMap};
use std::sync::Arc;

use gpm_graph::scc::Successors;
use gpm_graph::BitSet;
use gpm_simulation::{PairDelta, ReachView};

/// Sentinel component id for dead / never-alive pair slots.
const DEAD: u32 = u32::MAX;

/// Fallback thresholds for incremental maintenance.
#[derive(Debug, Clone, Copy)]
pub struct CondPolicy {
    /// Maximum components one insertion probe may visit before the batch
    /// falls back to full re-condensation.
    pub probe_limit: usize,
    /// Maximum fraction of live pairs the re-Tarjan region may cover
    /// before the batch falls back to full re-condensation.
    pub max_region_fraction: f64,
}

impl Default for CondPolicy {
    fn default() -> Self {
        CondPolicy { probe_limit: 4096, max_region_fraction: 0.5 }
    }
}

/// Why a batch could not be maintained incrementally. The state is
/// **poisoned** after an error — the caller must rebuild it from scratch
/// (and count the fallback).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MaintainError {
    /// An insertion probe exceeded [`CondPolicy::probe_limit`].
    ProbeOverflow,
    /// The re-Tarjan region exceeded [`CondPolicy::max_region_fraction`].
    RegionOverflow,
}

/// What one maintained batch cost, for telemetry and bench counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaintainStats {
    /// Pairs inside the re-Tarjan region (0 when no component restructured).
    pub region_pairs: usize,
    /// Components whose `Full` bitset was recomputed.
    pub recomputed_fulls: usize,
    /// Components retired + created by restructuring.
    pub restructured_comps: usize,
}

/// A reference-counted extraction handle: the strict-reach set of a
/// source pair, resolvable to an owned bitset without holding the state.
#[derive(Debug, Clone)]
pub enum SetHandle {
    /// Nontrivial source component: its own `Full(c)` (the cycle makes
    /// every member reachable from every member via ≥ 1 edge).
    Full(Arc<BitSet>),
    /// Trivial source component: union of the successors' `Full`s — the
    /// strictness of "via at least one edge".
    Union(Vec<Arc<BitSet>>),
}

impl SetHandle {
    /// Materializes the handle as an owned bitset of `width` bits.
    pub fn resolve(&self, width: usize) -> BitSet {
        match self {
            SetHandle::Full(a) => (**a).clone(),
            SetHandle::Union(parts) => {
                let mut b = BitSet::new(width);
                for a in parts {
                    b.union_with(a);
                }
                b
            }
        }
    }
}

#[derive(Debug, Clone)]
struct CompSlot {
    live: bool,
    /// Alive member pairs, sorted.
    members: Vec<u32>,
    /// Distinct live successor components, sorted, self excluded. Exact
    /// at rest; a conservative superset only transiently inside `apply`.
    succs: Vec<u32>,
    /// Exact predecessor components (kept in sync with every `succs`
    /// recompute and retirement) — the ancestor walk of dirty
    /// propagation runs over these.
    preds: BTreeSet<u32>,
    /// Size > 1, or a single member with a self-loop.
    nontrivial: bool,
    /// `Full(c)` = member data nodes ∪ successors' `Full`.
    full: Arc<BitSet>,
}

/// Incrementally maintained condensation (components, DAG adjacency,
/// per-component reach bitsets) over a [`ReachView`] whose pair slots
/// are stable across batches. See the module docs for the algorithm.
#[derive(Debug, Clone)]
pub struct CondensationState {
    /// Pair slot → live component id, or [`DEAD`].
    comp_of: Vec<u32>,
    comps: Vec<CompSlot>,
    free: Vec<u32>,
    width: usize,
    live_pairs: usize,
    /// Component ids whose `Full` the last `build`/`apply` recomputed —
    /// exactly the components whose fold-derived bounds can have moved,
    /// so a maintained bound index refolds only these.
    last_refold: Vec<u32>,
}

impl CondensationState {
    /// Full (re)condensation: Tarjan over every alive pair, successor /
    /// predecessor wiring, and every `Full(c)` from scratch.
    pub fn build<V: ReachView>(view: &V, alive: impl Fn(u32) -> bool) -> Self {
        let n = view.node_count();
        let mut st = CondensationState {
            comp_of: vec![DEAD; n],
            comps: Vec::new(),
            free: Vec::new(),
            width: view.universe_size(),
            live_pairs: 0,
            last_refold: Vec::new(),
        };
        let region: Vec<u32> = (0..n as u32).filter(|&p| alive(p)).collect();
        st.live_pairs = region.len();
        let sccs = tarjan_region(view, &region, &alive);
        for scc in sccs {
            st.install_component(view, scc);
        }
        let all: BTreeSet<u32> = (0..st.comps.len() as u32).collect();
        for &c in &all {
            st.recompute_succs(view, c);
        }
        st.recompute_fulls(view, &all);
        st
    }

    /// Universe width of the maintained bitsets.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Alive pairs currently partitioned.
    pub fn live_pairs(&self) -> usize {
        self.live_pairs
    }

    /// Live components.
    pub fn component_count(&self) -> usize {
        self.comps.iter().filter(|c| c.live).count()
    }

    /// Heap bytes held by the live components' `Full` bitsets — budget
    /// gating and the leak audit read this.
    pub fn retained_bytes(&self) -> usize {
        self.comps.iter().filter(|c| c.live).map(|c| c.full.heap_bytes()).sum()
    }

    /// Weak references to every live component's `Full` bitset — the leak
    /// audit downgrades these, drops the state, and asserts nothing but
    /// still-parked [`SetHandle`]s can keep a bitset alive.
    pub fn weak_fulls(&self) -> Vec<std::sync::Weak<BitSet>> {
        self.comps.iter().filter(|c| c.live).map(|c| Arc::downgrade(&c.full)).collect()
    }

    /// The strict-reach extraction handle of alive pair `p`: a refcounted
    /// snapshot that stays valid (and keeps only its own bitsets alive)
    /// however the state changes afterwards.
    pub fn handle_for(&self, p: u32) -> SetHandle {
        let c = self.comp_of[p as usize];
        debug_assert_ne!(c, DEAD, "extraction from a dead pair");
        let slot = &self.comps[c as usize];
        if slot.nontrivial {
            SetHandle::Full(Arc::clone(&slot.full))
        } else {
            SetHandle::Union(
                slot.succs.iter().map(|&s| Arc::clone(&self.comps[s as usize].full)).collect(),
            )
        }
    }

    /// Folds one batch's pair-level delta into the maintained
    /// condensation. `view` must already be post-batch. On error the
    /// state is poisoned and must be rebuilt with [`Self::build`].
    pub fn apply<V: ReachView>(
        &mut self,
        view: &V,
        delta: &PairDelta,
        policy: &CondPolicy,
    ) -> Result<MaintainStats, MaintainError> {
        if view.node_count() > self.comp_of.len() {
            self.comp_of.resize(view.node_count(), DEAD);
        }
        let mut stats = MaintainStats::default();
        // Components whose internals must be re-Tarjaned (the region).
        let mut restructure: BTreeSet<u32> = BTreeSet::new();
        // Components whose successor lists must be recomputed.
        let mut succ_fix: BTreeSet<u32> = BTreeSet::new();
        // Components whose Full must be recomputed (ancestors added later).
        let mut full_dirty: BTreeSet<u32> = BTreeSet::new();

        // 1. Deaths: drop the member; a now-empty component retires, a
        //    surviving one can only split.
        for &p in &delta.died {
            let c = self.comp_of[p as usize];
            if c == DEAD {
                continue;
            }
            self.comp_of[p as usize] = DEAD;
            self.live_pairs -= 1;
            let slot = &mut self.comps[c as usize];
            let i = slot.members.binary_search(&p).expect("died pair is a member");
            slot.members.remove(i);
            if slot.members.is_empty() {
                restructure.remove(&c);
                self.retire(c, &mut succ_fix, &mut full_dirty);
            } else {
                restructure.insert(c);
            }
        }

        // 2. Removed pair edges: intra-component removals can split;
        //    cross-component ones only stale the source's succ list.
        for &(x, y) in &delta.removed {
            let (cx, cy) = (self.comp_of[x as usize], self.comp_of[y as usize]);
            if cx == DEAD || cy == DEAD {
                continue; // stripped alongside a death
            }
            if cx == cy {
                restructure.insert(cx);
            } else {
                succ_fix.insert(cx);
                full_dirty.insert(cx);
            }
        }

        // 3. Births: fresh singleton components (their edges arrive as
        //    added pair edges below).
        for &p in &delta.born {
            debug_assert_eq!(self.comp_of[p as usize], DEAD, "born pair was alive");
            let c = self.alloc();
            self.comps[c as usize].members.push(p);
            self.comp_of[p as usize] = c;
            self.live_pairs += 1;
            succ_fix.insert(c);
            full_dirty.insert(c);
        }

        // 4. Insertions, sequentially: probe the condensation DAG (cached
        //    successor lists are supersets while dirty — conservative,
        //    never under-reaching — plus this batch's earlier insertions)
        //    for a cycle. Components on the connecting paths join the
        //    region; the region re-Tarjan then merges them against the
        //    real post-batch view.
        let mut extra: HashMap<u32, Vec<u32>> = HashMap::new();
        for &(x, y) in &delta.added {
            let (cx, cy) = (self.comp_of[x as usize], self.comp_of[y as usize]);
            debug_assert!(cx != DEAD && cy != DEAD, "added edges join alive pairs");
            if cx == cy {
                if x == y {
                    self.comps[cx as usize].nontrivial = true;
                }
                // An extra edge inside one SCC changes neither the
                // partition nor any reach set.
            } else {
                match self.probe(cy, cx, &extra, policy.probe_limit) {
                    Probe::Overflow => return Err(MaintainError::ProbeOverflow),
                    Probe::NoCycle => {
                        succ_fix.insert(cx);
                        full_dirty.insert(cx);
                    }
                    Probe::Cycle(merge) => {
                        restructure.extend(merge);
                    }
                }
                extra.entry(cx).or_default().push(cy);
            }
        }

        // Churn threshold: past it, a from-scratch condensation is the
        // cheaper (and simpler) path.
        stats.region_pairs =
            restructure.iter().map(|&c| self.comps[c as usize].members.len()).sum();
        if stats.region_pairs as f64 > policy.max_region_fraction * (self.live_pairs.max(1) as f64)
        {
            return Err(MaintainError::RegionOverflow);
        }

        // 5. Region re-Tarjan against the real view: splits and merges in
        //    one pass. Old ids retire; every resulting SCC is a fresh
        //    component.
        if !restructure.is_empty() {
            let mut region: Vec<u32> = restructure
                .iter()
                .flat_map(|&c| self.comps[c as usize].members.iter().copied())
                .collect();
            region.sort_unstable();
            let comp_of = &self.comp_of;
            let sccs = tarjan_region(view, &region, |p| {
                let c = comp_of[p as usize];
                c != DEAD && restructure.contains(&c)
            });
            for &c in &restructure {
                self.retire(c, &mut succ_fix, &mut full_dirty);
            }
            stats.restructured_comps = restructure.len() + sccs.len();
            for scc in sccs {
                let c = self.install_component(view, scc);
                succ_fix.insert(c);
                full_dirty.insert(c);
            }
        }

        // 6. Successor lists (and, through them, exact predecessor sets).
        for &c in &succ_fix {
            if self.is_live(c) {
                self.recompute_succs(view, c);
            }
        }

        // 7. Dirty propagation along condensation-DAG ancestors only,
        //    then recompute the dirty `Full`s successors-first.
        let mut dirty: BTreeSet<u32> =
            full_dirty.iter().copied().filter(|&c| self.is_live(c)).collect();
        let mut work: Vec<u32> = dirty.iter().copied().collect();
        while let Some(c) = work.pop() {
            let preds: Vec<u32> =
                self.comps[c as usize].preds.iter().copied().filter(|&p| self.is_live(p)).collect();
            for pr in preds {
                if dirty.insert(pr) {
                    work.push(pr);
                }
            }
        }
        stats.recomputed_fulls = dirty.len();
        self.recompute_fulls(view, &dirty);
        Ok(stats)
    }

    /// Differential check against a from-scratch build: same partition of
    /// the same alive pairs, same triviality, same `Full` per component.
    pub fn validate<V: ReachView>(
        &self,
        view: &V,
        alive: impl Fn(u32) -> bool,
    ) -> Result<(), String> {
        let fresh = Self::build(view, &alive);
        if self.live_pairs != fresh.live_pairs {
            return Err(format!("live_pairs {} != fresh {}", self.live_pairs, fresh.live_pairs));
        }
        for p in 0..view.node_count() as u32 {
            let (mc, fc) = (self.comp_of(p), fresh.comp_of(p));
            if mc.is_some() != alive(p) {
                return Err(format!("pair {p}: alive={} but comp_of={mc:?}", alive(p)));
            }
            let (Some(mc), Some(fc)) = (mc, fc) else { continue };
            let ms = &self.comps[mc as usize];
            let fs = &fresh.comps[fc as usize];
            if ms.members != fs.members {
                return Err(format!(
                    "pair {p}: members {:?} != fresh {:?}",
                    ms.members, fs.members
                ));
            }
            if ms.nontrivial != fs.nontrivial {
                return Err(format!("pair {p}: nontrivial {} != {}", ms.nontrivial, fs.nontrivial));
            }
            if *ms.full != *fs.full {
                return Err(format!("pair {p}: Full mismatch"));
            }
            let msucc = self.succ_rep_set(mc);
            let fsucc = fresh.succ_rep_set(fc);
            if msucc != fsucc {
                return Err(format!("pair {p}: succs {msucc:?} != fresh {fsucc:?}"));
            }
        }
        Ok(())
    }

    /// Component id of pair `p`, if alive.
    pub fn comp_of(&self, p: u32) -> Option<u32> {
        let c = self.comp_of[p as usize];
        (c != DEAD).then_some(c)
    }

    /// Component ids whose `Full` the last successful `build`/`apply`
    /// recomputed — the exact refold set for a maintained bound index.
    /// Retired ids may appear (a reused slot is refolded as its new
    /// component); dead ids are simply stale entries a consumer skips.
    pub fn last_refolded(&self) -> &[u32] {
        &self.last_refold
    }

    /// Popcount of `Full(c)` for a live component — the count-fold a
    /// per-component bound index maintains. `None` for dead slots.
    pub fn full_count(&self, c: u32) -> Option<u64> {
        let slot = self.comps.get(c as usize)?;
        slot.live.then(|| slot.full.count() as u64)
    }

    /// Total component slots ever allocated (live + free) — sizes a
    /// slot-indexed side table.
    pub fn slot_count(&self) -> usize {
        self.comps.len()
    }

    /// Ids of every live component.
    pub fn live_components(&self) -> impl Iterator<Item = u32> + '_ {
        self.comps.iter().enumerate().filter(|(_, s)| s.live).map(|(i, _)| i as u32)
    }

    // ------------------------------------------------------- internals

    fn is_live(&self, c: u32) -> bool {
        self.comps[c as usize].live
    }

    /// Successor components as canonical member-representative sets (for
    /// id-agnostic comparison).
    fn succ_rep_set(&self, c: u32) -> BTreeSet<u32> {
        self.comps[c as usize].succs.iter().map(|&s| self.comps[s as usize].members[0]).collect()
    }

    fn alloc(&mut self) -> u32 {
        let slot = CompSlot {
            live: true,
            members: Vec::new(),
            succs: Vec::new(),
            preds: BTreeSet::new(),
            nontrivial: false,
            full: Arc::new(BitSet::new(0)),
        };
        match self.free.pop() {
            Some(c) => {
                self.comps[c as usize] = slot;
                c
            }
            None => {
                self.comps.push(slot);
                (self.comps.len() - 1) as u32
            }
        }
    }

    /// Installs a freshly found SCC (sorted members) as a new component;
    /// successors / `Full` are left for the caller's recompute sets.
    fn install_component<V: ReachView>(&mut self, view: &V, members: Vec<u32>) -> u32 {
        let nontrivial = members.len() > 1 || {
            let p = members[0];
            view.successors_of(p).contains(&p)
        };
        let c = self.alloc();
        for &p in &members {
            self.comp_of[p as usize] = c;
        }
        let slot = &mut self.comps[c as usize];
        slot.members = members;
        slot.nontrivial = nontrivial;
        c
    }

    /// Retires component `c`: unregisters it from its successors'
    /// predecessor sets and marks every predecessor for successor-list
    /// and `Full` recomputation (they lost a descendant id). Dropping the
    /// slot's `Arc` frees `Full(c)` as soon as no parked extraction holds
    /// a snapshot — the refcounted eager-freeing path.
    fn retire(&mut self, c: u32, succ_fix: &mut BTreeSet<u32>, full_dirty: &mut BTreeSet<u32>) {
        let slot = &mut self.comps[c as usize];
        slot.live = false;
        slot.members = Vec::new();
        slot.full = Arc::new(BitSet::new(0));
        let succs = std::mem::take(&mut slot.succs);
        let preds = std::mem::take(&mut slot.preds);
        for s in succs {
            if self.comps[s as usize].live {
                self.comps[s as usize].preds.remove(&c);
            }
        }
        for pr in preds {
            succ_fix.insert(pr);
            full_dirty.insert(pr);
        }
        self.free.push(c);
    }

    /// Recomputes `succs(c)` from the members' view adjacency and patches
    /// the affected predecessor sets (the diff keeps them exact).
    fn recompute_succs<V: ReachView>(&mut self, view: &V, c: u32) {
        let mut fresh: BTreeSet<u32> = BTreeSet::new();
        for &p in &self.comps[c as usize].members {
            for &w in view.successors_of(p) {
                let cw = self.comp_of[w as usize];
                debug_assert_ne!(cw, DEAD, "view edge into a dead pair");
                if cw != c {
                    fresh.insert(cw);
                }
            }
        }
        let old = std::mem::take(&mut self.comps[c as usize].succs);
        for &s in &old {
            if !fresh.contains(&s) && self.comps[s as usize].live {
                self.comps[s as usize].preds.remove(&c);
            }
        }
        for &s in &fresh {
            self.comps[s as usize].preds.insert(c);
        }
        self.comps[c as usize].succs = fresh.into_iter().collect();
    }

    /// Recomputes `Full(c)` for every component in `dirty`,
    /// successors-first (DFS postorder over the dirty sub-DAG); clean
    /// successors contribute their stored `Full` untouched.
    fn recompute_fulls<V: ReachView>(&mut self, view: &V, dirty: &BTreeSet<u32>) {
        let mut order: Vec<u32> = Vec::with_capacity(dirty.len());
        let mut state: HashMap<u32, u8> = HashMap::new(); // 1 = open, 2 = done
        for &root in dirty {
            if state.contains_key(&root) {
                continue;
            }
            let mut stack: Vec<(u32, usize)> = vec![(root, 0)];
            state.insert(root, 1);
            while let Some(&(c, i)) = stack.last() {
                let succs = &self.comps[c as usize].succs;
                if i < succs.len() {
                    stack.last_mut().expect("nonempty").1 += 1;
                    let s = succs[i];
                    if dirty.contains(&s) && !state.contains_key(&s) {
                        state.insert(s, 1);
                        stack.push((s, 0));
                    }
                } else {
                    stack.pop();
                    state.insert(c, 2);
                    order.push(c);
                }
            }
        }
        for &c in &order {
            let slot = &self.comps[c as usize];
            let mut f = BitSet::new(self.width);
            for &s in &slot.succs {
                f.union_with(&self.comps[s as usize].full);
            }
            for &p in &slot.members {
                f.insert(view.universe_pos(p));
            }
            self.comps[c as usize].full = Arc::new(f);
        }
        self.last_refold = order;
    }

    /// Bounded condensation-DAG reachability from `from` towards `to`
    /// over cached successors + this batch's `extra` insertions. On a
    /// hit, returns every component on a connecting path (the exact
    /// merge set for this edge given the overlay).
    fn probe(&self, from: u32, to: u32, extra: &HashMap<u32, Vec<u32>>, limit: usize) -> Probe {
        let mut seen: BTreeSet<u32> = BTreeSet::new();
        let mut work: Vec<u32> = vec![from];
        seen.insert(from);
        while let Some(c) = work.pop() {
            if seen.len() > limit {
                return Probe::Overflow;
            }
            let slot = &self.comps[c as usize];
            let extras = extra.get(&c).map(|v| v.as_slice()).unwrap_or(&[]);
            for &s in slot.succs.iter().chain(extras) {
                if self.comps[s as usize].live && seen.insert(s) {
                    work.push(s);
                }
            }
        }
        if !seen.contains(&to) {
            return Probe::NoCycle;
        }
        // Comps on from ⇝ to paths: reverse reachability from `to`
        // restricted to the forward closure.
        let mut radj: HashMap<u32, Vec<u32>> = HashMap::new();
        for &c in &seen {
            let slot = &self.comps[c as usize];
            let extras = extra.get(&c).map(|v| v.as_slice()).unwrap_or(&[]);
            for &s in slot.succs.iter().chain(extras) {
                if seen.contains(&s) {
                    radj.entry(s).or_default().push(c);
                }
            }
        }
        let mut merge: BTreeSet<u32> = BTreeSet::new();
        let mut work: Vec<u32> = vec![to];
        merge.insert(to);
        while let Some(c) = work.pop() {
            for &p in radj.get(&c).map(|v| v.as_slice()).unwrap_or(&[]) {
                if merge.insert(p) {
                    work.push(p);
                }
            }
        }
        debug_assert!(merge.contains(&from), "from reaches to, so from is on a path");
        Probe::Cycle(merge)
    }
}

enum Probe {
    Overflow,
    NoCycle,
    Cycle(BTreeSet<u32>),
}

/// Iterative Tarjan over the subgraph induced by `in_region`, visiting
/// `roots` in order. Returns SCCs (members sorted) in emission order —
/// reverse topological within the region.
fn tarjan_region<V: Successors>(
    view: &V,
    roots: &[u32],
    in_region: impl Fn(u32) -> bool,
) -> Vec<Vec<u32>> {
    let mut next = 0u32;
    let mut index: HashMap<u32, u32> = HashMap::new();
    let mut low: HashMap<u32, u32> = HashMap::new();
    let mut on_stack: BTreeSet<u32> = BTreeSet::new();
    let mut stack: Vec<u32> = Vec::new();
    let mut frames: Vec<(u32, usize)> = Vec::new();
    let mut out: Vec<Vec<u32>> = Vec::new();

    for &root in roots {
        if index.contains_key(&root) {
            continue;
        }
        index.insert(root, next);
        low.insert(root, next);
        next += 1;
        stack.push(root);
        on_stack.insert(root);
        frames.push((root, 0));
        while let Some(&(v, i)) = frames.last() {
            let succs = view.successors_of(v);
            if i < succs.len() {
                frames.last_mut().expect("nonempty").1 += 1;
                let w = succs[i];
                if !in_region(w) {
                    continue;
                }
                match index.get(&w).copied() {
                    None => {
                        index.insert(w, next);
                        low.insert(w, next);
                        next += 1;
                        stack.push(w);
                        on_stack.insert(w);
                        frames.push((w, 0));
                    }
                    Some(wi) => {
                        if on_stack.contains(&w) {
                            let lv = low[&v].min(wi);
                            low.insert(v, lv);
                        }
                    }
                }
            } else {
                frames.pop();
                if let Some(&(p, _)) = frames.last() {
                    let lp = low[&p].min(low[&v]);
                    low.insert(p, lp);
                }
                if low[&v] == index[&v] {
                    let mut scc = Vec::new();
                    loop {
                        let w = stack.pop().expect("tarjan stack holds the SCC");
                        on_stack.remove(&w);
                        scc.push(w);
                        if w == v {
                            break;
                        }
                    }
                    scc.sort_unstable();
                    out.push(scc);
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Toy mutable pair graph implementing [`ReachView`] with identity
    /// universe projection.
    #[derive(Clone)]
    struct VecView {
        adj: Vec<Vec<u32>>,
        width: usize,
    }

    impl Successors for VecView {
        fn node_count(&self) -> usize {
            self.adj.len()
        }
        fn successors_of(&self, v: u32) -> &[u32] {
            &self.adj[v as usize]
        }
    }

    impl ReachView for VecView {
        fn universe_size(&self) -> usize {
            self.width
        }
        fn universe_pos(&self, c: u32) -> usize {
            c as usize
        }
    }

    /// Strict-reach oracle: BFS from the successors of `s` over alive
    /// nodes.
    fn strict_reach_bfs(view: &VecView, alive: &[bool], s: u32) -> BitSet {
        let mut set = BitSet::new(view.width);
        let mut seen: BTreeSet<u32> = BTreeSet::new();
        let mut work: Vec<u32> = view.adj[s as usize].clone();
        for &w in &work {
            seen.insert(w);
        }
        while let Some(p) = work.pop() {
            set.insert(p as usize);
            for &w in &view.adj[p as usize] {
                if alive[w as usize] && seen.insert(w) {
                    work.push(w);
                }
            }
        }
        set
    }

    fn assert_consistent(st: &CondensationState, view: &VecView, alive: &[bool]) {
        st.validate(view, |p| alive[p as usize]).expect("maintained ≡ from-scratch");
        for p in 0..view.adj.len() as u32 {
            if alive[p as usize] {
                let got = st.handle_for(p).resolve(view.width);
                let want = strict_reach_bfs(view, alive, p);
                assert_eq!(got, want, "strict reach of pair {p}");
            }
        }
    }

    struct Harness {
        view: VecView,
        alive: Vec<bool>,
        st: CondensationState,
    }

    impl Harness {
        fn new(n: usize, edges: &[(u32, u32)]) -> Self {
            let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
            for &(a, b) in edges {
                if !adj[a as usize].contains(&b) {
                    adj[a as usize].push(b);
                }
            }
            for l in &mut adj {
                l.sort_unstable();
            }
            let view = VecView { adj, width: n };
            let alive = vec![true; n];
            let st = CondensationState::build(&view, |_| true);
            Harness { view, alive, st }
        }

        /// Applies a batch described as ops, mirroring the
        /// `DynMatchGraph::apply_pair_delta` contract, then checks
        /// differentially. Returns the maintain result.
        fn batch(&mut self, ops: &[Op]) -> Result<MaintainStats, MaintainError> {
            let mut delta = PairDelta::default();
            for op in ops {
                match *op {
                    Op::Kill(p) => {
                        if !self.alive[p as usize] {
                            continue;
                        }
                        self.alive[p as usize] = false;
                        self.view.adj[p as usize].clear();
                        for l in &mut self.view.adj {
                            l.retain(|&w| w != p);
                        }
                        delta.died.push(p);
                        delta.added.retain(|&(a, b)| a != p && b != p);
                        delta.removed.retain(|&(a, b)| a != p && b != p);
                    }
                    Op::Revive(p) => {
                        if self.alive[p as usize] {
                            continue;
                        }
                        self.alive[p as usize] = true;
                        delta.born.push(p);
                    }
                    Op::AddEdge(a, b) => {
                        if !self.alive[a as usize] || !self.alive[b as usize] {
                            continue;
                        }
                        let l = &mut self.view.adj[a as usize];
                        if let Err(i) = l.binary_search(&b) {
                            l.insert(i, b);
                            delta.added.push((a, b));
                        }
                    }
                    Op::RemoveEdge(a, b) => {
                        if !self.alive[a as usize] || !self.alive[b as usize] {
                            continue;
                        }
                        let l = &mut self.view.adj[a as usize];
                        if let Ok(i) = l.binary_search(&b) {
                            l.remove(i);
                            delta.removed.push((a, b));
                        }
                    }
                }
            }
            delta.died.sort_unstable();
            delta.died.dedup();
            delta.born.retain(|&p| self.alive[p as usize]);
            // Tiny test graphs: a legitimate merge can cover most pairs,
            // so the harness never region-falls-back (the policy test
            // drives the thresholds explicitly).
            let lax = CondPolicy { probe_limit: 4096, max_region_fraction: 1.0 };
            let r = self.st.apply(&self.view, &delta, &lax);
            if r.is_err() {
                self.st = CondensationState::build(&self.view, |p| self.alive[p as usize]);
            }
            r
        }

        fn check(&self) {
            assert_consistent(&self.st, &self.view, &self.alive);
        }
    }

    #[derive(Clone, Copy)]
    enum Op {
        Kill(u32),
        Revive(u32),
        AddEdge(u32, u32),
        RemoveEdge(u32, u32),
    }

    /// A 4-cycle with a tail: breaking the cycle splits one SCC into
    /// singletons; re-closing it merges them back — both within a
    /// bounded region while the tail keeps its component untouched.
    #[test]
    fn cycle_break_and_reclose() {
        let mut h = Harness::new(6, &[(0, 1), (1, 2), (2, 3), (3, 0), (3, 4), (4, 5)]);
        h.check();
        let s = h.batch(&[Op::RemoveEdge(2, 3)]).expect("bounded split");
        assert_eq!(s.region_pairs, 4, "only the cycle is re-Tarjaned");
        h.check();
        let s = h.batch(&[Op::AddEdge(2, 3)]).expect("bounded merge");
        assert!(s.region_pairs >= 4, "merge set covers the reclosed cycle");
        h.check();
    }

    /// Split and remerge in a single batch: the removed edge dirties the
    /// component, the added edge re-closes the cycle, and the one region
    /// re-Tarjan sees the final shape.
    #[test]
    fn split_then_remerge_single_batch() {
        let mut h = Harness::new(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        h.batch(&[Op::RemoveEdge(1, 2), Op::AddEdge(1, 2)]).expect("maintained");
        h.check();
        // And a genuine reshape: break 1→2, route 1→0 stays, add 2→1.
        h.batch(&[Op::RemoveEdge(1, 2), Op::AddEdge(2, 1)]).expect("maintained");
        h.check();
    }

    /// Killing a component's last member tombstones it; ancestors'
    /// bitsets shed the dead data node.
    #[test]
    fn tombstoned_source_component() {
        let mut h = Harness::new(4, &[(0, 1), (1, 2), (2, 3)]);
        h.batch(&[Op::Kill(3)]).expect("maintained");
        h.check();
        assert!(!h.st.handle_for(0).resolve(4).contains(3), "ancestors shed the dead node");
        h.batch(&[Op::Revive(3), Op::AddEdge(2, 3), Op::AddEdge(3, 1)]).expect("maintained");
        h.check();
    }

    /// A death inside a shared SCC splits it without touching siblings.
    #[test]
    fn member_death_splits_scc() {
        // Two 3-cycles sharing nothing; kill one member of the first.
        let mut h = Harness::new(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        h.batch(&[Op::Kill(1)]).expect("maintained");
        h.check();
    }

    /// Merging across a chain of components via one closing edge.
    #[test]
    fn chain_merge_via_back_edge() {
        let mut h = Harness::new(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        h.batch(&[Op::AddEdge(4, 0)]).expect("maintained");
        h.check();
        let st = &h.st;
        assert_eq!(st.component_count(), 1, "the whole chain merged");
    }

    /// Probe and region limits trip the documented fallbacks.
    #[test]
    fn policy_overflows_report_fallback() {
        let mut h = Harness::new(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (4, 5)]);
        let tight = CondPolicy { probe_limit: 2, max_region_fraction: 1.0 };
        let mut delta = PairDelta::default();
        h.view.adj[5].push(0);
        delta.added.push((5, 0));
        assert_eq!(h.st.apply(&h.view, &delta, &tight), Err(MaintainError::ProbeOverflow));
        h.st = CondensationState::build(&h.view, |_| true);
        h.check();

        let cramped = CondPolicy { probe_limit: 4096, max_region_fraction: 0.1 };
        let mut delta = PairDelta::default();
        h.view.adj[2].retain(|&w| w != 3);
        delta.removed.push((2, 3));
        assert_eq!(h.st.apply(&h.view, &delta, &cramped), Err(MaintainError::RegionOverflow));
    }

    /// Randomized differential soak: arbitrary interleavings of kills,
    /// revivals and edge toggles stay equivalent to a from-scratch
    /// condensation and the BFS strict-reach oracle.
    #[test]
    fn randomized_differential_soak() {
        let mut seed = 0x5EEDu64;
        let mut rng = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 33) as u32
        };
        let n = 18u32;
        let mut edges = Vec::new();
        for _ in 0..30 {
            let (a, b) = (rng() % n, rng() % n);
            edges.push((a, b));
        }
        let mut h = Harness::new(n as usize, &edges);
        h.check();
        for _ in 0..60 {
            let mut ops = Vec::new();
            for _ in 0..(1 + rng() % 5) {
                let (a, b) = (rng() % n, rng() % n);
                ops.push(match rng() % 8 {
                    0 => Op::Kill(a),
                    1 => Op::Revive(a),
                    2..=4 => Op::AddEdge(a, b),
                    _ => Op::RemoveEdge(a, b),
                });
            }
            // Revivals must wire their edges explicitly (born pairs have
            // none until added).
            let _ = h.batch(&ops);
            h.check();
        }
    }
}
