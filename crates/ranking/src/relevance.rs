//! Relevance functions `δr` and the generalized `δ*r` of Section 3.4.
//!
//! A generalized relevance function is any *monotonically increasing*,
//! PTIME-computable function of the relevant set `R*(u,v)` and the
//! descendant structure `R(u)` of the query node. The paper lists (Table,
//! Section 3.4):
//!
//! | function | formulation |
//! |---|---|
//! | Relevant-set size (default δr) | `\|R*(u,v)\|` |
//! | Preference attachment | `\|R(u)\| · \|R*(u,v)\|` |
//! | Common neighbours | `\|M(Q,G,R(u)) ∩ R*(u,v)\|` |
//! | Jaccard coefficient | `\|M(Q,G,R(u)) ∩ R*(u,v)\| / \|M(Q,G,R(u)) ∪ R*(u,v)\|` |
//!
//! where `R(u)` is the set of query nodes reachable from `u` and
//! `M(Q,G,R(u))` the matches of those nodes. Monotonicity in `|R*|` is what
//! lets the early-termination machinery map `l`/`h` bounds through the
//! function (Proposition 4).

use gpm_graph::BitSet;

/// Evaluation context for one output match.
#[derive(Debug, Clone, Copy)]
pub struct RelevanceCtx<'a> {
    /// The match's relevant set over the candidate universe.
    pub r_set: &'a BitSet,
    /// `|R(u)|`: number of query nodes strictly reachable from `uo`.
    pub desc_query_nodes: usize,
    /// `M(Q,G,R(uo))`: all matches of reachable query nodes, over the same
    /// universe.
    pub desc_matches: &'a BitSet,
}

/// A generalized relevance function `δ*r`.
pub trait RelevanceFn: Send + Sync {
    /// Human-readable name (for experiment output).
    fn name(&self) -> &'static str;

    /// Exact score of a match.
    fn score(&self, ctx: &RelevanceCtx<'_>) -> f64;

    /// Maps a lower bound on `|R*|` to a lower bound on the score
    /// (monotonicity makes this sound).
    fn lower_from_count(&self, count: u64, ctx_free: &StructuralCtx) -> f64;

    /// Maps an upper bound on `|R*|` to an upper bound on the score.
    fn upper_from_count(&self, count: u64, ctx_free: &StructuralCtx) -> f64;
}

/// The parts of the context that do not depend on a particular match.
#[derive(Debug, Clone, Copy)]
pub struct StructuralCtx {
    /// `|R(uo)|`.
    pub desc_query_nodes: usize,
    /// `|M(Q,G,R(uo))|` (or an upper bound thereof before it is known).
    pub desc_match_count: u64,
}

/// `δr(u,v) = |R(u,v)|` — the paper's default.
#[derive(Debug, Clone, Copy, Default)]
pub struct RelevantSetSize;

impl RelevanceFn for RelevantSetSize {
    fn name(&self) -> &'static str {
        "relevant-set-size"
    }
    fn score(&self, ctx: &RelevanceCtx<'_>) -> f64 {
        ctx.r_set.count() as f64
    }
    fn lower_from_count(&self, count: u64, _: &StructuralCtx) -> f64 {
        count as f64
    }
    fn upper_from_count(&self, count: u64, _: &StructuralCtx) -> f64 {
        count as f64
    }
}

/// Preference attachment: `|R(u)| · |R*(u,v)|`.
#[derive(Debug, Clone, Copy, Default)]
pub struct PreferenceAttachment;

impl RelevanceFn for PreferenceAttachment {
    fn name(&self) -> &'static str {
        "preference-attachment"
    }
    fn score(&self, ctx: &RelevanceCtx<'_>) -> f64 {
        (ctx.desc_query_nodes as u64 * ctx.r_set.count() as u64) as f64
    }
    fn lower_from_count(&self, count: u64, s: &StructuralCtx) -> f64 {
        (s.desc_query_nodes as u64 * count) as f64
    }
    fn upper_from_count(&self, count: u64, s: &StructuralCtx) -> f64 {
        (s.desc_query_nodes as u64 * count) as f64
    }
}

/// Common neighbours: `|M(Q,G,R(u)) ∩ R*(u,v)|`.
#[derive(Debug, Clone, Copy, Default)]
pub struct CommonNeighbors;

impl RelevanceFn for CommonNeighbors {
    fn name(&self) -> &'static str {
        "common-neighbors"
    }
    fn score(&self, ctx: &RelevanceCtx<'_>) -> f64 {
        ctx.r_set.intersection_count(ctx.desc_matches) as f64
    }
    fn lower_from_count(&self, count: u64, s: &StructuralCtx) -> f64 {
        // R*(u,v) ⊆ M(Q,G,R(u)) for match-based relevant sets, so a lower
        // bound on |R*| lower-bounds the intersection; capping by |M| keeps
        // the bound sound for arbitrary count inputs too.
        count.min(s.desc_match_count) as f64
    }
    fn upper_from_count(&self, count: u64, s: &StructuralCtx) -> f64 {
        count.min(s.desc_match_count) as f64
    }
}

/// Jaccard coefficient: `|M ∩ R*| / |M ∪ R*|`.
#[derive(Debug, Clone, Copy, Default)]
pub struct JaccardCoefficient;

impl RelevanceFn for JaccardCoefficient {
    fn name(&self) -> &'static str {
        "jaccard-coefficient"
    }
    fn score(&self, ctx: &RelevanceCtx<'_>) -> f64 {
        let union = ctx.r_set.union_count(ctx.desc_matches);
        if union == 0 {
            return 0.0;
        }
        ctx.r_set.intersection_count(ctx.desc_matches) as f64 / union as f64
    }
    fn lower_from_count(&self, count: u64, s: &StructuralCtx) -> f64 {
        // R* ⊆ M for match-based relevant sets: score = |R*| / |M|; capping
        // by |M| keeps the bound sound for arbitrary count inputs.
        if s.desc_match_count == 0 {
            0.0
        } else {
            count.min(s.desc_match_count) as f64 / s.desc_match_count as f64
        }
    }
    fn upper_from_count(&self, count: u64, s: &StructuralCtx) -> f64 {
        if s.desc_match_count == 0 {
            0.0
        } else {
            (count.min(s.desc_match_count) as f64) / s.desc_match_count as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ctx<'a>(r: &'a BitSet, m: &'a BitSet) -> RelevanceCtx<'a> {
        RelevanceCtx { r_set: r, desc_query_nodes: 3, desc_matches: m }
    }

    #[test]
    fn scores() {
        let r = BitSet::from_iter(10, [0, 1, 2, 3]);
        let m = BitSet::from_iter(10, [0, 1, 2, 3, 4, 5, 6, 7]);
        let c = ctx(&r, &m);
        assert_eq!(RelevantSetSize.score(&c), 4.0);
        assert_eq!(PreferenceAttachment.score(&c), 12.0);
        assert_eq!(CommonNeighbors.score(&c), 4.0);
        assert!((JaccardCoefficient.score(&c) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn monotone_in_count() {
        let s = StructuralCtx { desc_query_nodes: 3, desc_match_count: 8 };
        for f in [
            &RelevantSetSize as &dyn RelevanceFn,
            &PreferenceAttachment,
            &CommonNeighbors,
            &JaccardCoefficient,
        ] {
            let mut prev_l = f64::MIN;
            let mut prev_u = f64::MIN;
            for count in 0..=10u64 {
                let l = f.lower_from_count(count, &s);
                let u = f.upper_from_count(count, &s);
                assert!(l >= prev_l, "{}: lower not monotone", f.name());
                assert!(u >= prev_u, "{}: upper not monotone", f.name());
                assert!(u >= l, "{}: upper < lower", f.name());
                prev_l = l;
                prev_u = u;
            }
        }
    }

    #[test]
    fn bounds_bracket_scores() {
        let r = BitSet::from_iter(10, [0, 1, 2]);
        let m = BitSet::from_iter(10, [0, 1, 2, 3, 4]);
        let c = ctx(&r, &m);
        let s = StructuralCtx { desc_query_nodes: 3, desc_match_count: 5 };
        let count = r.count() as u64;
        for f in [
            &RelevantSetSize as &dyn RelevanceFn,
            &PreferenceAttachment,
            &CommonNeighbors,
            &JaccardCoefficient,
        ] {
            let exact = f.score(&c);
            assert!(f.lower_from_count(count, &s) <= exact + 1e-12, "{}", f.name());
            assert!(f.upper_from_count(count, &s) >= exact - 1e-12, "{}", f.name());
        }
    }

    #[test]
    fn jaccard_degenerate() {
        let e = BitSet::new(4);
        let c = ctx(&e, &e);
        assert_eq!(JaccardCoefficient.score(&c), 0.0);
        let s = StructuralCtx { desc_query_nodes: 0, desc_match_count: 0 };
        assert_eq!(JaccardCoefficient.upper_from_count(3, &s), 0.0);
        assert_eq!(JaccardCoefficient.lower_from_count(3, &s), 0.0);
    }
}
