//! The diversification objective `F(S)` and its derived forms.
//!
//! Section 3.3, for a k-element match set `S`:
//!
//! ```text
//! F(S) = (1-λ) · Σ_{v ∈ S} δ'r(uo, v)  +  (2λ/(k-1)) · Σ_{i<j} δd(vi, vj)
//! ```
//!
//! with `δ'r = δr / Cuo`, where `Cuo` is the total number of candidates of
//! query nodes reachable from `uo` (Example 6: 3 DBs + 4 PRGs + 4 STs = 11).
//! The diversity term is scaled by `2λ/(k-1)` because there are `k(k-1)/2`
//! pair distances against `k` relevance terms. `F` is **not** submodular
//! (Section 3.4 remark), which is why topKDP is 2- but not
//! `(1-1/e)`-approximable here.
//!
//! Derived forms:
//! * `F'(v1,v2) = (1-λ)/(k-1)·(δ'r(v1)+δ'r(v2)) + 2λ/(k-1)·δd(v1,v2)` — the
//!   pairwise score the `TopKDiv` greedy maximizes (its sum over a perfect
//!   matching telescopes to `F(S)`, the MAXDISP reduction of Section 5.1);
//! * `F''` — `F` evaluated with partial information (`v.l/Cuo` for
//!   relevance, partial relevant sets for distance), used by `TopKDH`.

use gpm_pattern::{PNodeId, Pattern};
use gpm_simulation::CandidateSpace;

/// `Cuo` over an arbitrary candidate-count source: Σ over query nodes `u'`
/// strictly reachable from `uo` of `|can(u')|` (with multiplicity — two
/// query nodes sharing candidates count twice, matching Example 6's
/// `3 + 4 + 4 = 11`).
///
/// This is the **single** definition of the normalizer; the static pipeline
/// passes a [`CandidateSpace`] lookup (via [`c_uo`]) and the dynamic path
/// passes `IncSimState::candidate_count`, so the two can never drift.
pub fn c_uo_with(q: &Pattern, mut candidate_count: impl FnMut(PNodeId) -> usize) -> u64 {
    q.reachable_from_output().iter().map(|u| candidate_count(u as PNodeId) as u64).sum()
}

/// `Cuo` from a static [`CandidateSpace`] (see [`c_uo_with`]).
pub fn c_uo(q: &Pattern, space: &CandidateSpace) -> u64 {
    c_uo_with(q, |u| space.candidate_count(u))
}

/// The bi-criteria objective with fixed `λ`, `k` and normalizer.
#[derive(Debug, Clone, Copy)]
pub struct Objective {
    /// Trade-off `λ ∈ [0,1]`; 0 = pure relevance, 1 = pure diversity.
    pub lambda: f64,
    /// Target result size `k`.
    pub k: usize,
    /// The normalizer `Cuo` (≥ 1 to keep `δ'r` defined; an empty reachable
    /// set yields 1 so that `δ'r = δr = 0` stays harmless).
    pub c_uo: u64,
}

impl Objective {
    /// Builds an objective, clamping `λ` into `[0,1]` and guarding `Cuo`.
    pub fn new(lambda: f64, k: usize, c_uo_val: u64) -> Self {
        Objective { lambda: lambda.clamp(0.0, 1.0), k: k.max(1), c_uo: c_uo_val.max(1) }
    }

    /// Convenience constructor computing `Cuo` from the pattern.
    pub fn for_pattern(lambda: f64, k: usize, q: &Pattern, space: &CandidateSpace) -> Self {
        Self::new(lambda, k, c_uo(q, space))
    }

    /// `δ'r = δr / Cuo`.
    #[inline]
    pub fn normalized_relevance(&self, delta_r: f64) -> f64 {
        delta_r / self.c_uo as f64
    }

    /// Diversity scale `2λ/(k-1)`; 0 when `k = 1` (no pairs to diversify).
    #[inline]
    pub fn diversity_scale(&self) -> f64 {
        if self.k <= 1 {
            0.0
        } else {
            2.0 * self.lambda / (self.k - 1) as f64
        }
    }

    /// `F(S)` from raw relevance values `δr` and a pairwise distance oracle
    /// over indices `0..rel.len()`.
    pub fn f_score(&self, rel: &[f64], mut dist: impl FnMut(usize, usize) -> f64) -> f64 {
        let rel_term: f64 =
            rel.iter().map(|&r| self.normalized_relevance(r)).sum::<f64>() * (1.0 - self.lambda);
        let scale = self.diversity_scale();
        let mut div_term = 0.0;
        if scale > 0.0 {
            for i in 0..rel.len() {
                for j in (i + 1)..rel.len() {
                    div_term += dist(i, j);
                }
            }
            div_term *= scale;
        }
        rel_term + div_term
    }

    /// `F'(v1, v2)` — the pairwise greedy score of `TopKDiv` (Section 5.1).
    /// `δr` values are raw (un-normalized); `d` is `δd(v1,v2)`.
    pub fn f_pair(&self, delta_r1: f64, delta_r2: f64, d: f64) -> f64 {
        let k1 = (self.k.max(2) - 1) as f64;
        (1.0 - self.lambda) / k1
            * (self.normalized_relevance(delta_r1) + self.normalized_relevance(delta_r2))
            + 2.0 * self.lambda / k1 * d
    }

    /// Incremental helper for greedy swaps: `F` restricted to a set given as
    /// parallel arrays of normalized relevances and a distance oracle; used
    /// by `TopKDH`'s `F''` (same formula, partial inputs).
    pub fn f_from_normalized(
        &self,
        norm_rel: &[f64],
        mut dist: impl FnMut(usize, usize) -> f64,
    ) -> f64 {
        let rel_term: f64 = norm_rel.iter().sum::<f64>() * (1.0 - self.lambda);
        let scale = self.diversity_scale();
        let mut div_term = 0.0;
        if scale > 0.0 {
            for i in 0..norm_rel.len() {
                for j in (i + 1)..norm_rel.len() {
                    div_term += dist(i, j);
                }
            }
            div_term *= scale;
        }
        rel_term + div_term
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Example 6 / Fig. 1 numbers: Cuo = 11, k = 2, δr: PM1=4, PM2=8,
    /// PM3=PM4=6; δd(1,2)=10/11, δd(2,3)=1/4, δd(1,3)=1.
    fn obj(lambda: f64) -> Objective {
        Objective::new(lambda, 2, 11)
    }

    #[test]
    fn example6_lambda_zero_prefers_relevance() {
        // λ=0 → {PM2,PM3} (δr total 14) beats {PM1,PM2} (12) and {PM1,PM3} (10).
        let o = obj(0.0);
        let f23 = o.f_score(&[8.0, 6.0], |_, _| 0.25);
        let f12 = o.f_score(&[4.0, 8.0], |_, _| 10.0 / 11.0);
        let f13 = o.f_score(&[4.0, 6.0], |_, _| 1.0);
        assert!(f23 > f12 && f12 > f13);
        assert!((f23 - 14.0 / 11.0).abs() < 1e-12);
    }

    #[test]
    fn example6_lambda_one_prefers_diversity() {
        let o = obj(1.0);
        let f23 = o.f_score(&[8.0, 6.0], |_, _| 0.25);
        let f12 = o.f_score(&[4.0, 8.0], |_, _| 10.0 / 11.0);
        let f13 = o.f_score(&[4.0, 6.0], |_, _| 1.0);
        assert!(f13 > f12 && f12 > f23);
        assert_eq!(f13, 2.0);
    }

    #[test]
    fn example6_crossover_thresholds() {
        // {PM1,PM2} beats {PM2,PM3} exactly when λ > 4/33.
        let check = |lambda: f64| {
            let o = obj(lambda);
            let f12 = o.f_score(&[4.0, 8.0], |_, _| 10.0 / 11.0);
            let f23 = o.f_score(&[8.0, 6.0], |_, _| 0.25);
            let f13 = o.f_score(&[4.0, 6.0], |_, _| 1.0);
            (f12, f23, f13)
        };
        let t = 4.0 / 33.0;
        let (f12, f23, _) = check(t - 1e-6);
        assert!(f23 > f12, "below 4/33, {{PM2,PM3}} wins");
        let (f12, f23, f13) = check(t + 1e-6);
        assert!(f12 > f23 && f12 > f13, "just above 4/33, {{PM1,PM2}} wins");
        // At λ ≥ 0.5, {PM1,PM3} is best (Example 6(e)).
        let (f12, f23, f13) = check(0.5 + 1e-6);
        assert!(f13 > f12 && f13 > f23);
    }

    #[test]
    fn example9_pairwise_score() {
        // F'(PM1,PM3) at λ=0.5, k=2: 0.5·(4/11 + 6/11) + 1·1 = 16/11 ≈ 1.45.
        let o = obj(0.5);
        let fp = o.f_pair(4.0, 6.0, 1.0);
        assert!((fp - 16.0 / 11.0).abs() < 1e-12);
        // And it maximizes over the candidate pairs of Example 9. (At λ=0.5
        // exactly, {PM1,PM2} *ties* with {PM1,PM3} at 16/11 — the paper
        // reports {PM1,PM3} as "the" maximum; both are optima.)
        let f12 = o.f_pair(4.0, 8.0, 10.0 / 11.0);
        let f23 = o.f_pair(8.0, 6.0, 0.25);
        let f34 = o.f_pair(6.0, 6.0, 0.0);
        assert!((fp - f12).abs() < 1e-12, "documented tie at λ = 0.5");
        assert!(fp > f23 && fp > f34);
    }

    #[test]
    fn example10_partial_f() {
        // TopKDH at λ=0.1 with partial values: 0.9·(13/11) + 0.2·(1/7) ≈ 1.1.
        let o = Objective::new(0.1, 2, 11);
        let f = o.f_from_normalized(&[7.0 / 11.0, 6.0 / 11.0], |_, _| 1.0 / 7.0);
        assert!((f - (0.9 * 13.0 / 11.0 + 0.2 / 7.0)).abs() < 1e-12);
        assert!((f - 1.1).abs() < 0.01);
    }

    #[test]
    fn degenerate_k() {
        let o = Objective::new(0.7, 1, 10);
        assert_eq!(o.diversity_scale(), 0.0);
        let f = o.f_score(&[5.0], |_, _| panic!("no pairs with k=1"));
        assert!((f - 0.3 * 0.5).abs() < 1e-12);
        // Cuo guard.
        let o = Objective::new(0.5, 2, 0);
        assert_eq!(o.c_uo, 1);
        // λ clamp.
        assert_eq!(Objective::new(7.0, 2, 1).lambda, 1.0);
        assert_eq!(Objective::new(-7.0, 2, 1).lambda, 0.0);
    }
}
