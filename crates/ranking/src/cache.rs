//! Relevant-set cache with partial invalidation.
//!
//! The static pipeline rebuilds [`crate::relevant_set::RelevantSets`] from
//! scratch per query. Under graph deltas most output matches keep their
//! relevant set, so the dynamic path caches one bitset per output match —
//! over **data-node ids** rather than a per-query compact universe, because
//! node ids are stable across updates while universes are not — and the
//! maintenance layer invalidates and recomputes only the dirty entries.
//!
//! Relevance and Jaccard distance values are identical to the
//! universe-encoded ones (both encodings are bijective on the same sets),
//! so every ranking quantity derived from this cache matches the static
//! pipeline bit for bit.

use std::collections::BTreeMap;

use gpm_graph::{BitSet, NodeId};

/// One cached relevant set with its popcount `δr` stored beside the bits:
/// relevance queries — `relevances()` in particular, which every `apply`
/// re-ranks from — must not re-popcount `O(|V|/64)` words per match.
#[derive(Debug, Clone)]
struct CachedSet {
    bits: BitSet,
    /// `bits.count()`, computed once at [`RelevanceCache::upsert`]. Width
    /// migrations preserve membership, so the count never goes stale.
    delta_r: u64,
}

/// Cached relevant sets `R(uo, v)` keyed by output match, bitsets over
/// data-node ids.
#[derive(Debug, Clone, Default)]
pub struct RelevanceCache {
    sets: BTreeMap<NodeId, CachedSet>,
    /// Bit width of the stored sets (≥ graph node count; grows by
    /// headroom-rounding so node additions rarely force a migration).
    width: usize,
}

/// Round a width up with headroom so repeated node additions amortize.
fn padded(width: usize) -> usize {
    (width + 256).next_multiple_of(256)
}

impl RelevanceCache {
    /// Empty cache sized for a graph of `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        RelevanceCache { sets: BTreeMap::new(), width: padded(node_count) }
    }

    /// Current bit width.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Ensures sets can hold bit `node_count - 1`, migrating every stored
    /// set when the width grows (rare: widths are padded).
    pub fn ensure_width(&mut self, node_count: usize) {
        if node_count <= self.width {
            return;
        }
        let new_width = padded(node_count);
        for entry in self.sets.values_mut() {
            let mut bigger = BitSet::new(new_width);
            for b in entry.bits.iter() {
                bigger.insert(b);
            }
            entry.bits = bigger;
        }
        self.width = new_width;
    }

    /// Inserts or replaces the relevant set of `v`, recording its popcount.
    pub fn upsert(&mut self, v: NodeId, bits: impl IntoIterator<Item = usize>) {
        let bits = BitSet::from_iter(self.width, bits);
        let delta_r = bits.count() as u64;
        self.sets.insert(v, CachedSet { bits, delta_r });
    }

    /// Inserts or replaces the relevant set of `v` from an already-built
    /// bitset — the zero-copy path the shared reach engine feeds (its DP
    /// emits node-id bitsets at exactly this cache's width, so no
    /// round-trip through a sorted id list is needed). A set built at a
    /// stale width is migrated bit by bit instead of stored.
    pub fn upsert_bits(&mut self, v: NodeId, bits: BitSet) {
        if bits.capacity() != self.width {
            return self.upsert(v, &bits);
        }
        let delta_r = bits.count() as u64;
        self.sets.insert(v, CachedSet { bits, delta_r });
    }

    /// Drops the entry of `v` (the match disappeared).
    pub fn remove(&mut self, v: NodeId) -> bool {
        self.sets.remove(&v).is_some()
    }

    /// Drops every entry, keeping the width.
    pub fn clear(&mut self) {
        self.sets.clear();
    }

    /// `true` iff `v` has a cached set.
    pub fn contains(&self, v: NodeId) -> bool {
        self.sets.contains_key(&v)
    }

    /// Number of cached matches.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// `true` when nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Cached matches, ascending by node id (the order
    /// [`crate::relevant_set::RelevantSets::matches`] uses).
    pub fn matches(&self) -> Vec<NodeId> {
        self.sets.keys().copied().collect()
    }

    /// `δr(uo, v)` from the cache — the stored popcount, no bit scan.
    pub fn relevance_of(&self, v: NodeId) -> Option<u64> {
        self.sets.get(&v).map(|s| s.delta_r)
    }

    /// The cached set of `v`.
    pub fn set_of(&self, v: NodeId) -> Option<&BitSet> {
        self.sets.get(&v).map(|s| &s.bits)
    }

    /// Jaccard distance `δd` between two cached matches.
    pub fn distance(&self, a: NodeId, b: NodeId) -> Option<f64> {
        Some(self.sets.get(&a)?.bits.jaccard_distance(&self.sets.get(&b)?.bits))
    }

    /// `(node, δr)` for every cached match, ascending by node id. Reads the
    /// popcounts stored at `upsert`, so a query is `O(matches)` instead of
    /// `O(matches · width/64)`.
    pub fn relevances(&self) -> impl Iterator<Item = (NodeId, u64)> + '_ {
        self.sets.iter().map(|(&v, s)| (v, s.delta_r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upsert_query_remove() {
        let mut c = RelevanceCache::new(10);
        c.upsert(3, [1usize, 2, 5]);
        c.upsert(7, [2usize, 5, 6, 9]);
        assert_eq!(c.relevance_of(3), Some(3));
        assert_eq!(c.relevance_of(7), Some(4));
        assert_eq!(c.matches(), vec![3, 7]);
        // |∩| = 2, |∪| = 5 → δd = 1 - 2/5.
        assert!((c.distance(3, 7).unwrap() - 0.6).abs() < 1e-12);
        assert!(c.remove(3));
        assert!(!c.remove(3));
        assert_eq!(c.len(), 1);
        assert_eq!(c.relevance_of(3), None);
    }

    #[test]
    fn stored_popcount_tracks_set_lifecycle() {
        // The stored δr must agree with a fresh popcount of the stored bits
        // after every mutation: upsert, overwrite, remove, width migration.
        let mut c = RelevanceCache::new(8);
        let check = |c: &RelevanceCache| {
            for (v, r) in c.relevances() {
                assert_eq!(Some(r), c.set_of(v).map(|s| s.count() as u64), "match {v}");
                assert_eq!(c.relevance_of(v), Some(r));
            }
        };
        c.upsert(0, [1usize, 2, 3]);
        c.upsert(5, [0usize, 7]);
        check(&c);
        c.upsert(0, [4usize]); // overwrite shrinks δr 3 → 1
        assert_eq!(c.relevance_of(0), Some(1));
        check(&c);
        let w = c.width();
        c.ensure_width(w + 1); // migration must carry the counts over
        assert_eq!(c.relevance_of(0), Some(1));
        assert_eq!(c.relevance_of(5), Some(2));
        check(&c);
        c.upsert(9, [w + 100]); // a bit only representable post-growth
        assert_eq!(c.relevance_of(9), Some(1));
        assert!(c.remove(5));
        assert_eq!(c.relevance_of(5), None);
        check(&c);
    }

    #[test]
    fn width_growth_preserves_sets() {
        let mut c = RelevanceCache::new(4);
        c.upsert(0, [1usize, 3]);
        let w0 = c.width();
        c.ensure_width(w0 + 1); // force an actual migration
        assert!(c.width() > w0);
        c.upsert(1, [w0]);
        assert_eq!(c.relevance_of(0), Some(2));
        assert_eq!(c.set_of(0).unwrap().iter().collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(c.relevance_of(1), Some(1));
    }
}
