//! Relevant sets `R(u,v)` and the relevance function `δr`.
//!
//! Section 3.1: given a match `v` of query node `u`, `R(u,v)` contains every
//! match `v'` of a descendant `u'` of `u` such that `v` reaches `v'` through
//! a path whose intermediate nodes are themselves matches of the
//! corresponding pattern-path nodes. Equivalently (Lemma 1 guarantees
//! uniqueness/maximality): the data nodes of match-graph pairs strictly
//! reachable from `(u,v)`. Note a match can belong to its own relevant set
//! when the pattern is cyclic (Example 8: `DB3 ∈ R(DB,DB3)`), but not when
//! it is a DAG (Example 4).
//!
//! `δr(u,v) = |R(u,v)|` — "the more matches v can reach, the bigger impact".

use gpm_graph::{BitSet, DiGraph, NodeId};
use gpm_pattern::{PNodeId, Pattern};
use gpm_simulation::{MatchGraph, SimRelation};

use crate::reach_sets::{strict_reach_sets, ReachConfig};

/// Relevant sets of all matches of the output node, over the compact
/// candidate universe.
#[derive(Debug, Clone)]
pub struct RelevantSets {
    /// Output matches (ascending node id), aligned with `sets`.
    matches: Vec<NodeId>,
    /// `sets[i]` = R(uo, matches[i]) as universe positions.
    sets: Vec<BitSet>,
    universe_size: usize,
}

impl RelevantSets {
    /// Computes `R(uo, ·)` for every output match. Returns an empty result
    /// when `G` does not match `Q`.
    pub fn compute(g: &DiGraph, q: &Pattern, sim: &SimRelation) -> Self {
        Self::compute_with(g, q, sim, &ReachConfig::default())
    }

    /// As [`RelevantSets::compute`] with an explicit memory/thread policy.
    pub fn compute_with(g: &DiGraph, q: &Pattern, sim: &SimRelation, cfg: &ReachConfig) -> Self {
        let universe_size = sim.space().universe_size();
        if !sim.graph_matches() {
            return RelevantSets { matches: Vec::new(), sets: Vec::new(), universe_size };
        }
        let mg = MatchGraph::over_matches(g, q, sim);
        let matches = sim.output_matches(q);
        let sources: Vec<u32> = matches
            .iter()
            .map(|&v| {
                let p = sim.space().pair_id(q.output(), v).expect("match is a candidate");
                mg.compact_of(p).expect("match pair is in the match graph")
            })
            .collect();
        let sets = strict_reach_sets(&mg, sim.space(), &sources, cfg);
        RelevantSets { matches, sets, universe_size }
    }

    /// The output matches, ascending.
    pub fn matches(&self) -> &[NodeId] {
        &self.matches
    }

    /// Number of output matches `|Mu(Q,G,uo)|`.
    pub fn len(&self) -> usize {
        self.matches.len()
    }

    /// `true` when there is no output match.
    pub fn is_empty(&self) -> bool {
        self.matches.is_empty()
    }

    /// Universe width of the bitsets.
    pub fn universe_size(&self) -> usize {
        self.universe_size
    }

    /// Relevant set of the `i`-th match.
    pub fn set(&self, i: usize) -> &BitSet {
        &self.sets[i]
    }

    /// `δr(uo, matches[i])`.
    pub fn relevance(&self, i: usize) -> u64 {
        self.sets[i].count() as u64
    }

    /// Index of a match node, if present.
    pub fn index_of(&self, v: NodeId) -> Option<usize> {
        self.matches.binary_search(&v).ok()
    }

    /// `δr(uo, v)` by node id.
    pub fn relevance_of(&self, v: NodeId) -> Option<u64> {
        self.index_of(v).map(|i| self.relevance(i))
    }

    /// Jaccard distance `δd` between the `i`-th and `j`-th matches
    /// (Section 3.2). A metric; see `BitSet::jaccard_distance`.
    pub fn distance(&self, i: usize, j: usize) -> f64 {
        self.sets[i].jaccard_distance(&self.sets[j])
    }

    /// Decodes the `i`-th relevant set back to data-node ids (ascending).
    pub fn set_node_ids(&self, sim: &SimRelation, i: usize) -> Vec<NodeId> {
        self.sets[i].iter().map(|pos| sim.space().universe_node(pos as u32)).collect()
    }
}

/// Relevant set of an arbitrary pair `(u, v)` — not just the output node —
/// as data-node ids. Used by golden tests (Example 4 checks `R` of every PM)
/// and by the result-inspection API. Per-pair BFS over the match graph.
pub fn relevant_set_of_pair(
    g: &DiGraph,
    q: &Pattern,
    sim: &SimRelation,
    u: PNodeId,
    v: NodeId,
) -> Option<Vec<NodeId>> {
    if !sim.contains(u, v) {
        return None;
    }
    let mg = MatchGraph::over_matches(g, q, sim);
    let p = sim.space().pair_id(u, v)?;
    let c = mg.compact_of(p)?;
    let sets = strict_reach_sets(&mg, sim.space(), &[c], &ReachConfig::default());
    let mut ids: Vec<NodeId> =
        sets[0].iter().map(|pos| sim.space().universe_node(pos as u32)).collect();
    ids.sort_unstable();
    Some(ids)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::builder::graph_from_parts;
    use gpm_pattern::builder::label_pattern;
    use gpm_simulation::compute_simulation;

    /// Two roots with different reach: δr distinguishes them.
    #[test]
    fn relevance_orders_matches() {
        // a-nodes: 0 (reaches b1,c1), 4 (reaches b1 only via 5? no) …
        //   0(a) → 1(b) → 2(c)
        //   3(a) → 1(b)
        // So R(A,0) = R(A,3) = {1,2}? No: 3→1→2 too. Add a second chain:
        //   4(a) → 5(b) → 2(c)
        let g = graph_from_parts(&[0, 1, 2, 0, 0, 1], &[(0, 1), (1, 2), (3, 1), (4, 5), (5, 2)])
            .unwrap();
        let q = label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let rs = RelevantSets::compute(&g, &q, &sim);
        assert_eq!(rs.matches(), &[0, 3, 4]);
        assert_eq!(rs.relevance_of(0), Some(2)); // {1,2}
        assert_eq!(rs.relevance_of(3), Some(2)); // {1,2}
        assert_eq!(rs.relevance_of(4), Some(2)); // {5,2}
                                                 // Distances: R(0) == R(3) → 0; R(0) vs R(4) share {2} → 1 - 1/3.
        let i0 = rs.index_of(0).unwrap();
        let i3 = rs.index_of(3).unwrap();
        let i4 = rs.index_of(4).unwrap();
        assert_eq!(rs.distance(i0, i3), 0.0);
        assert!((rs.distance(i0, i4) - (1.0 - 1.0 / 3.0)).abs() < 1e-12);
        assert_eq!(rs.set_node_ids(&sim, i4), vec![2, 5]);
    }

    #[test]
    fn empty_on_no_match() {
        let g = graph_from_parts(&[0], &[]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let rs = RelevantSets::compute(&g, &q, &sim);
        assert!(rs.is_empty());
        assert_eq!(rs.len(), 0);
    }

    #[test]
    fn arbitrary_pair_relevant_set() {
        let g = graph_from_parts(&[0, 1, 2], &[(0, 1), (1, 2)]).unwrap();
        let q = label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        assert_eq!(relevant_set_of_pair(&g, &q, &sim, 1, 1), Some(vec![2]));
        assert_eq!(relevant_set_of_pair(&g, &q, &sim, 2, 2), Some(vec![]));
        assert_eq!(relevant_set_of_pair(&g, &q, &sim, 0, 2), None, "not a match");
    }

    /// Same data node matched by two pattern nodes counts once.
    #[test]
    fn distinct_data_nodes() {
        // Pattern A→B, A→C where B and C have the same label; data 0→1.
        let g = graph_from_parts(&[0, 1], &[(0, 1)]).unwrap();
        let q = label_pattern(&[0, 1, 1], &[(0, 1), (0, 2)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let rs = RelevantSets::compute(&g, &q, &sim);
        assert_eq!(rs.relevance_of(0), Some(1), "node 1 counted once");
    }
}
