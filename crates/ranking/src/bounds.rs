//! Upper bounds `h(uo, v) ≥ δr(uo, v)` for early termination.
//!
//! Proposition 3 terminates top-k search when the smallest confirmed lower
//! bound in `S` dominates the largest upper bound outside `S`; everything
//! hinges on cheap-but-tight `h` values. The paper sketches "an index
//! [that] records the numbers of descendants with a same label"; its worked
//! examples (7 and 8) use the tighter count of label-path-constrained
//! descendants. We implement three strategies (all *valid* upper bounds —
//! they differ only in tightness and cost) plus an adaptive default:
//!
//! * [`BoundStrategy::Global`] — one number for all candidates: the count of
//!   distinct candidate nodes of query nodes reachable from `uo`. Free, very
//!   loose.
//! * [`BoundStrategy::DescLabelCount`] — the paper's index: a saturating
//!   per-candidate-class dynamic program over `G_SCC` counting descendants
//!   per reachable query node, capped per class and by the global bound.
//! * [`BoundStrategy::ProductReach`] — exact strict-reachability counts in
//!   the candidate product graph; reproduces the `v.h` values of Examples
//!   7–8 (3/2/1/0 and 6/7/4). Tightest, costs one set-reachability pass.
//! * [`BoundStrategy::Auto`] — `ProductReach` when the product graph is
//!   small enough, else `DescLabelCount`.

use gpm_graph::{Condensation, DiGraph, NodeId};
use gpm_pattern::Pattern;
use gpm_simulation::{CandidateSpace, MatchGraph};

use crate::reach_sets::{strict_reach_counts, ReachConfig};

/// Bound-index selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BoundStrategy {
    /// Σ-of-candidates constant bound.
    Global,
    /// Saturating descendant-count DP over `G_SCC` (the paper's index).
    DescLabelCount,
    /// Exact candidate-product-graph reachability counts.
    ProductReach,
    /// `ProductReach` if affordable, else `DescLabelCount`.
    #[default]
    Auto,
}

/// Tuning for bound computation.
#[derive(Debug, Clone)]
pub struct BoundConfig {
    /// Policy for the `ProductReach` set-reachability pass.
    pub reach: ReachConfig,
    /// `Auto` uses `ProductReach` only when the candidate pair count is at
    /// most this.
    pub auto_pair_limit: usize,
}

impl Default for BoundConfig {
    fn default() -> Self {
        BoundConfig { reach: ReachConfig::default(), auto_pair_limit: 2_000_000 }
    }
}

/// Upper bounds for the candidates of the output node, aligned with
/// `space.candidates(q.output())`.
#[derive(Debug, Clone)]
pub struct OutputBounds {
    h: Vec<u64>,
    used: BoundStrategy,
}

impl OutputBounds {
    /// Bound of the `i`-th output candidate.
    #[inline]
    pub fn h_at(&self, i: usize) -> u64 {
        self.h[i]
    }

    /// All bounds.
    pub fn as_slice(&self) -> &[u64] {
        &self.h
    }

    /// Which strategy actually ran (relevant for `Auto`).
    pub fn strategy_used(&self) -> BoundStrategy {
        self.used
    }

    /// Bound for a candidate node id.
    pub fn h_of(&self, space: &CandidateSpace, q: &Pattern, v: NodeId) -> Option<u64> {
        let base = space.pair_at(q.output(), 0);
        space.pair_id(q.output(), v).map(|p| self.h[(p - base) as usize])
    }
}

/// Computes upper bounds for every output-node candidate.
pub fn output_upper_bounds(
    g: &DiGraph,
    q: &Pattern,
    space: &CandidateSpace,
    strategy: BoundStrategy,
    cfg: &BoundConfig,
) -> OutputBounds {
    let n_out = space.candidate_count(q.output());
    match strategy {
        BoundStrategy::Global => {
            let b = global_bound(q, space);
            OutputBounds { h: vec![b; n_out], used: BoundStrategy::Global }
        }
        BoundStrategy::DescLabelCount => {
            OutputBounds { h: desc_count_bounds(g, q, space), used: BoundStrategy::DescLabelCount }
        }
        BoundStrategy::ProductReach => OutputBounds {
            h: product_reach_bounds(g, q, space, &cfg.reach),
            used: BoundStrategy::ProductReach,
        },
        BoundStrategy::Auto => {
            if space.pair_count() <= cfg.auto_pair_limit {
                OutputBounds {
                    h: product_reach_bounds(g, q, space, &cfg.reach),
                    used: BoundStrategy::ProductReach,
                }
            } else {
                OutputBounds {
                    h: desc_count_bounds(g, q, space),
                    used: BoundStrategy::DescLabelCount,
                }
            }
        }
    }
}

/// Bitmask of query nodes strictly reachable from `uo` in `Q`.
fn reachable_mask(q: &Pattern) -> u64 {
    let reach = q.reachable_from_output();
    let mut mask = 0u64;
    for u in reach.iter() {
        mask |= 1u64 << u;
    }
    mask
}

/// Count of distinct candidate data nodes of reachable query nodes — the
/// universal upper bound every strategy caps at.
fn global_bound(q: &Pattern, space: &CandidateSpace) -> u64 {
    let mask = reachable_mask(q);
    if mask == 0 {
        return 0;
    }
    (0..space.universe_size() as u32)
        .filter(|&i| space.mask_of(space.universe_node(i)) & mask != 0)
        .count() as u64
}

/// The paper's descendant-count index: for every candidate `v` of `uo`, sum
/// over reachable query nodes `u'` a saturating DP estimate of
/// `|strict-descendants(v) ∩ can(u')|`, capped per class and globally.
fn desc_count_bounds(g: &DiGraph, q: &Pattern, space: &CandidateSpace) -> Vec<u64> {
    let mask = reachable_mask(q);
    let classes: Vec<u32> =
        (0..q.node_count() as u32).filter(|&u| mask & (1u64 << u) != 0).collect();
    let out_cands = space.candidates(q.output());
    let gb = global_bound(q, space);
    if classes.is_empty() {
        return vec![0; out_cands.len()];
    }
    let caps: Vec<u32> = classes.iter().map(|&u| space.candidate_count(u) as u32).collect();

    let cond = Condensation::compute(g);
    let nc = cond.component_count();
    let k = classes.len();
    // full[c*k + j] = saturating count of candidates of class j in or below
    // component c.
    let mut full = vec![0u32; nc * k];
    for c in cond.reverse_topological() {
        let base = c as usize * k;
        for &sc in cond.comp_successors(c) {
            let sbase = sc as usize * k;
            for j in 0..k {
                full[base + j] = full[base + j].saturating_add(full[sbase + j]).min(caps[j]);
            }
        }
        for &v in cond.members(c) {
            let m = space.mask_of(v);
            if m == 0 {
                continue;
            }
            for (j, &u) in classes.iter().enumerate() {
                if m & (1u64 << u) != 0 {
                    full[base + j] = full[base + j].saturating_add(1).min(caps[j]);
                }
            }
        }
    }

    out_cands
        .iter()
        .map(|&v| {
            let c = cond.component_of(v);
            let base = c as usize * k;
            let total: u64 = if cond.is_nontrivial(c) {
                (0..k).map(|j| full[base + j] as u64).sum()
            } else {
                // Trivial component: strict descendants exclude v itself.
                let mut acc = vec![0u32; k];
                for &sc in cond.comp_successors(c) {
                    let sbase = sc as usize * k;
                    for j in 0..k {
                        acc[j] = acc[j].saturating_add(full[sbase + j]).min(caps[j]);
                    }
                }
                acc.iter().map(|&x| x as u64).sum()
            };
            total.min(gb)
        })
        .collect()
}

/// Exact strict-reachability count in the candidate product graph.
fn product_reach_bounds(
    g: &DiGraph,
    q: &Pattern,
    space: &CandidateSpace,
    reach: &ReachConfig,
) -> Vec<u64> {
    let pg = MatchGraph::over_candidates(g, q, space);
    let uo = q.output();
    let sources: Vec<u32> = (0..space.candidate_count(uo))
        .map(|i| pg.compact_of(space.pair_at(uo, i)).expect("all candidate pairs included"))
        .collect();
    strict_reach_counts(&pg, space, &sources, reach)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::relevant_set::RelevantSets;
    use gpm_graph::builder::graph_from_parts;
    use gpm_pattern::builder::label_pattern;
    use gpm_simulation::compute_simulation;

    fn check_valid_bounds(
        g: &DiGraph,
        q: &Pattern,
        strategy: BoundStrategy,
    ) -> (Vec<u64>, Vec<Option<u64>>) {
        let sim = compute_simulation(g, q);
        let space = sim.space();
        let bounds = output_upper_bounds(g, q, space, strategy, &BoundConfig::default());
        let rs = RelevantSets::compute(g, q, &sim);
        let deltas: Vec<Option<u64>> =
            space.candidates(q.output()).iter().map(|&v| rs.relevance_of(v)).collect();
        for (i, d) in deltas.iter().enumerate() {
            if let Some(d) = d {
                assert!(
                    bounds.h_at(i) >= *d,
                    "{strategy:?}: h({i}) = {} < δr = {d}",
                    bounds.h_at(i)
                );
            }
        }
        (bounds.as_slice().to_vec(), deltas)
    }

    #[test]
    fn all_strategies_are_valid_upper_bounds() {
        // Mixed cyclic graph with shared descendants.
        let g = graph_from_parts(
            &[0, 1, 2, 1, 2, 0],
            &[(0, 1), (1, 2), (0, 3), (3, 2), (3, 4), (5, 3), (4, 3)],
        )
        .unwrap();
        let q = label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        for s in [
            BoundStrategy::Global,
            BoundStrategy::DescLabelCount,
            BoundStrategy::ProductReach,
            BoundStrategy::Auto,
        ] {
            check_valid_bounds(&g, &q, s);
        }
    }

    #[test]
    fn tightness_ordering() {
        // ProductReach ≤ DescLabelCount ≤ Global, candidate-wise, on a DAG
        // with diamonds (where the DP overcounts).
        let g =
            graph_from_parts(&[0, 1, 1, 2, 2], &[(0, 1), (0, 2), (1, 3), (2, 3), (1, 4), (2, 4)])
                .unwrap();
        let q = label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let space = sim.space();
        let cfg = BoundConfig::default();
        let pr = output_upper_bounds(&g, &q, space, BoundStrategy::ProductReach, &cfg);
        let dc = output_upper_bounds(&g, &q, space, BoundStrategy::DescLabelCount, &cfg);
        let gl = output_upper_bounds(&g, &q, space, BoundStrategy::Global, &cfg);
        for i in 0..space.candidate_count(q.output()) {
            assert!(pr.h_at(i) <= dc.h_at(i));
            assert!(dc.h_at(i) <= gl.h_at(i));
        }
        // ProductReach is exact here: node 0 reaches {1,2,3,4}.
        assert_eq!(pr.h_at(0), 4);
    }

    #[test]
    fn auto_picks_product_reach_on_small_input() {
        let g = graph_from_parts(&[0, 1], &[(0, 1)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let b =
            output_upper_bounds(&g, &q, sim.space(), BoundStrategy::Auto, &BoundConfig::default());
        assert_eq!(b.strategy_used(), BoundStrategy::ProductReach);
        let small = BoundConfig { auto_pair_limit: 0, ..BoundConfig::default() };
        let b2 = output_upper_bounds(&g, &q, sim.space(), BoundStrategy::Auto, &small);
        assert_eq!(b2.strategy_used(), BoundStrategy::DescLabelCount);
    }

    #[test]
    fn single_node_pattern_bounds_are_zero() {
        let g = graph_from_parts(&[0, 0], &[(0, 1)]).unwrap();
        let q = label_pattern(&[0], &[], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        for s in [BoundStrategy::Global, BoundStrategy::DescLabelCount, BoundStrategy::ProductReach]
        {
            let b = output_upper_bounds(&g, &q, sim.space(), s, &BoundConfig::default());
            assert_eq!(b.as_slice(), &[0, 0], "{s:?}: no reachable query nodes");
        }
    }

    #[test]
    fn h_of_lookup() {
        let g = graph_from_parts(&[0, 1, 0], &[(0, 1)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let b = output_upper_bounds(
            &g,
            &q,
            sim.space(),
            BoundStrategy::ProductReach,
            &BoundConfig::default(),
        );
        assert_eq!(b.h_of(sim.space(), &q, 0), Some(1));
        assert_eq!(b.h_of(sim.space(), &q, 2), Some(0), "candidate without children");
        assert_eq!(b.h_of(sim.space(), &q, 1), None, "not an output candidate");
    }
}
