//! Strict-reachability data-node sets over a pair graph.
//!
//! Both relevant sets (`R(u,v)`, over the match graph) and the tight bound
//! index (`v.h`, over the candidate product graph) are instances of one
//! problem: *for each source pair, collect the distinct data nodes of all
//! pairs reachable via at least one edge*. This module solves it once:
//!
//! 1. condense the pair graph (Tarjan, component ids in reverse topological
//!    order);
//! 2. walk the condensation bottom-up, materializing for each needed
//!    component the bitset `Full(c)` = data nodes of `c`'s members ∪
//!    `Full` of successors;
//! 3. a source pair in a *nontrivial* component (on a cycle) gets
//!    `R = Full(c)`; in a trivial component it gets the union of successor
//!    `Full`s — the strictness of "via ≥ 1 edge";
//! 4. bitsets are reference-counted by remaining needed predecessors and
//!    freed eagerly.
//!
//! If the estimated peak memory exceeds the budget, the module falls back to
//! per-source BFS over the pair graph, parallelized with crossbeam — the
//! same `O(|V|(|V|+|E|))` worst case the paper quotes, just with a smaller
//! constant memory footprint.

use gpm_graph::{BitSet, Condensation};
use gpm_simulation::{CandidateSpace, MatchGraph};

/// Memory / execution policy for set-reachability computations.
#[derive(Debug, Clone, Copy)]
pub struct ReachConfig {
    /// Peak bytes allowed for materialized component bitsets before the
    /// computation falls back to per-source BFS.
    pub budget_bytes: usize,
    /// Threads for the BFS fallback (0 = available parallelism).
    pub threads: usize,
}

impl Default for ReachConfig {
    fn default() -> Self {
        ReachConfig { budget_bytes: 1 << 30, threads: 0 }
    }
}

/// For every source pair (compact id in `mg`), the set of universe positions
/// of data nodes of pairs strictly reachable from it.
pub fn strict_reach_sets(
    mg: &MatchGraph,
    space: &CandidateSpace,
    sources: &[u32],
    cfg: &ReachConfig,
) -> Vec<BitSet> {
    let m = space.universe_size();
    if sources.is_empty() {
        return Vec::new();
    }
    let cond = Condensation::compute(mg);
    let nc = cond.component_count();

    // Which components feed the sources? Forward reachability over the
    // condensation from the sources' components.
    let mut needed = vec![false; nc];
    let mut stack: Vec<u32> = Vec::new();
    for &s in sources {
        let c = cond.component_of(s);
        if !needed[c as usize] {
            needed[c as usize] = true;
            stack.push(c);
        }
    }
    while let Some(c) = stack.pop() {
        for &sc in cond.comp_successors(c) {
            if !needed[sc as usize] {
                needed[sc as usize] = true;
                stack.push(sc);
            }
        }
    }
    let needed_count = needed.iter().filter(|&&n| n).count();

    // Budget check: worst case keeps every needed component's bitset alive.
    let words = m.div_ceil(64);
    let estimated = needed_count.saturating_mul(words * 8);
    if estimated > cfg.budget_bytes {
        return bfs_fallback(mg, space, sources, cfg);
    }

    // Sources grouped by component for inline extraction.
    let mut sources_in: Vec<Vec<usize>> = vec![Vec::new(); nc];
    for (i, &s) in sources.iter().enumerate() {
        sources_in[cond.component_of(s) as usize].push(i);
    }

    // Reference counts: how many needed predecessors still want Full(c).
    let mut pending_preds = vec![0u32; nc];
    for c in 0..nc as u32 {
        if !needed[c as usize] {
            continue;
        }
        for &sc in cond.comp_successors(c) {
            pending_preds[sc as usize] += 1;
        }
    }

    let mut full: Vec<Option<BitSet>> = (0..nc).map(|_| None).collect();
    let mut out: Vec<BitSet> = (0..sources.len()).map(|_| BitSet::new(m)).collect();

    // Component ids ascend in reverse topological order: successors first.
    for c in cond.reverse_topological() {
        if !needed[c as usize] {
            continue;
        }
        // Union of successors' Full.
        let mut succ_union = BitSet::new(m);
        for &sc in cond.comp_successors(c) {
            let f = full[sc as usize].as_ref().expect("successor processed before predecessor");
            succ_union.union_with(f);
            // Release the successor once its last pending predecessor is done.
            pending_preds[sc as usize] -= 1;
            if pending_preds[sc as usize] == 0 && sources_in[sc as usize].is_empty() {
                full[sc as usize] = None;
            }
        }
        let nontrivial = cond.is_nontrivial(c);
        if !nontrivial {
            // Trivial component: strict reachability excludes the pair itself.
            for &si in &sources_in[c as usize] {
                out[si] = succ_union.clone();
            }
        }
        // Full(c) = member data nodes ∪ successor union.
        let mut f = succ_union;
        for &pair in cond.members(c) {
            let v = mg.data_node(pair);
            let pos = space.universe_pos(v).expect("candidate nodes are in the universe");
            f.insert(pos as usize);
        }
        if nontrivial {
            for &si in &sources_in[c as usize] {
                out[si] = f.clone();
            }
        }
        if pending_preds[c as usize] > 0 {
            full[c as usize] = Some(f);
        }
    }
    out
}

/// Count-only variant (used by the bound index, which never stores the sets).
pub fn strict_reach_counts(
    mg: &MatchGraph,
    space: &CandidateSpace,
    sources: &[u32],
    cfg: &ReachConfig,
) -> Vec<u64> {
    strict_reach_sets(mg, space, sources, cfg).iter().map(|s| s.count() as u64).collect()
}

/// Per-source BFS fallback: bounded memory, embarrassingly parallel.
fn bfs_fallback(
    mg: &MatchGraph,
    space: &CandidateSpace,
    sources: &[u32],
    cfg: &ReachConfig,
) -> Vec<BitSet> {
    let m = space.universe_size();
    let n = mg.len();
    let threads = if cfg.threads == 0 {
        std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
    } else {
        cfg.threads
    }
    .min(sources.len().max(1));

    let mut out: Vec<BitSet> = (0..sources.len()).map(|_| BitSet::new(m)).collect();
    let chunk = sources.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (src_chunk, out_chunk) in sources.chunks(chunk).zip(out.chunks_mut(chunk)) {
            scope.spawn(move || {
                let mut visited = BitSet::new(n);
                let mut queue = std::collections::VecDeque::new();
                for (&s, set) in src_chunk.iter().zip(out_chunk.iter_mut()) {
                    visited.clear();
                    queue.clear();
                    // Strict reachability: seed with successors.
                    for &w in mg.successors(s) {
                        if visited.insert(w as usize) {
                            queue.push_back(w);
                        }
                    }
                    while let Some(p) = queue.pop_front() {
                        let pos =
                            space.universe_pos(mg.data_node(p)).expect("candidates in universe");
                        set.insert(pos as usize);
                        for &w in mg.successors(p) {
                            if visited.insert(w as usize) {
                                queue.push_back(w);
                            }
                        }
                    }
                }
            });
        }
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::builder::graph_from_parts;
    use gpm_pattern::builder::label_pattern;
    use gpm_simulation::compute_simulation;

    /// Chain a→b→c with an extra b: R((A,0)) should be {1,2}, etc.
    #[test]
    fn dp_and_bfs_agree() {
        let g =
            graph_from_parts(&[0, 1, 2, 1, 0], &[(0, 1), (1, 2), (0, 3), (3, 2), (4, 3)]).unwrap();
        let q = label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let mg = MatchGraph::over_matches(&g, &q, &sim);
        let sources: Vec<u32> = (0..mg.len() as u32).collect();
        let dp = strict_reach_sets(&mg, sim.space(), &sources, &ReachConfig::default());
        let bfs = strict_reach_sets(
            &mg,
            sim.space(),
            &sources,
            &ReachConfig { budget_bytes: 0, threads: 2 },
        );
        assert_eq!(dp.len(), bfs.len());
        for (a, b) in dp.iter().zip(&bfs) {
            assert_eq!(a, b);
        }
    }

    /// On a cycle, a pair reaches itself (strictness via nonempty path).
    #[test]
    fn cycle_includes_self() {
        let g = graph_from_parts(&[0, 1], &[(0, 1), (1, 0)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1), (1, 0)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let mg = MatchGraph::over_matches(&g, &q, &sim);
        let sources: Vec<u32> = (0..mg.len() as u32).collect();
        for cfg in [ReachConfig::default(), ReachConfig { budget_bytes: 0, threads: 1 }] {
            let sets = strict_reach_sets(&mg, sim.space(), &sources, &cfg);
            for s in &sets {
                assert_eq!(s.count(), 2, "both data nodes reachable, incl. self");
            }
        }
    }

    /// DAG: a leaf pair has an empty strict-reachability set.
    #[test]
    fn dag_leaf_empty() {
        let g = graph_from_parts(&[0, 1], &[(0, 1)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let mg = MatchGraph::over_matches(&g, &q, &sim);
        let leaf = mg.compact_of(sim.space().pair_id(1, 1).unwrap()).unwrap();
        let root = mg.compact_of(sim.space().pair_id(0, 0).unwrap()).unwrap();
        let sets = strict_reach_sets(&mg, sim.space(), &[leaf, root], &ReachConfig::default());
        assert!(sets[0].is_empty());
        assert_eq!(sets[1].count(), 1);
        let counts = strict_reach_counts(&mg, sim.space(), &[leaf, root], &ReachConfig::default());
        assert_eq!(counts, vec![0, 1]);
    }

    #[test]
    fn empty_sources() {
        let g = graph_from_parts(&[0], &[]).unwrap();
        let q = label_pattern(&[0], &[], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let mg = MatchGraph::over_matches(&g, &q, &sim);
        assert!(strict_reach_sets(&mg, sim.space(), &[], &ReachConfig::default()).is_empty());
    }

    /// Shared-node diamond: distinct pairs with the same data node must not
    /// double-count.
    #[test]
    fn diamond_counts_distinct_nodes() {
        // Pattern A→B, A→C, B→D, C→D; data diamond 0→1, 0→2, 1→3, 2→3.
        let g = graph_from_parts(&[0, 1, 2, 3], &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let q = label_pattern(&[0, 1, 2, 3], &[(0, 1), (0, 2), (1, 3), (2, 3)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let mg = MatchGraph::over_matches(&g, &q, &sim);
        let root = mg.compact_of(sim.space().pair_id(0, 0).unwrap()).unwrap();
        let sets = strict_reach_sets(&mg, sim.space(), &[root], &ReachConfig::default());
        // Reaches data nodes 1, 2, 3 — node 3 via two pairs but counted once.
        assert_eq!(sets[0].count(), 3);
    }
}
