//! Strict-reachability data-node sets over a pair graph — the repo's
//! **single reach engine**, shared by the static and the dynamic path.
//!
//! Relevant sets (`R(u,v)`, over the match graph), the tight bound index
//! (`v.h`, over the candidate product graph) and the dynamic path's dirty
//! relevant-set refreshes are all instances of one problem: *for each
//! source pair, collect the distinct data nodes of all pairs reachable
//! via at least one edge*. This module solves it once, over any
//! [`ReachView`] (the static `MatchGraph` + `CandidateSpace` pair, or the
//! dynamic `DynMatchGraph` over alive pairs), in two phases:
//!
//! 1. **prepare** ([`ReachEngine::prepare`]) — condense the pair graph
//!    (Tarjan, component ids in reverse topological order), walk the
//!    condensation bottom-up materializing for each needed component the
//!    bitset `Full(c)` = data nodes of `c`'s members ∪ `Full` of
//!    successors; bitsets are reference-counted by remaining needed
//!    predecessors and freed eagerly, except those extraction needs.
//!    A source pair in a *nontrivial* component (on a cycle) reads
//!    `R = Full(c)`; in a trivial one, the union of successor `Full`s —
//!    the strictness of "via ≥ 1 edge".
//! 2. **extract** ([`ReachEngine::extract`]) — clone out the retained set
//!    of any one source. Extraction is read-only and thread-safe, so
//!    callers can fan a large dirty set out across worker threads
//!    (per-worker source ranges, deterministic merge by index) — the
//!    condensation and the component bitsets are shared, never repeated.
//!
//! If the estimated peak memory exceeds the budget, the engine degrades
//! to per-source BFS over the pair graph — the same `O(|V|(|V|+|E|))`
//! worst case the paper quotes with a bounded memory footprint —
//! behind the **same** extraction interface, so callers parallelize both
//! modes identically.

use std::collections::{HashMap, VecDeque};

use gpm_graph::{BitSet, Condensation};
use gpm_simulation::{CandidateSpace, MatchGraph, ReachView};
use gpm_telemetry::Span;

/// Memory / execution policy for set-reachability computations.
#[derive(Debug, Clone, Copy)]
pub struct ReachConfig {
    /// Peak bytes allowed for materialized component bitsets before the
    /// computation falls back to per-source BFS.
    pub budget_bytes: usize,
    /// Threads for batch extraction in BFS-fallback mode (0 = available
    /// parallelism). DP extraction stays sequential here; callers that
    /// want parallel DP extraction drive [`ReachEngine::extract`] from
    /// their own workers.
    pub threads: usize,
}

impl Default for ReachConfig {
    fn default() -> Self {
        ReachConfig { budget_bytes: 1 << 30, threads: 0 }
    }
}

enum Mode {
    /// Condensation DP ran: per-source-component output sets, retained.
    Dp {
        /// Deduplicated output sets, one per distinct source component.
        sets: Vec<BitSet>,
        /// Per source: index into `sets`.
        of_source: Vec<u32>,
    },
    /// Budget exceeded: extraction BFSes from each source on demand.
    Bfs,
}

/// A prepared strict-reachability computation over a fixed source list.
/// See the module docs for the two-phase contract.
pub struct ReachEngine<V> {
    view: V,
    sources: Vec<u32>,
    m: usize,
    mode: Mode,
}

impl<V: ReachView> ReachEngine<V> {
    /// Runs phase 1 over `view`: condensation + component bitsets (or the
    /// BFS decision when the budget would be exceeded). `view` is kept for
    /// extraction; pass a reference to borrow.
    pub fn prepare(view: V, sources: Vec<u32>, cfg: &ReachConfig) -> Self {
        Self::prepare_traced(view, sources, cfg, &Span::disabled())
    }

    /// [`Self::prepare`] with phase tracing: opens `tarjan` and `bitsets`
    /// child spans under `span` and records budget-fallback decisions as
    /// events (`budget-bail-early` when even one universe-wide bitset
    /// would bust the budget, `budget-bail-estimate` when the
    /// post-condensation estimate does). A disabled span makes this
    /// identical to `prepare`.
    pub fn prepare_traced(view: V, sources: Vec<u32>, cfg: &ReachConfig, span: &Span) -> Self {
        let m = view.universe_size();
        if sources.is_empty() {
            return ReachEngine {
                view,
                sources,
                m,
                mode: Mode::Dp { sets: Vec::new(), of_source: Vec::new() },
            };
        }
        // Cheap bail-out: the DP retains at least one universe-wide
        // bitset, so a budget below that can skip the condensation the
        // full estimate would need — the fallback must not pay an
        // O(V+E) Tarjan pass just to learn it is the fallback.
        let words = m.div_ceil(64);
        if words * 8 > cfg.budget_bytes {
            span.event("budget-bail-early");
            return ReachEngine { view, sources, m, mode: Mode::Bfs };
        }
        let cond = {
            let _tarjan = span.child("tarjan");
            Condensation::compute(&view)
        };
        let nc = cond.component_count();

        // Which components feed the sources? Forward reachability over the
        // condensation from the sources' components.
        let mut needed = vec![false; nc];
        let mut stack: Vec<u32> = Vec::new();
        for &s in &sources {
            let c = cond.component_of(s);
            if !needed[c as usize] {
                needed[c as usize] = true;
                stack.push(c);
            }
        }
        while let Some(c) = stack.pop() {
            for &sc in cond.comp_successors(c) {
                if !needed[sc as usize] {
                    needed[sc as usize] = true;
                    stack.push(sc);
                }
            }
        }
        let needed_count = needed.iter().filter(|&&n| n).count();

        // Sources grouped by component; trivial source components retain
        // one extra bitset (their strict set excludes their own member).
        let mut has_sources = vec![false; nc];
        let mut trivial_src = 0usize;
        for &s in &sources {
            let c = cond.component_of(s) as usize;
            if !has_sources[c] {
                has_sources[c] = true;
                if !cond.is_nontrivial(c as u32) {
                    trivial_src += 1;
                }
            }
        }

        // Budget check: worst case keeps every needed component's bitset
        // alive, plus the trivial source components' strict sets.
        let estimated = (needed_count + trivial_src).saturating_mul(words * 8);
        if estimated > cfg.budget_bytes {
            span.event("budget-bail-estimate");
            return ReachEngine { view, sources, m, mode: Mode::Bfs };
        }
        let bitsets_span = span.child("bitsets");

        // Reference counts: how many needed predecessors still want Full(c).
        let mut pending_preds = vec![0u32; nc];
        for c in 0..nc as u32 {
            if !needed[c as usize] {
                continue;
            }
            for &sc in cond.comp_successors(c) {
                pending_preds[sc as usize] += 1;
            }
        }

        let mut full: Vec<Option<BitSet>> = (0..nc).map(|_| None).collect();
        // Strict sets of trivial source components (succ-union, member
        // excluded), keyed by component.
        let mut trivial_out: HashMap<u32, BitSet> = HashMap::new();

        // Component ids ascend in reverse topological order: successors
        // first. Retention rule: a component's Full stays alive while a
        // needed predecessor still wants it, or when extraction will read
        // it (nontrivial + contains sources).
        for c in cond.reverse_topological() {
            if !needed[c as usize] {
                continue;
            }
            // Union of successors' Full.
            let mut succ_union = BitSet::new(m);
            for &sc in cond.comp_successors(c) {
                let f = full[sc as usize].as_ref().expect("successor processed before predecessor");
                succ_union.union_with(f);
                pending_preds[sc as usize] -= 1;
                if pending_preds[sc as usize] == 0
                    && !(has_sources[sc as usize] && cond.is_nontrivial(sc))
                {
                    full[sc as usize] = None;
                }
            }
            let nontrivial = cond.is_nontrivial(c);
            if !nontrivial && has_sources[c as usize] {
                // Trivial component: strict reachability excludes the pair
                // itself — retain the successor union before members join.
                trivial_out.insert(c, succ_union.clone());
            }
            // Full(c) = member data nodes ∪ successor union.
            let mut f = succ_union;
            for &pair in cond.members(c) {
                f.insert(view.universe_pos(pair));
            }
            if pending_preds[c as usize] > 0 || (has_sources[c as usize] && nontrivial) {
                full[c as usize] = Some(f);
            }
        }

        // Per-source extraction table: one retained set per distinct
        // source component, shared by all its sources.
        let mut sets: Vec<BitSet> = Vec::new();
        let mut set_of_comp: HashMap<u32, u32> = HashMap::new();
        let mut of_source: Vec<u32> = Vec::with_capacity(sources.len());
        for &s in &sources {
            let c = cond.component_of(s);
            let idx = *set_of_comp.entry(c).or_insert_with(|| {
                let set = if cond.is_nontrivial(c) {
                    full[c as usize].take().expect("retained for extraction")
                } else {
                    trivial_out.remove(&c).expect("retained for extraction")
                };
                sets.push(set);
                (sets.len() - 1) as u32
            });
            of_source.push(idx);
        }
        if bitsets_span.is_enabled() {
            bitsets_span.detail(format!(
                "components={nc} needed={needed_count} retained_sets={}",
                sets.len()
            ));
        }
        ReachEngine { view, sources, m, mode: Mode::Dp { sets, of_source } }
    }

    /// Number of sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// `true` when there is no source.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }

    /// `true` when the condensation DP ran; `false` when the memory budget
    /// forced BFS extraction.
    pub fn used_dp(&self) -> bool {
        matches!(self.mode, Mode::Dp { .. })
    }

    /// Universe width of the extracted bitsets.
    pub fn universe_size(&self) -> usize {
        self.m
    }

    /// Phase 2, one-shot: the strict-reachability set of source `i` as a
    /// fresh bitset. For extracting many sources from one thread, make a
    /// [`Self::extractor`] instead — it reuses BFS scratch across calls.
    pub fn extract(&self, i: usize) -> BitSet {
        self.extractor().extract(i)
    }

    /// A per-thread extraction handle carrying reusable scratch (visited
    /// bitset + queue for the BFS-fallback mode; nothing in DP mode).
    /// Make one per worker/chunk and pull many sources through it — the
    /// fallback runs exactly when memory is tight, so it must not churn
    /// an `O(pairs)`-bit allocation per source.
    pub fn extractor(&self) -> ReachExtractor<'_, V> {
        let scratch_bits = match self.mode {
            Mode::Dp { .. } => 0,
            Mode::Bfs => self.view.node_count(),
        };
        ReachExtractor { engine: self, visited: BitSet::new(scratch_bits), queue: VecDeque::new() }
    }

    /// Extracts every source, honoring `threads` in BFS mode (DP
    /// extraction is cheap clones and stays sequential).
    pub fn extract_all(&self, threads: usize) -> Vec<BitSet> {
        let n = self.sources.len();
        if n == 0 {
            return Vec::new();
        }
        let threads = match self.mode {
            Mode::Dp { .. } => 1,
            Mode::Bfs => if threads == 0 {
                std::thread::available_parallelism().map(|p| p.get()).unwrap_or(1)
            } else {
                threads
            }
            .min(n),
        };
        if threads <= 1 {
            let mut ex = self.extractor();
            return (0..n).map(|i| ex.extract(i)).collect();
        }
        let mut out: Vec<BitSet> = (0..n).map(|_| BitSet::new(self.m)).collect();
        let chunk = n.div_ceil(threads);
        std::thread::scope(|scope| {
            for (ci, out_chunk) in out.chunks_mut(chunk).enumerate() {
                scope.spawn(move || {
                    let mut ex = self.extractor();
                    for (j, slot) in out_chunk.iter_mut().enumerate() {
                        *slot = ex.extract(ci * chunk + j);
                    }
                });
            }
        });
        out
    }
}

/// A per-thread phase-2 handle over a prepared [`ReachEngine`]: shares
/// the engine's retained sets read-only and owns the BFS scratch, so
/// extracting a whole chunk of sources costs one scratch allocation.
pub struct ReachExtractor<'a, V> {
    engine: &'a ReachEngine<V>,
    visited: BitSet,
    queue: VecDeque<u32>,
}

impl<V: ReachView> ReachExtractor<'_, V> {
    /// The strict-reachability set of source `i` as a fresh bitset over
    /// the view's universe.
    pub fn extract(&mut self, i: usize) -> BitSet {
        match &self.engine.mode {
            Mode::Dp { sets, of_source } => sets[of_source[i] as usize].clone(),
            Mode::Bfs => self.bfs_from(self.engine.sources[i]),
        }
    }

    /// Strict reachability from `s` by plain BFS over the pair graph:
    /// seeded with the successors, so `s` itself only enters via a cycle.
    fn bfs_from(&mut self, s: u32) -> BitSet {
        let view = &self.engine.view;
        let mut set = BitSet::new(self.engine.m);
        self.visited.clear();
        self.queue.clear();
        for &w in view.successors_of(s) {
            if self.visited.insert(w as usize) {
                self.queue.push_back(w);
            }
        }
        while let Some(p) = self.queue.pop_front() {
            set.insert(view.universe_pos(p));
            for &w in view.successors_of(p) {
                if self.visited.insert(w as usize) {
                    self.queue.push_back(w);
                }
            }
        }
        set
    }
}

/// For every source pair (compact id in `mg`), the set of universe
/// positions of data nodes of pairs strictly reachable from it — the
/// static-pipeline entry point ([`ReachEngine`] over
/// [`MatchGraph::reach_view`]).
pub fn strict_reach_sets(
    mg: &MatchGraph,
    space: &CandidateSpace,
    sources: &[u32],
    cfg: &ReachConfig,
) -> Vec<BitSet> {
    let engine = ReachEngine::prepare(mg.reach_view(space), sources.to_vec(), cfg);
    engine.extract_all(cfg.threads)
}

/// Count-only variant (used by the bound index, which never stores the sets).
pub fn strict_reach_counts(
    mg: &MatchGraph,
    space: &CandidateSpace,
    sources: &[u32],
    cfg: &ReachConfig,
) -> Vec<u64> {
    strict_reach_sets(mg, space, sources, cfg).iter().map(|s| s.count() as u64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::builder::graph_from_parts;
    use gpm_pattern::builder::label_pattern;
    use gpm_simulation::compute_simulation;

    /// Chain a→b→c with an extra b: R((A,0)) should be {1,2}, etc.
    #[test]
    fn dp_and_bfs_agree() {
        let g =
            graph_from_parts(&[0, 1, 2, 1, 0], &[(0, 1), (1, 2), (0, 3), (3, 2), (4, 3)]).unwrap();
        let q = label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let mg = MatchGraph::over_matches(&g, &q, &sim);
        let sources: Vec<u32> = (0..mg.len() as u32).collect();
        let dp = strict_reach_sets(&mg, sim.space(), &sources, &ReachConfig::default());
        let bfs = strict_reach_sets(
            &mg,
            sim.space(),
            &sources,
            &ReachConfig { budget_bytes: 0, threads: 2 },
        );
        assert_eq!(dp.len(), bfs.len());
        for (a, b) in dp.iter().zip(&bfs) {
            assert_eq!(a, b);
        }
    }

    /// The two-phase engine reports its mode and extracts per source.
    #[test]
    fn engine_modes_and_indexed_extraction() {
        let g =
            graph_from_parts(&[0, 1, 2, 1, 0], &[(0, 1), (1, 2), (0, 3), (3, 2), (4, 3)]).unwrap();
        let q = label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let mg = MatchGraph::over_matches(&g, &q, &sim);
        let sources: Vec<u32> = (0..mg.len() as u32).collect();
        let dp = ReachEngine::prepare(
            mg.reach_view(sim.space()),
            sources.clone(),
            &ReachConfig::default(),
        );
        assert!(dp.used_dp());
        assert_eq!(dp.len(), sources.len());
        let bfs = ReachEngine::prepare(
            mg.reach_view(sim.space()),
            sources.clone(),
            &ReachConfig { budget_bytes: 0, threads: 1 },
        );
        assert!(!bfs.used_dp());
        for i in 0..sources.len() {
            assert_eq!(dp.extract(i), bfs.extract(i), "source {i}");
        }
        // Out-of-order / repeated extraction is legal (read-only phase 2).
        assert_eq!(dp.extract(0), dp.extract(0));
    }

    /// On a cycle, a pair reaches itself (strictness via nonempty path).
    #[test]
    fn cycle_includes_self() {
        let g = graph_from_parts(&[0, 1], &[(0, 1), (1, 0)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1), (1, 0)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let mg = MatchGraph::over_matches(&g, &q, &sim);
        let sources: Vec<u32> = (0..mg.len() as u32).collect();
        for cfg in [ReachConfig::default(), ReachConfig { budget_bytes: 0, threads: 1 }] {
            let sets = strict_reach_sets(&mg, sim.space(), &sources, &cfg);
            for s in &sets {
                assert_eq!(s.count(), 2, "both data nodes reachable, incl. self");
            }
        }
    }

    /// DAG: a leaf pair has an empty strict-reachability set.
    #[test]
    fn dag_leaf_empty() {
        let g = graph_from_parts(&[0, 1], &[(0, 1)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let mg = MatchGraph::over_matches(&g, &q, &sim);
        let leaf = mg.compact_of(sim.space().pair_id(1, 1).unwrap()).unwrap();
        let root = mg.compact_of(sim.space().pair_id(0, 0).unwrap()).unwrap();
        let sets = strict_reach_sets(&mg, sim.space(), &[leaf, root], &ReachConfig::default());
        assert!(sets[0].is_empty());
        assert_eq!(sets[1].count(), 1);
        let counts = strict_reach_counts(&mg, sim.space(), &[leaf, root], &ReachConfig::default());
        assert_eq!(counts, vec![0, 1]);
    }

    #[test]
    fn empty_sources() {
        let g = graph_from_parts(&[0], &[]).unwrap();
        let q = label_pattern(&[0], &[], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let mg = MatchGraph::over_matches(&g, &q, &sim);
        assert!(strict_reach_sets(&mg, sim.space(), &[], &ReachConfig::default()).is_empty());
    }

    /// Tracing surfaces the DP sub-phases and the budget-fallback
    /// decision without changing results.
    #[test]
    fn prepare_traced_reports_phases_and_fallbacks() {
        use gpm_telemetry::Telemetry;
        let g =
            graph_from_parts(&[0, 1, 2, 1, 0], &[(0, 1), (1, 2), (0, 3), (3, 2), (4, 3)]).unwrap();
        let q = label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let mg = MatchGraph::over_matches(&g, &q, &sim);
        let sources: Vec<u32> = (0..mg.len() as u32).collect();
        let t = Telemetry::on();

        let root = t.root_span("prepare");
        let dp = ReachEngine::prepare_traced(
            mg.reach_view(sim.space()),
            sources.clone(),
            &ReachConfig::default(),
            &root,
        );
        assert!(dp.used_dp());
        let trace = t.finish_batch(root, 0).expect("enabled");
        assert_eq!(trace.spans_named("tarjan").count(), 1);
        let bitsets = trace.spans_named("bitsets").next().expect("bitsets span");
        assert!(bitsets.detail.contains("components="));

        let root = t.root_span("prepare");
        let bfs = ReachEngine::prepare_traced(
            mg.reach_view(sim.space()),
            sources.clone(),
            &ReachConfig { budget_bytes: 0, threads: 1 },
            &root,
        );
        assert!(!bfs.used_dp());
        let trace = t.finish_batch(root, 1).expect("enabled");
        assert!(trace.spans[0].events.iter().any(|(_, e)| e == "budget-bail-early"));
        assert_eq!(trace.spans_named("tarjan").count(), 0, "early bail skips Tarjan");
        for i in 0..sources.len() {
            assert_eq!(dp.extract(i), bfs.extract(i), "tracing never changes answers");
        }
    }

    /// Shared-node diamond: distinct pairs with the same data node must not
    /// double-count.
    #[test]
    fn diamond_counts_distinct_nodes() {
        // Pattern A→B, A→C, B→D, C→D; data diamond 0→1, 0→2, 1→3, 2→3.
        let g = graph_from_parts(&[0, 1, 2, 3], &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let q = label_pattern(&[0, 1, 2, 3], &[(0, 1), (0, 2), (1, 3), (2, 3)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let mg = MatchGraph::over_matches(&g, &q, &sim);
        let root = mg.compact_of(sim.space().pair_id(0, 0).unwrap()).unwrap();
        let sets = strict_reach_sets(&mg, sim.space(), &[root], &ReachConfig::default());
        // Reaches data nodes 1, 2, 3 — node 3 via two pairs but counted once.
        assert_eq!(sets[0].count(), 3);
    }
}
