//! [`BoundState`]: an incrementally maintained bound index over a
//! [`CondensationState`].
//!
//! The static path's Proposition-3 early termination needs `h(uo, v)` —
//! an upper bound on relevance — for every output candidate, and
//! [`crate::bounds::output_upper_bounds`] rebuilds that from scratch per
//! call. Under deltas that is exactly the cost the maintained
//! condensation already paid: a candidate pair's `ProductReach` bound is
//! the popcount of its component's `Full` bitset (exact for nontrivial
//! components; for a trivial component `Full` additionally contains the
//! member's own universe position, so the popcount stays a valid upper
//! bound with slack ≤ 1). `CondensationState` recomputes `Full` for the
//! touched components and their condensation-DAG ancestors only — the
//! exact set of components whose bound can have moved — and exports it
//! as [`CondensationState::last_refolded`]. `BoundState` keeps a
//! slot-indexed popcount table in sync by refolding just that set.
//!
//! Lifecycle mirrors [`crate::cond_state::CondPolicy`]:
//!
//! * **refold** — per batch, popcounts for `last_refolded()` only;
//! * **overflow rebuild** — when the condensation itself fell back to a
//!   from-scratch build the bound index rebuilds with it;
//! * **churn gate** — when one batch refolds more than
//!   [`BoundPolicy::max_churn_fraction`] of the live components (above
//!   an absolute floor), the refold is done as a from-scratch recount
//!   and accounted as a rebuild, so bench can see maintenance that
//!   stopped paying for itself.
//!
//! Strategy resolution ([`BoundStrategy`]) collapses to two maintained
//! modes: `Global` keeps a single alive-pair count (free, loose); every
//! per-candidate strategy maintains the per-component popcount table
//! (the tightest bound the substrate gives without extra state). `Auto`
//! decides from the **alive pair count** — not a pre-pruning candidate
//! estimate — and flips `PerComponent → Global` only when the graph
//! grows past [`BoundPolicy::auto_pair_limit`]; it never flips back
//! outside a full rebuild, so attr-only and tombstone-only batches can
//! never invalidate the maintained table.

use crate::bounds::BoundStrategy;
use crate::cond_state::CondensationState;

/// Policy for maintained bound indexing, carried by the incremental
/// config the way `CondPolicy` is carried by the reach config.
#[derive(Debug, Clone)]
pub struct BoundPolicy {
    /// Master switch: off = every dirty output is materialized (the
    /// pre-bound behaviour).
    pub enabled: bool,
    /// Requested strategy; see module docs for how it resolves.
    pub strategy: BoundStrategy,
    /// `Auto` maintains per-component bounds only while the alive pair
    /// count is at most this.
    pub auto_pair_limit: usize,
    /// Refolding more than this fraction of live components in one batch
    /// is accounted as a from-scratch rebuild.
    pub max_churn_fraction: f64,
    /// The churn gate only arms above this many refolded components.
    pub churn_floor: usize,
}

impl Default for BoundPolicy {
    fn default() -> Self {
        BoundPolicy {
            enabled: true,
            strategy: BoundStrategy::Auto,
            auto_pair_limit: 2_000_000,
            max_churn_fraction: 0.5,
            churn_floor: 256,
        }
    }
}

/// What one maintained batch did to the bound index.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BoundRefold {
    /// Components whose bound was recomputed.
    pub refolded: usize,
    /// The churn gate tripped and the refold ran as a from-scratch
    /// recount over every live component.
    pub rebuilt_all: bool,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BoundMode {
    /// Slot-indexed `popcount(Full(c))` table.
    PerComponent,
    /// Single alive-pair-count bound for every candidate.
    Global,
}

/// Incrementally maintained upper bounds `h(uo, v)`, component-aligned
/// with a [`CondensationState`]. See the module docs.
#[derive(Debug, Clone)]
pub struct BoundState {
    mode: BoundMode,
    /// Component slot → `popcount(Full(c))`; entries for dead slots are
    /// stale and never read (`comp_of` only yields live ids).
    counts: Vec<u64>,
    /// The `Global` bound: every relevance counts distinct universe
    /// positions of alive pairs, so the alive pair count dominates it.
    global: u64,
}

impl BoundState {
    /// Builds the index from scratch over a freshly built (or freshly
    /// validated) condensation.
    pub fn build(cond: &CondensationState, alive_pairs: usize, policy: &BoundPolicy) -> Self {
        let mode = match policy.strategy {
            BoundStrategy::Global => BoundMode::Global,
            BoundStrategy::Auto if alive_pairs > policy.auto_pair_limit => BoundMode::Global,
            _ => BoundMode::PerComponent,
        };
        let mut st = BoundState { mode, counts: Vec::new(), global: alive_pairs as u64 };
        if st.mode == BoundMode::PerComponent {
            st.recount_all(cond);
        }
        st
    }

    /// Folds one maintained batch: refolds exactly the components the
    /// condensation's last `apply` recomputed. Must be called only after
    /// a *successful* `CondensationState::apply` (on error the caller
    /// rebuilds both states).
    pub fn apply(
        &mut self,
        cond: &CondensationState,
        alive_pairs: usize,
        policy: &BoundPolicy,
    ) -> BoundRefold {
        self.global = alive_pairs as u64;
        if self.mode == BoundMode::PerComponent
            && policy.strategy == BoundStrategy::Auto
            && alive_pairs > policy.auto_pair_limit
        {
            // Growth crossed the Auto limit: drop to the free global
            // bound. The reverse flip happens only on a full rebuild
            // (downward hysteresis), so shrinking batches — tombstone
            // deletes above all — can never thrash the table.
            self.mode = BoundMode::Global;
            self.counts = Vec::new();
        }
        if self.mode == BoundMode::Global {
            return BoundRefold::default();
        }
        let refold = cond.last_refolded();
        if refold.len() > policy.churn_floor {
            let live = cond.live_components().count();
            if refold.len() as f64 > policy.max_churn_fraction * live.max(1) as f64 {
                self.recount_all(cond);
                return BoundRefold { refolded: live, rebuilt_all: true };
            }
        }
        if self.counts.len() < cond.slot_count() {
            self.counts.resize(cond.slot_count(), 0);
        }
        let mut refolded = 0;
        for &c in refold {
            if let Some(n) = cond.full_count(c) {
                self.counts[c as usize] = n;
                refolded += 1;
            }
        }
        BoundRefold { refolded, rebuilt_all: false }
    }

    /// Upper bound on the relevance of the output whose pair slot is
    /// `pair`, or `None` when the pair is dead.
    #[inline]
    pub fn h_for(&self, cond: &CondensationState, pair: u32) -> Option<u64> {
        match self.mode {
            BoundMode::Global => cond.comp_of(pair).map(|_| self.global),
            BoundMode::PerComponent => {
                cond.comp_of(pair).and_then(|c| self.counts.get(c as usize).copied())
            }
        }
    }

    /// Active maintained mode, for introspection.
    pub fn mode_label(&self) -> &'static str {
        match self.mode {
            BoundMode::PerComponent => "per-component",
            BoundMode::Global => "global",
        }
    }

    /// Differential check: every live component's maintained count equals
    /// the from-scratch popcount of its `Full` (the same number a fresh
    /// `OutputBounds` build derives per component), and the global bound
    /// equals the alive pair count.
    pub fn validate(&self, cond: &CondensationState, alive_pairs: usize) -> Result<(), String> {
        if self.global != alive_pairs as u64 {
            return Err(format!("global bound {} != alive pairs {alive_pairs}", self.global));
        }
        if self.mode == BoundMode::Global {
            return Ok(());
        }
        for c in cond.live_components() {
            let want = cond.full_count(c).expect("live component has a Full");
            let got = self.counts.get(c as usize).copied();
            if got != Some(want) {
                return Err(format!("component {c}: maintained h {got:?} != fresh {want}"));
            }
        }
        Ok(())
    }

    fn recount_all(&mut self, cond: &CondensationState) {
        self.counts = vec![0; cond.slot_count()];
        for c in cond.live_components() {
            self.counts[c as usize] = cond.full_count(c).expect("live component has a Full");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::scc::Successors;
    use gpm_simulation::{PairDelta, ReachView};

    struct VecView {
        adj: Vec<Vec<u32>>,
        width: usize,
    }

    impl Successors for VecView {
        fn node_count(&self) -> usize {
            self.adj.len()
        }
        fn successors_of(&self, v: u32) -> &[u32] {
            &self.adj[v as usize]
        }
    }

    impl ReachView for VecView {
        fn universe_size(&self) -> usize {
            self.width
        }
        fn universe_pos(&self, c: u32) -> usize {
            c as usize
        }
    }

    fn diamond() -> VecView {
        // 0 → {1, 2} → 3, plus a 2-cycle {4, 5} hanging off 3.
        VecView {
            adj: vec![vec![1, 2], vec![3], vec![3], vec![4], vec![5], vec![4]],
            width: 6,
        }
    }

    #[test]
    fn refold_tracks_incremental_apply() {
        let mut view = diamond();
        let mut cond = CondensationState::build(&view, |_| true);
        let policy = BoundPolicy::default();
        let mut bs = BoundState::build(&cond, cond.live_pairs(), &policy);
        bs.validate(&cond, cond.live_pairs()).expect("fresh index valid");
        assert_eq!(bs.h_for(&cond, 0), Some(6), "Full(0) = self + 1,2,3,4,5 (trivial slack ≤ 1)");
        assert_eq!(bs.h_for(&cond, 4), Some(2), "cycle member: Full is exactly the SCC");

        // Remove 3 → 4: the cycle's ancestors all refold.
        view.adj[3].clear();
        let mut delta = PairDelta::default();
        delta.removed.push((3, 4));
        cond.apply(&view, &delta, &Default::default()).expect("maintained");
        let r = bs.apply(&cond, cond.live_pairs(), &policy);
        assert!(!r.rebuilt_all);
        assert!(r.refolded >= 4, "source + ancestors refolded, got {}", r.refolded);
        bs.validate(&cond, cond.live_pairs()).expect("refolded index valid");
        assert_eq!(bs.h_for(&cond, 0), Some(4), "cycle no longer reachable: Full(0) = {{0,1,2,3}}");
    }

    #[test]
    fn auto_flips_down_on_growth_and_never_back() {
        let view = diamond();
        let cond = CondensationState::build(&view, |_| true);
        let policy = BoundPolicy { auto_pair_limit: 4, ..BoundPolicy::default() };
        // Build under the limit: per-component.
        let mut bs = BoundState::build(&cond, 4, &policy);
        assert_eq!(bs.mode_label(), "per-component");
        // Growth past the limit flips to global…
        bs.apply(&cond, 6, &policy);
        assert_eq!(bs.mode_label(), "global");
        assert_eq!(bs.h_for(&cond, 0), Some(6));
        // …and shrinking back below it does NOT flip back.
        bs.apply(&cond, 2, &policy);
        assert_eq!(bs.mode_label(), "global");
        // A full rebuild resolves afresh.
        let bs = BoundState::build(&cond, 2, &policy);
        assert_eq!(bs.mode_label(), "per-component");
    }

    #[test]
    fn churn_gate_reports_rebuild() {
        let view = diamond();
        let mut cond = CondensationState::build(&view, |_| true);
        let policy =
            BoundPolicy { churn_floor: 0, max_churn_fraction: 0.1, ..BoundPolicy::default() };
        let mut bs = BoundState::build(&cond, cond.live_pairs(), &policy);
        // Any apply refolds > 10% of the (tiny) live set → gate trips.
        let mut view2 = diamond();
        view2.adj[3].clear();
        let mut delta = PairDelta::default();
        delta.removed.push((3, 4));
        cond.apply(&view2, &delta, &Default::default()).expect("maintained");
        let r = bs.apply(&cond, cond.live_pairs(), &policy);
        assert!(r.rebuilt_all, "gate trips on tiny graphs with floor 0");
        bs.validate(&cond, cond.live_pairs()).expect("recounted index valid");
    }
}
