//! # gpm-ranking
//!
//! Ranking machinery for (diversified) top-k graph pattern matching —
//! Section 3 of the paper:
//!
//! * **Relevant sets** `R(u,v)` ([`relevant_set`]): all matches a match can
//!   reach via paths of matches; `δr(u,v) = |R(u,v)|` is the basic relevance
//!   function ("social impact").
//! * **Distance functions** `δd` ([`distance`]): the Jaccard distance of
//!   relevant sets (a metric), plus the generalized distances of Section 3.4
//!   (neighbourhood diversity, distance-based diversity).
//! * **Relevance functions** ([`relevance`]): `δr` plus the generalized
//!   relevance functions of Section 3.4 (preference attachment, common
//!   neighbours, Jaccard coefficient).
//! * **Diversification objective** `F(S)` ([`objective`]): the bi-criteria
//!   max-sum objective `(1-λ)·Σ δ'r + (2λ/(k-1))·Σ δd` with the candidate
//!   normalizer `Cuo`, plus the pairwise `F'` used by the 2-approximation
//!   and the partial-information `F''` used by the early-termination
//!   heuristic.
//! * **Bound indexes** ([`bounds`]): upper bounds `h(uo,v) ≥ δr(uo,v)` that
//!   drive Proposition 3 early termination, in three tightness/cost
//!   variants.
//! * **Maintained bounds** ([`bound_state`]): the incremental counterpart
//!   of [`bounds`] — per-component `h` popcounts kept alive across deltas
//!   on top of [`cond_state`]'s refold set.
//! * **Set-reachability core** ([`reach_sets`]): a shared
//!   condensation-and-bitset dynamic program used by both relevant sets and
//!   the tight bound index, with a memory budget and a parallel BFS
//!   fallback.

pub mod bound_state;
pub mod bounds;
pub mod cache;
pub mod cond_state;
pub mod distance;
pub mod objective;
pub mod reach_sets;
pub mod relevance;
pub mod relevant_set;

pub use bound_state::{BoundPolicy, BoundRefold, BoundState};
pub use bounds::{output_upper_bounds, BoundConfig, BoundStrategy, OutputBounds};
pub use cache::RelevanceCache;
pub use cond_state::{CondPolicy, CondensationState, MaintainError, MaintainStats, SetHandle};
pub use distance::{DistanceFn, JaccardDistance, MatchInfo, NeighborhoodDiversity};
pub use objective::{c_uo, Objective};
pub use reach_sets::{ReachConfig, ReachEngine, ReachExtractor};
pub use relevance::{RelevanceCtx, RelevanceFn, RelevantSetSize};
pub use relevant_set::{relevant_set_of_pair, RelevantSets};
