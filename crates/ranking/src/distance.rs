//! Distance (diversity) functions `δd` and the generalized `δ*d`.
//!
//! The paper's default (Section 3.2) is the Jaccard distance of relevant
//! sets — a metric (symmetry + triangle inequality), which the MAXDISP-based
//! 2-approximation of `TopKDiv` relies on. Section 3.4 adds:
//!
//! * neighbourhood diversity: `1 - |R*(u,v1) ∩ R*(u,v2)| / |V|`;
//! * distance-based diversity: `1 - 1/d(v1,v2)` with `d` the hop distance
//!   (`1` when disconnected).

use gpm_graph::{BitSet, DiGraph, NodeId};

/// What a distance function may look at for one match.
#[derive(Debug, Clone, Copy)]
pub struct MatchInfo<'a> {
    /// The match's data node.
    pub node: NodeId,
    /// Its relevant set over the candidate universe.
    pub r_set: &'a BitSet,
}

/// A generalized distance function `δ*d` over two matches of `uo`.
pub trait DistanceFn: Send + Sync {
    /// Human-readable name.
    fn name(&self) -> &'static str;
    /// The distance in `[0, 1]`.
    fn distance(&self, a: &MatchInfo<'_>, b: &MatchInfo<'_>) -> f64;
}

/// The paper's `δd`: `1 - |R1 ∩ R2| / |R1 ∪ R2|`.
#[derive(Debug, Clone, Copy, Default)]
pub struct JaccardDistance;

impl DistanceFn for JaccardDistance {
    fn name(&self) -> &'static str {
        "jaccard"
    }
    fn distance(&self, a: &MatchInfo<'_>, b: &MatchInfo<'_>) -> f64 {
        a.r_set.jaccard_distance(b.r_set)
    }
}

/// Neighbourhood diversity `1 - |R1 ∩ R2| / |V|` (Li & Yu, ICDM'11).
#[derive(Debug, Clone, Copy)]
pub struct NeighborhoodDiversity {
    /// `|V|` of the data graph.
    pub node_count: usize,
}

impl DistanceFn for NeighborhoodDiversity {
    fn name(&self) -> &'static str {
        "neighborhood-diversity"
    }
    fn distance(&self, a: &MatchInfo<'_>, b: &MatchInfo<'_>) -> f64 {
        if self.node_count == 0 {
            return 1.0;
        }
        1.0 - a.r_set.intersection_count(b.r_set) as f64 / self.node_count as f64
    }
}

/// Distance-based diversity `1 - 1/d(v1,v2)` (Vieira et al., CIKM'07);
/// `1` when `d = ∞`, `0` when `v1 = v2`. Hop distances are symmetrized as
/// `min(d(a,b), d(b,a))` so the result is a symmetric dissimilarity.
pub struct DistanceBasedDiversity<'g> {
    g: &'g DiGraph,
}

impl<'g> DistanceBasedDiversity<'g> {
    /// Builds over a data graph (BFS per evaluation; intended for small
    /// match sets or the generalized-function demos).
    pub fn new(g: &'g DiGraph) -> Self {
        DistanceBasedDiversity { g }
    }
}

impl DistanceFn for DistanceBasedDiversity<'_> {
    fn name(&self) -> &'static str {
        "distance-based"
    }
    fn distance(&self, a: &MatchInfo<'_>, b: &MatchInfo<'_>) -> f64 {
        if a.node == b.node {
            return 0.0;
        }
        let d1 = gpm_graph::reach::hop_distance(self.g, a.node, b.node);
        let d2 = gpm_graph::reach::hop_distance(self.g, b.node, a.node);
        match (d1, d2) {
            (None, None) => 1.0,
            (Some(d), None) | (None, Some(d)) => 1.0 - 1.0 / d as f64,
            (Some(x), Some(y)) => 1.0 - 1.0 / x.min(y) as f64,
        }
    }
}

/// Checks the metric axioms of a distance function over a set of matches —
/// used by property tests (the 2-approximation requires a metric).
pub fn satisfies_metric_axioms(f: &dyn DistanceFn, infos: &[MatchInfo<'_>]) -> bool {
    let n = infos.len();
    let eps = 1e-9;
    for i in 0..n {
        if f.distance(&infos[i], &infos[i]).abs() > eps {
            return false;
        }
        for j in 0..n {
            let dij = f.distance(&infos[i], &infos[j]);
            let dji = f.distance(&infos[j], &infos[i]);
            if (dij - dji).abs() > eps {
                return false;
            }
            for l in 0..n {
                let dil = f.distance(&infos[i], &infos[l]);
                let dlj = f.distance(&infos[l], &infos[j]);
                if dij > dil + dlj + eps {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jaccard_is_metric_on_samples() {
        let sets = [
            BitSet::from_iter(12, [0, 1, 2, 3]),
            BitSet::from_iter(12, [3, 4, 5, 6, 7, 8, 9, 10]),
            BitSet::from_iter(12, [4, 5, 6, 7, 8, 11]),
            BitSet::new(12),
            BitSet::from_iter(12, [0, 1, 2, 3]),
        ];
        let infos: Vec<MatchInfo<'_>> =
            sets.iter().enumerate().map(|(i, s)| MatchInfo { node: i as u32, r_set: s }).collect();
        assert!(satisfies_metric_axioms(&JaccardDistance, &infos));
    }

    #[test]
    fn neighborhood_diversity_range() {
        let a = BitSet::from_iter(8, [0, 1, 2]);
        let b = BitSet::from_iter(8, [1, 2, 3]);
        let f = NeighborhoodDiversity { node_count: 8 };
        let d = f.distance(&MatchInfo { node: 0, r_set: &a }, &MatchInfo { node: 1, r_set: &b });
        assert!((d - (1.0 - 2.0 / 8.0)).abs() < 1e-12);
        let z = NeighborhoodDiversity { node_count: 0 };
        assert_eq!(
            z.distance(&MatchInfo { node: 0, r_set: &a }, &MatchInfo { node: 1, r_set: &b }),
            1.0
        );
    }

    #[test]
    fn distance_based_diversity() {
        use gpm_graph::builder::graph_from_parts;
        // 0→1→2, 3 isolated.
        let g = graph_from_parts(&[0; 4], &[(0, 1), (1, 2)]).unwrap();
        let empty = BitSet::new(1);
        let mi = |n: u32| MatchInfo { node: n, r_set: &empty };
        let f = DistanceBasedDiversity::new(&g);
        assert_eq!(f.distance(&mi(0), &mi(0)), 0.0);
        assert_eq!(f.distance(&mi(0), &mi(1)), 0.0, "adjacent: 1 - 1/1");
        assert!((f.distance(&mi(0), &mi(2)) - 0.5).abs() < 1e-12, "two hops");
        assert_eq!(f.distance(&mi(0), &mi(3)), 1.0, "disconnected");
        assert_eq!(f.distance(&mi(2), &mi(0)), 0.5, "symmetrized");
    }
}
