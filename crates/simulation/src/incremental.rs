//! Incremental maintenance of the maximum simulation under graph updates.
//!
//! [`IncSimState`] owns the per-pair survival flags and support counters of
//! a refinement run (seeded from [`crate::refine::refine_state`]) and keeps
//! them at the greatest fixpoint while the underlying [`DynGraph`] changes:
//!
//! * **Edge deletion** can only *shrink* `M(Q,G)`: decrement the affected
//!   counters and re-run the death cascade from pairs whose counter hit
//!   zero — exactly the static cascade, started mid-stream.
//! * **Edge insertion** can only *grow* `M(Q,G)`. Counter increments alone
//!   miss mutually-dependent revivals on cyclic patterns (two dead pairs
//!   that would support each other), so insertion collects the **revival
//!   region** — dead pairs backward-reachable from the inserted edge's
//!   source pairs through dead candidate pairs — optimistically marks it
//!   alive, recounts its counters and re-runs the death cascade inside the
//!   region. Pairs alive before the insertion can never die here
//!   (monotonicity), so the work is proportional to the affected region,
//!   not the graph.
//! * **Node addition** appends candidate pairs (alive iff the pattern node
//!   is a leaf — a fresh node has no edges yet; the batch's edge
//!   insertions then do the rest).
//! * **Node removal** arrives after its incident edges were removed, so
//!   pairs of the node are merely invalidated (dead + barred from
//!   revival).
//! * **Attribute mutation** can flip *candidacy* itself: a node that now
//!   satisfies a pattern node's predicate enters `can(u)` (a fresh or
//!   revalidated slot, revived through the same region machinery as edge
//!   insertion — the node already has edges, so mutual-support cycles can
//!   come alive at once), and a node that stops satisfying it leaves
//!   `can(u)` (killed through the standard death cascade). Only pattern
//!   nodes whose predicate **mentions the mutated key** are re-evaluated —
//!   candidacy is a function of `(label, attrs)`, so any other predicate
//!   is untouched by construction.
//!
//! Every alive-flip is recorded in a per-batch **dirty set** the ranking
//! layer consumes to invalidate relevant sets.

use std::collections::HashMap;

use gpm_graph::dynamic::DynGraph;
use gpm_graph::NodeId;
use gpm_pattern::{PNodeId, Pattern};

use crate::candidates::CandidateSpace;
use crate::refine::refine_state;

/// A `(pattern node, data node)` pair in the dynamic state.
pub type DynPair = (PNodeId, NodeId);

/// Maximum simulation state that follows a [`DynGraph`].
#[derive(Debug, Clone)]
pub struct IncSimState {
    /// `cand[u]`: candidate data nodes of pattern node `u`, append-only
    /// (tombstoned candidates keep their slot, flagged invalid).
    cand: Vec<Vec<NodeId>>,
    /// `idx[u]`: data node → local index in `cand[u]`.
    idx: Vec<HashMap<NodeId, u32>>,
    /// `valid[u][i]`: candidate not tombstoned.
    valid: Vec<Vec<bool>>,
    /// `alive[u][i]`: pair in the maximum simulation (structurally).
    alive: Vec<Vec<bool>>,
    /// `cnt[u][i*d + j]`: alive children of `(u, cand[u][i])` under the
    /// `j`-th pattern edge of `u` (successor order), `d = outdeg(u)`.
    cnt: Vec<Vec<u32>>,
    /// `zeros[u][i]`: number of zero slots among the pair's counters.
    /// Invariant: `alive ⇔ valid ∧ zeros == 0`.
    zeros: Vec<Vec<u32>>,
    /// Alive pairs per pattern node (graph-matches bookkeeping).
    alive_count: Vec<usize>,
    /// Valid candidates per pattern node (`|can(u)|` of the current graph).
    valid_count: Vec<usize>,
    /// Pairs whose alive status flipped since the last `take_dirty`.
    dirty: Vec<DynPair>,
}

impl IncSimState {
    /// Builds the state for `q` over the current contents of `g`, resuming
    /// from a static refinement run. Full [`Predicate`](gpm_pattern::Predicate)
    /// trees are supported — the snapshot carries the graph's attribute
    /// tables, so candidate enumeration evaluates attribute conditions
    /// exactly like the static pipeline. Returns `None` only for patterns
    /// beyond the candidate bitmask width
    /// ([`CandidateSpace::MAX_PATTERN_NODES`]).
    pub fn new(g: &DynGraph, q: &Pattern) -> Option<Self> {
        if q.node_count() > CandidateSpace::MAX_PATTERN_NODES {
            return None;
        }
        let snapshot = g.snapshot();
        let space = CandidateSpace::compute(&snapshot, q);
        let rs = refine_state(&snapshot, q, &space);

        let np = q.node_count();
        let mut state = IncSimState {
            cand: vec![Vec::new(); np],
            idx: vec![HashMap::new(); np],
            valid: vec![Vec::new(); np],
            alive: vec![Vec::new(); np],
            cnt: vec![Vec::new(); np],
            zeros: vec![Vec::new(); np],
            alive_count: vec![0; np],
            valid_count: vec![0; np],
            dirty: Vec::new(),
        };
        for u in q.nodes() {
            let d = q.successors(u).len();
            let list = space.candidates(u);
            let ui = u as usize;
            state.cand[ui] = list.to_vec();
            state.valid[ui] = vec![true; list.len()];
            state.valid_count[ui] = list.len();
            state.cnt[ui] = Vec::with_capacity(list.len() * d);
            for (i, &v) in list.iter().enumerate() {
                state.idx[ui].insert(v, i as u32);
                let p = space.pair_at(u, i) as usize;
                let a = rs.alive[p];
                state.alive[ui].push(a);
                if a {
                    state.alive_count[ui] += 1;
                }
                let base = rs.ebase[ui] + i * d;
                state.cnt[ui].extend_from_slice(&rs.counters[base..base + d]);
                let z = (0..d).filter(|&j| rs.counters[base + j] == 0).count() as u32;
                state.zeros[ui].push(z);
                debug_assert_eq!(a, z == 0, "refine fixpoint invariant");
            }
        }
        Some(state)
    }

    // ------------------------------------------------------------ queries

    /// `true` iff every pattern node currently has an alive pair.
    pub fn graph_matches(&self, q: &Pattern) -> bool {
        q.nodes().all(|u| self.alive_count[u as usize] > 0)
    }

    /// `(u, v)` alive? (structural — emptiness rule not applied).
    #[inline]
    pub fn pair_alive(&self, u: PNodeId, v: NodeId) -> bool {
        match self.idx[u as usize].get(&v) {
            Some(&i) => self.alive[u as usize][i as usize],
            None => false,
        }
    }

    /// `true` iff `v` is a (valid) candidate of `u`.
    #[inline]
    pub fn is_candidate(&self, u: PNodeId, v: NodeId) -> bool {
        match self.idx[u as usize].get(&v) {
            Some(&i) => self.valid[u as usize][i as usize],
            None => false,
        }
    }

    /// `true` iff `v` has **ever** been a candidate of `u` — candidate
    /// slots are never deleted, so this includes tombstoned candidates.
    /// The ranking layer seeds its dirtiness sweep with this test: when a
    /// batch tombstones a node, the node's valid flags are already cleared
    /// by the time post-batch seeds are computed, yet the source pairs of
    /// its dropped edges still need sweeping.
    #[inline]
    pub fn ever_candidate(&self, u: PNodeId, v: NodeId) -> bool {
        self.idx[u as usize].contains_key(&v)
    }

    /// `|can(u)|` of the current graph.
    #[inline]
    pub fn candidate_count(&self, u: PNodeId) -> usize {
        self.valid_count[u as usize]
    }

    /// Alive matches of `u`, ascending (empty when `G` does not match `Q`).
    pub fn matches_of(&self, q: &Pattern, u: PNodeId) -> Vec<NodeId> {
        if !self.graph_matches(q) {
            return Vec::new();
        }
        self.structural_matches_of(u)
    }

    /// Alive matches of the output node, ascending.
    pub fn output_matches(&self, q: &Pattern) -> Vec<NodeId> {
        self.matches_of(q, q.output())
    }

    /// Alive pairs of `u` **ignoring the emptiness rule**, ascending. The
    /// ranking cache is maintained structurally so that when a revival
    /// makes `G ⊨ Q` again, the cached sets are already correct.
    pub fn structural_matches_of(&self, u: PNodeId) -> Vec<NodeId> {
        let mut m: Vec<NodeId> = self.cand[u as usize]
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.alive[u as usize][i])
            .map(|(_, &v)| v)
            .collect();
        m.sort_unstable();
        m
    }

    /// Total alive pairs (0 when the emptiness rule fires).
    pub fn len(&self, q: &Pattern) -> usize {
        if !self.graph_matches(q) {
            return 0;
        }
        self.alive_count.iter().sum()
    }

    /// `true` when no pair is alive.
    pub fn is_empty(&self, q: &Pattern) -> bool {
        self.len(q) == 0
    }

    /// Drains the pairs whose alive status flipped since the last call.
    pub fn take_dirty(&mut self) -> Vec<DynPair> {
        std::mem::take(&mut self.dirty)
    }

    // ------------------------------------------------------------ updates

    /// Reacts to a node addition (`g` already contains the node; it has no
    /// edges yet — the batch's edge insertions arrive separately, and
    /// attribute conditions see the node's current — initially empty —
    /// attribute map; later `SetAttr` ops of the batch arrive via
    /// [`Self::on_attr_changed`]).
    pub fn on_node_added(&mut self, g: &DynGraph, q: &Pattern, v: NodeId) {
        let label = g.label(v);
        let attrs = g.attributes(v);
        for u in q.nodes() {
            if !q.predicate(u).eval(label, Some(attrs)) {
                continue;
            }
            debug_assert!(!self.idx[u as usize].contains_key(&v), "node ids are never reused");
            let d = q.successors(u).len();
            self.push_candidate_slot(u, v, d);
            if d == 0 {
                // Leaves are unconditionally alive; a fresh node has no
                // edges, so no counter references the pair yet and the
                // flip cannot cascade.
                let ui = u as usize;
                let i = self.cand[ui].len() - 1;
                self.alive[ui][i] = true;
                self.alive_count[ui] += 1;
                self.dirty.push((u, v));
            }
        }
    }

    /// Appends a fresh, **dead** candidate slot `(u, v)` across the
    /// parallel per-pair arrays (`cand`/`idx`/`valid`/`cnt`/`zeros`/
    /// `alive`) — the single allocation both node addition and attribute
    /// candidacy entry go through, so the arrays can never desynchronize.
    /// `d` is `outdeg(u)`; counters start at zero (node addition: the node
    /// has no edges; attr entry: the revival recount re-derives them).
    fn push_candidate_slot(&mut self, u: PNodeId, v: NodeId, d: usize) {
        let ui = u as usize;
        let i = self.cand[ui].len();
        self.cand[ui].push(v);
        self.idx[ui].insert(v, i as u32);
        self.valid[ui].push(true);
        self.valid_count[ui] += 1;
        self.cnt[ui].extend(std::iter::repeat_n(0, d));
        self.zeros[ui].push(d as u32);
        self.alive[ui].push(false);
    }

    /// Reacts to a change of attribute `key` on live node `v` (`g` already
    /// updated). Only pattern nodes whose predicate mentions `key` can
    /// change their mind about `v`:
    ///
    /// * `v` **enters** `can(u)` — a fresh (or revalidated) candidate slot
    ///   is added dead, then revived through the same optimistic
    ///   region machinery as edge insertion: unlike a freshly added node,
    ///   `v` already has edges, so it can complete mutual-support cycles
    ///   the moment it becomes a candidate.
    /// * `v` **leaves** `can(u)` — the pair is invalidated and, if alive,
    ///   killed through the standard death cascade (its incident edges
    ///   still exist, so parent counters must be decremented — unlike a
    ///   tombstone, whose edge removals arrive first).
    ///
    /// A slot invalidated by an attribute flip can be revalidated by a
    /// later flip; tombstoned slots never re-enter (attribute ops on
    /// tombstones are filtered at the graph layer).
    pub fn on_attr_changed(&mut self, g: &DynGraph, q: &Pattern, v: NodeId, key: &str) {
        debug_assert!(!g.is_removed(v), "graph layer drops attr ops on tombstones");
        let label = g.label(v);
        let attrs = g.attributes(v);
        // Decide first: which pattern nodes does `v` enter/leave? The two
        // directions must not interleave — deaths have to cascade to their
        // fixpoint before any fresh slot becomes valid, or the cascade
        // could decrement a brand-new zero counter.
        let mut leave: Vec<PNodeId> = Vec::new();
        let mut enter: Vec<PNodeId> = Vec::new();
        for u in q.nodes() {
            let pred = q.predicate(u);
            if !pred.mentions_key(key) {
                continue; // candidacy is a function of (label, attrs[keys..])
            }
            let holds = pred.eval(label, Some(attrs));
            let was =
                self.idx[u as usize].get(&v).is_some_and(|&i| self.valid[u as usize][i as usize]);
            if holds && !was {
                enter.push(u);
            } else if !holds && was {
                leave.push(u);
            }
        }

        // Departures: invalidate, then run the standard death cascade —
        // `v` keeps its edges, so parent counters must be decremented
        // (unlike a tombstone, whose edge removals arrive first).
        let mut kill: Vec<DynPair> = Vec::new();
        for &u in &leave {
            let ui = u as usize;
            let i = self.idx[ui][&v] as usize;
            self.valid[ui][i] = false;
            self.valid_count[ui] -= 1;
            if self.alive[ui][i] {
                self.alive[ui][i] = false;
                self.alive_count[ui] -= 1;
                self.dirty.push((u, v));
                kill.push((u, v));
            }
        }
        self.cascade_deaths(g, q, kill);

        // Entries: create (or revalidate) the slot *dead*; the revival
        // region recounts its counters against current adjacency — a
        // revalidated slot's counters are stale (frozen while invalid),
        // and a fresh slot starts at zero either way.
        let mut seeds: Vec<DynPair> = Vec::new();
        for &u in &enter {
            let ui = u as usize;
            match self.idx[ui].get(&v).copied() {
                Some(i) => {
                    debug_assert!(!self.alive[ui][i as usize], "invalid pairs are dead");
                    self.valid[ui][i as usize] = true;
                    self.valid_count[ui] += 1;
                }
                None => self.push_candidate_slot(u, v, q.successors(u).len()),
            }
            seeds.push((u, v));
        }
        self.revive_region(g, q, seeds);
    }

    /// Reacts to a node tombstone (`g` already dropped its incident edges,
    /// and those removals were already replayed through
    /// [`Self::on_edge_removed`]).
    pub fn on_node_removed(&mut self, q: &Pattern, v: NodeId) {
        for u in q.nodes() {
            let ui = u as usize;
            let Some(&i) = self.idx[ui].get(&v) else { continue };
            let i = i as usize;
            if !self.valid[ui][i] {
                continue;
            }
            self.valid[ui][i] = false;
            self.valid_count[ui] -= 1;
            if self.alive[ui][i] {
                // No incident edges remain, so no counters reference this
                // pair anymore — the flip cannot cascade.
                self.alive[ui][i] = false;
                self.alive_count[ui] -= 1;
                self.dirty.push((u, v));
            }
        }
    }

    /// Reacts to the removal of data edge `(v, w)` (`g` already updated).
    pub fn on_edge_removed(&mut self, g: &DynGraph, q: &Pattern, v: NodeId, w: NodeId) {
        let mut kill: Vec<DynPair> = Vec::new();
        for u in q.nodes() {
            let Some(i) = self.valid_index(u, v) else { continue };
            for (j, &uc) in q.successors(u).iter().enumerate() {
                if self.valid_index(uc, w).is_some_and(|iw| self.alive[uc as usize][iw]) {
                    self.dec_counter(u, i, j, &mut kill);
                }
            }
        }
        self.cascade_deaths(g, q, kill);
    }

    /// Reacts to the insertion of data edge `(v, w)` (`g` already updated).
    pub fn on_edge_inserted(&mut self, g: &DynGraph, q: &Pattern, v: NodeId, w: NodeId) {
        // 1. Counter maintenance: the new edge contributes one alive child
        //    per pattern edge whose child pair is alive.
        for u in q.nodes() {
            let Some(i) = self.valid_index(u, v) else { continue };
            for (j, &uc) in q.successors(u).iter().enumerate() {
                if self.valid_index(uc, w).is_some_and(|iw| self.alive[uc as usize][iw]) {
                    self.inc_counter(u, i, j);
                }
            }
        }

        // 2. Revival seeds: dead pairs of `v` whose support may now exist.
        let mut seeds: Vec<DynPair> = Vec::new();
        for u in q.nodes() {
            let Some(i) = self.valid_index(u, v) else { continue };
            if self.alive[u as usize][i] {
                continue;
            }
            let touches = q.successors(u).iter().any(|&uc| self.valid_index(uc, w).is_some());
            if touches {
                seeds.push((u, v));
            }
        }
        self.revive_region(g, q, seeds);
    }

    /// Optimistic revival from `seeds` (distinct **dead, valid** pairs that
    /// may have gained support): expands the region backward through dead
    /// candidate pairs, marks it alive (updating parent counters), recounts
    /// the region's own counters from current adjacency, then cascades
    /// deaths restricted to what cannot actually be supported. Pairs alive
    /// before the triggering mutation can never die here (their counters
    /// only ever gained), so this converges to the new greatest fixpoint.
    /// Survivors are recorded as dirty flips.
    ///
    /// Shared by edge insertion and attribute-entry candidacy: both create
    /// new potential support at specific pairs, and both need the region
    /// treatment because mutually-dependent dead pairs (cyclic patterns)
    /// must come alive together.
    fn revive_region(&mut self, g: &DynGraph, q: &Pattern, seeds: Vec<DynPair>) {
        let mut region = seeds;
        let mut seen: std::collections::HashSet<DynPair> = region.iter().copied().collect();
        let mut cursor = 0;
        while cursor < region.len() {
            let (u, x) = region[cursor];
            cursor += 1;
            for &t in q.predecessors(u) {
                for y in g.predecessors(x) {
                    let Some(iy) = self.valid_index(t, y) else { continue };
                    if self.alive[t as usize][iy] {
                        continue;
                    }
                    if seen.insert((t, y)) {
                        region.push((t, y));
                    }
                }
            }
        }
        if region.is_empty() {
            return;
        }

        // Optimistically revive the region: mark alive (updating parent
        // counters), recount the region's own counters, then cascade
        // deaths restricted to what cannot actually be supported.
        for &(u, x) in &region {
            let i = self.idx[u as usize][&x] as usize;
            self.alive[u as usize][i] = true;
            self.alive_count[u as usize] += 1;
            self.bump_parents(g, q, u, x, 1, &mut Vec::new());
        }
        let mut kill: Vec<DynPair> = Vec::new();
        for &(u, x) in &region {
            let ui = u as usize;
            let i = self.idx[ui][&x] as usize;
            let d = q.successors(u).len();
            let mut z = 0u32;
            for (j, &uc) in q.successors(u).iter().enumerate() {
                let c = g
                    .successors(x)
                    .filter(|&y| {
                        self.valid_index(uc, y).is_some_and(|iy| self.alive[uc as usize][iy])
                    })
                    .count() as u32;
                self.cnt[ui][i * d + j] = c;
                if c == 0 {
                    z += 1;
                }
            }
            self.zeros[ui][i] = z;
            if z > 0 {
                kill.push((u, x));
            }
        }
        for &(u, x) in &kill {
            // These never actually revived: undo the optimistic mark before
            // cascading, mirroring a normal death (parents were bumped).
            let i = self.idx[u as usize][&x] as usize;
            self.alive[u as usize][i] = false;
            self.alive_count[u as usize] -= 1;
        }
        let mut follow: Vec<DynPair> = Vec::new();
        for &(u, x) in &kill {
            self.bump_parents(g, q, u, x, -1, &mut follow);
        }
        self.cascade_deaths(g, q, follow);

        // Record survivors as dirty flips.
        for &(u, x) in &region {
            let i = self.idx[u as usize][&x] as usize;
            if self.alive[u as usize][i] {
                self.dirty.push((u, x));
            }
        }
    }

    // ------------------------------------------------------------ internals

    /// Local index of `v` in `can(u)` when the candidate is valid.
    #[inline]
    fn valid_index(&self, u: PNodeId, v: NodeId) -> Option<usize> {
        let &i = self.idx[u as usize].get(&v)?;
        self.valid[u as usize][i as usize].then_some(i as usize)
    }

    /// Decrements counter `(u, i, j)`; on a 0-transition of an alive pair,
    /// records the death in `kill`.
    fn dec_counter(&mut self, u: PNodeId, i: usize, j: usize, kill: &mut Vec<DynPair>) {
        let ui = u as usize;
        let d = self.cnt[ui].len() / self.cand[ui].len().max(1);
        let slot = i * d + j;
        self.cnt[ui][slot] -= 1;
        if self.cnt[ui][slot] == 0 {
            self.zeros[ui][i] += 1;
            if self.alive[ui][i] {
                self.alive[ui][i] = false;
                self.alive_count[ui] -= 1;
                self.dirty.push((u, self.cand[ui][i]));
                kill.push((u, self.cand[ui][i]));
            }
        }
    }

    /// Increments counter `(u, i, j)`, tracking the zero count.
    fn inc_counter(&mut self, u: PNodeId, i: usize, j: usize) {
        let ui = u as usize;
        let d = self.cnt[ui].len() / self.cand[ui].len().max(1);
        let slot = i * d + j;
        if self.cnt[ui][slot] == 0 {
            self.zeros[ui][i] -= 1;
        }
        self.cnt[ui][slot] += 1;
    }

    /// Adjusts the counters of all valid parent pairs of `(u, x)` by
    /// `delta` (±1), collecting deaths into `kill` when decrementing.
    fn bump_parents(
        &mut self,
        g: &DynGraph,
        q: &Pattern,
        u: PNodeId,
        x: NodeId,
        delta: i32,
        kill: &mut Vec<DynPair>,
    ) {
        for &t in q.predecessors(u) {
            let j = q.successors(t).binary_search(&u).expect("pattern edge must exist");
            for y in g.predecessors(x) {
                let Some(iy) = self.valid_index(t, y) else { continue };
                if delta > 0 {
                    self.inc_counter(t, iy, j);
                } else {
                    self.dec_counter(t, iy, j, kill);
                }
            }
        }
    }

    /// Standard death cascade from an initial kill list.
    fn cascade_deaths(&mut self, g: &DynGraph, q: &Pattern, mut kill: Vec<DynPair>) {
        while let Some((u, x)) = kill.pop() {
            self.bump_parents(g, q, u, x, -1, &mut kill);
        }
    }

    /// Debug validation: every **valid** pair's counters equal its true
    /// alive-child count and `alive ⇔ zeros == 0`; invalid pairs
    /// (tombstoned nodes or attr-flipped ex-candidates) are dead and their
    /// counters frozen — the update hooks never read or write them while
    /// invalid, and an attr re-entry recounts them before use. Candidacy
    /// is also checked both ways: valid slots hold exactly the live nodes
    /// satisfying the predicate (`O(|Vp| · |V|)` + `O(|pairs| · deg)`).
    pub fn check_invariants(&self, g: &DynGraph, q: &Pattern) -> bool {
        for u in q.nodes() {
            let ui = u as usize;
            let pred = q.predicate(u);
            for (i, &v) in self.cand[ui].iter().enumerate() {
                let holds = !g.is_removed(v) && pred.eval(g.label(v), Some(g.attributes(v)));
                if self.valid[ui][i] != holds {
                    eprintln!(
                        "candidate soundness: valid[{u}][{v}] = {} but predicate holds = {holds}",
                        self.valid[ui][i]
                    );
                    return false;
                }
            }
            let vc = self.valid[ui].iter().filter(|&&x| x).count();
            if vc != self.valid_count[ui] {
                eprintln!("valid_count[{u}] = {} but {vc} valid flags", self.valid_count[ui]);
                return false;
            }
            for v in 0..g.node_count() as NodeId {
                if !g.is_removed(v)
                    && pred.eval(g.label(v), Some(g.attributes(v)))
                    && !self.is_candidate(u, v)
                {
                    eprintln!("candidate completeness: live node {v} satisfies {u} but is absent");
                    return false;
                }
            }
        }
        for u in q.nodes() {
            let ui = u as usize;
            let d = q.successors(u).len();
            for (i, &v) in self.cand[ui].iter().enumerate() {
                if !self.valid[ui][i] {
                    if self.alive[ui][i] {
                        eprintln!("invalid pair ({u},{v}) must be dead");
                        return false;
                    }
                    continue;
                }
                let mut z = 0;
                for (j, &uc) in q.successors(u).iter().enumerate() {
                    let expect = g
                        .successors(v)
                        .filter(|&w| {
                            self.valid_index(uc, w).is_some_and(|iw| self.alive[uc as usize][iw])
                        })
                        .count() as u32;
                    if self.cnt[ui][i * d + j] != expect {
                        eprintln!(
                            "cnt[{u}][{v} slot {j}] = {} but true alive-child count {expect}",
                            self.cnt[ui][i * d + j]
                        );
                        return false;
                    }
                    if expect == 0 {
                        z += 1;
                    }
                }
                if self.zeros[ui][i] != z {
                    eprintln!("zeros[{u}][{v}] = {} but {z} zero slots", self.zeros[ui][i]);
                    return false;
                }
                if self.alive[ui][i] != (self.valid[ui][i] && z == 0) {
                    eprintln!(
                        "alive[{u}][{v}] = {} but valid={} zeros={z}",
                        self.alive[ui][i], self.valid[ui][i]
                    );
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute_simulation;
    use gpm_graph::builder::graph_from_parts;
    use gpm_graph::GraphDelta;
    use gpm_pattern::builder::label_pattern;

    /// Replays a delta through graph + state and checks against a
    /// from-scratch run on the snapshot.
    fn check_equiv(g: &mut DynGraph, state: &mut IncSimState, q: &Pattern, delta: &GraphDelta) {
        use gpm_graph::EffectiveOp;
        g.apply_with(delta, |g, eff| match eff {
            EffectiveOp::NodeAdded(v, _) => state.on_node_added(g, q, *v),
            EffectiveOp::EdgeAdded(s, t) => state.on_edge_inserted(g, q, *s, *t),
            EffectiveOp::EdgeRemoved(s, t) => state.on_edge_removed(g, q, *s, *t),
            EffectiveOp::NodeRemoved(v) => state.on_node_removed(q, *v),
            EffectiveOp::AttrSet { node, key, .. } | EffectiveOp::AttrUnset { node, key } => {
                state.on_attr_changed(g, q, *node, key)
            }
        })
        .unwrap();
        if !state.check_invariants(g, q) {
            let snap = g.snapshot();
            let edges: Vec<_> = snap.edges().map(|e| (e.source, e.target)).collect();
            panic!(
                "counter invariants after {delta:?}\n labels {:?}\n edges {edges:?}\n pattern {:?} / {:?}",
                snap.labels(),
                q.nodes().map(|u| q.predicate(u).primary_label()).collect::<Vec<_>>(),
                q.edges().collect::<Vec<_>>()
            );
        }
        let snap = g.snapshot();
        let fresh = compute_simulation(&snap, q);
        assert_eq!(state.graph_matches(q), fresh.graph_matches());
        for u in q.nodes() {
            assert_eq!(
                state.matches_of(q, u),
                fresh.matches_of(u),
                "pattern node {u} after {delta:?}"
            );
        }
    }

    #[test]
    fn deletion_cascades() {
        // Chain a→b→c; deleting (1,2) kills the whole chain match.
        let g0 = graph_from_parts(&[0, 1, 2], &[(0, 1), (1, 2)]).unwrap();
        let q = label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        let mut g = DynGraph::from_digraph(&g0);
        let mut s = IncSimState::new(&g, &q).unwrap();
        assert_eq!(s.output_matches(&q), vec![0]);
        check_equiv(&mut g, &mut s, &q, &GraphDelta::new().remove_edge(1, 2));
        assert!(s.output_matches(&q).is_empty());
    }

    #[test]
    fn insertion_revives_cyclic_mutual_support() {
        // Pattern A ⇄ B. Data 0(a)→1(b); inserting 1→0 must revive both
        // pairs at once — the case plain counter increments cannot see.
        let g0 = graph_from_parts(&[0, 1], &[(0, 1)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1), (1, 0)], 0).unwrap();
        let mut g = DynGraph::from_digraph(&g0);
        let mut s = IncSimState::new(&g, &q).unwrap();
        assert!(s.output_matches(&q).is_empty());
        check_equiv(&mut g, &mut s, &q, &GraphDelta::new().add_edge(1, 0));
        assert_eq!(s.output_matches(&q), vec![0]);
    }

    #[test]
    fn node_churn() {
        let g0 = graph_from_parts(&[0, 1], &[(0, 1)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let mut g = DynGraph::from_digraph(&g0);
        let mut s = IncSimState::new(&g, &q).unwrap();
        // Add a fresh `a` node wired to a fresh `b` node.
        check_equiv(&mut g, &mut s, &q, &GraphDelta::new().add_node(0).add_node(1).add_edge(2, 3));
        assert_eq!(s.output_matches(&q), vec![0, 2]);
        // Tombstone the original `b`: node 0 loses its only support.
        check_equiv(&mut g, &mut s, &q, &GraphDelta::new().remove_node(1));
        assert_eq!(s.output_matches(&q), vec![2]);
    }

    #[test]
    fn randomized_streams_match_from_scratch() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(20130826);
        for trial in 0..150 {
            let n = rng.random_range(4..16usize);
            let labels: Vec<u32> = (0..n).map(|_| rng.random_range(0..3u32)).collect();
            let m = rng.random_range(0..n * 2);
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| (rng.random_range(0..n as u32), rng.random_range(0..n as u32)))
                .filter(|(a, b)| a != b)
                .collect();
            let g0 = graph_from_parts(&labels, &edges).unwrap();
            let pn = rng.random_range(1..4usize);
            let plabels: Vec<u32> = (0..pn).map(|_| rng.random_range(0..3u32)).collect();
            let mut pedges: Vec<(u32, u32)> = (1..pn as u32).map(|i| (i - 1, i)).collect();
            for _ in 0..rng.random_range(0..pn) {
                let a = rng.random_range(0..pn as u32);
                let b = rng.random_range(0..pn as u32);
                if a != b && !pedges.contains(&(a, b)) {
                    pedges.push((a, b));
                }
            }
            let q = label_pattern(&plabels, &pedges, 0).unwrap();
            let mut g = DynGraph::from_digraph(&g0);
            let Some(mut s) = IncSimState::new(&g, &q) else { panic!("pure label") };
            for step in 0..10 {
                let mut delta = GraphDelta::new();
                for _ in 0..rng.random_range(1..4usize) {
                    let cur = g.node_count() as u32;
                    match rng.random_range(0..10u32) {
                        0 => delta = delta.add_node(rng.random_range(0..3u32)),
                        1 => delta = delta.remove_node(rng.random_range(0..cur)),
                        2..=5 => {
                            delta = delta
                                .remove_edge(rng.random_range(0..cur), rng.random_range(0..cur))
                        }
                        _ => {
                            let a = rng.random_range(0..cur);
                            let b = rng.random_range(0..cur);
                            if a != b {
                                delta = delta.add_edge(a, b);
                            }
                        }
                    }
                }
                // check_equiv validates invariants + from-scratch agreement.
                let _ = (trial, step);
                check_equiv(&mut g, &mut s, &q, &delta);
            }
        }
    }

    fn attr_chain_pattern() -> Pattern {
        // A → B[k0 >= 5] → C, output A.
        use gpm_pattern::{CmpOp, PatternBuilder, Predicate};
        let mut b = PatternBuilder::new();
        b.node("A", Predicate::Label(0));
        b.node("B", Predicate::labeled(1, [Predicate::attr("k0", CmpOp::Ge, 5i64)]));
        b.node("C", Predicate::Label(2));
        b.edge_by_name("A", "B").unwrap();
        b.edge_by_name("B", "C").unwrap();
        b.output(0).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn attr_flip_enters_and_leaves_candidacy() {
        let g0 = graph_from_parts(&[0, 1, 2], &[(0, 1), (1, 2)]).unwrap();
        let q = attr_chain_pattern();
        let mut g = DynGraph::from_digraph(&g0);
        let mut s = IncSimState::new(&g, &q).unwrap();
        assert!(s.output_matches(&q).is_empty(), "node 1 has no k0 yet");
        assert_eq!(s.candidate_count(1), 0);

        // Entering candidacy revives the whole chain.
        check_equiv(&mut g, &mut s, &q, &GraphDelta::new().set_attr(1, "k0", 7i64));
        assert_eq!(s.output_matches(&q), vec![0]);
        assert_eq!(s.candidate_count(1), 1);

        // Overwriting below the threshold leaves candidacy and kills the
        // ancestor — v keeps its edges, so the cascade runs through them.
        check_equiv(&mut g, &mut s, &q, &GraphDelta::new().set_attr(1, "k0", 2i64));
        assert!(s.output_matches(&q).is_empty());
        assert_eq!(s.candidate_count(1), 0);

        // Re-entry revalidates the same slot (ids are never reused).
        check_equiv(&mut g, &mut s, &q, &GraphDelta::new().set_attr(1, "k0", 9i64));
        assert_eq!(s.output_matches(&q), vec![0]);

        // Unset leaves candidacy again.
        check_equiv(&mut g, &mut s, &q, &GraphDelta::new().unset_attr(1, "k0"));
        assert!(s.output_matches(&q).is_empty());
    }

    #[test]
    fn attr_entry_revives_mutual_support_cycle() {
        // Pattern A ⇄ B[k0 >= 1]. Data 0(a) ⇄ 1(b): the cycle exists
        // structurally, but (B,1) is no candidate until the attr lands —
        // then both pairs must come alive at once (the revival-region
        // case counter increments alone cannot see).
        use gpm_pattern::{CmpOp, PatternBuilder, Predicate};
        let mut b = PatternBuilder::new();
        b.node("A", Predicate::Label(0));
        b.node("B", Predicate::labeled(1, [Predicate::attr("k0", CmpOp::Ge, 1i64)]));
        b.edge_by_name("A", "B").unwrap();
        b.edge_by_name("B", "A").unwrap();
        b.output(0).unwrap();
        let q = b.build().unwrap();

        let g0 = graph_from_parts(&[0, 1], &[(0, 1), (1, 0)]).unwrap();
        let mut g = DynGraph::from_digraph(&g0);
        let mut s = IncSimState::new(&g, &q).unwrap();
        assert!(s.output_matches(&q).is_empty());
        check_equiv(&mut g, &mut s, &q, &GraphDelta::new().set_attr(1, "k0", 1i64));
        assert_eq!(s.output_matches(&q), vec![0]);
        // And the attr leaving kills both again.
        check_equiv(&mut g, &mut s, &q, &GraphDelta::new().unset_attr(1, "k0"));
        assert!(s.output_matches(&q).is_empty());
    }

    #[test]
    fn attr_set_on_fresh_node_in_same_batch() {
        // AddNode emits NodeAdded with empty attrs (no candidate), then the
        // batch's SetAttr flips it in — lockstep replay must handle both.
        let g0 = graph_from_parts(&[0, 2], &[]).unwrap();
        let q = attr_chain_pattern();
        let mut g = DynGraph::from_digraph(&g0);
        let mut s = IncSimState::new(&g, &q).unwrap();
        check_equiv(
            &mut g,
            &mut s,
            &q,
            &GraphDelta::new().add_node(1).add_edge(0, 2).add_edge(2, 1).set_attr(2, "k0", 6i64),
        );
        assert_eq!(s.output_matches(&q), vec![0]);
        // Tombstoning the attributed node: attrs are wiped with it, and a
        // later set_attr on the dead slot is filtered by the graph layer.
        check_equiv(&mut g, &mut s, &q, &GraphDelta::new().remove_node(2).set_attr(2, "k0", 9i64));
        assert!(s.output_matches(&q).is_empty());
    }

    #[test]
    fn randomized_attr_streams_match_from_scratch() {
        use gpm_pattern::{CmpOp, PatternBuilder, Predicate};
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(20220413);
        for _trial in 0..120 {
            let n = rng.random_range(4..14usize);
            let labels: Vec<u32> = (0..n).map(|_| rng.random_range(0..3u32)).collect();
            let m = rng.random_range(0..n * 2);
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| (rng.random_range(0..n as u32), rng.random_range(0..n as u32)))
                .filter(|(a, b)| a != b)
                .collect();
            let mut gb = gpm_graph::GraphBuilder::new();
            for &l in &labels {
                // Some nodes start with attributes already set.
                if rng.random_range(0..3u32) == 0 {
                    gb.add_node_with_attrs(
                        l,
                        gpm_graph::Attributes::from_pairs([("k0", rng.random_range(0..4i64))]),
                    );
                } else {
                    gb.add_node(l);
                }
            }
            for &(a, b) in &edges {
                gb.add_edge(a, b).unwrap();
            }
            let g0 = gb.build();

            // Random pattern: chain + extra edges; ~half the nodes carry a
            // k0/k1 threshold condition on top of their label.
            let pn = rng.random_range(1..4usize);
            let mut pb = PatternBuilder::new();
            for i in 0..pn {
                let l = rng.random_range(0..3u32);
                let pred = if rng.random_range(0..2u32) == 0 {
                    let key = if rng.random_range(0..2u32) == 0 { "k0" } else { "k1" };
                    let op = match rng.random_range(0..3u32) {
                        0 => CmpOp::Ge,
                        1 => CmpOp::Lt,
                        _ => CmpOp::Eq,
                    };
                    Predicate::labeled(l, [Predicate::attr(key, op, rng.random_range(0..4i64))])
                } else {
                    Predicate::Label(l)
                };
                pb.node(format!("u{i}"), pred);
            }
            for i in 1..pn as u32 {
                pb.edge(i - 1, i).unwrap();
            }
            for _ in 0..rng.random_range(0..pn) {
                let a = rng.random_range(0..pn as u32);
                let b = rng.random_range(0..pn as u32);
                if a != b {
                    let _ = pb.edge(a, b);
                }
            }
            pb.output(0).unwrap();
            let q = pb.build().unwrap();

            let mut g = DynGraph::from_digraph(&g0);
            let mut s = IncSimState::new(&g, &q).unwrap();
            for _step in 0..8 {
                let mut delta = GraphDelta::new();
                for _ in 0..rng.random_range(1..4usize) {
                    let cur = g.node_count() as u32;
                    match rng.random_range(0..12u32) {
                        0 => delta = delta.add_node(rng.random_range(0..3u32)),
                        1 => delta = delta.remove_node(rng.random_range(0..cur)),
                        2..=4 => {
                            delta = delta
                                .remove_edge(rng.random_range(0..cur), rng.random_range(0..cur))
                        }
                        5..=7 => {
                            let a = rng.random_range(0..cur);
                            let b = rng.random_range(0..cur);
                            if a != b {
                                delta = delta.add_edge(a, b);
                            }
                        }
                        8..=10 => {
                            let key = if rng.random_range(0..2u32) == 0 { "k0" } else { "k1" };
                            delta = delta.set_attr(
                                rng.random_range(0..cur),
                                key,
                                rng.random_range(0..4i64),
                            );
                        }
                        _ => {
                            let key = if rng.random_range(0..2u32) == 0 { "k0" } else { "k1" };
                            delta = delta.unset_attr(rng.random_range(0..cur), key);
                        }
                    }
                }
                check_equiv(&mut g, &mut s, &q, &delta);
            }
        }
    }

    #[test]
    fn dirty_set_records_flips() {
        let g0 = graph_from_parts(&[0, 1, 1], &[(0, 1)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let mut g = DynGraph::from_digraph(&g0);
        let mut s = IncSimState::new(&g, &q).unwrap();
        s.take_dirty();
        check_equiv(&mut g, &mut s, &q, &GraphDelta::new().add_edge(0, 2));
        // (B,2) was already alive as a leaf? No: B has no pattern
        // successors, so (B,2) was alive from the start; only counters of
        // (A,0) changed — no alive flips.
        assert!(s.take_dirty().is_empty());
        check_equiv(&mut g, &mut s, &q, &GraphDelta::new().remove_edge(0, 1).remove_edge(0, 2));
        let dirty = s.take_dirty();
        assert!(dirty.contains(&(0, 0)), "output pair died: {dirty:?}");
    }
}
