//! Incremental maintenance of the maximum simulation under graph updates.
//!
//! [`IncSimState`] owns the per-pair survival flags and support counters of
//! a refinement run (seeded from [`crate::refine::refine_state`]) and keeps
//! them at the greatest fixpoint while the underlying [`DynGraph`] changes:
//!
//! * **Edge deletion** can only *shrink* `M(Q,G)`: decrement the affected
//!   counters and re-run the death cascade from pairs whose counter hit
//!   zero — exactly the static cascade, started mid-stream.
//! * **Edge insertion** can only *grow* `M(Q,G)`. Counter increments alone
//!   miss mutually-dependent revivals on cyclic patterns (two dead pairs
//!   that would support each other), so insertion collects the **revival
//!   region** — dead pairs backward-reachable from the inserted edge's
//!   source pairs through dead candidate pairs — optimistically marks it
//!   alive, recounts its counters and re-runs the death cascade inside the
//!   region. Pairs alive before the insertion can never die here
//!   (monotonicity), so the work is proportional to the affected region,
//!   not the graph.
//! * **Node addition** appends candidate pairs (alive iff the pattern node
//!   is a leaf — a fresh node has no edges yet; the batch's edge
//!   insertions then do the rest).
//! * **Node removal** arrives after its incident edges were removed, so
//!   pairs of the node are merely invalidated (dead + barred from
//!   revival).
//!
//! Every alive-flip is recorded in a per-batch **dirty set** the ranking
//! layer consumes to invalidate relevant sets.

use std::collections::HashMap;

use gpm_graph::dynamic::DynGraph;
use gpm_graph::NodeId;
use gpm_pattern::{PNodeId, Pattern};

use crate::candidates::CandidateSpace;
use crate::refine::refine_state;

/// A `(pattern node, data node)` pair in the dynamic state.
pub type DynPair = (PNodeId, NodeId);

/// Maximum simulation state that follows a [`DynGraph`].
#[derive(Debug, Clone)]
pub struct IncSimState {
    /// `cand[u]`: candidate data nodes of pattern node `u`, append-only
    /// (tombstoned candidates keep their slot, flagged invalid).
    cand: Vec<Vec<NodeId>>,
    /// `idx[u]`: data node → local index in `cand[u]`.
    idx: Vec<HashMap<NodeId, u32>>,
    /// `valid[u][i]`: candidate not tombstoned.
    valid: Vec<Vec<bool>>,
    /// `alive[u][i]`: pair in the maximum simulation (structurally).
    alive: Vec<Vec<bool>>,
    /// `cnt[u][i*d + j]`: alive children of `(u, cand[u][i])` under the
    /// `j`-th pattern edge of `u` (successor order), `d = outdeg(u)`.
    cnt: Vec<Vec<u32>>,
    /// `zeros[u][i]`: number of zero slots among the pair's counters.
    /// Invariant: `alive ⇔ valid ∧ zeros == 0`.
    zeros: Vec<Vec<u32>>,
    /// Alive pairs per pattern node (graph-matches bookkeeping).
    alive_count: Vec<usize>,
    /// Valid candidates per pattern node (`|can(u)|` of the current graph).
    valid_count: Vec<usize>,
    /// Pairs whose alive status flipped since the last `take_dirty`.
    dirty: Vec<DynPair>,
}

impl IncSimState {
    /// Builds the state for `q` over the current contents of `g`, resuming
    /// from a static refinement run. Returns `None` when the pattern uses
    /// non-label predicates (attribute predicates need node attributes,
    /// which the dynamic path does not carry).
    pub fn new(g: &DynGraph, q: &Pattern) -> Option<Self> {
        if q.nodes().any(|u| !q.predicate(u).is_pure_label()) {
            return None;
        }
        let snapshot = g.snapshot();
        let space = CandidateSpace::compute(&snapshot, q);
        let rs = refine_state(&snapshot, q, &space);

        let np = q.node_count();
        let mut state = IncSimState {
            cand: vec![Vec::new(); np],
            idx: vec![HashMap::new(); np],
            valid: vec![Vec::new(); np],
            alive: vec![Vec::new(); np],
            cnt: vec![Vec::new(); np],
            zeros: vec![Vec::new(); np],
            alive_count: vec![0; np],
            valid_count: vec![0; np],
            dirty: Vec::new(),
        };
        for u in q.nodes() {
            let d = q.successors(u).len();
            let list = space.candidates(u);
            let ui = u as usize;
            state.cand[ui] = list.to_vec();
            state.valid[ui] = vec![true; list.len()];
            state.valid_count[ui] = list.len();
            state.cnt[ui] = Vec::with_capacity(list.len() * d);
            for (i, &v) in list.iter().enumerate() {
                state.idx[ui].insert(v, i as u32);
                let p = space.pair_at(u, i) as usize;
                let a = rs.alive[p];
                state.alive[ui].push(a);
                if a {
                    state.alive_count[ui] += 1;
                }
                let base = rs.ebase[ui] + i * d;
                state.cnt[ui].extend_from_slice(&rs.counters[base..base + d]);
                let z = (0..d).filter(|&j| rs.counters[base + j] == 0).count() as u32;
                state.zeros[ui].push(z);
                debug_assert_eq!(a, z == 0, "refine fixpoint invariant");
            }
        }
        Some(state)
    }

    // ------------------------------------------------------------ queries

    /// `true` iff every pattern node currently has an alive pair.
    pub fn graph_matches(&self, q: &Pattern) -> bool {
        q.nodes().all(|u| self.alive_count[u as usize] > 0)
    }

    /// `(u, v)` alive? (structural — emptiness rule not applied).
    #[inline]
    pub fn pair_alive(&self, u: PNodeId, v: NodeId) -> bool {
        match self.idx[u as usize].get(&v) {
            Some(&i) => self.alive[u as usize][i as usize],
            None => false,
        }
    }

    /// `true` iff `v` is a (valid) candidate of `u`.
    #[inline]
    pub fn is_candidate(&self, u: PNodeId, v: NodeId) -> bool {
        match self.idx[u as usize].get(&v) {
            Some(&i) => self.valid[u as usize][i as usize],
            None => false,
        }
    }

    /// `true` iff `v` has **ever** been a candidate of `u` — candidate
    /// slots are never deleted, so this includes tombstoned candidates.
    /// The ranking layer seeds its dirtiness sweep with this test: when a
    /// batch tombstones a node, the node's valid flags are already cleared
    /// by the time post-batch seeds are computed, yet the source pairs of
    /// its dropped edges still need sweeping.
    #[inline]
    pub fn ever_candidate(&self, u: PNodeId, v: NodeId) -> bool {
        self.idx[u as usize].contains_key(&v)
    }

    /// `|can(u)|` of the current graph.
    #[inline]
    pub fn candidate_count(&self, u: PNodeId) -> usize {
        self.valid_count[u as usize]
    }

    /// Alive matches of `u`, ascending (empty when `G` does not match `Q`).
    pub fn matches_of(&self, q: &Pattern, u: PNodeId) -> Vec<NodeId> {
        if !self.graph_matches(q) {
            return Vec::new();
        }
        self.structural_matches_of(u)
    }

    /// Alive matches of the output node, ascending.
    pub fn output_matches(&self, q: &Pattern) -> Vec<NodeId> {
        self.matches_of(q, q.output())
    }

    /// Alive pairs of `u` **ignoring the emptiness rule**, ascending. The
    /// ranking cache is maintained structurally so that when a revival
    /// makes `G ⊨ Q` again, the cached sets are already correct.
    pub fn structural_matches_of(&self, u: PNodeId) -> Vec<NodeId> {
        let mut m: Vec<NodeId> = self.cand[u as usize]
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.alive[u as usize][i])
            .map(|(_, &v)| v)
            .collect();
        m.sort_unstable();
        m
    }

    /// Total alive pairs (0 when the emptiness rule fires).
    pub fn len(&self, q: &Pattern) -> usize {
        if !self.graph_matches(q) {
            return 0;
        }
        self.alive_count.iter().sum()
    }

    /// `true` when no pair is alive.
    pub fn is_empty(&self, q: &Pattern) -> bool {
        self.len(q) == 0
    }

    /// Drains the pairs whose alive status flipped since the last call.
    pub fn take_dirty(&mut self) -> Vec<DynPair> {
        std::mem::take(&mut self.dirty)
    }

    // ------------------------------------------------------------ updates

    /// Reacts to a node addition (`g` already contains the node; it has no
    /// edges yet — the batch's edge insertions arrive separately).
    pub fn on_node_added(&mut self, g: &DynGraph, q: &Pattern, v: NodeId) {
        let label = g.label(v);
        for u in q.nodes() {
            let pred = q.predicate(u);
            if pred.primary_label() != Some(label) {
                continue;
            }
            let ui = u as usize;
            let d = q.successors(u).len();
            debug_assert!(!self.idx[ui].contains_key(&v), "node ids are never reused");
            let i = self.cand[ui].len();
            self.cand[ui].push(v);
            self.idx[ui].insert(v, i as u32);
            self.valid[ui].push(true);
            self.valid_count[ui] += 1;
            self.cnt[ui].extend(std::iter::repeat_n(0, d));
            self.zeros[ui].push(d as u32);
            let alive = d == 0; // leaves are unconditionally alive
            self.alive[ui].push(alive);
            if alive {
                self.alive_count[ui] += 1;
                self.dirty.push((u, v));
            }
        }
    }

    /// Reacts to a node tombstone (`g` already dropped its incident edges,
    /// and those removals were already replayed through
    /// [`Self::on_edge_removed`]).
    pub fn on_node_removed(&mut self, q: &Pattern, v: NodeId) {
        for u in q.nodes() {
            let ui = u as usize;
            let Some(&i) = self.idx[ui].get(&v) else { continue };
            let i = i as usize;
            if !self.valid[ui][i] {
                continue;
            }
            self.valid[ui][i] = false;
            self.valid_count[ui] -= 1;
            if self.alive[ui][i] {
                // No incident edges remain, so no counters reference this
                // pair anymore — the flip cannot cascade.
                self.alive[ui][i] = false;
                self.alive_count[ui] -= 1;
                self.dirty.push((u, v));
            }
        }
    }

    /// Reacts to the removal of data edge `(v, w)` (`g` already updated).
    pub fn on_edge_removed(&mut self, g: &DynGraph, q: &Pattern, v: NodeId, w: NodeId) {
        let mut kill: Vec<DynPair> = Vec::new();
        for u in q.nodes() {
            let Some(i) = self.valid_index(u, v) else { continue };
            for (j, &uc) in q.successors(u).iter().enumerate() {
                if self.valid_index(uc, w).is_some_and(|iw| self.alive[uc as usize][iw]) {
                    self.dec_counter(u, i, j, &mut kill);
                }
            }
        }
        self.cascade_deaths(g, q, kill);
    }

    /// Reacts to the insertion of data edge `(v, w)` (`g` already updated).
    pub fn on_edge_inserted(&mut self, g: &DynGraph, q: &Pattern, v: NodeId, w: NodeId) {
        // 1. Counter maintenance: the new edge contributes one alive child
        //    per pattern edge whose child pair is alive.
        for u in q.nodes() {
            let Some(i) = self.valid_index(u, v) else { continue };
            for (j, &uc) in q.successors(u).iter().enumerate() {
                if self.valid_index(uc, w).is_some_and(|iw| self.alive[uc as usize][iw]) {
                    self.inc_counter(u, i, j);
                }
            }
        }

        // 2. Revival region: dead pairs of `v` whose support may now exist,
        //    expanded backward through dead candidate pairs.
        let mut region: Vec<DynPair> = Vec::new();
        let mut seen: std::collections::HashSet<DynPair> = std::collections::HashSet::new();
        for u in q.nodes() {
            let Some(i) = self.valid_index(u, v) else { continue };
            if self.alive[u as usize][i] {
                continue;
            }
            let touches = q.successors(u).iter().any(|&uc| self.valid_index(uc, w).is_some());
            if touches && seen.insert((u, v)) {
                region.push((u, v));
            }
        }
        let mut cursor = 0;
        while cursor < region.len() {
            let (u, x) = region[cursor];
            cursor += 1;
            for &t in q.predecessors(u) {
                for y in g.predecessors(x) {
                    let Some(iy) = self.valid_index(t, y) else { continue };
                    if self.alive[t as usize][iy] {
                        continue;
                    }
                    if seen.insert((t, y)) {
                        region.push((t, y));
                    }
                }
            }
        }
        if region.is_empty() {
            return;
        }

        // 3. Optimistically revive the region: mark alive (updating parent
        //    counters), recount the region's own counters, then cascade
        //    deaths restricted to what cannot actually be supported. Pairs
        //    alive before the insertion can never die here (their counters
        //    only ever gained), so this converges to the new greatest
        //    fixpoint.
        for &(u, x) in &region {
            let i = self.idx[u as usize][&x] as usize;
            self.alive[u as usize][i] = true;
            self.alive_count[u as usize] += 1;
            self.bump_parents(g, q, u, x, 1, &mut Vec::new());
        }
        let mut kill: Vec<DynPair> = Vec::new();
        for &(u, x) in &region {
            let ui = u as usize;
            let i = self.idx[ui][&x] as usize;
            let d = q.successors(u).len();
            let mut z = 0u32;
            for (j, &uc) in q.successors(u).iter().enumerate() {
                let c = g
                    .successors(x)
                    .filter(|&y| {
                        self.valid_index(uc, y).is_some_and(|iy| self.alive[uc as usize][iy])
                    })
                    .count() as u32;
                self.cnt[ui][i * d + j] = c;
                if c == 0 {
                    z += 1;
                }
            }
            self.zeros[ui][i] = z;
            if z > 0 {
                kill.push((u, x));
            }
        }
        for &(u, x) in &kill {
            // These never actually revived: undo the optimistic mark before
            // cascading, mirroring a normal death (parents were bumped).
            let i = self.idx[u as usize][&x] as usize;
            self.alive[u as usize][i] = false;
            self.alive_count[u as usize] -= 1;
        }
        let mut follow: Vec<DynPair> = Vec::new();
        for &(u, x) in &kill {
            self.bump_parents(g, q, u, x, -1, &mut follow);
        }
        self.cascade_deaths(g, q, follow);

        // 4. Record survivors as dirty flips.
        for &(u, x) in &region {
            let i = self.idx[u as usize][&x] as usize;
            if self.alive[u as usize][i] {
                self.dirty.push((u, x));
            }
        }
    }

    // ------------------------------------------------------------ internals

    /// Local index of `v` in `can(u)` when the candidate is valid.
    #[inline]
    fn valid_index(&self, u: PNodeId, v: NodeId) -> Option<usize> {
        let &i = self.idx[u as usize].get(&v)?;
        self.valid[u as usize][i as usize].then_some(i as usize)
    }

    /// Decrements counter `(u, i, j)`; on a 0-transition of an alive pair,
    /// records the death in `kill`.
    fn dec_counter(&mut self, u: PNodeId, i: usize, j: usize, kill: &mut Vec<DynPair>) {
        let ui = u as usize;
        let d = self.cnt[ui].len() / self.cand[ui].len().max(1);
        let slot = i * d + j;
        self.cnt[ui][slot] -= 1;
        if self.cnt[ui][slot] == 0 {
            self.zeros[ui][i] += 1;
            if self.alive[ui][i] {
                self.alive[ui][i] = false;
                self.alive_count[ui] -= 1;
                self.dirty.push((u, self.cand[ui][i]));
                kill.push((u, self.cand[ui][i]));
            }
        }
    }

    /// Increments counter `(u, i, j)`, tracking the zero count.
    fn inc_counter(&mut self, u: PNodeId, i: usize, j: usize) {
        let ui = u as usize;
        let d = self.cnt[ui].len() / self.cand[ui].len().max(1);
        let slot = i * d + j;
        if self.cnt[ui][slot] == 0 {
            self.zeros[ui][i] -= 1;
        }
        self.cnt[ui][slot] += 1;
    }

    /// Adjusts the counters of all valid parent pairs of `(u, x)` by
    /// `delta` (±1), collecting deaths into `kill` when decrementing.
    fn bump_parents(
        &mut self,
        g: &DynGraph,
        q: &Pattern,
        u: PNodeId,
        x: NodeId,
        delta: i32,
        kill: &mut Vec<DynPair>,
    ) {
        for &t in q.predecessors(u) {
            let j = q.successors(t).binary_search(&u).expect("pattern edge must exist");
            for y in g.predecessors(x) {
                let Some(iy) = self.valid_index(t, y) else { continue };
                if delta > 0 {
                    self.inc_counter(t, iy, j);
                } else {
                    self.dec_counter(t, iy, j, kill);
                }
            }
        }
    }

    /// Standard death cascade from an initial kill list.
    fn cascade_deaths(&mut self, g: &DynGraph, q: &Pattern, mut kill: Vec<DynPair>) {
        while let Some((u, x)) = kill.pop() {
            self.bump_parents(g, q, u, x, -1, &mut kill);
        }
    }

    /// Debug validation: every **valid** pair's counters equal its true
    /// alive-child count and `alive ⇔ zeros == 0`; invalid (tombstoned)
    /// pairs are dead and their counters frozen — the update hooks never
    /// read or write them again, and the graph layer drops edge insertions
    /// onto tombstoned nodes as no-ops, so no future op can reference
    /// them. `O(|pairs| · deg)`.
    pub fn check_invariants(&self, g: &DynGraph, q: &Pattern) -> bool {
        for u in q.nodes() {
            let ui = u as usize;
            let d = q.successors(u).len();
            for (i, &v) in self.cand[ui].iter().enumerate() {
                if !self.valid[ui][i] {
                    if self.alive[ui][i] {
                        eprintln!("invalid pair ({u},{v}) must be dead");
                        return false;
                    }
                    continue;
                }
                let mut z = 0;
                for (j, &uc) in q.successors(u).iter().enumerate() {
                    let expect = g
                        .successors(v)
                        .filter(|&w| {
                            self.valid_index(uc, w).is_some_and(|iw| self.alive[uc as usize][iw])
                        })
                        .count() as u32;
                    if self.cnt[ui][i * d + j] != expect {
                        eprintln!(
                            "cnt[{u}][{v} slot {j}] = {} but true alive-child count {expect}",
                            self.cnt[ui][i * d + j]
                        );
                        return false;
                    }
                    if expect == 0 {
                        z += 1;
                    }
                }
                if self.zeros[ui][i] != z {
                    eprintln!("zeros[{u}][{v}] = {} but {z} zero slots", self.zeros[ui][i]);
                    return false;
                }
                if self.alive[ui][i] != (self.valid[ui][i] && z == 0) {
                    eprintln!(
                        "alive[{u}][{v}] = {} but valid={} zeros={z}",
                        self.alive[ui][i], self.valid[ui][i]
                    );
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute_simulation;
    use gpm_graph::builder::graph_from_parts;
    use gpm_graph::GraphDelta;
    use gpm_pattern::builder::label_pattern;

    /// Replays a delta through graph + state and checks against a
    /// from-scratch run on the snapshot.
    fn check_equiv(g: &mut DynGraph, state: &mut IncSimState, q: &Pattern, delta: &GraphDelta) {
        use gpm_graph::EffectiveOp;
        g.apply_with(delta, |g, eff| match eff {
            EffectiveOp::NodeAdded(v, _) => state.on_node_added(g, q, v),
            EffectiveOp::EdgeAdded(s, t) => state.on_edge_inserted(g, q, s, t),
            EffectiveOp::EdgeRemoved(s, t) => state.on_edge_removed(g, q, s, t),
            EffectiveOp::NodeRemoved(v) => state.on_node_removed(q, v),
        })
        .unwrap();
        if !state.check_invariants(g, q) {
            let snap = g.snapshot();
            let edges: Vec<_> = snap.edges().map(|e| (e.source, e.target)).collect();
            panic!(
                "counter invariants after {delta:?}\n labels {:?}\n edges {edges:?}\n pattern {:?} / {:?}",
                snap.labels(),
                q.nodes().map(|u| q.predicate(u).primary_label()).collect::<Vec<_>>(),
                q.edges().collect::<Vec<_>>()
            );
        }
        let snap = g.snapshot();
        let fresh = compute_simulation(&snap, q);
        assert_eq!(state.graph_matches(q), fresh.graph_matches());
        for u in q.nodes() {
            assert_eq!(
                state.matches_of(q, u),
                fresh.matches_of(u),
                "pattern node {u} after {delta:?}"
            );
        }
    }

    #[test]
    fn deletion_cascades() {
        // Chain a→b→c; deleting (1,2) kills the whole chain match.
        let g0 = graph_from_parts(&[0, 1, 2], &[(0, 1), (1, 2)]).unwrap();
        let q = label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        let mut g = DynGraph::from_digraph(&g0);
        let mut s = IncSimState::new(&g, &q).unwrap();
        assert_eq!(s.output_matches(&q), vec![0]);
        check_equiv(&mut g, &mut s, &q, &GraphDelta::new().remove_edge(1, 2));
        assert!(s.output_matches(&q).is_empty());
    }

    #[test]
    fn insertion_revives_cyclic_mutual_support() {
        // Pattern A ⇄ B. Data 0(a)→1(b); inserting 1→0 must revive both
        // pairs at once — the case plain counter increments cannot see.
        let g0 = graph_from_parts(&[0, 1], &[(0, 1)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1), (1, 0)], 0).unwrap();
        let mut g = DynGraph::from_digraph(&g0);
        let mut s = IncSimState::new(&g, &q).unwrap();
        assert!(s.output_matches(&q).is_empty());
        check_equiv(&mut g, &mut s, &q, &GraphDelta::new().add_edge(1, 0));
        assert_eq!(s.output_matches(&q), vec![0]);
    }

    #[test]
    fn node_churn() {
        let g0 = graph_from_parts(&[0, 1], &[(0, 1)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let mut g = DynGraph::from_digraph(&g0);
        let mut s = IncSimState::new(&g, &q).unwrap();
        // Add a fresh `a` node wired to a fresh `b` node.
        check_equiv(&mut g, &mut s, &q, &GraphDelta::new().add_node(0).add_node(1).add_edge(2, 3));
        assert_eq!(s.output_matches(&q), vec![0, 2]);
        // Tombstone the original `b`: node 0 loses its only support.
        check_equiv(&mut g, &mut s, &q, &GraphDelta::new().remove_node(1));
        assert_eq!(s.output_matches(&q), vec![2]);
    }

    #[test]
    fn randomized_streams_match_from_scratch() {
        use rand::rngs::StdRng;
        use rand::{RngExt, SeedableRng};
        let mut rng = StdRng::seed_from_u64(20130826);
        for trial in 0..150 {
            let n = rng.random_range(4..16usize);
            let labels: Vec<u32> = (0..n).map(|_| rng.random_range(0..3u32)).collect();
            let m = rng.random_range(0..n * 2);
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| (rng.random_range(0..n as u32), rng.random_range(0..n as u32)))
                .filter(|(a, b)| a != b)
                .collect();
            let g0 = graph_from_parts(&labels, &edges).unwrap();
            let pn = rng.random_range(1..4usize);
            let plabels: Vec<u32> = (0..pn).map(|_| rng.random_range(0..3u32)).collect();
            let mut pedges: Vec<(u32, u32)> = (1..pn as u32).map(|i| (i - 1, i)).collect();
            for _ in 0..rng.random_range(0..pn) {
                let a = rng.random_range(0..pn as u32);
                let b = rng.random_range(0..pn as u32);
                if a != b && !pedges.contains(&(a, b)) {
                    pedges.push((a, b));
                }
            }
            let q = label_pattern(&plabels, &pedges, 0).unwrap();
            let mut g = DynGraph::from_digraph(&g0);
            let Some(mut s) = IncSimState::new(&g, &q) else { panic!("pure label") };
            for step in 0..10 {
                let mut delta = GraphDelta::new();
                for _ in 0..rng.random_range(1..4usize) {
                    let cur = g.node_count() as u32;
                    match rng.random_range(0..10u32) {
                        0 => delta = delta.add_node(rng.random_range(0..3u32)),
                        1 => delta = delta.remove_node(rng.random_range(0..cur)),
                        2..=5 => {
                            delta = delta
                                .remove_edge(rng.random_range(0..cur), rng.random_range(0..cur))
                        }
                        _ => {
                            let a = rng.random_range(0..cur);
                            let b = rng.random_range(0..cur);
                            if a != b {
                                delta = delta.add_edge(a, b);
                            }
                        }
                    }
                }
                // check_equiv validates invariants + from-scratch agreement.
                let _ = (trial, step);
                check_equiv(&mut g, &mut s, &q, &delta);
            }
        }
    }

    #[test]
    fn dirty_set_records_flips() {
        let g0 = graph_from_parts(&[0, 1, 1], &[(0, 1)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let mut g = DynGraph::from_digraph(&g0);
        let mut s = IncSimState::new(&g, &q).unwrap();
        s.take_dirty();
        check_equiv(&mut g, &mut s, &q, &GraphDelta::new().add_edge(0, 2));
        // (B,2) was already alive as a leaf? No: B has no pattern
        // successors, so (B,2) was alive from the start; only counters of
        // (A,0) changed — no alive flips.
        assert!(s.take_dirty().is_empty());
        check_equiv(&mut g, &mut s, &q, &GraphDelta::new().remove_edge(0, 1).remove_edge(0, 2));
        let dirty = s.take_dirty();
        assert!(dirty.contains(&(0, 0)), "output pair died: {dirty:?}");
    }
}
