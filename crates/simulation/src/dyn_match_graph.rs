//! [`DynMatchGraph`]: the dynamic path's match-graph view.
//!
//! The static pipeline materializes a [`MatchGraph`](crate::MatchGraph)
//! from a CSR snapshot per query; the dynamic path instead maintains an
//! [`IncSimState`](crate::IncSimState) against a mutable
//! [`DynGraph`](gpm_graph::DynGraph) and historically re-derived each
//! dirty relevant set by an ad-hoc per-source BFS that shared nothing
//! across the dirty set. This view closes that gap: it packs the **alive
//! pairs** of the simulation into dense compact ids with sorted adjacency
//! and implements [`ReachView`](crate::ReachView), so the shared
//! condensation-and-bitset DP (`gpm-ranking::reach_sets`) is the single
//! reach engine for both worlds.
//!
//! Since PR 7 the view is **stateful across batches**: compact ids are
//! stable (a pair that dies keeps its slot as a tombstone and revives
//! into it), and [`DynMatchGraph::apply_pair_delta`] folds one batch's
//! simulation flips and data-edge changes into the adjacency in
//! `O(|Δ|·deg)` instead of rebuilding the packing from scratch. The
//! emitted [`PairDelta`] names exactly the pair-level births, deaths and
//! edge changes, which is what incremental condensation maintenance
//! (`gpm-ranking`'s `CondensationState`) consumes.
//!
//! The universe projection is the **data-node id** itself (not a per-query
//! compact universe): node ids are stable across updates while universes
//! are not, and the relevance cache's bitsets are keyed by node id — so
//! the DP's output bitsets can be stored in the cache directly, no
//! re-encoding.

use std::collections::{BTreeSet, HashMap};

use gpm_graph::dynamic::DynGraph;
use gpm_graph::scc::Successors;
use gpm_graph::NodeId;
use gpm_pattern::{PNodeId, Pattern};

use crate::incremental::IncSimState;
use crate::match_graph::ReachView;

/// One batch's effect on the pair graph, in compact ids: which slots came
/// alive, which died, and which pair edges appeared or disappeared
/// **between pairs that are alive after the batch**. Edges incident to a
/// dying pair are stripped silently (consumers learn enough from `died`);
/// edges incident to a born pair are always reported in `added`.
#[derive(Debug, Default, Clone)]
pub struct PairDelta {
    /// Slots that became alive (fresh or revived tombstones).
    pub born: Vec<u32>,
    /// Slots that became tombstones.
    pub died: Vec<u32>,
    /// Pair edges that newly exist between post-batch-alive pairs.
    pub added: Vec<(u32, u32)>,
    /// Pair edges that ceased to exist between post-batch-alive pairs.
    pub removed: Vec<(u32, u32)>,
}

impl PairDelta {
    /// `true` when the batch left the pair graph untouched.
    pub fn is_empty(&self) -> bool {
        self.born.is_empty()
            && self.died.is_empty()
            && self.added.is_empty()
            && self.removed.is_empty()
    }

    /// Number of pair-level changes (for churn thresholds).
    pub fn change_count(&self) -> usize {
        self.born.len() + self.died.len() + self.added.len() + self.removed.len()
    }
}

/// A pair graph over the alive pairs of an incremental simulation, with
/// sorted forward/backward adjacency, stable compact ids (tombstoned on
/// death, revived in place) and a data-node-id universe.
#[derive(Debug, Clone)]
pub struct DynMatchGraph {
    pnode: Vec<PNodeId>,
    gnode: Vec<NodeId>,
    /// `index[u]`: data node → compact id of the pair `(u, v)` (alive or
    /// tombstoned — slots are never reclaimed, revivals reuse them).
    index: Vec<HashMap<NodeId, u32>>,
    /// Sorted successor / predecessor compact ids per slot (empty for
    /// tombstones: a dying pair's incident edges are stripped).
    out: Vec<Vec<u32>>,
    inn: Vec<Vec<u32>>,
    alive: Vec<bool>,
    edges: usize,
    /// Universe width (≥ the graph's node count; callers size it to the
    /// relevance cache's bit width so DP outputs drop straight in).
    width: usize,
}

impl DynMatchGraph {
    /// Builds the view over the **alive pairs** of `sim` against the
    /// current contents of `g`. Compact ids are assigned pattern node by
    /// pattern node, data nodes ascending — deterministic regardless of
    /// the simulation's internal slot order. `width` is the universe the
    /// projection indexes into and must exceed every live node id.
    pub fn over_alive(g: &DynGraph, q: &Pattern, sim: &IncSimState, width: usize) -> Self {
        let np = q.node_count();
        let mut pnode = Vec::new();
        let mut gnode = Vec::new();
        let mut index: Vec<HashMap<NodeId, u32>> = vec![HashMap::new(); np];
        for u in q.nodes() {
            for v in sim.structural_matches_of(u) {
                let c = pnode.len() as u32;
                pnode.push(u);
                gnode.push(v);
                index[u as usize].insert(v, c);
            }
        }

        let n = pnode.len();
        let mut out: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut inn: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut edges = 0usize;
        for c in 0..n {
            let (u, v) = (pnode[c], gnode[c]);
            for &uc in q.successors(u) {
                for w in g.successors(v) {
                    if let Some(&cw) = index[uc as usize].get(&w) {
                        out[c].push(cw);
                        inn[cw as usize].push(c as u32);
                        edges += 1;
                    }
                }
            }
        }
        for adj in out.iter_mut().chain(inn.iter_mut()) {
            adj.sort_unstable();
        }
        debug_assert!(width >= g.node_count(), "universe must cover every node id");
        DynMatchGraph { pnode, gnode, index, out, inn, alive: vec![true; n], edges, width }
    }

    /// Folds one applied batch into the view: `flips` are the simulation's
    /// alive-flips (as drained by `take_dirty`), `added_edges` /
    /// `removed_edges` the batch's effective data-edge changes. `g` and
    /// `sim` must already be in their post-batch state. Returns the exact
    /// pair-level delta for condensation maintenance.
    pub fn apply_pair_delta(
        &mut self,
        g: &DynGraph,
        q: &Pattern,
        sim: &IncSimState,
        flips: &[(PNodeId, NodeId)],
        added_edges: &[(NodeId, NodeId)],
        removed_edges: &[(NodeId, NodeId)],
    ) -> PairDelta {
        let mut delta = PairDelta::default();

        // Classify flips against the view's current alive flags (a pair
        // can flip twice in one batch — only the net change matters), in
        // sorted order for determinism.
        let uniq: BTreeSet<(PNodeId, NodeId)> = flips.iter().copied().collect();
        let mut born_slots: Vec<u32> = Vec::new();
        for &(u, v) in &uniq {
            let now = sim.pair_alive(u, v);
            match self.index[u as usize].get(&v).copied() {
                Some(c) => {
                    if self.alive[c as usize] == now {
                        continue;
                    }
                    if now {
                        self.alive[c as usize] = true;
                        born_slots.push(c);
                        delta.born.push(c);
                    } else {
                        self.alive[c as usize] = false;
                        self.strip_edges(c);
                        delta.died.push(c);
                    }
                }
                None if now => {
                    let c = self.pnode.len() as u32;
                    self.pnode.push(u);
                    self.gnode.push(v);
                    self.index[u as usize].insert(v, c);
                    self.out.push(Vec::new());
                    self.inn.push(Vec::new());
                    self.alive.push(true);
                    born_slots.push(c);
                    delta.born.push(c);
                }
                None => {} // flipped on and back off without ever materializing
            }
        }

        // Data-edge removals between pairs that are both still alive
        // (edges incident to a death were stripped above).
        for &(v, w) in removed_edges {
            self.for_pair_edges(q, v, w, |view, c, cw| {
                if view.unlink(c, cw) {
                    delta.removed.push((c, cw));
                }
            });
        }

        // Born pairs wire up against the post-batch graph, both
        // directions; `link` refuses duplicates, so an edge between two
        // born pairs is reported once.
        for &c in &born_slots {
            let (u, v) = (self.pnode[c as usize], self.gnode[c as usize]);
            for &uc in q.successors(u) {
                for w in g.successors(v) {
                    if let Some(cw) = self.alive_compact(uc, w) {
                        if self.link(c, cw) {
                            delta.added.push((c, cw));
                        }
                    }
                }
            }
            for &up in q.predecessors(u) {
                for x in g.predecessors(v) {
                    if let Some(cp) = self.alive_compact(up, x) {
                        if self.link(cp, c) {
                            delta.added.push((cp, c));
                        }
                    }
                }
            }
        }

        // Data-edge insertions between surviving pairs (already-present
        // edges — e.g. wired by a birth above — are skipped).
        for &(v, w) in added_edges {
            self.for_pair_edges(q, v, w, |view, c, cw| {
                if view.link(c, cw) {
                    delta.added.push((c, cw));
                }
            });
        }

        delta
    }

    /// Invokes `f` on every pair edge `(c, cw)` the data edge `(v, w)`
    /// induces between **alive** pairs under `q`'s edges.
    fn for_pair_edges(
        &mut self,
        q: &Pattern,
        v: NodeId,
        w: NodeId,
        mut f: impl FnMut(&mut Self, u32, u32),
    ) {
        for u in q.nodes() {
            let Some(c) = self.alive_compact(u, v) else { continue };
            for &uc in q.successors(u) {
                if let Some(cw) = self.alive_compact(uc, w) {
                    f(self, c, cw);
                }
            }
        }
    }

    fn alive_compact(&self, u: PNodeId, v: NodeId) -> Option<u32> {
        let c = self.index[u as usize].get(&v).copied()?;
        self.alive[c as usize].then_some(c)
    }

    /// Inserts pair edge `a → b` unless present. Returns `true` on insert.
    fn link(&mut self, a: u32, b: u32) -> bool {
        let o = &mut self.out[a as usize];
        match o.binary_search(&b) {
            Ok(_) => false,
            Err(i) => {
                o.insert(i, b);
                let inn = &mut self.inn[b as usize];
                let j = inn.binary_search(&a).unwrap_err();
                inn.insert(j, a);
                self.edges += 1;
                true
            }
        }
    }

    /// Removes pair edge `a → b` if present. Returns `true` on removal.
    fn unlink(&mut self, a: u32, b: u32) -> bool {
        let o = &mut self.out[a as usize];
        match o.binary_search(&b) {
            Ok(i) => {
                o.remove(i);
                let inn = &mut self.inn[b as usize];
                let j = inn.binary_search(&a).expect("in-list mirrors out-list");
                inn.remove(j);
                self.edges -= 1;
                true
            }
            Err(_) => false,
        }
    }

    /// Strips every edge incident to `c` (a dying pair).
    fn strip_edges(&mut self, c: u32) {
        for s in std::mem::take(&mut self.out[c as usize]) {
            let inn = &mut self.inn[s as usize];
            let j = inn.binary_search(&c).expect("in-list mirrors out-list");
            inn.remove(j);
            self.edges -= 1;
        }
        for p in std::mem::take(&mut self.inn[c as usize]) {
            let o = &mut self.out[p as usize];
            let j = o.binary_search(&c).expect("out-list mirrors in-list");
            o.remove(j);
            self.edges -= 1;
        }
    }

    /// Number of slots (alive pairs **plus** tombstones — the id space).
    #[inline]
    pub fn len(&self) -> usize {
        self.pnode.len()
    }

    /// `true` when no slot exists.
    pub fn is_empty(&self) -> bool {
        self.pnode.is_empty()
    }

    /// Number of currently alive pairs.
    pub fn alive_count(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    /// `true` when slot `c` holds an alive pair.
    #[inline]
    pub fn is_alive(&self, c: u32) -> bool {
        self.alive[c as usize]
    }

    /// Number of pair edges.
    pub fn edge_count(&self) -> usize {
        self.edges
    }

    /// Compact id of the **alive** pair `(u, v)`, if it is in the view.
    #[inline]
    pub fn compact_of(&self, u: PNodeId, v: NodeId) -> Option<u32> {
        self.alive_compact(u, v)
    }

    /// Pattern node of compact pair `c`.
    #[inline]
    pub fn pattern_node(&self, c: u32) -> PNodeId {
        self.pnode[c as usize]
    }

    /// Data node of compact pair `c`.
    #[inline]
    pub fn data_node(&self, c: u32) -> NodeId {
        self.gnode[c as usize]
    }

    /// Successor pairs of `c`, ascending.
    #[inline]
    pub fn successors(&self, c: u32) -> &[u32] {
        &self.out[c as usize]
    }

    /// Predecessor pairs of `c`, ascending.
    #[inline]
    pub fn predecessors(&self, c: u32) -> &[u32] {
        &self.inn[c as usize]
    }
}

impl Successors for DynMatchGraph {
    fn node_count(&self) -> usize {
        self.len()
    }
    fn successors_of(&self, v: NodeId) -> &[NodeId] {
        &self.out[v as usize]
    }
}

impl ReachView for DynMatchGraph {
    fn universe_size(&self) -> usize {
        self.width
    }
    fn universe_pos(&self, c: u32) -> usize {
        self.gnode[c as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute_simulation;
    use crate::MatchGraph;
    use gpm_graph::builder::graph_from_parts;
    use gpm_graph::GraphDelta;
    use gpm_pattern::builder::label_pattern;

    /// The dynamic view over a freshly built state mirrors the static
    /// match graph: same pairs, same adjacency (modulo compact-id names).
    #[test]
    fn mirrors_static_match_graph() {
        let g0 =
            graph_from_parts(&[0, 1, 2, 1, 0], &[(0, 1), (1, 2), (0, 3), (3, 2), (4, 3)]).unwrap();
        let q = label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        let sim = compute_simulation(&g0, &q);
        let mg = MatchGraph::over_matches(&g0, &q, &sim);

        let dg = DynGraph::from_digraph(&g0);
        let inc = IncSimState::new(&dg, &q).unwrap();
        let view = DynMatchGraph::over_alive(&dg, &q, &inc, g0.node_count());

        assert_eq!(view.len(), mg.len());
        assert_eq!(view.alive_count(), mg.len());
        assert_eq!(view.edge_count(), mg.edge_count());
        for c in 0..mg.len() as u32 {
            let (u, v) = (mg.pattern_node(c), mg.data_node(c));
            let dc = view.compact_of(u, v).expect("pair present in both");
            assert_eq!(view.pattern_node(dc), u);
            assert_eq!(view.data_node(dc), v);
            let mut statics: Vec<(u32, u32)> =
                mg.successors(c).iter().map(|&s| (mg.pattern_node(s), mg.data_node(s))).collect();
            let mut dyns: Vec<(u32, u32)> = view
                .successors(dc)
                .iter()
                .map(|&s| (view.pattern_node(s), view.data_node(s)))
                .collect();
            statics.sort_unstable();
            dyns.sort_unstable();
            assert_eq!(statics, dyns, "adjacency of ({u},{v})");
        }
    }

    /// Dead pairs are excluded, and the universe projection is the node id.
    #[test]
    fn excludes_dead_pairs_and_projects_node_ids() {
        let g0 = graph_from_parts(&[0, 1, 1], &[(0, 1)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let dg = DynGraph::from_digraph(&g0);
        let inc = IncSimState::new(&dg, &q).unwrap();
        let view = DynMatchGraph::over_alive(&dg, &q, &inc, 64);
        // (A,0), (B,1), (B,2): all structurally alive (B is a leaf).
        assert_eq!(view.len(), 3);
        assert_eq!(view.universe_size(), 64);
        for c in 0..view.len() as u32 {
            assert_eq!(view.universe_pos(c), view.data_node(c) as usize);
        }
        assert!(view.compact_of(0, 1).is_none(), "label mismatch is no pair");
    }

    /// Replays a batch through sim + view and asserts the maintained view
    /// equals a scratch rebuild (same alive pairs, same adjacency).
    fn assert_view_matches_scratch(
        view: &DynMatchGraph,
        g: &DynGraph,
        q: &Pattern,
        sim: &IncSimState,
    ) {
        let fresh = DynMatchGraph::over_alive(g, q, sim, view.width);
        assert_eq!(view.alive_count(), fresh.len(), "alive pair count");
        assert_eq!(view.edge_count(), fresh.edge_count(), "pair edge count");
        for fc in 0..fresh.len() as u32 {
            let (u, v) = (fresh.pattern_node(fc), fresh.data_node(fc));
            let mc = view.compact_of(u, v).expect("alive pair present in maintained view");
            let mut want: Vec<(u32, u32)> = fresh
                .successors(fc)
                .iter()
                .map(|&s| (fresh.pattern_node(s), fresh.data_node(s)))
                .collect();
            let mut got: Vec<(u32, u32)> = view
                .successors(mc)
                .iter()
                .map(|&s| (view.pattern_node(s), view.data_node(s)))
                .collect();
            want.sort_unstable();
            got.sort_unstable();
            assert_eq!(got, want, "adjacency of ({u},{v})");
            let mut wantp: Vec<(u32, u32)> = fresh
                .predecessors(fc)
                .iter()
                .map(|&s| (fresh.pattern_node(s), fresh.data_node(s)))
                .collect();
            let mut gotp: Vec<(u32, u32)> = view
                .predecessors(mc)
                .iter()
                .map(|&s| (view.pattern_node(s), view.data_node(s)))
                .collect();
            wantp.sort_unstable();
            gotp.sort_unstable();
            assert_eq!(gotp, wantp, "predecessors of ({u},{v})");
        }
    }

    /// Kill-and-revive on a cycle: slots tombstone and revive in place,
    /// and the maintained adjacency tracks a scratch rebuild batch by
    /// batch.
    #[test]
    fn maintained_view_tracks_scratch_across_batches() {
        let g0 = graph_from_parts(&[0, 1, 0, 1], &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1), (1, 0)], 0).unwrap();
        let mut dg = DynGraph::from_digraph(&g0);
        let mut sim = IncSimState::new(&dg, &q).unwrap();
        sim.take_dirty();
        let mut view = DynMatchGraph::over_alive(&dg, &q, &sim, 64);
        let slots_before = view.len();

        let batches: Vec<GraphDelta> = vec![
            GraphDelta::new().remove_edge(1, 2),
            GraphDelta::new().add_edge(1, 2),
            GraphDelta::new().remove_node(3),
            GraphDelta::new().add_node(1).add_edge(2, 4).add_edge(4, 0),
        ];
        for delta in batches {
            let applied = dg
                .apply_with(&delta, |g, eff| {
                    use gpm_graph::EffectiveOp;
                    match *eff {
                        EffectiveOp::NodeAdded(v, _) => sim.on_node_added(g, &q, v),
                        EffectiveOp::EdgeAdded(s, t) => sim.on_edge_inserted(g, &q, s, t),
                        EffectiveOp::EdgeRemoved(s, t) => sim.on_edge_removed(g, &q, s, t),
                        EffectiveOp::NodeRemoved(v) => sim.on_node_removed(&q, v),
                        EffectiveOp::AttrSet { node, ref key, .. }
                        | EffectiveOp::AttrUnset { node, ref key } => {
                            sim.on_attr_changed(g, &q, node, key)
                        }
                    }
                })
                .expect("valid batch");
            let flips = sim.take_dirty();
            view.apply_pair_delta(
                &dg,
                &q,
                &sim,
                &flips,
                &applied.added_edges,
                &applied.removed_edges,
            );
            assert_view_matches_scratch(&view, &dg, &q, &sim);
        }
        assert!(view.len() >= slots_before, "slots are never reclaimed");
    }
}
