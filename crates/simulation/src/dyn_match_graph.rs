//! [`DynMatchGraph`]: the dynamic path's match-graph view.
//!
//! The static pipeline materializes a [`MatchGraph`](crate::MatchGraph)
//! from a CSR snapshot per query; the dynamic path instead maintains an
//! [`IncSimState`](crate::IncSimState) against a mutable
//! [`DynGraph`](gpm_graph::DynGraph) and historically re-derived each
//! dirty relevant set by an ad-hoc per-source BFS that shared nothing
//! across the dirty set. This view closes that gap: it packs the **alive
//! pairs** of the simulation into dense compact ids with CSR adjacency —
//! built once per batch, reused by every dirty output — and implements
//! [`ReachView`](crate::ReachView), so the shared condensation-and-bitset
//! DP (`gpm-ranking::reach_sets`) is the single reach engine for both
//! worlds.
//!
//! The universe projection is the **data-node id** itself (not a per-query
//! compact universe): node ids are stable across updates while universes
//! are not, and the relevance cache's bitsets are keyed by node id — so
//! the DP's output bitsets can be stored in the cache directly, no
//! re-encoding.

use std::collections::HashMap;

use gpm_graph::csr::Csr;
use gpm_graph::dynamic::DynGraph;
use gpm_graph::scc::Successors;
use gpm_graph::NodeId;
use gpm_pattern::{PNodeId, Pattern};

use crate::incremental::IncSimState;
use crate::match_graph::ReachView;

/// A pair graph over the alive pairs of an incremental simulation, with
/// forward CSR adjacency, dense compact ids and a data-node-id universe.
#[derive(Debug, Clone)]
pub struct DynMatchGraph {
    pnode: Vec<PNodeId>,
    gnode: Vec<NodeId>,
    /// `index[u]`: data node → compact id of the alive pair `(u, v)`.
    index: Vec<HashMap<NodeId, u32>>,
    fwd: Csr,
    /// Universe width (≥ the graph's node count; callers size it to the
    /// relevance cache's bit width so DP outputs drop straight in).
    width: usize,
}

impl DynMatchGraph {
    /// Builds the view over the **alive pairs** of `sim` against the
    /// current contents of `g`. Compact ids are assigned pattern node by
    /// pattern node, data nodes ascending — deterministic regardless of
    /// the simulation's internal slot order. `width` is the universe the
    /// projection indexes into and must exceed every live node id.
    pub fn over_alive(g: &DynGraph, q: &Pattern, sim: &IncSimState, width: usize) -> Self {
        let np = q.node_count();
        let mut pnode = Vec::new();
        let mut gnode = Vec::new();
        let mut index: Vec<HashMap<NodeId, u32>> = vec![HashMap::new(); np];
        for u in q.nodes() {
            for v in sim.structural_matches_of(u) {
                let c = pnode.len() as u32;
                pnode.push(u);
                gnode.push(v);
                index[u as usize].insert(v, c);
            }
        }

        let mut edges: Vec<(u32, u32)> = Vec::new();
        for c in 0..pnode.len() {
            let (u, v) = (pnode[c], gnode[c]);
            for &uc in q.successors(u) {
                for w in g.successors(v) {
                    if let Some(&cw) = index[uc as usize].get(&w) {
                        edges.push((c as u32, cw));
                    }
                }
            }
        }
        let fwd = Csr::from_edges(pnode.len(), &edges);
        debug_assert!(width >= g.node_count(), "universe must cover every node id");
        DynMatchGraph { pnode, gnode, index, fwd, width }
    }

    /// Number of alive pairs in the view.
    #[inline]
    pub fn len(&self) -> usize {
        self.pnode.len()
    }

    /// `true` when no pair is alive.
    pub fn is_empty(&self) -> bool {
        self.pnode.is_empty()
    }

    /// Number of pair edges.
    pub fn edge_count(&self) -> usize {
        self.fwd.edge_count()
    }

    /// Compact id of the alive pair `(u, v)`, if it is in the view.
    #[inline]
    pub fn compact_of(&self, u: PNodeId, v: NodeId) -> Option<u32> {
        self.index[u as usize].get(&v).copied()
    }

    /// Pattern node of compact pair `c`.
    #[inline]
    pub fn pattern_node(&self, c: u32) -> PNodeId {
        self.pnode[c as usize]
    }

    /// Data node of compact pair `c`.
    #[inline]
    pub fn data_node(&self, c: u32) -> NodeId {
        self.gnode[c as usize]
    }

    /// Successor pairs of `c`.
    #[inline]
    pub fn successors(&self, c: u32) -> &[u32] {
        self.fwd.neighbors(c)
    }
}

impl Successors for DynMatchGraph {
    fn node_count(&self) -> usize {
        self.len()
    }
    fn successors_of(&self, v: NodeId) -> &[NodeId] {
        self.fwd.neighbors(v)
    }
}

impl ReachView for DynMatchGraph {
    fn universe_size(&self) -> usize {
        self.width
    }
    fn universe_pos(&self, c: u32) -> usize {
        self.gnode[c as usize] as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compute_simulation;
    use crate::MatchGraph;
    use gpm_graph::builder::graph_from_parts;
    use gpm_pattern::builder::label_pattern;

    /// The dynamic view over a freshly built state mirrors the static
    /// match graph: same pairs, same adjacency (modulo compact-id names).
    #[test]
    fn mirrors_static_match_graph() {
        let g0 =
            graph_from_parts(&[0, 1, 2, 1, 0], &[(0, 1), (1, 2), (0, 3), (3, 2), (4, 3)]).unwrap();
        let q = label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        let sim = compute_simulation(&g0, &q);
        let mg = MatchGraph::over_matches(&g0, &q, &sim);

        let dg = DynGraph::from_digraph(&g0);
        let inc = IncSimState::new(&dg, &q).unwrap();
        let view = DynMatchGraph::over_alive(&dg, &q, &inc, g0.node_count());

        assert_eq!(view.len(), mg.len());
        assert_eq!(view.edge_count(), mg.edge_count());
        for c in 0..mg.len() as u32 {
            let (u, v) = (mg.pattern_node(c), mg.data_node(c));
            let dc = view.compact_of(u, v).expect("pair present in both");
            assert_eq!(view.pattern_node(dc), u);
            assert_eq!(view.data_node(dc), v);
            let mut statics: Vec<(u32, u32)> =
                mg.successors(c).iter().map(|&s| (mg.pattern_node(s), mg.data_node(s))).collect();
            let mut dyns: Vec<(u32, u32)> = view
                .successors(dc)
                .iter()
                .map(|&s| (view.pattern_node(s), view.data_node(s)))
                .collect();
            statics.sort_unstable();
            dyns.sort_unstable();
            assert_eq!(statics, dyns, "adjacency of ({u},{v})");
        }
    }

    /// Dead pairs are excluded, and the universe projection is the node id.
    #[test]
    fn excludes_dead_pairs_and_projects_node_ids() {
        let g0 = graph_from_parts(&[0, 1, 1], &[(0, 1)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let dg = DynGraph::from_digraph(&g0);
        let inc = IncSimState::new(&dg, &q).unwrap();
        let view = DynMatchGraph::over_alive(&dg, &q, &inc, 64);
        // (A,0), (B,1), (B,2): all structurally alive (B is a leaf).
        assert_eq!(view.len(), 3);
        assert_eq!(view.universe_size(), 64);
        for c in 0..view.len() as u32 {
            assert_eq!(view.universe_pos(c), view.data_node(c) as usize);
        }
        assert!(view.compact_of(0, 1).is_none(), "label mismatch is no pair");
    }
}
