//! The maximum simulation relation `M(Q,G)`.

use gpm_graph::{DiGraph, NodeId};
use gpm_pattern::{PNodeId, Pattern};

use crate::candidates::{CandidateSpace, PairId};

/// Result of simulation: which candidate pairs survive in the maximum
/// relation, plus the emptiness flag of the paper's semantics (`M(Q,G) = ∅`
/// when some pattern node has no match).
#[derive(Debug, Clone)]
pub struct SimRelation {
    space: CandidateSpace,
    /// `alive[p]` for pair id `p`: `(u,v) ∈ M(Q,G)` *structurally* — i.e.
    /// before the global emptiness rule is applied.
    alive: Vec<bool>,
    /// `true` iff every pattern node retains at least one match.
    matched: bool,
}

impl SimRelation {
    pub(crate) fn new(space: CandidateSpace, alive: Vec<bool>, q: &Pattern) -> Self {
        let matched = q
            .nodes()
            .all(|u| (0..space.candidate_count(u)).any(|i| alive[space.pair_at(u, i) as usize]));
        SimRelation { space, alive, matched }
    }

    /// The candidate space the relation was computed over.
    pub fn space(&self) -> &CandidateSpace {
        &self.space
    }

    /// `true` iff `G` matches `Q` (every pattern node has a match). When
    /// `false`, the paper defines `M(Q,G) = ∅` and `Mu(Q,G,uo) = ∅`.
    pub fn graph_matches(&self) -> bool {
        self.matched
    }

    /// `(u,v) ∈ M(Q,G)`?
    pub fn contains(&self, u: PNodeId, v: NodeId) -> bool {
        self.matched && self.space.pair_id(u, v).is_some_and(|p| self.alive[p as usize])
    }

    /// Raw per-pair survival (ignores the emptiness rule; used by engines).
    #[inline]
    pub fn pair_alive(&self, p: PairId) -> bool {
        self.alive[p as usize]
    }

    /// Matches of pattern node `u` (empty when `G` does not match `Q`).
    pub fn matches_of(&self, u: PNodeId) -> Vec<NodeId> {
        if !self.matched {
            return Vec::new();
        }
        self.space
            .candidates(u)
            .iter()
            .enumerate()
            .filter(|&(i, _)| self.alive[self.space.pair_at(u, i) as usize])
            .map(|(_, &v)| v)
            .collect()
    }

    /// `Mu(Q, G, uo)` — matches of the output node (Section 2.2).
    pub fn output_matches(&self, q: &Pattern) -> Vec<NodeId> {
        self.matches_of(q.output())
    }

    /// `|M(Q,G)|` — number of pairs in the relation (0 if `G` ⊭ `Q`).
    pub fn len(&self) -> usize {
        if !self.matched {
            return 0;
        }
        self.alive.iter().filter(|&&a| a).count()
    }

    /// `true` iff the relation is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Checks that the relation is a valid simulation of `q` in `g`:
    /// condition (2) label/predicate match is structural (candidates), so
    /// only condition (3) — child support — needs verifying. Used by tests
    /// and the property suite; `O(|M|·deg)`.
    pub fn verify_is_simulation(&self, g: &DiGraph, q: &Pattern) -> bool {
        for u in q.nodes() {
            for (i, &v) in self.space.candidates(u).iter().enumerate() {
                if !self.alive[self.space.pair_at(u, i) as usize] {
                    continue;
                }
                for &uc in q.successors(u) {
                    let supported = g.successors(v).iter().any(|&w| {
                        self.space.pair_id(uc, w).is_some_and(|p| self.alive[p as usize])
                    });
                    if !supported {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Checks maximality: no dead pair could be revived. For simulation the
    /// union of simulations is a simulation, so a relation is maximum iff no
    /// single pair can be added while keeping closure under condition (3)
    /// w.r.t. the *current* relation. `O(pairs·deg)`.
    pub fn verify_is_maximum(&self, g: &DiGraph, q: &Pattern) -> bool {
        for u in q.nodes() {
            for (i, &v) in self.space.candidates(u).iter().enumerate() {
                if self.alive[self.space.pair_at(u, i) as usize] {
                    continue;
                }
                // A dead pair must violate some pattern edge.
                let violates = q.successors(u).iter().any(|&uc| {
                    !g.successors(v)
                        .iter()
                        .any(|&w| self.space.pair_id(uc, w).is_some_and(|p| self.alive[p as usize]))
                });
                if !violates {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use crate::refine::compute_simulation;
    use gpm_graph::builder::graph_from_parts;
    use gpm_pattern::builder::label_pattern;

    #[test]
    fn relation_accessors() {
        // 0(a) → 1(b); pattern A→B.
        let g = graph_from_parts(&[0, 1, 0], &[(0, 1)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        assert!(sim.graph_matches());
        assert!(sim.contains(0, 0));
        assert!(!sim.contains(0, 2), "node 2 has no b-child");
        assert!(sim.contains(1, 1));
        assert_eq!(sim.matches_of(0), vec![0]);
        assert_eq!(sim.output_matches(&q), vec![0]);
        assert_eq!(sim.len(), 2);
        assert!(!sim.is_empty());
        assert!(sim.verify_is_simulation(&g, &q));
        assert!(sim.verify_is_maximum(&g, &q));
    }

    #[test]
    fn empty_when_pattern_node_unmatched() {
        let g = graph_from_parts(&[0, 0], &[(0, 1)]).unwrap();
        let q = label_pattern(&[0, 5], &[(0, 1)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        assert!(!sim.graph_matches());
        assert_eq!(sim.len(), 0);
        assert!(sim.is_empty());
        assert!(sim.matches_of(0).is_empty());
        assert!(!sim.contains(0, 0));
    }
}
