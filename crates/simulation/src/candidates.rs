//! Candidate spaces: `can(u)` for every pattern node, pair indexing, and the
//! compact *universe* of candidate data nodes.
//!
//! A data node `v` is a **candidate** of a query node `u` if it satisfies
//! `u`'s predicate (`L(v) = fv(u)` in the basic formulation). The paper's
//! algorithms work pair-wise — every `(u, v)` with `v ∈ can(u)` carries a
//! vector `v.T` — so this module assigns each such pair a dense id and maps
//! candidate data nodes into a compact universe `0..m` over which relevant
//! sets are bitsets.

use gpm_graph::{DiGraph, NodeId};
use gpm_pattern::{PNodeId, Pattern};

/// Dense identifier of a `(pattern node, candidate)` pair.
pub type PairId = u32;

/// Candidate sets of all pattern nodes plus pair/universe indexing.
#[derive(Debug, Clone)]
pub struct CandidateSpace {
    /// `cand[u]` = sorted candidate node ids of pattern node `u`.
    cand: Vec<Vec<NodeId>>,
    /// Prefix sums: pair id of `(u, i)` is `offset[u] + i`.
    offset: Vec<u32>,
    /// Bitmask per data node: bit `u` set iff the node is a candidate of
    /// pattern node `u` (patterns have ≤ 64 nodes — the paper's largest is
    /// 10). Enables O(1) "is `w` a candidate of `u'`?" tests during
    /// refinement.
    mask: Vec<u64>,
    /// Universe position of each data node (`u32::MAX` = not a candidate of
    /// any pattern node).
    uni_pos: Vec<u32>,
    /// Universe: deduplicated candidate node ids, sorted ascending.
    universe: Vec<NodeId>,
}

impl CandidateSpace {
    /// Maximum pattern size supported by the bitmask representation.
    pub const MAX_PATTERN_NODES: usize = 64;

    /// Enumerates candidates of every pattern node.
    ///
    /// Pure-label predicates use the graph's label index (`O(|can|)`); other
    /// predicates scan the label class when a primary label is implied, or
    /// all nodes otherwise.
    pub fn compute(g: &DiGraph, q: &Pattern) -> Self {
        assert!(
            q.node_count() <= Self::MAX_PATTERN_NODES,
            "patterns with more than {} nodes are not supported",
            Self::MAX_PATTERN_NODES
        );
        let mut cand: Vec<Vec<NodeId>> = Vec::with_capacity(q.node_count());
        for u in q.nodes() {
            let pred = q.predicate(u);
            let list: Vec<NodeId> = match pred.primary_label() {
                Some(l) if pred.is_pure_label() => g.nodes_with_label(l).to_vec(),
                Some(l) => {
                    g.nodes_with_label(l).iter().copied().filter(|&v| pred.matches(g, v)).collect()
                }
                None => g.nodes().filter(|&v| pred.matches(g, v)).collect(),
            };
            cand.push(list);
        }

        let mut offset = Vec::with_capacity(cand.len() + 1);
        let mut acc = 0u32;
        offset.push(0);
        for c in &cand {
            acc += c.len() as u32;
            offset.push(acc);
        }

        let mut mask = vec![0u64; g.node_count()];
        for (u, c) in cand.iter().enumerate() {
            for &v in c {
                mask[v as usize] |= 1u64 << u;
            }
        }

        let mut uni_pos = vec![u32::MAX; g.node_count()];
        let mut universe = Vec::new();
        for (v, &m) in mask.iter().enumerate() {
            if m != 0 {
                uni_pos[v] = universe.len() as u32;
                universe.push(v as NodeId);
            }
        }

        CandidateSpace { cand, offset, mask, uni_pos, universe }
    }

    /// Candidates of pattern node `u`, sorted by node id.
    #[inline]
    pub fn candidates(&self, u: PNodeId) -> &[NodeId] {
        &self.cand[u as usize]
    }

    /// `|can(u)|`.
    #[inline]
    pub fn candidate_count(&self, u: PNodeId) -> usize {
        self.cand[u as usize].len()
    }

    /// Total number of `(u, v)` pairs.
    #[inline]
    pub fn pair_count(&self) -> usize {
        *self.offset.last().unwrap() as usize
    }

    /// `true` iff `v` is a candidate of `u` (O(1) via the bitmask).
    #[inline]
    pub fn is_candidate(&self, u: PNodeId, v: NodeId) -> bool {
        self.mask[v as usize] & (1u64 << u) != 0
    }

    /// Bitmask of pattern nodes for which `v` is a candidate.
    #[inline]
    pub fn mask_of(&self, v: NodeId) -> u64 {
        self.mask[v as usize]
    }

    /// Pair id of `(u, v)`; `None` if `v ∉ can(u)`.
    pub fn pair_id(&self, u: PNodeId, v: NodeId) -> Option<PairId> {
        let list = &self.cand[u as usize];
        list.binary_search(&v).ok().map(|i| self.offset[u as usize] + i as u32)
    }

    /// Pair id of the `i`-th candidate of `u`.
    #[inline]
    pub fn pair_at(&self, u: PNodeId, i: usize) -> PairId {
        self.offset[u as usize] + i as u32
    }

    /// Decomposes a pair id back into `(pattern node, data node)`.
    pub fn pair_info(&self, p: PairId) -> (PNodeId, NodeId) {
        // offset is small (|Vp|+1 entries): partition_point is O(log |Vp|).
        let u = self.offset.partition_point(|&o| o <= p) - 1;
        let i = (p - self.offset[u]) as usize;
        (u as PNodeId, self.cand[u][i])
    }

    /// Pattern node of a pair id.
    #[inline]
    pub fn pair_pattern_node(&self, p: PairId) -> PNodeId {
        (self.offset.partition_point(|&o| o <= p) - 1) as PNodeId
    }

    /// Universe size `m` (number of distinct candidate data nodes).
    #[inline]
    pub fn universe_size(&self) -> usize {
        self.universe.len()
    }

    /// Universe position of data node `v`; `None` if `v` is no candidate.
    #[inline]
    pub fn universe_pos(&self, v: NodeId) -> Option<u32> {
        let p = self.uni_pos[v as usize];
        (p != u32::MAX).then_some(p)
    }

    /// Data node at universe position `i`.
    #[inline]
    pub fn universe_node(&self, i: u32) -> NodeId {
        self.universe[i as usize]
    }

    /// `true` if some pattern node has no candidate at all (then `G` cannot
    /// match `Q` and `M(Q,G) = ∅`).
    pub fn any_empty(&self) -> bool {
        self.cand.iter().any(|c| c.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::builder::graph_from_parts;
    use gpm_pattern::builder::label_pattern;

    fn setup() -> (DiGraph, Pattern) {
        // labels: two 0-nodes, three 1-nodes, one 7-node (never a candidate).
        let g = graph_from_parts(&[0, 0, 1, 1, 1, 7], &[(0, 2), (1, 3)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        (g, q)
    }

    #[test]
    fn candidate_sets_and_pairs() {
        let (g, q) = setup();
        let cs = CandidateSpace::compute(&g, &q);
        assert_eq!(cs.candidates(0), &[0, 1]);
        assert_eq!(cs.candidates(1), &[2, 3, 4]);
        assert_eq!(cs.candidate_count(1), 3);
        assert_eq!(cs.pair_count(), 5);
        assert!(!cs.any_empty());

        assert_eq!(cs.pair_id(0, 0), Some(0));
        assert_eq!(cs.pair_id(0, 1), Some(1));
        assert_eq!(cs.pair_id(1, 2), Some(2));
        assert_eq!(cs.pair_id(1, 4), Some(4));
        assert_eq!(cs.pair_id(0, 2), None);
        assert_eq!(cs.pair_at(1, 0), 2);

        for p in 0..cs.pair_count() as u32 {
            let (u, v) = cs.pair_info(p);
            assert_eq!(cs.pair_id(u, v), Some(p));
            assert_eq!(cs.pair_pattern_node(p), u);
        }
    }

    #[test]
    fn masks_and_universe() {
        let (g, q) = setup();
        let cs = CandidateSpace::compute(&g, &q);
        assert!(cs.is_candidate(0, 1));
        assert!(!cs.is_candidate(0, 2));
        assert!(cs.is_candidate(1, 4));
        assert_eq!(cs.mask_of(5), 0, "label 7 matches nothing");
        // Universe = nodes 0..4 (node 5 excluded).
        assert_eq!(cs.universe_size(), 5);
        assert_eq!(cs.universe_pos(5), None);
        for v in 0..5u32 {
            let p = cs.universe_pos(v).unwrap();
            assert_eq!(cs.universe_node(p), v);
        }
    }

    #[test]
    fn shared_labels_between_pattern_nodes() {
        // Two pattern nodes with the same label share candidates but get
        // distinct pairs.
        let g = graph_from_parts(&[0, 0], &[(0, 1)]).unwrap();
        let q = label_pattern(&[0, 0], &[(0, 1)], 0).unwrap();
        let cs = CandidateSpace::compute(&g, &q);
        assert_eq!(cs.pair_count(), 4);
        assert_eq!(cs.universe_size(), 2);
        assert_eq!(cs.mask_of(0), 0b11);
    }

    #[test]
    fn empty_candidates_detected() {
        let g = graph_from_parts(&[0], &[]).unwrap();
        let q = label_pattern(&[0, 9], &[(0, 1)], 0).unwrap();
        let cs = CandidateSpace::compute(&g, &q);
        assert!(cs.any_empty());
        assert_eq!(cs.candidate_count(1), 0);
    }

    #[test]
    fn attribute_predicate_candidates() {
        use gpm_graph::{Attributes, GraphBuilder};
        use gpm_pattern::{CmpOp, PatternBuilder, Predicate};
        let mut b = GraphBuilder::new();
        b.add_node_with_attrs(0, Attributes::from_pairs([("views", 100i64)]));
        b.add_node_with_attrs(0, Attributes::from_pairs([("views", 9i64)]));
        b.add_node(1);
        let g = b.build();
        let mut pb = PatternBuilder::new();
        pb.node("V", Predicate::labeled(0, [Predicate::attr("views", CmpOp::Gt, 50i64)]));
        pb.output(0).unwrap();
        let q = pb.build().unwrap();
        let cs = CandidateSpace::compute(&g, &q);
        assert_eq!(cs.candidates(0), &[0]);
    }
}
