//! The result graph of `Q` in `G`.
//!
//! The paper (Section 2.1, after Fan et al. 2010) notes that `M(Q,G)` "can be
//! depicted as the result graph of Q in G": the subgraph of `G` induced by
//! the matched nodes, restricted to edges that witness some pattern edge.
//! Examples and the Fig. 4 case study render these graphs.

use gpm_graph::{DiGraph, GraphBuilder, NodeId};
use gpm_pattern::Pattern;

use crate::match_graph::MatchGraph;
use crate::relation::SimRelation;

/// A result graph: a [`DiGraph`] over the matched data nodes, plus the
/// mapping back to original node ids.
#[derive(Debug, Clone)]
pub struct ResultGraph {
    /// The extracted graph; node `i` corresponds to `original[i]`.
    pub graph: DiGraph,
    /// Original data-node id of each result-graph node.
    pub original: Vec<NodeId>,
}

/// Extracts the result graph of a computed simulation.
pub fn result_graph(g: &DiGraph, q: &Pattern, sim: &SimRelation) -> ResultGraph {
    if !sim.graph_matches() {
        return ResultGraph { graph: GraphBuilder::new().build(), original: Vec::new() };
    }
    let mg = MatchGraph::over_matches(g, q, sim);

    // Collect distinct matched data nodes (sorted for determinism).
    let mut nodes: Vec<NodeId> = (0..mg.len() as u32).map(|c| mg.data_node(c)).collect();
    nodes.sort_unstable();
    nodes.dedup();

    let mut pos = std::collections::HashMap::with_capacity(nodes.len());
    for (i, &v) in nodes.iter().enumerate() {
        pos.insert(v, i as NodeId);
    }

    let mut b = GraphBuilder::with_capacity(nodes.len(), mg.edge_count());
    for &v in &nodes {
        match g.name(v) {
            Some(name) => {
                b.add_named_node(name, g.label(v));
            }
            None => {
                b.add_node(g.label(v));
            }
        }
    }
    // Project pair edges onto data nodes (duplicates deduped by the builder).
    for c in 0..mg.len() as u32 {
        let s = pos[&mg.data_node(c)];
        for &cw in mg.successors(c) {
            let t = pos[&mg.data_node(cw)];
            b.add_edge(s, t).expect("nodes exist");
        }
    }
    ResultGraph { graph: b.build(), original: nodes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::compute_simulation;
    use gpm_graph::builder::graph_from_parts;
    use gpm_pattern::builder::label_pattern;

    #[test]
    fn extracts_matched_subgraph() {
        // 0(a)→1(b), 2(a) unmatched (no b-child), 3(b) unmatched-from-a but
        // still a match of B (B is a leaf pattern node).
        let g = graph_from_parts(&[0, 1, 0, 1], &[(0, 1)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let rg = result_graph(&g, &q, &sim);
        assert_eq!(rg.original, vec![0, 1, 3]);
        assert_eq!(rg.graph.node_count(), 3);
        assert_eq!(rg.graph.edge_count(), 1);
        let i0 = rg.original.iter().position(|&v| v == 0).unwrap() as u32;
        let i1 = rg.original.iter().position(|&v| v == 1).unwrap() as u32;
        assert!(rg.graph.has_edge(i0, i1));
    }

    #[test]
    fn empty_when_no_match() {
        let g = graph_from_parts(&[0], &[]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let rg = result_graph(&g, &q, &sim);
        assert_eq!(rg.graph.node_count(), 0);
        assert!(rg.original.is_empty());
    }
}
