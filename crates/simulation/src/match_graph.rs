//! The match graph (and its candidate-pair superset, the product graph).
//!
//! Nodes are pairs `(u, v)`; there is an edge `(u,v) → (u',v')` iff
//! `(u,u') ∈ Ep` and `(v,v') ∈ E`. Over the pairs of `M(Q,G)` this is the
//! paper's *result graph* skeleton, and relevant sets are exactly strict
//! reachability in it:
//!
//! > `R(u,v)` includes all matches `v'` to which `v` can reach via a path of
//! > matches. (Section 3.1)
//!
//! Over **all candidate pairs** (the product graph) the same construction
//! yields the tight upper bounds `v.h` of Examples 7–8: the number of
//! distinct data nodes in candidate pairs strictly reachable from `(u,v)`
//! bounds `δr(u,v)` from above, because matches are candidates.

use gpm_graph::csr::Csr;
use gpm_graph::scc::Successors;
use gpm_graph::{DiGraph, NodeId};
use gpm_pattern::{PNodeId, Pattern};

use crate::candidates::{CandidateSpace, PairId};
use crate::relation::SimRelation;

/// Abstract pair-graph view the shared reach engine
/// (`gpm-ranking::reach_sets`) runs over: dense compact pair ids
/// `0..node_count()`, successor slices (via [`Successors`]), and a
/// projection of every compact pair onto a position in a fixed universe
/// of data nodes. The static pipeline implements it with a
/// [`MatchGraph`] + [`CandidateSpace`] pair ([`MatchGraph::reach_view`],
/// universe = the per-query compact candidate universe); the dynamic
/// path with a [`DynMatchGraph`](crate::DynMatchGraph) over the alive
/// pairs of an [`IncSimState`](crate::IncSimState) (universe = stable
/// data-node ids, the encoding the relevance cache persists across
/// batches). One DP, two worlds.
pub trait ReachView: Successors + Sync {
    /// Width of the universe the projections index into.
    fn universe_size(&self) -> usize;
    /// Universe position of compact pair `c`'s data node.
    fn universe_pos(&self, c: u32) -> usize;
}

impl<T: ReachView + ?Sized> ReachView for &T {
    fn universe_size(&self) -> usize {
        (**self).universe_size()
    }
    fn universe_pos(&self, c: u32) -> usize {
        (**self).universe_pos(c)
    }
}

/// A pair graph over a subset of candidate pairs, with forward and reverse
/// CSR adjacency and dense *compact* node ids.
#[derive(Debug, Clone)]
pub struct MatchGraph {
    full_to_compact: Vec<u32>,
    compact_to_full: Vec<PairId>,
    pnode: Vec<PNodeId>,
    gnode: Vec<NodeId>,
    fwd: Csr,
    rev: Csr,
}

pub const NOT_INCLUDED: u32 = u32::MAX;

impl MatchGraph {
    /// Builds the match graph over the **alive pairs** of a simulation.
    pub fn over_matches(g: &DiGraph, q: &Pattern, sim: &SimRelation) -> Self {
        Self::build(g, q, sim.space(), &mut |p| sim.pair_alive(p))
    }

    /// Builds the product graph over **all candidate pairs**.
    pub fn over_candidates(g: &DiGraph, q: &Pattern, space: &CandidateSpace) -> Self {
        Self::build(g, q, space, &mut |_| true)
    }

    fn build(
        g: &DiGraph,
        q: &Pattern,
        space: &CandidateSpace,
        include: &mut dyn FnMut(PairId) -> bool,
    ) -> Self {
        let total = space.pair_count();
        let mut full_to_compact = vec![NOT_INCLUDED; total];
        let mut compact_to_full = Vec::new();
        let mut pnode = Vec::new();
        let mut gnode = Vec::new();
        for u in q.nodes() {
            for (i, &v) in space.candidates(u).iter().enumerate() {
                let p = space.pair_at(u, i);
                if include(p) {
                    full_to_compact[p as usize] = compact_to_full.len() as u32;
                    compact_to_full.push(p);
                    pnode.push(u);
                    gnode.push(v);
                }
            }
        }

        let mut edges: Vec<(u32, u32)> = Vec::new();
        for (c, &p) in compact_to_full.iter().enumerate() {
            let (u, v) = (pnode[c], gnode[c]);
            debug_assert_eq!(space.pair_info(p), (u, v));
            for &uc in q.successors(u) {
                for &w in g.successors(v) {
                    if !space.is_candidate(uc, w) {
                        continue;
                    }
                    let pw = space.pair_id(uc, w).expect("candidate must have a pair id");
                    let cw = full_to_compact[pw as usize];
                    if cw != NOT_INCLUDED {
                        edges.push((c as u32, cw));
                    }
                }
            }
        }
        let n = compact_to_full.len();
        let fwd = Csr::from_edges(n, &edges);
        let rev = fwd.reversed(n);
        MatchGraph { full_to_compact, compact_to_full, pnode, gnode, fwd, rev }
    }

    /// Number of included pairs.
    #[inline]
    pub fn len(&self) -> usize {
        self.compact_to_full.len()
    }

    /// `true` when no pair is included.
    pub fn is_empty(&self) -> bool {
        self.compact_to_full.is_empty()
    }

    /// Number of pair edges.
    pub fn edge_count(&self) -> usize {
        self.fwd.edge_count()
    }

    /// Compact id of a full pair id, if included.
    #[inline]
    pub fn compact_of(&self, p: PairId) -> Option<u32> {
        let c = self.full_to_compact[p as usize];
        (c != NOT_INCLUDED).then_some(c)
    }

    /// Full pair id of a compact id.
    #[inline]
    pub fn full_of(&self, c: u32) -> PairId {
        self.compact_to_full[c as usize]
    }

    /// Pattern node of compact pair `c`.
    #[inline]
    pub fn pattern_node(&self, c: u32) -> PNodeId {
        self.pnode[c as usize]
    }

    /// Data node of compact pair `c`.
    #[inline]
    pub fn data_node(&self, c: u32) -> NodeId {
        self.gnode[c as usize]
    }

    /// Successor pairs of `c`.
    #[inline]
    pub fn successors(&self, c: u32) -> &[u32] {
        self.fwd.neighbors(c)
    }

    /// Predecessor pairs of `c`.
    #[inline]
    pub fn predecessors(&self, c: u32) -> &[u32] {
        self.rev.neighbors(c)
    }

    /// All compact ids of pairs belonging to pattern node `u`, in candidate
    /// order (compact ids of one pattern node are contiguous by
    /// construction).
    pub fn pairs_of_pattern_node(&self, u: PNodeId) -> impl Iterator<Item = u32> + '_ {
        (0..self.len() as u32).filter(move |&c| self.pnode[c as usize] == u)
    }

    /// This graph as a [`ReachView`] projecting onto `space`'s compact
    /// candidate universe — what the static reach engine runs over.
    pub fn reach_view<'a>(&'a self, space: &'a CandidateSpace) -> SpaceView<'a> {
        SpaceView { mg: self, space }
    }
}

/// The static [`ReachView`]: a [`MatchGraph`] projected onto its
/// [`CandidateSpace`]'s compact universe.
#[derive(Debug, Clone, Copy)]
pub struct SpaceView<'a> {
    mg: &'a MatchGraph,
    space: &'a CandidateSpace,
}

impl Successors for SpaceView<'_> {
    fn node_count(&self) -> usize {
        self.mg.len()
    }
    fn successors_of(&self, v: NodeId) -> &[NodeId] {
        self.mg.successors(v)
    }
}

impl ReachView for SpaceView<'_> {
    fn universe_size(&self) -> usize {
        self.space.universe_size()
    }
    fn universe_pos(&self, c: u32) -> usize {
        self.space.universe_pos(self.mg.data_node(c)).expect("candidate nodes are in the universe")
            as usize
    }
}

impl Successors for MatchGraph {
    fn node_count(&self) -> usize {
        self.len()
    }
    fn successors_of(&self, v: NodeId) -> &[NodeId] {
        self.successors(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::compute_simulation;
    use gpm_graph::builder::graph_from_parts;
    use gpm_pattern::builder::label_pattern;

    #[test]
    fn match_graph_over_chain() {
        // 0(a)→1(b)→2(c); 3(b) dangling (not a match of B).
        let g = graph_from_parts(&[0, 1, 2, 1], &[(0, 1), (1, 2), (0, 3)]).unwrap();
        let q = label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let mg = MatchGraph::over_matches(&g, &q, &sim);
        assert_eq!(mg.len(), 3, "pairs (A,0),(B,1),(C,2)");
        assert_eq!(mg.edge_count(), 2);
        // Product graph includes (B,3) too.
        let pg = MatchGraph::over_candidates(&g, &q, sim.space());
        assert_eq!(pg.len(), 4);
        assert_eq!(pg.edge_count(), 3, "(A,0)->(B,1),(A,0)->(B,3),(B,1)->(C,2)");
    }

    #[test]
    fn compact_full_roundtrip_and_adjacency() {
        let g = graph_from_parts(&[0, 1, 2], &[(0, 1), (1, 2)]).unwrap();
        let q = label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let mg = MatchGraph::over_matches(&g, &q, &sim);
        for c in 0..mg.len() as u32 {
            let p = mg.full_of(c);
            assert_eq!(mg.compact_of(p), Some(c));
            let (u, v) = sim.space().pair_info(p);
            assert_eq!(mg.pattern_node(c), u);
            assert_eq!(mg.data_node(c), v);
        }
        let a0 = mg.compact_of(sim.space().pair_id(0, 0).unwrap()).unwrap();
        let b1 = mg.compact_of(sim.space().pair_id(1, 1).unwrap()).unwrap();
        let c2 = mg.compact_of(sim.space().pair_id(2, 2).unwrap()).unwrap();
        assert_eq!(mg.successors(a0), &[b1]);
        assert_eq!(mg.predecessors(b1), &[a0]);
        assert_eq!(mg.successors(c2), &[] as &[u32]);
        assert_eq!(mg.pairs_of_pattern_node(1).collect::<Vec<_>>(), vec![b1]);
    }

    #[test]
    fn cyclic_pattern_match_graph_has_cycle() {
        let g = graph_from_parts(&[0, 1], &[(0, 1), (1, 0)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1), (1, 0)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let mg = MatchGraph::over_matches(&g, &q, &sim);
        assert_eq!(mg.len(), 2);
        assert_eq!(mg.edge_count(), 2);
        let cond = gpm_graph::Condensation::compute(&mg);
        assert_eq!(cond.component_count(), 1, "the two pairs form one SCC");
        assert!(cond.is_nontrivial(0));
    }
}
