//! Counter-based computation of the maximum simulation.
//!
//! For every pair `(u, v)` with `v ∈ can(u)` and every pattern edge
//! `(u, u')`, we maintain `cnt = |succ(v) ∩ alive(can(u'))|` — the number of
//! data children of `v` that still match `u'`. A pair dies when any of its
//! counters hits zero; each death decrements the counters of its candidate
//! parents, cascading to the greatest fixpoint. This is the standard
//! linear-time formulation of HHK refinement:
//! `O(Σ_u Σ_{v ∈ can(u)} deg(v) · outdeg(u)) ⊆ O(|Q||G|)` after an
//! `O(|V|)` candidate-mask pass, matching the paper's bound.

use gpm_graph::DiGraph;
use gpm_pattern::{PNodeId, Pattern};

use crate::candidates::{CandidateSpace, PairId};
use crate::relation::SimRelation;

/// Computes the maximum simulation `M(Q,G)` of `q` in `g`.
pub fn compute_simulation(g: &DiGraph, q: &Pattern) -> SimRelation {
    let space = CandidateSpace::compute(g, q);
    let alive = refine(g, q, &space);
    SimRelation::new(space, alive, q)
}

/// The full fixpoint state of a refinement run: survival flags plus the
/// support counters, **maintained for dead pairs too** (a dead pair's
/// counters keep tracking its alive children). The incremental engine
/// ([`crate::incremental`]) resumes from this state instead of recomputing
/// it, which is what makes `DynamicMatcher` construction cheap.
#[derive(Debug, Clone)]
pub struct RefineState {
    /// Per-pair survival (no emptiness rule applied).
    pub alive: Vec<bool>,
    /// Flattened counters: pair `(u, i)` with `d = outdeg(u)` owns
    /// `counters[ebase[u] + i*d .. +d]`, one slot per pattern edge of `u`
    /// in successor order; slot `j` counts the alive children under the
    /// `j`-th pattern edge.
    pub counters: Vec<u32>,
    /// Per-pattern-node offsets into `counters` (length `|Vp| + 1`).
    pub ebase: Vec<usize>,
}

/// Runs the refinement over a precomputed candidate space, returning the
/// per-pair survival flags (no emptiness rule applied).
pub fn refine(g: &DiGraph, q: &Pattern, space: &CandidateSpace) -> Vec<bool> {
    refine_state(g, q, space).alive
}

/// As [`refine`], but returns the full counter state for incremental resume.
pub fn refine_state(g: &DiGraph, q: &Pattern, space: &CandidateSpace) -> RefineState {
    let pair_count = space.pair_count();
    let mut alive = vec![true; pair_count];
    if pair_count == 0 {
        return RefineState { alive, counters: Vec::new(), ebase: vec![0; q.node_count() + 1] };
    }

    // Flattened counters: pair (u, i) with outdeg(u) = d(u) owns the slice
    // cnt[ebase(u) + i*d(u) .. +d(u)], one slot per pattern edge of u in
    // successor order.
    let mut ebase = Vec::with_capacity(q.node_count() + 1);
    let mut acc = 0usize;
    ebase.push(0);
    for u in q.nodes() {
        acc += space.candidate_count(u) * q.successors(u).len();
        ebase.push(acc);
    }
    let mut cnt = vec![0u32; acc];

    let mut dead: Vec<PairId> = Vec::new();

    // Initialize counters by scanning each candidate's successor list once.
    for u in q.nodes() {
        let succs_u = q.successors(u);
        let d = succs_u.len();
        if d == 0 {
            continue; // leaves: all candidates survive unconditionally
        }
        for (i, &v) in space.candidates(u).iter().enumerate() {
            let base = ebase[u as usize] + i * d;
            for &w in g.successors(v) {
                let m = space.mask_of(w);
                if m == 0 {
                    continue;
                }
                for (j, &uc) in succs_u.iter().enumerate() {
                    if m & (1u64 << uc) != 0 {
                        cnt[base + j] += 1;
                    }
                }
            }
            if (0..d).any(|j| cnt[base + j] == 0) {
                let p = space.pair_at(u, i);
                alive[p as usize] = false;
                dead.push(p);
            }
        }
    }

    // Edge index of (u, u') in u's successor list (successors are sorted).
    let edge_index = |u: PNodeId, uc: PNodeId| -> usize {
        q.successors(u).binary_search(&uc).expect("pattern edge must exist")
    };

    // Cascade deaths. Dead pairs keep receiving decrements so that, at the
    // fixpoint, every counter equals its pair's current alive-child count —
    // the invariant the incremental engine resumes from.
    while let Some(p) = dead.pop() {
        let (uc, vc) = space.pair_info(p);
        for &u in q.predecessors(uc) {
            let j = edge_index(u, uc);
            let d = q.successors(u).len();
            for &w in g.predecessors(vc) {
                if !space.is_candidate(u, w) {
                    continue;
                }
                let pw = space.pair_id(u, w).expect("mask and list agree");
                let local = (pw - space.pair_at(u, 0)) as usize;
                let slot = ebase[u as usize] + local * d + j;
                cnt[slot] -= 1;
                if cnt[slot] == 0 && alive[pw as usize] {
                    alive[pw as usize] = false;
                    dead.push(pw);
                }
            }
        }
    }

    RefineState { alive, counters: cnt, ebase }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::builder::graph_from_parts;
    use gpm_pattern::builder::label_pattern;

    #[test]
    fn chain_pattern_prunes_transitively() {
        // Data: a→b, b→c, plus an `a` with no chain below it.
        //  0(a)→1(b)→2(c), 3(a)→4(b), 5(a)
        let g = graph_from_parts(&[0, 1, 2, 0, 1, 0], &[(0, 1), (1, 2), (3, 4)]).unwrap();
        let q = label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        assert!(sim.graph_matches());
        assert_eq!(sim.matches_of(0), vec![0], "only node 0 has a full chain");
        assert_eq!(sim.matches_of(1), vec![1], "node 4 has no c-child");
        assert_eq!(sim.matches_of(2), vec![2]);
        assert!(sim.verify_is_simulation(&g, &q));
        assert!(sim.verify_is_maximum(&g, &q));
    }

    #[test]
    fn cycle_pattern_on_cycle_graph() {
        // Pattern: A ⇄ B. Data: 0(a)⇄1(b), and 2(a)→3(b) (no back edge).
        let g = graph_from_parts(&[0, 1, 0, 1], &[(0, 1), (1, 0), (2, 3)]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1), (1, 0)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        assert_eq!(sim.matches_of(0), vec![0]);
        assert_eq!(sim.matches_of(1), vec![1]);
        assert!(sim.verify_is_maximum(&g, &q));
    }

    #[test]
    fn self_loop_pattern() {
        // Pattern node with a self loop requires a data cycle of its label.
        let g = graph_from_parts(&[0, 0, 0], &[(0, 1), (1, 0), (1, 2)]).unwrap();
        let q = label_pattern(&[0], &[(0, 0)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        let m = sim.matches_of(0);
        assert_eq!(m, vec![0, 1], "node 2 has no outgoing edge to label 0");
    }

    #[test]
    fn no_match_graph() {
        let g = graph_from_parts(&[0, 1], &[]).unwrap();
        let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        assert!(!sim.graph_matches(), "no edge a→b exists");
        assert!(sim.output_matches(&q).is_empty());
    }

    #[test]
    fn single_node_pattern_matches_all_of_label() {
        let g = graph_from_parts(&[3, 3, 1], &[(0, 2)]).unwrap();
        let q = label_pattern(&[3], &[], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        assert_eq!(sim.matches_of(0), vec![0, 1]);
    }

    #[test]
    fn diamond_with_shared_child() {
        // Pattern: A→B, A→C, B→D, C→D (diamond).
        // Data mirrors the diamond exactly.
        let g = graph_from_parts(&[0, 1, 2, 3], &[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let q = label_pattern(&[0, 1, 2, 3], &[(0, 1), (0, 2), (1, 3), (2, 3)], 0).unwrap();
        let sim = compute_simulation(&g, &q);
        assert_eq!(sim.len(), 4);
        assert!(sim.verify_is_simulation(&g, &q));
    }
}
