//! # gpm-simulation
//!
//! Graph simulation (Henzinger, Henzinger, Kopke — FOCS'95), as used by the
//! paper (Section 2.1): a data graph `G` *matches* a pattern `Q` if there is
//! a binary relation `S ⊆ Vp × V` such that
//!
//! 1. every pattern node has at least one match,
//! 2. `(u,v) ∈ S` implies `fv(u) = L(v)`, and
//! 3. for every pattern edge `(u,u')` there is a data edge `(v,v')` with
//!    `(u',v') ∈ S`.
//!
//! When `G` matches `Q` there is a unique **maximum** such relation,
//! `M(Q,G)`, of size `O(|V|·|Vp|)`, computable in `O((|Vp|+|V|)(|Ep|+|E|))`
//! time. This crate computes it with a counter-based refinement
//! ([`refine::compute_simulation`]), validated against a naive fixpoint
//! oracle ([`naive::naive_simulation`]).
//!
//! It also builds the **match graph** ([`match_graph::MatchGraph`]): nodes
//! are the pairs of `M(Q,G)` and edges follow pattern edges — the structure
//! on which relevant sets `R(u,v)` (Section 3.1) are reachability sets, and
//! whose candidate-pair variant underpins the tight upper bounds `v.h` used
//! for early termination (Section 4).

pub mod candidates;
pub mod dyn_match_graph;
pub mod incremental;
pub mod match_graph;
pub mod naive;
pub mod refine;
pub mod relation;
pub mod result_graph;

pub use candidates::CandidateSpace;
pub use dyn_match_graph::{DynMatchGraph, PairDelta};
pub use incremental::IncSimState;
pub use match_graph::{MatchGraph, ReachView, SpaceView};
pub use refine::{compute_simulation, refine_state, RefineState};
pub use relation::SimRelation;
