//! Naive fixpoint simulation — the test oracle.
//!
//! Starts from all candidate pairs and repeatedly deletes any pair violating
//! the child-support condition until stable. `O(rounds · pairs · deg)` —
//! quadratic-ish and only suitable for small graphs, but its correctness is
//! evident from the definition, which makes it the reference the efficient
//! refinement is validated against (including property-based tests).

use gpm_graph::{DiGraph, NodeId};
use gpm_pattern::{PNodeId, Pattern};

use crate::candidates::CandidateSpace;
use crate::relation::SimRelation;

/// Computes `M(Q,G)` by naive deletion until fixpoint.
pub fn naive_simulation(g: &DiGraph, q: &Pattern) -> SimRelation {
    let space = CandidateSpace::compute(g, q);
    let mut alive = vec![true; space.pair_count()];
    let mut changed = true;
    while changed {
        changed = false;
        for u in q.nodes() {
            for (i, &v) in space.candidates(u).iter().enumerate() {
                let p = space.pair_at(u, i) as usize;
                if !alive[p] {
                    continue;
                }
                let ok = q.successors(u).iter().all(|&uc| {
                    g.successors(v)
                        .iter()
                        .any(|&w| space.pair_id(uc, w).is_some_and(|pw| alive[pw as usize]))
                });
                if !ok {
                    alive[p] = false;
                    changed = true;
                }
            }
        }
    }
    SimRelation::new(space, alive, q)
}

/// Convenience: the match-pair sets of two relations coincide.
pub fn relations_equal(a: &SimRelation, b: &SimRelation, q: &Pattern) -> bool {
    if a.graph_matches() != b.graph_matches() {
        return false;
    }
    q.nodes().all(|u| {
        let ma: Vec<NodeId> = a.matches_of(u);
        let mb: Vec<NodeId> = b.matches_of(u);
        ma == mb
    })
}

/// Exhaustive check that `rel` equals the naive fixpoint (test helper).
pub fn agrees_with_naive(g: &DiGraph, q: &Pattern, rel: &SimRelation) -> bool {
    let reference = naive_simulation(g, q);
    relations_equal(&reference, rel, q)
}

#[allow(unused)]
fn _assert_api(_: PNodeId) {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::refine::compute_simulation;
    use gpm_graph::builder::graph_from_parts;
    use gpm_pattern::builder::label_pattern;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    type GraphParts = (Vec<u32>, Vec<(u32, u32)>);

    #[test]
    fn agrees_on_fixed_cases() {
        let cases: Vec<GraphParts> = vec![
            (vec![0, 1, 2], vec![(0, 1), (1, 2)]),
            (vec![0, 1, 0, 1], vec![(0, 1), (1, 0), (2, 3)]),
            (vec![0; 5], vec![(0, 1), (1, 2), (2, 3), (3, 4), (4, 0)]),
        ];
        let patterns = vec![
            label_pattern(&[0, 1], &[(0, 1)], 0).unwrap(),
            label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap(),
            label_pattern(&[0, 0], &[(0, 1), (1, 0)], 0).unwrap(),
        ];
        for (labels, edges) in &cases {
            let g = graph_from_parts(labels, edges).unwrap();
            for q in &patterns {
                let fast = compute_simulation(&g, q);
                assert!(agrees_with_naive(&g, q, &fast));
            }
        }
    }

    #[test]
    fn randomized_agreement() {
        let mut rng = StdRng::seed_from_u64(42);
        for trial in 0..30 {
            let n = rng.random_range(3..25usize);
            let labels: Vec<u32> = (0..n).map(|_| rng.random_range(0..4u32)).collect();
            let m = rng.random_range(0..n * 3);
            let edges: Vec<(u32, u32)> = (0..m)
                .map(|_| (rng.random_range(0..n as u32), rng.random_range(0..n as u32)))
                .collect();
            let g = graph_from_parts(&labels, &edges).unwrap();

            let pn = rng.random_range(1..5usize);
            let plabels: Vec<u32> = (0..pn).map(|_| rng.random_range(0..4u32)).collect();
            let pedges: Vec<(u32, u32)> = (0..rng.random_range(0..pn * 2))
                .map(|_| (rng.random_range(0..pn as u32), rng.random_range(0..pn as u32)))
                .filter(|(a, b)| a != b)
                .collect();
            let q = label_pattern(&plabels, &pedges, 0).unwrap();

            let fast = compute_simulation(&g, &q);
            assert!(
                agrees_with_naive(&g, &q, &fast),
                "disagreement at trial {trial}: labels={labels:?} edges={edges:?} \
                 plabels={plabels:?} pedges={pedges:?}"
            );
            // And the fast result satisfies the definitional checks.
            assert!(fast.verify_is_simulation(&g, &q));
            assert!(fast.verify_is_maximum(&g, &q));
        }
    }
}
