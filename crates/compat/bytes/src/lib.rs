//! Offline drop-in replacement for the subset of the `bytes` crate used by
//! the graph snapshot format (`Bytes`, `BytesMut`, `Buf`, `BufMut`).
//! Big-endian integer encoding, matching the real crate.

use std::ops::Deref;

/// Immutable byte buffer (frozen `BytesMut`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data }
    }
}

/// Growable byte buffer.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn with_capacity(cap: usize) -> Self {
        BytesMut { data: Vec::with_capacity(cap) }
    }

    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Write side: append primitives in big-endian order.
pub trait BufMut {
    fn put_slice(&mut self, src: &[u8]);

    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

/// Read side: consume primitives from the front of a `&[u8]` cursor.
///
/// Reads past the end panic, as in the real crate; callers bounds-check via
/// [`Buf::remaining`] first.
pub trait Buf {
    fn remaining(&self) -> usize;
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(self.len() >= dst.len(), "buffer underflow");
        let (head, tail) = self.split_at(dst.len());
        dst.copy_from_slice(head);
        *self = tail;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut w = BytesMut::with_capacity(32);
        w.put_slice(b"GPMG");
        w.put_u16(1);
        w.put_u32(0xDEADBEEF);
        w.put_u64(42);
        let frozen = w.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.remaining(), 18);
        let mut magic = [0u8; 4];
        r.copy_to_slice(&mut magic);
        assert_eq!(&magic, b"GPMG");
        assert_eq!(r.get_u16(), 1);
        assert_eq!(r.get_u32(), 0xDEADBEEF);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.remaining(), 0);
    }
}
