//! Offline drop-in replacement for the subset of `serde_json` this
//! workspace uses: pretty-printing of [`serde::Value`] trees produced by the
//! stubbed [`serde::Serialize`], and a small recursive-descent [`from_str`]
//! parser back into [`Value`] trees (the delta log's replay path reads
//! JSON-lines records with it). Non-finite numbers print as `null`, like
//! the real crate.

use serde::Serialize;
pub use serde::Value;

/// Serialization never fails in the stub; parsing reports a byte offset and
/// message. The single error type keeps call sites source-compatible with
/// the real crate (`.expect(...)` / `?`).
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json stub error: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Renders `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Renders `value` as compact single-line JSON (like the real crate's
/// `to_string` — JSON-lines consumers depend on the one-line shape).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_compact(&value.to_value(), &mut out);
    Ok(out)
}

fn write_compact(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            if !n.is_finite() {
                out.push_str("null");
            } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(item, out);
            }
            out.push(']');
        }
        Value::Object(fields) => {
            out.push('{');
            for (i, (key, val)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_json_string(key, out);
                out.push(':');
                write_compact(val, out);
            }
            out.push('}');
        }
    }
}

fn write_value(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            if !n.is_finite() {
                out.push_str("null");
            } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_value(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, val)) in fields.iter().enumerate() {
                out.push_str(&pad_in);
                write_json_string(key, out);
                out.push_str(": ");
                write_value(val, indent + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

/// Parses one JSON document into a [`Value`] tree. Trailing whitespace is
/// allowed; any other trailing content is an error.
pub fn from_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    let v = parse_value(bytes, &mut pos, 0)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::new(format!("trailing content at byte {pos}")));
    }
    Ok(v)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    if *pos < b.len() && b[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::new(format!("expected {:?} at byte {}", c as char, *pos)))
    }
}

/// Containers may nest at most this deep (the real crate's default);
/// beyond it parsing fails cleanly instead of overflowing the stack.
const MAX_DEPTH: usize = 128;

fn parse_value(b: &[u8], pos: &mut usize, depth: usize) -> Result<Value, Error> {
    if depth > MAX_DEPTH {
        return Err(Error::new(format!("nesting deeper than {MAX_DEPTH} at byte {}", *pos)));
    }
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(Error::new("unexpected end of input")),
        Some(b'n') => parse_lit(b, pos, "null", Value::Null),
        Some(b't') => parse_lit(b, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_lit(b, pos, "false", Value::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(b, pos, depth + 1)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(Error::new(format!("expected ',' or ']' at byte {}", *pos))),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(fields));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                skip_ws(b, pos);
                expect(b, pos, b':')?;
                let val = parse_value(b, pos, depth + 1)?;
                fields.push((key, val));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(fields));
                    }
                    _ => return Err(Error::new(format!("expected ',' or '}}' at byte {}", *pos))),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_lit(b: &[u8], pos: &mut usize, lit: &str, v: Value) -> Result<Value, Error> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(v)
    } else {
        Err(Error::new(format!("bad literal at byte {}", *pos)))
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| Error::new(e.to_string()))?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| Error::new(format!("bad number {text:?} at byte {start}")))
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(b, pos, b'"')?;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(Error::new("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::new("truncated \\u escape"))?;
                        let hex =
                            std::str::from_utf8(hex).map_err(|e| Error::new(e.to_string()))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::new(format!("bad \\u escape {hex:?}")))?;
                        // Surrogates are not paired up (the writer never
                        // emits them — it escapes only control chars).
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(Error::new(format!("bad escape at byte {}", *pos))),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences pass
                // through unmodified).
                let rest =
                    std::str::from_utf8(&b[*pos..]).map_err(|e| Error::new(e.to_string()))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = Value::Object(vec![
            ("id".into(), Value::Str("fig5a".into())),
            ("rows".into(), Value::Array(vec![Value::Num(1.5), Value::Num(f64::NAN)])),
            ("n".into(), Value::Num(3.0)),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"id\": \"fig5a\""));
        assert!(s.contains("null"), "NaN prints as null");
        assert!(s.contains("\"n\": 3"));
    }

    #[test]
    fn escapes_strings() {
        let s = to_string_pretty(&"a\"b\\c\nd").unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn parse_roundtrips_writer_output() {
        let v = Value::Object(vec![
            ("name".into(), Value::Str("α \"quoted\"\n".into())),
            ("xs".into(), Value::Array(vec![Value::Num(1.0), Value::Num(-2.5), Value::Null])),
            ("ok".into(), Value::Bool(true)),
            ("empty_arr".into(), Value::Array(vec![])),
            ("empty_obj".into(), Value::Object(vec![])),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert_eq!(from_str(&s).unwrap(), v);
    }

    #[test]
    fn parse_accepts_compact_and_rejects_garbage() {
        let v = from_str(r#"{"a":[1,2.5,"x"],"b":{"c":null}}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_array().unwrap()[0].as_u64(), Some(1));
        assert_eq!(v.get("b").unwrap().get("c"), Some(&Value::Null));
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err(), "trailing content rejected");
        assert!(from_str("\"unterminated").is_err());
        let deep = "[".repeat(100_000);
        assert!(from_str(&deep).is_err(), "bounded recursion, no stack overflow");
        assert_eq!(from_str("  -3  ").unwrap().as_i64(), Some(-3));
        assert_eq!(from_str(r#""Ab""#).unwrap().as_str(), Some("Ab"));
    }
}
