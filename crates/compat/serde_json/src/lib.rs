//! Offline drop-in replacement for the subset of `serde_json` this
//! workspace uses: pretty-printing of [`serde::Value`] trees produced by the
//! stubbed [`serde::Serialize`]. Non-finite numbers print as `null`, like
//! the real crate.

use serde::Serialize;
pub use serde::Value;

/// Serialization never fails in the stub, but the real signature returns a
/// `Result`, so callers keep their `.expect(...)`.
#[derive(Debug)]
pub struct Error;

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "serde_json stub error")
    }
}

impl std::error::Error for Error {}

/// Renders `value` as pretty-printed JSON (2-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), 0, &mut out);
    Ok(out)
}

/// Renders `value` as compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    to_string_pretty(value)
}

fn write_value(v: &Value, indent: usize, out: &mut String) {
    let pad = "  ".repeat(indent);
    let pad_in = "  ".repeat(indent + 1);
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(n) => {
            if !n.is_finite() {
                out.push_str("null");
            } else if n.fract() == 0.0 && n.abs() < 9.0e15 {
                out.push_str(&format!("{}", *n as i64));
            } else {
                out.push_str(&format!("{n}"));
            }
        }
        Value::Str(s) => write_json_string(s, out),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                out.push_str(&pad_in);
                write_value(item, indent + 1, out);
                if i + 1 < items.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push(']');
        }
        Value::Object(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push_str("{\n");
            for (i, (key, val)) in fields.iter().enumerate() {
                out.push_str(&pad_in);
                write_json_string(key, out);
                out.push_str(": ");
                write_value(val, indent + 1, out);
                if i + 1 < fields.len() {
                    out.push(',');
                }
                out.push('\n');
            }
            out.push_str(&pad);
            out.push('}');
        }
    }
}

fn write_json_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_nested_structures() {
        let v = Value::Object(vec![
            ("id".into(), Value::Str("fig5a".into())),
            ("rows".into(), Value::Array(vec![Value::Num(1.5), Value::Num(f64::NAN)])),
            ("n".into(), Value::Num(3.0)),
        ]);
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\"id\": \"fig5a\""));
        assert!(s.contains("null"), "NaN prints as null");
        assert!(s.contains("\"n\": 3"));
    }

    #[test]
    fn escapes_strings() {
        let s = to_string_pretty(&"a\"b\\c\nd").unwrap();
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }
}
