//! Offline drop-in replacement for the subset of the `rand` crate API this
//! workspace uses (`StdRng`, `SeedableRng::seed_from_u64`,
//! `RngExt::{random, random_range}`).
//!
//! The container this repository builds in has no access to crates.io, so
//! every third-party dependency is stubbed locally (see `crates/compat/`).
//! The generator is a SplitMix64 — statistically solid for test/workload
//! generation, deterministic across platforms, and trivially seedable.

use std::ops::Range;

/// Core entropy source: 64 random bits per call.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;
}

/// Construction from a 64-bit seed (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named like the real crate's `rand::rngs` module.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// SplitMix64 generator standing in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// Types producible by `RngExt::random` (`Standard`-distribution stand-in).
pub trait Standard: Sized {
    fn from_rng(rng: &mut impl RngCore) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn from_rng(rng: &mut impl RngCore) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    #[inline]
    fn from_rng(rng: &mut impl RngCore) -> Self {
        rng.next_u64()
    }
}

impl Standard for bool {
    #[inline]
    fn from_rng(rng: &mut impl RngCore) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges samplable by `RngExt::random_range`.
pub trait SampleRange {
    type Output;
    fn sample(self, rng: &mut impl RngCore) -> Self::Output;
}

#[inline]
fn bounded(rng: &mut impl RngCore, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Multiply-shift bounded sampling (Lemire); bias is negligible for the
    // span sizes the workloads use and determinism is what matters here.
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            #[inline]
            fn sample(self, rng: &mut impl RngCore) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl SampleRange for Range<f64> {
    type Output = f64;
    #[inline]
    fn sample(self, rng: &mut impl RngCore) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::from_rng(rng) * (self.end - self.start)
    }
}

/// The convenience surface (`rand 0.9` spells these `random`/`random_range`
/// on `Rng`; the workspace imports them through this extension trait).
pub trait RngExt: RngCore + Sized {
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::from_rng(self)
    }

    #[inline]
    fn random_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        range.sample(self)
    }
}

impl<T: RngCore + Sized> RngExt for T {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_and_in_range() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let x = a.random_range(5u32..17);
            assert!((5..17).contains(&x));
            assert_eq!(x, b.random_range(5u32..17));
            let f = a.random::<f64>();
            assert!((0.0..1.0).contains(&f));
            b.random::<f64>();
            let i = a.random_range(-3i64..900);
            assert!((-3..900).contains(&i));
            b.random_range(-3i64..900);
        }
    }

    #[test]
    fn covers_whole_range() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.random_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
