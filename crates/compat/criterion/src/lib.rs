//! Offline drop-in replacement for the subset of `criterion` this workspace
//! uses. Benches compile and run under `cargo bench` with simple
//! mean-of-N-iterations timing printed to stdout — no statistics, plots, or
//! baseline storage. Set `CRITERION_STUB_SAMPLES` to override sample counts
//! (e.g. `1` for a smoke run).

use std::time::{Duration, Instant};

/// Top-level driver handed to each `criterion_group!` function.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup { _parent: self, name, sample_size: 10 }
    }

    /// Ungrouped benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        run_one("", &id.into(), 10, &mut f);
    }
}

/// A group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Measures `f`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, mut f: F) {
        run_one(&self.name, &id.into(), self.sample_size, &mut f);
    }

    /// Measures `f` with an input parameter (identified by `id`).
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(&self.name, &id.0, self.sample_size, &mut |b| f(b, input));
    }

    /// Ends the group (no-op in the stub).
    pub fn finish(self) {}
}

/// A benchmark identifier with a parameter, e.g. `match/5000`.
pub struct BenchmarkId(String);

impl BenchmarkId {
    pub fn new(name: impl Into<String>, param: impl std::fmt::Display) -> Self {
        BenchmarkId(format!("{}/{param}", name.into()))
    }
}

/// Passed to the benchmark closure; `iter` times its argument.
pub struct Bencher {
    samples: usize,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `f` `samples` times (after one warmup call) and accumulates the
    /// elapsed time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warmup / one correctness pass
        let start = Instant::now();
        for _ in 0..self.samples {
            std::hint::black_box(f());
        }
        self.total += start.elapsed();
        self.iters += self.samples as u64;
    }
}

fn run_one(group: &str, id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let samples = std::env::var("CRITERION_STUB_SAMPLES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(sample_size)
        .max(1);
    let mut b = Bencher { samples, total: Duration::ZERO, iters: 0 };
    f(&mut b);
    let label = if group.is_empty() { id.to_string() } else { format!("{group}/{id}") };
    if b.iters > 0 {
        let per = b.total.as_secs_f64() / b.iters as f64;
        println!("  {label:<40} {:>12.3} ms/iter ({} iters)", per * 1e3, b.iters);
    } else {
        println!("  {label:<40} (no iterations)");
    }
}

/// `criterion_group!(name, bench_fn, ...)`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// `criterion_main!(group, ...)`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_and_bencher_run() {
        std::env::set_var("CRITERION_STUB_SAMPLES", "2");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut runs = 0usize;
        group.bench_function("f", |b| {
            b.iter(|| {
                runs += 1;
                runs
            })
        });
        group.bench_with_input(BenchmarkId::new("p", 7), &7usize, |b, &x| b.iter(|| x * 2));
        group.finish();
        assert!(runs >= 3, "warmup + samples ran");
        std::env::remove_var("CRITERION_STUB_SAMPLES");
    }
}
