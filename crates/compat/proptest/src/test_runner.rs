//! Test configuration and the deterministic case RNG.

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Subset of `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// `ProptestConfig::with_cases(n)`.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// Cases to actually run: the `PROPTEST_CASES` environment variable
    /// overrides the configured count (mirroring the real crate), so
    /// stress jobs can crank every property suite up without code edits.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES").ok().and_then(|s| s.parse().ok()).unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test RNG; the seed mixes the test name with an optional
/// `PROPTEST_SEED` environment override so a failing run can be replayed.
pub struct TestRng {
    inner: StdRng,
}

impl TestRng {
    /// RNG for the named test.
    pub fn for_test(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        if let Ok(s) = std::env::var("PROPTEST_SEED") {
            if let Ok(extra) = s.parse::<u64>() {
                h ^= extra.rotate_left(17);
            }
        }
        TestRng { inner: StdRng::seed_from_u64(h) }
    }

    /// Uniform draw from `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        ((self.inner.next_u64() as u128 * n as u128) >> 64) as usize
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
