//! Offline drop-in replacement for the subset of `proptest` this workspace
//! uses: the `proptest!` macro, range/tuple/`collection::vec` strategies,
//! `prop_map`/`prop_flat_map`, `ProptestConfig::with_cases`, and the
//! `prop_assert*` macros.
//!
//! Differences from the real crate, deliberate for an offline stub:
//!
//! * inputs are drawn from a **deterministic** per-test RNG (seeded from the
//!   test name, overridable via `PROPTEST_SEED`), so failures reproduce
//!   across runs without a persistence file;
//! * there is **no shrinking** — a failing case reports its inputs via the
//!   ordinary assertion message;
//! * `prop_assert!` panics immediately instead of returning a `TestCaseError`.

pub mod strategy;
pub mod test_runner;

pub mod collection {
    //! `proptest::collection` — sized `Vec` strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Size specifier: an exact length or a half-open range of lengths.
    pub trait IntoSizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl IntoSizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl IntoSizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.start >= self.end {
                return self.start;
            }
            rng.below(self.end - self.start) + self.start
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S, Z> {
        element: S,
        size: Z,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy, Z: IntoSizeRange>(element: S, size: Z) -> VecStrategy<S, Z> {
        VecStrategy { element, size }
    }

    impl<S: Strategy, Z: IntoSizeRange> Strategy for VecStrategy<S, Z> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! `proptest::prelude::*` — everything the `proptest!` body needs.

    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{ProptestConfig, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// `prop_assert!` — stub: panics immediately (no shrinking phase to feed).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// `prop_assert_eq!`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// `prop_assert_ne!`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// The `proptest!` block: an optional `#![proptest_config(..)]` followed by
/// `#[test] fn name(pat in strategy, ..) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        #[test]
        fn $name:ident( $($pat:pat in $strat:expr),* $(,)? ) $body:block
    )*) => {
        $(
            #[test]
            fn $name() {
                let __cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut __rng =
                    $crate::test_runner::TestRng::for_test(stringify!($name));
                for __case in 0..__cfg.effective_cases() {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(
                            &($strat), &mut __rng,
                        );
                    )*
                    $body
                }
            }
        )*
    };
}
