//! The `Strategy` trait and its combinators.

use std::ops::Range;

use rand::SampleRange;

use crate::test_runner::TestRng;

/// A generator of random values; the stub generates directly (no value
/// trees, no shrinking).
pub trait Strategy: Sized {
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// `prop_map` — transform generated values.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F> {
        Map { inner: self, f }
    }

    /// `prop_flat_map` — derive a dependent strategy from each value.
    fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F> {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn generate(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

/// `low..high` ranges are strategies for their element type.
impl<T> Strategy for Range<T>
where
    Range<T>: SampleRange<Output = T> + Clone,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.clone().sample(rng)
    }
}

/// `Just(value)` — constant strategy.
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collection;

    #[test]
    fn ranges_tuples_vecs_and_combinators() {
        let mut rng = TestRng::for_test("stub_smoke");
        let strat = (3usize..10).prop_flat_map(|n| {
            let labels = collection::vec(0u32..4, n);
            let edges = collection::vec((0u32..n as u32, 0u32..n as u32), 0..n * 2);
            (labels, edges)
        });
        for _ in 0..200 {
            let (labels, edges) = strat.generate(&mut rng);
            assert!((3..10).contains(&labels.len()));
            assert!(labels.iter().all(|&l| l < 4));
            assert!(edges.len() < 20);
            let n = labels.len() as u32;
            assert!(edges.iter().all(|&(a, b)| a < n && b < n));
        }
    }

    #[test]
    fn map_and_just() {
        let mut rng = TestRng::for_test("map_just");
        let doubled = (1usize..5).prop_map(|x| x * 2);
        for _ in 0..50 {
            let v = doubled.generate(&mut rng);
            assert!(v % 2 == 0 && (2..10).contains(&v));
        }
        assert_eq!(Just(7u8).generate(&mut rng), 7);
    }
}
