//! Offline drop-in replacement for the subset of `parking_lot` used by this
//! workspace: a `Mutex` whose `lock()` returns the guard directly. Backed by
//! `std::sync::Mutex`; poisoning is swallowed (parking_lot has none).

use std::sync::{Mutex as StdMutex, MutexGuard};

#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex { inner: StdMutex::new(value) }
    }

    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_returns_guard_directly() {
        let m = Mutex::new(5usize);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }
}
