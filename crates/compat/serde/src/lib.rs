//! Offline drop-in replacement for the subset of `serde` this workspace
//! uses. Instead of the visitor architecture, [`Serialize`] renders to a
//! small JSON [`Value`] tree which `serde_json` (also stubbed) prints. The
//! `#[derive(Serialize)]` proc-macro is not available — structs implement
//! [`Serialize`] by hand (see `gpm-bench::table`).

/// A JSON value tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Array(Vec<Value>),
    /// Insertion-ordered object.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Object field lookup (`None` for non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric view.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// Integral view (numbers with no fractional part).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 && *n >= 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// Signed integral view.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(n) if n.fract() == 0.0 => Some(*n as i64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array view.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(items) => Some(items),
            _ => None,
        }
    }
}

/// Conversion into a JSON [`Value`] (the stub's whole serialization model).
pub trait Serialize {
    fn to_value(&self) -> Value;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! impl_num {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Num(*self as f64)
            }
        }
    )*};
}

impl_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for &T {
    fn to_value(&self) -> Value {
        (*self).to_value()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
