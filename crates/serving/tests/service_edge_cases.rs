//! Edge cases of the serving layer: backpressure coalescing, delta-log
//! persistence and replay determinism, `query_at` semantics, subscription
//! lifecycle, and the threaded service loop.

use std::time::Duration;

use gpm_core::result::AnswerDiff;
use gpm_datagen::update_stream::{update_stream, UpdateStreamConfig};
use gpm_graph::builder::graph_from_parts;
use gpm_graph::{DiGraph, GraphDelta};
use gpm_incremental::IncrementalConfig;
use gpm_pattern::builder::label_pattern;
use gpm_pattern::Pattern;
use gpm_serving::{
    AnswerService, DeltaLog, NotifyMode, ServiceConfig, ServiceHandle, ServingError,
};

/// Authors (label 0) citing papers (label 1): the workhorse fixture. Edge
/// `(author, paper)` additions move δr one at a time.
fn fixture() -> (DiGraph, Pattern) {
    let g = graph_from_parts(&[0, 0, 1, 1, 1], &[(0, 2), (1, 2)]).unwrap();
    let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
    (g, q)
}

fn tiny_cfg(queue_capacity: usize) -> ServiceConfig {
    ServiceConfig { queue_capacity, ..ServiceConfig::default() }
}

#[test]
fn overflow_coalesces_newest_wins_never_torn() {
    let (g, q) = fixture();
    let mut svc = AnswerService::new(&g, tiny_cfg(1));
    let sub = svc.subscribe(q, IncrementalConfig::new(3), NotifyMode::Relevance).unwrap();
    let initial = sub.try_recv().unwrap();
    assert_eq!(initial.topk_nodes(), vec![0, 1]);

    // Four answer-changing batches against a capacity-1 queue the
    // consumer never drains: three coalesce away.
    svc.ingest(&GraphDelta::new().add_edge(1, 3)).unwrap(); // 1 ahead
    svc.ingest(&GraphDelta::new().add_edge(0, 3)).unwrap(); // tie
    svc.ingest(&GraphDelta::new().add_edge(0, 4)).unwrap(); // 0 ahead
    svc.ingest(&GraphDelta::new().add_edge(1, 4)).unwrap(); // tie again
    assert_eq!(sub.pending(), 1, "bounded queue holds exactly one update");
    assert_eq!(sub.coalesced(), 3);
    assert_eq!(svc.stats().updates_coalesced, 3);
    // Each coalesce evicted one queued update and rebased the fresh
    // one's diff — visible per subscription and in the service stats.
    assert_eq!(sub.dropped(), 3);
    assert_eq!(sub.rebased(), 3);
    assert_eq!(svc.stats().updates_dropped, 3);
    assert_eq!(svc.stats().diffs_rebased, 3);

    let update = sub.try_recv().unwrap();
    // Newest wins: the one retained update is the *latest* answer…
    assert_eq!(update.seq, 4);
    assert_eq!(update.topk, svc.current(update.pattern).unwrap().matches);
    // …with version revealing how many answers were skipped…
    assert_eq!(update.version, initial.version + 4);
    // …and the diff rebased onto what this consumer actually saw last
    // (the initial answer), not onto a lost intermediate.
    assert_eq!(update.diff, AnswerDiff::between(&initial.topk, &update.topk));
    assert!(sub.try_recv().is_none());

    // After draining, the next change is delivered normally again.
    svc.ingest(&GraphDelta::new().remove_edge(0, 4).remove_edge(0, 3)).unwrap();
    let next = sub.try_recv().unwrap();
    assert_eq!(next.version, update.version + 1);
    assert_eq!(next.diff, AnswerDiff::between(&update.topk, &next.topk));
}

#[test]
fn delta_log_roundtrips_and_replays() {
    let (g, _) = fixture();
    let mut log = DeltaLog::new(&g);
    assert_eq!(log.append(GraphDelta::new().add_edge(1, 3).set_attr(2, "views", 9i64)), 1);
    assert_eq!(log.append(GraphDelta::new().add_node(1).remove_node(0)), 2);
    assert_eq!(log.head_seq(), 2);

    // JSON-lines round-trip: entries, offsets and graphs all survive.
    let text = log.to_json_lines();
    assert_eq!(text.lines().count(), 3, "header + one line per batch");
    let back = DeltaLog::from_json_lines(&text).unwrap();
    assert_eq!(back.base_seq(), 0);
    assert_eq!(back.entries(), log.entries());
    assert_eq!(back.to_json_lines(), text, "re-serialization is byte-identical");

    // graph_at replays prefixes; compaction trims them away.
    let at1 = log.graph_at(1).unwrap();
    assert!(at1.has_edge(1, 3));
    assert_eq!(at1.node_count(), 5);
    let at2 = log.graph_at(2).unwrap();
    assert_eq!(at2.node_count(), 6);
    assert!(matches!(log.graph_at(9), Err(ServingError::OffsetInFuture { head: 2, .. })));

    log.compact_to(1).unwrap();
    assert_eq!(log.base_seq(), 1);
    assert_eq!(log.len(), 1);
    assert!(matches!(log.graph_at(0), Err(ServingError::OffsetCompacted { .. })));
    assert!(matches!(log.entries_after(0), Err(ServingError::OffsetCompacted { .. })));
    assert_eq!(log.entries_after(1).unwrap().len(), 1);
    let at2b = log.graph_at(2).unwrap();
    assert_eq!(at2b.node_count(), at2.node_count());
    assert_eq!(at2b.edge_count(), at2.edge_count());

    // Persistence through a file.
    let dir = std::env::temp_dir().join("gpm_serving_log_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("stream.jsonl");
    log.save(&path).unwrap();
    let loaded = DeltaLog::load(&path).unwrap();
    assert_eq!(loaded.to_json_lines(), log.to_json_lines());
    std::fs::remove_file(path).ok();

    // Corruption is rejected, not misread.
    assert!(DeltaLog::from_json_lines("").is_err());
    assert!(DeltaLog::from_json_lines("{\"not\":\"a log\"}").is_err());
    let mut tampered: Vec<&str> = text.lines().collect();
    tampered.remove(1); // drop seq 1: the log is no longer contiguous
    assert!(DeltaLog::from_json_lines(&tampered.join("\n")).is_err());
}

/// Satellite: replaying the log from offset 0 into a fresh service
/// reproduces **byte-identical** versioned answers — same seqs, same
/// versions, same matches, at every offset, rendered to the same JSON.
#[test]
fn replay_from_zero_is_byte_identical() {
    let make_patterns = || -> Vec<Pattern> {
        vec![
            label_pattern(&[0, 1], &[(0, 1)], 0).unwrap(),
            label_pattern(&[1], &[], 0).unwrap(),
            label_pattern(&[0, 1, 2], &[(0, 1), (1, 2)], 0).unwrap(),
        ]
    };
    let g = graph_from_parts(&[0, 0, 1, 1, 2, 2], &[(0, 2), (1, 3), (2, 4), (3, 5)]).unwrap();

    let mut svc = AnswerService::new(&g, ServiceConfig::default());
    let subs: Vec<_> = make_patterns()
        .into_iter()
        .map(|q| svc.subscribe(q, IncrementalConfig::new(3), NotifyMode::Relevance).unwrap())
        .collect();
    let stream = update_stream(&g, &UpdateStreamConfig::new(7, 4, 0xB0B).with_attr_churn(0.3));
    for delta in stream.iter() {
        svc.ingest(delta).unwrap();
    }

    // Crash: only the serialized log survives.
    let persisted = svc.log().to_json_lines();

    // Recovery: fresh service from the log's base, same subscriptions,
    // catch up from the parsed log.
    let log = DeltaLog::from_json_lines(&persisted).unwrap();
    let mut recovered =
        AnswerService::at_offset(log.base(), log.base_seq(), ServiceConfig::default());
    let rsubs: Vec<_> = make_patterns()
        .into_iter()
        .map(|q| recovered.subscribe(q, IncrementalConfig::new(3), NotifyMode::Relevance).unwrap())
        .collect();
    assert_eq!(recovered.catch_up(&log).unwrap(), stream.len() as u64);
    assert_eq!(recovered.seq(), svc.seq());

    // Byte-identical versioned answers at every offset, every pattern.
    for (a, b) in subs.iter().zip(&rsubs) {
        for seq in 0..=svc.seq() {
            let va = svc.query_at(a.pattern(), seq).unwrap();
            let vb = recovered.query_at(b.pattern(), seq).unwrap();
            let ja = serde_json::to_string(&va).unwrap();
            let jb = serde_json::to_string(&vb).unwrap();
            assert_eq!(ja, jb, "versioned answer diverged at seq {seq}");
        }
    }
    // And the recovered log re-serializes to the same bytes.
    assert_eq!(recovered.log().to_json_lines(), persisted);
}

#[test]
fn query_at_serves_the_answer_timeline() {
    let (g, q) = fixture();
    let mut svc = AnswerService::new(&g, ServiceConfig::default());
    let sub = svc.subscribe(q, IncrementalConfig::new(2), NotifyMode::Relevance).unwrap();
    let id = sub.pattern();
    let v1 = svc.current(id).unwrap();
    assert_eq!((v1.seq, v1.version), (0, 1));

    svc.ingest(&GraphDelta::new().add_node(5)).unwrap(); // seq 1: no change
    svc.ingest(&GraphDelta::new().add_edge(1, 3)).unwrap(); // seq 2: change
    svc.ingest(&GraphDelta::new().add_node(5)).unwrap(); // seq 3: no change
    svc.ingest(&GraphDelta::new().add_edge(0, 3).add_edge(0, 4)).unwrap(); // seq 4: change

    // Unchanged offsets are covered by the preceding change point.
    assert_eq!(svc.query_at(id, 0).unwrap(), v1);
    assert_eq!(svc.query_at(id, 1).unwrap(), v1);
    let v2 = svc.query_at(id, 2).unwrap();
    assert_eq!((v2.seq, v2.version), (2, 2));
    assert_eq!(svc.query_at(id, 3).unwrap(), v2);
    let v3 = svc.query_at(id, 4).unwrap();
    assert_eq!((v3.seq, v3.version), (4, 3));
    assert_eq!(svc.current(id).unwrap(), v3);

    // The push stream saw exactly the change points.
    let versions: Vec<u64> = sub.drain().iter().map(|u| u.version).collect();
    assert_eq!(versions, vec![1, 2, 3]);

    assert!(matches!(svc.query_at(id, 9), Err(ServingError::OffsetInFuture { .. })));
    let ghost = {
        let other = svc
            .subscribe(
                label_pattern(&[2], &[], 0).unwrap(),
                IncrementalConfig::new(1),
                NotifyMode::Relevance,
            )
            .unwrap();
        let ghost = other.pattern();
        svc.unsubscribe(&other);
        ghost
    };
    assert!(matches!(svc.query_at(ghost, 4), Err(ServingError::UnknownPattern(_))));
}

#[test]
fn answer_history_retention_is_bounded() {
    let (g, q) = fixture();
    let cfg = ServiceConfig { retain_answers: 2, ..ServiceConfig::default() };
    let mut svc = AnswerService::new(&g, cfg);
    let sub = svc.subscribe(q, IncrementalConfig::new(3), NotifyMode::Relevance).unwrap();
    let id = sub.pattern();

    svc.ingest(&GraphDelta::new().add_edge(1, 3)).unwrap(); // v2 @ seq 1
    svc.ingest(&GraphDelta::new().add_edge(1, 4)).unwrap(); // v3 @ seq 2
    svc.ingest(&GraphDelta::new().add_edge(0, 3)).unwrap(); // v4 @ seq 3 — v1, v2 evicted

    assert!(matches!(svc.query_at(id, 0), Err(ServingError::OffsetCompacted { .. })));
    assert!(matches!(
        svc.query_at(id, 1),
        Err(ServingError::OffsetCompacted { retained_from: 2, .. })
    ));
    assert_eq!(svc.query_at(id, 2).unwrap().version, 3);
    assert_eq!(svc.query_at(id, 3).unwrap().version, 4);
}

#[test]
fn unsubscribe_closes_queues_and_releases_patterns() {
    let (g, q) = fixture();
    let mut svc = AnswerService::new(&g, ServiceConfig::default());
    let first = svc.subscribe(q, IncrementalConfig::new(2), NotifyMode::Relevance).unwrap();
    let id = first.pattern();
    // A second consumer shares the same maintained pattern.
    let second = svc.attach(id, NotifyMode::Diversified).unwrap();
    assert_eq!(svc.subscriptions(), 2);
    assert_eq!(svc.registry().len(), 1, "one maintained state for two consumers");
    assert_eq!(second.try_recv().unwrap().seq, 0);

    svc.ingest(&GraphDelta::new().add_edge(1, 3)).unwrap();
    assert!(svc.unsubscribe(&first));
    assert!(!svc.unsubscribe(&first), "double unsubscribe is a no-op");
    assert!(first.is_closed());
    assert!(first.try_recv().is_some(), "pending updates remain readable after close");
    assert!(svc.current(id).is_ok(), "pattern still serving its other consumer");

    assert!(svc.unsubscribe(&second));
    assert_eq!(svc.registry().len(), 0, "last unsubscribe deregisters");
    assert!(matches!(svc.current(id), Err(ServingError::UnknownPattern(_))));
    assert!(second.is_closed());
}

#[test]
fn threaded_service_loop_delivers_and_shuts_down() {
    let (g, q) = fixture();
    let mut svc = AnswerService::new(&g, ServiceConfig::default());
    let sub = svc.subscribe(q, IncrementalConfig::new(2), NotifyMode::Relevance).unwrap();
    assert!(sub.try_recv().is_some());

    let handle = ServiceHandle::spawn(svc);

    // A consumer thread blocks on the subscription while the producer
    // submits asynchronously.
    let consumer = std::thread::spawn(move || {
        let update = sub.recv_timeout(Duration::from_secs(10)).expect("update arrives");
        (update.seq, update.topk_nodes(), sub)
    });
    handle.submit(GraphDelta::new().add_node(7)); // label 7: no change, no wakeup
    handle.submit(GraphDelta::new().add_edge(1, 3));
    let (seq, nodes, sub) = consumer.join().unwrap();
    assert_eq!(seq, 2);
    assert_eq!(nodes, vec![1, 0]);

    // Control plane through the loop: subscribe a second consumer live.
    let pid = sub.pattern();
    let late = handle.with(move |svc| svc.attach(pid, NotifyMode::Relevance).unwrap());
    assert_eq!(late.try_recv().unwrap().seq, 2);

    // Invalid batches are counted, not fatal.
    handle.submit(GraphDelta::new().add_edge(0, 99));
    let report = handle.ingest(GraphDelta::new().add_edge(0, 3)).unwrap();
    assert_eq!(report.seq, 3, "the rejected batch consumed no sequence number");

    let svc = handle.shutdown();
    assert_eq!(svc.stats().ingest_errors, 1);
    assert_eq!(svc.stats().batches, 3);
    assert_eq!(svc.seq(), 3);
}

/// Satellite: `save` appends only the entries past the last persisted
/// seq — a repeat save must not rewrite the whole file — while the file
/// contents stay byte-identical to a wholesale serialization. Compaction
/// (and a fresh path, and a deleted file) force a full rewrite.
#[test]
fn save_appends_past_the_last_persisted_seq() {
    let (g, _) = fixture();
    let dir = std::env::temp_dir().join("gpm_serving_append_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("append.jsonl");
    std::fs::remove_file(&path).ok();

    let mut log = DeltaLog::new(&g);
    log.append(GraphDelta::new().add_edge(0, 3));
    log.save(&path).unwrap();
    let after_first = std::fs::read_to_string(&path).unwrap();
    assert_eq!(after_first, log.to_json_lines());

    // Sentinel: corrupt the first line in a way a rewrite would undo but
    // an append preserves. (The header keeps its length.)
    let mut tampered = after_first.clone().into_bytes();
    tampered[2] = b'X';
    std::fs::write(&path, &tampered).unwrap();

    log.append(GraphDelta::new().add_edge(1, 3).set_attr(2, "views", 4i64));
    log.append(GraphDelta::new().add_node(1));
    log.save(&path).unwrap();
    let after_second = std::fs::read_to_string(&path).unwrap();
    assert!(
        after_second.as_bytes()[2] == b'X',
        "second save rewrote the file instead of appending"
    );
    // Modulo the sentinel, the appended file is byte-identical to a
    // wholesale write — and still parses into an equal log.
    let mut expect = log.to_json_lines().into_bytes();
    expect[2] = b'X';
    assert_eq!(after_second.into_bytes(), expect);

    // An up-to-date log's save appends nothing (and succeeds).
    log.save(&path).unwrap();
    let mut fixed = std::fs::read_to_string(&path).unwrap().into_bytes();
    fixed[2] = after_first.as_bytes()[2];
    let reloaded = DeltaLog::from_json_lines(std::str::from_utf8(&fixed).unwrap()).unwrap();
    assert_eq!(reloaded.entries(), log.entries());
    assert_eq!(reloaded.base_seq(), log.base_seq());

    // Compaction invalidates the persisted prefix: the next save
    // rewrites wholesale (the sentinel disappears).
    log.compact_to(2).unwrap();
    log.append(GraphDelta::new().add_edge(0, 4));
    log.save(&path).unwrap();
    let after_compact = std::fs::read_to_string(&path).unwrap();
    assert_eq!(after_compact, log.to_json_lines(), "compaction forces a rewrite");
    let reloaded = DeltaLog::load(&path).unwrap();
    assert_eq!(reloaded.base_seq(), 2);
    assert_eq!(reloaded.entries(), log.entries());

    // A deleted file is rewritten from scratch, not blindly appended to.
    std::fs::remove_file(&path).unwrap();
    log.append(GraphDelta::new().remove_edge(0, 4));
    log.save(&path).unwrap();
    assert_eq!(std::fs::read_to_string(&path).unwrap(), log.to_json_lines());

    // A different path gets the full file too.
    let other = dir.join("other.jsonl");
    std::fs::remove_file(&other).ok();
    log.save(&other).unwrap();
    assert_eq!(std::fs::read_to_string(&other).unwrap(), log.to_json_lines());
    std::fs::remove_file(&path).ok();
    std::fs::remove_file(&other).ok();
}

/// The service-level checkpoint call: the persistence cursor lives with
/// the service's owned log, so back-to-back `save_log`s append rather
/// than rewrite (same sentinel trick as the log-level test).
#[test]
fn service_save_log_appends_between_ingests() {
    let (g, q) = fixture();
    let dir = std::env::temp_dir().join("gpm_serving_svc_append_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("svc.jsonl");
    std::fs::remove_file(&path).ok();

    let mut svc = AnswerService::new(&g, ServiceConfig::default());
    let _sub = svc.subscribe(q, IncrementalConfig::new(3), NotifyMode::Relevance).unwrap();
    svc.ingest(&GraphDelta::new().add_edge(1, 3)).unwrap();
    svc.save_log(&path).unwrap();

    let mut tampered = std::fs::read_to_string(&path).unwrap().into_bytes();
    tampered[2] = b'X';
    std::fs::write(&path, &tampered).unwrap();

    svc.ingest(&GraphDelta::new().add_edge(1, 4)).unwrap();
    svc.save_log(&path).unwrap();
    let after = std::fs::read_to_string(&path).unwrap();
    assert_eq!(after.as_bytes()[2], b'X', "second save_log must append, not rewrite");
    assert_eq!(after.lines().count(), 3, "header + two ingested batches");

    // And a clone of the log does not inherit the cursor: its first save
    // rewrites (two writers must never append to one file).
    let mut cloned = svc.log().clone();
    cloned.save(&path).unwrap();
    assert_eq!(std::fs::read_to_string(&path).unwrap(), cloned.to_json_lines());
    std::fs::remove_file(&path).ok();
}

#[test]
fn service_level_bound_policy_overrides_subscriptions() {
    // `ServiceConfig::bounds` is the operator's fleet-wide switch: a
    // `Some` policy overrides whatever each subscription's
    // `IncrementalConfig` asked for, observable through the pattern
    // introspection surface. Answers are unaffected either way (bounds
    // are a pure pruning accelerator).
    use gpm_incremental::BoundPolicy;

    let (g, q) = fixture();
    let cfg = ServiceConfig {
        bounds: Some(BoundPolicy { enabled: false, ..BoundPolicy::default() }),
        ..ServiceConfig::default()
    };
    let mut svc = AnswerService::new(&g, cfg);
    // The subscription asks for bounds (the default) — the service-level
    // override wins and the pattern reports the bound index as off.
    let sub = svc.subscribe(q.clone(), IncrementalConfig::new(2), NotifyMode::Relevance).unwrap();
    let info = svc.registry().pattern_info(sub.pattern()).unwrap();
    assert_eq!(info.bound_mode, "off");

    // Default service config: the subscription's own policy stands.
    let mut plain = AnswerService::new(&g, ServiceConfig::default());
    let sub2 = plain.subscribe(q, IncrementalConfig::new(2), NotifyMode::Relevance).unwrap();
    let info2 = plain.registry().pattern_info(sub2.pattern()).unwrap();
    assert_eq!(info2.bound_mode, "per-component");

    // Same stream, same answers.
    for delta in [GraphDelta::new().add_edge(0, 3), GraphDelta::new().add_edge(1, 4)] {
        svc.ingest(&delta).unwrap();
        plain.ingest(&delta).unwrap();
        assert_eq!(
            svc.current(sub.pattern()).unwrap().matches,
            plain.current(sub2.pattern()).unwrap().matches,
        );
    }
}
