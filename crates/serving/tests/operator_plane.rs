//! The ISSUE 9 acceptance tests: the operator plane over real TCP.
//!
//! A live [`AnswerService`] behind a [`ServiceHandle`] loop, scraped
//! through an [`AdminServer`] with nothing but `std::net::TcpStream` —
//! `/metrics` must round-trip through the strict exposition parser,
//! `/healthz` must walk ready → degraded → unready → ready as real
//! faults are injected and repaired, and the background [`Auditor`]
//! must catch a deliberately corrupted maintained condensation.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use gpm_graph::builder::graph_from_parts;
use gpm_graph::GraphDelta;
use gpm_incremental::IncrementalConfig;
use gpm_pattern::builder::label_pattern;
use gpm_serving::{
    AdminServer, AnswerService, Auditor, AuditorConfig, HealthConfig, NotifyMode, ServiceConfig,
    ServiceHandle,
};
use gpm_telemetry::exposition::{self, family};
use gpm_telemetry::names;

/// One raw HTTP/1.1 request over a fresh connection: returns
/// `(status, headers, body)`.
fn request(addr: SocketAddr, method: &str, path: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect admin port");
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    write!(stream, "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("malformed status line in {raw:?}"));
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    (status, head.to_string(), body.to_string())
}

fn scrape(addr: SocketAddr, path: &str) -> (u16, String) {
    let (status, _, body) = request(addr, "GET", path);
    (status, body)
}

/// Overall status field of a `/healthz` or `/readyz` body.
fn wire_status(body: &str) -> &'static str {
    for s in ["\"status\":\"unready\"", "\"status\":\"degraded\"", "\"status\":\"ready\""] {
        if body.starts_with(&format!("{{{s}")) {
            return match s {
                "\"status\":\"unready\"" => "unready",
                "\"status\":\"degraded\"" => "degraded",
                _ => "ready",
            };
        }
    }
    panic!("no status field in {body:?}");
}

#[test]
fn live_service_scrapes_clean_over_tcp() {
    let g = graph_from_parts(&[0, 0, 1, 1, 1], &[(0, 2), (1, 2)]).unwrap();
    let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
    let mut svc = AnswerService::new(&g, ServiceConfig::default());
    let sub = svc.subscribe(q, IncrementalConfig::new(3), NotifyMode::Relevance).unwrap();
    sub.try_recv().expect("initial answer");

    let handle = ServiceHandle::spawn(svc);
    let admin = AdminServer::bind("127.0.0.1:0", handle.controller()).unwrap();
    let addr = admin.local_addr();

    // A mixed update stream: adds, removals, node churn.
    let batches = [
        GraphDelta::new().add_edge(1, 3),
        GraphDelta::new().add_edge(0, 3).remove_edge(1, 2),
        GraphDelta::new().add_node(1).add_edge(1, 5),
        GraphDelta::new().remove_node(3),
    ];
    for delta in batches {
        handle.ingest(delta).unwrap();
    }

    // /metrics: correct content type, strict-parses, and carries the
    // serving counters, the build info, and the per-pattern SLO families.
    let (status, head, body) = request(addr, "GET", "/metrics");
    assert_eq!(status, 200);
    assert!(head.contains("text/plain; version=0.0.4"), "prometheus content type: {head}");
    let families = exposition::parse(&body).expect("exposition parses strictly");
    let batches_total = family(&families, names::SERVING_BATCHES)
        .and_then(|f| f.sample_with(&[]))
        .expect("batch counter scraped");
    assert_eq!(batches_total.value, 4.0);
    let build = family(&families, names::BUILD_INFO)
        .and_then(|f| f.sample_with(&[]))
        .expect("build info gauge");
    assert_eq!(build.value, 1.0);
    assert!(build.label("version").is_some_and(|v| !v.is_empty()));
    let slo_events = ["pattern#0"].iter().all(|p| {
        let with = |name| {
            family(&families, name)
                .and_then(|f| f.sample_with(&[("pattern", p)]))
                .map_or(0.0, |s| s.value)
        };
        with(names::SLO_GOOD) + with(names::SLO_BAD) > 0.0
    });
    assert!(slo_events, "every touched pattern records SLO events");
    for gauge in [names::DELTA_LOG_BYTES, names::POOL_QUEUE_DEPTH, names::UPTIME_SECONDS] {
        assert!(family(&families, gauge).is_some(), "{gauge} exported");
    }

    // /healthz and /readyz agree the service is healthy.
    let (status, body) = scrape(addr, "/healthz");
    assert_eq!((status, wire_status(&body)), (200, "ready"), "{body}");
    for component in ["loop", "delta_log", "subscriptions", "slo", "audit", "reach"] {
        assert!(body.contains(&format!("\"name\":\"{component}\"")), "{component} probed");
    }
    let (status, body) = scrape(addr, "/readyz");
    assert_eq!((status, body.as_str()), (200, "{\"status\":\"ready\"}"));

    // Traces: the recent ring holds the ingests (default config traces
    // every batch), as JSON arrays the flight recorder emitted.
    let (status, body) = scrape(addr, "/traces/recent");
    assert_eq!(status, 200);
    assert!(body.starts_with('[') && body.ends_with(']'));
    assert!(body.contains("\"seq\":4"), "newest batch traced: {body}");
    let (status, _) = scrape(addr, "/traces/slow");
    assert_eq!(status, 200);
    let (status, body) = scrape(addr, "/traces/slowest");
    assert_eq!(status, 200);
    assert!(body == "null" || body.starts_with('{'));

    // Pattern introspection, including the maintained-reach mode and the
    // last refresh latency.
    let (status, body) = scrape(addr, "/patterns");
    assert_eq!(status, 200);
    assert!(body.contains("\"id\":\"pattern#0\""), "{body}");
    assert!(body.contains("\"reach_mode\":\"maintained\""), "{body}");
    assert!(body.contains("\"bound_mode\":\"per-component\""), "{body}");
    assert!(body.contains("\"pruned_outputs\":"), "{body}");
    assert!(body.contains("\"bound_refolds\":"), "{body}");
    assert!(body.contains("\"last_refresh_ns\":"), "{body}");
    let (status, one) = scrape(addr, "/patterns/0");
    assert_eq!(status, 200);
    assert!(one.contains("\"id\":\"pattern#0\""));
    assert!(one.contains("\"bound_mode\":"), "{one}");
    assert_eq!(scrape(addr, "/patterns/99").0, 404);
    assert_eq!(scrape(addr, "/nope").0, 404);
    assert_eq!(request(addr, "POST", "/metrics").0, 405);

    // Kill the loop while the admin plane lives on: every endpoint turns
    // into 503 — the controller is the liveness probe.
    drop(handle);
    let (status, body) = scrape(addr, "/healthz");
    assert_eq!(status, 503);
    assert!(body.contains("service loop gone"), "{body}");
    assert_eq!(scrape(addr, "/metrics").0, 503);
    admin.shutdown();
}

#[test]
fn health_walks_ready_degraded_unready_and_back() {
    let g = graph_from_parts(&[0, 0, 1, 1], &[(0, 2), (1, 2), (1, 3)]).unwrap();
    let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
    let cfg = ServiceConfig {
        queue_capacity: 1,
        health: HealthConfig { max_fsync_age: Duration::from_millis(20), ..Default::default() },
        ..Default::default()
    };
    let mut svc = AnswerService::new(&g, cfg);
    let sub = svc.subscribe(q, IncrementalConfig::new(2), NotifyMode::Relevance).unwrap();
    sub.try_recv().expect("initial answer");
    let id = sub.pattern();

    let handle = ServiceHandle::spawn(svc);
    let admin = AdminServer::bind("127.0.0.1:0", handle.controller()).unwrap();
    let addr = admin.local_addr();
    let health = |note: &str| {
        let (status, body) = scrape(addr, "/healthz");
        (status, wire_status(&body), format!("{note}: {body}"))
    };

    let (status, state, ctx) = health("fresh service");
    assert_eq!((status, state), (200, "ready"), "{ctx}");

    // Degraded #1 — a saturated subscription queue (capacity 1, consumer
    // stalled): the next push coalesces, so consumers are losing history.
    handle.ingest(GraphDelta::new().add_node(1).add_edge(0, 4)).unwrap();
    let (status, state, ctx) = health("stalled consumer");
    assert_eq!((status, state), (200, "degraded"), "{ctx}");
    assert!(ctx.contains("1/1 queues at capacity"), "{ctx}");
    sub.drain();
    let (status, state, ctx) = health("consumer caught up");
    assert_eq!((status, state), (200, "ready"), "{ctx}");

    // Degraded #2 — stale durability: once a save opts into persistence,
    // unpersisted entries older than max_fsync_age breach the promise.
    let dir = std::env::temp_dir().join("gpm_operator_plane_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("log_{}.jsonl", std::process::id()));
    let save_to = path.clone();
    handle.with(move |svc| svc.save_log(&save_to)).unwrap();
    handle.ingest(GraphDelta::new().add_node(0).add_edge(5, 2)).unwrap();
    sub.drain();
    std::thread::sleep(Duration::from_millis(40));
    let (status, state, ctx) = health("stale fsync");
    assert_eq!((status, state), (200, "degraded"), "{ctx}");
    assert!(ctx.contains("unpersisted"), "{ctx}");
    let save_to = path.clone();
    handle.with(move |svc| svc.save_log(&save_to)).unwrap();
    let (status, state, ctx) = health("checkpoint taken");
    assert_eq!((status, state), (200, "ready"), "{ctx}");

    // Unready — the sampled auditor proves the maintained condensation
    // wrong (a deliberately desynchronized pair edge). Correctness
    // outranks latency: /healthz and /readyz both refuse with 503.
    let corrupted = handle.with(move |svc| svc.registry().corrupt_maintained_for_test(id));
    assert!(corrupted, "small graph keeps maintained mode, so there is state to corrupt");
    let audited = handle.with(|svc| svc.audit_sample());
    let (audited_id, verdict) = audited.expect("one registered pattern");
    assert_eq!(audited_id, id);
    assert!(verdict.is_err(), "audit detects the injected corruption");
    let (status, state, ctx) = health("corrupt condensation");
    assert_eq!((status, state), (503, "unready"), "{ctx}");
    assert!(ctx.contains("\"name\":\"audit\",\"status\":\"unready\""), "{ctx}");
    let (status, body) = scrape(addr, "/readyz");
    assert_eq!((status, body.as_str()), (503, "{\"status\":\"unready\"}"));

    // And back: deregistering the corrupted pattern retires its state, so
    // the next audit pass clears the stale latch.
    let removed = handle.with(move |svc| svc.unsubscribe(&sub));
    assert!(removed);
    handle.with(|svc| svc.audit_sample());
    let (status, state, ctx) = health("corrupted pattern retired");
    assert_eq!((status, state), (200, "ready"), "{ctx}");

    std::fs::remove_file(&path).ok();
    admin.shutdown();
    drop(handle);
}

#[test]
fn background_auditor_catches_corruption_unprompted() {
    let g = graph_from_parts(&[0, 0, 1, 1], &[(0, 2), (1, 2), (1, 3)]).unwrap();
    let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
    let mut svc = AnswerService::new(&g, ServiceConfig::default());
    let sub = svc.subscribe(q, IncrementalConfig::new(2), NotifyMode::Relevance).unwrap();
    sub.try_recv().expect("initial answer");
    let id = sub.pattern();

    let handle = ServiceHandle::spawn(svc);
    let auditor = Auditor::spawn(
        handle.controller(),
        AuditorConfig { every_batches: 0, interval: Duration::from_millis(5) },
    );

    // Let at least one clean audit land, then corrupt and wait for the
    // auditor — nobody calls audit_sample by hand here.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    loop {
        let runs = handle.with(|svc| svc.telemetry().metrics().counter(names::AUDIT_RUNS).get());
        if runs > 0 {
            break;
        }
        assert!(std::time::Instant::now() < deadline, "auditor never ran");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(handle.with(move |svc| svc.registry().corrupt_maintained_for_test(id)));
    loop {
        let (violations, latched) = handle.with(|svc| {
            (
                svc.telemetry().metrics().counter(names::AUDIT_VIOLATIONS).get(),
                svc.audit_violation(),
            )
        });
        if violations >= 1 {
            let (latched_id, msg) = latched.expect("violation latches health");
            assert_eq!(latched_id, id);
            assert!(!msg.is_empty());
            break;
        }
        assert!(std::time::Instant::now() < deadline, "auditor never caught the corruption");
        std::thread::sleep(Duration::from_millis(5));
    }
    assert!(!handle.with(|svc| svc.health()).is_ready(), "latched violation is unready");

    auditor.stop();
    drop(handle);
}
