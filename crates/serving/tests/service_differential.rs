//! Differential proof of the streaming service: **push ≡ pull**.
//!
//! For generated update streams and generated (label- and
//! attribute-predicate) patterns, the sequence of subscription updates
//! must equal the sequence of *static-recompute* answer changes, per
//! pattern, per mode:
//!
//! * an [`AnswerUpdate`] arrives **exactly** for the batches after which
//!   `top_k_by_match` (resp. `top_k_diversified`) on the service's
//!   snapshot differs from its previous value — no missed updates, no
//!   spurious wakeups;
//! * the update's answer equals the static recompute bit-for-bit, its
//!   `seq` names the batch, its `diff` reconciles the previous static
//!   answer with the new one, and versions increase by exactly 1 per
//!   material change;
//! * a **late joiner** built from a mid-stream snapshot and caught up
//!   from the delta log sees the same update stream from its join point
//!   on, and [`query_at`] agrees with the push history at every offset.
//!
//! [`query_at`]: gpm_serving::AnswerService::query_at

use gpm_core::config::{DivConfig, TopKConfig};
use gpm_core::result::{AnswerDiff, RankedMatch};
use gpm_core::{top_k_by_match, top_k_diversified};
use gpm_datagen::update_stream::{attr_key, update_stream, UpdateStreamConfig};
use gpm_graph::builder::graph_from_parts;
use gpm_graph::{AttrValue, Attributes, DiGraph, GraphBuilder};
use gpm_incremental::IncrementalConfig;
use gpm_pattern::builder::label_pattern;
use gpm_pattern::{CmpOp, Pattern, PatternBuilder, Predicate};
use gpm_serving::{AnswerService, NotifyMode, ServiceConfig, Subscription};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

const LABELS: u32 = 4;
const ATTR_KEYS: u32 = 3;
const ATTR_VALUES: i64 = 8;

fn random_attr_graph(rng: &mut StdRng, n: usize, density: usize) -> DiGraph {
    let mut b = GraphBuilder::new();
    for _ in 0..n {
        let label = rng.random_range(0..LABELS);
        if rng.random_range(0..2u32) == 0 {
            let mut pairs: Vec<(String, AttrValue)> = Vec::new();
            for k in 0..ATTR_KEYS {
                if rng.random_range(0..2u32) == 0 {
                    pairs.push((attr_key(k), AttrValue::Int(rng.random_range(0..ATTR_VALUES))));
                }
            }
            b.add_node_with_attrs(label, Attributes::from_pairs(pairs));
        } else {
            b.add_node(label);
        }
    }
    let m = rng.random_range(0..n * density + 1);
    for _ in 0..m {
        let s = rng.random_range(0..n as u32);
        let t = rng.random_range(0..n as u32);
        if s != t {
            b.add_edge(s, t).unwrap();
        }
    }
    b.build()
}

fn random_attr_condition(rng: &mut StdRng) -> Predicate {
    let key = attr_key(rng.random_range(0..ATTR_KEYS));
    let op = match rng.random_range(0..4u32) {
        0 => CmpOp::Ge,
        1 => CmpOp::Lt,
        2 => CmpOp::Eq,
        _ => CmpOp::Ne,
    };
    Predicate::attr(key, op, rng.random_range(0..ATTR_VALUES))
}

/// A random pattern; ~half the nodes carry attribute conditions.
fn random_pattern(rng: &mut StdRng) -> Pattern {
    let pn = rng.random_range(1..4usize);
    if rng.random_range(0..2u32) == 0 {
        let plabels: Vec<u32> = (0..pn).map(|_| rng.random_range(0..LABELS)).collect();
        let pedges: Vec<(u32, u32)> = (1..pn as u32).map(|i| (i - 1, i)).collect();
        return label_pattern(&plabels, &pedges, 0).unwrap();
    }
    let mut b = PatternBuilder::new();
    for i in 0..pn {
        let label = rng.random_range(0..LABELS);
        let pred = match rng.random_range(0..3u32) {
            0 => Predicate::Label(label),
            1 => Predicate::labeled(label, [random_attr_condition(rng)]),
            _ => Predicate::labeled(
                label,
                [Predicate::Or(vec![random_attr_condition(rng), random_attr_condition(rng)])],
            ),
        };
        b.node(format!("u{i}"), pred);
    }
    for i in 1..pn as u32 {
        b.edge(i - 1, i).unwrap();
    }
    b.output(0).unwrap();
    b.build().unwrap()
}

/// One subscribed pattern plus the pull-side oracle state.
struct Tracked {
    q: Pattern,
    k: usize,
    lambda: f64,
    sub: Subscription,
    /// Last static answer for this subscription's mode.
    prev: Vec<RankedMatch>,
    /// Last seen update version.
    version: u64,
}

impl Tracked {
    /// The static recompute of this subscription's view on `snap`.
    fn static_answer(&self, snap: &DiGraph) -> Vec<RankedMatch> {
        match self.sub.mode() {
            NotifyMode::Relevance => {
                top_k_by_match(snap, &self.q, &TopKConfig::new(self.k)).matches
            }
            NotifyMode::Diversified => {
                top_k_diversified(snap, &self.q, &DivConfig::new(self.k, self.lambda)).matches
            }
        }
    }

    /// After one ingested batch: demand exactly-one update iff the static
    /// answer changed, and that its payload matches the static recompute.
    fn check_step(&mut self, snap: &DiGraph, seq: u64, ctx: &str) {
        let fresh = self.static_answer(snap);
        if fresh == self.prev {
            assert!(
                self.sub.try_recv().is_none(),
                "spurious wakeup: static answer unchanged ({ctx})"
            );
            return;
        }
        let update = self
            .sub
            .try_recv()
            .unwrap_or_else(|| panic!("missed update: static answer changed ({ctx})"));
        assert_eq!(update.topk, fresh, "pushed answer != static recompute ({ctx})");
        assert_eq!(update.seq, seq, "update mislabeled ({ctx})");
        assert_eq!(update.diff, AnswerDiff::between(&self.prev, &fresh), "diff wrong ({ctx})");
        assert_eq!(update.version, self.version + 1, "version not ++ ({ctx})");
        assert!(self.sub.try_recv().is_none(), "more than one update per batch ({ctx})");
        self.version = update.version;
        self.prev = fresh;
    }
}

fn subscribe_all(
    svc: &mut AnswerService,
    patterns: &[(Pattern, usize, f64)],
    snap: &DiGraph,
) -> Vec<Tracked> {
    let mut tracked = Vec::new();
    for (i, (q, k, lambda)) in patterns.iter().enumerate() {
        let mode = if i % 2 == 0 { NotifyMode::Relevance } else { NotifyMode::Diversified };
        let sub =
            svc.subscribe(q.clone(), IncrementalConfig::new(*k).lambda(*lambda), mode).unwrap();
        let mut t =
            Tracked { q: q.clone(), k: *k, lambda: *lambda, sub, prev: Vec::new(), version: 0 };
        // The bootstrap update carries the consistent initial answer.
        let initial = t.sub.try_recv().expect("initial snapshot queued");
        assert_eq!(initial.topk, t.static_answer(snap), "initial answer != static (pattern {i})");
        assert!(initial.diff.left.is_empty() && initial.diff.reordered.is_empty());
        t.prev = initial.topk.clone();
        t.version = initial.version;
        tracked.push(t);
    }
    tracked
}

fn stream_cfg(
    rng: &mut StdRng,
    insert_fraction: f64,
    node_churn: f64,
    attr_churn: f64,
    seed: u64,
) -> UpdateStreamConfig {
    UpdateStreamConfig {
        batches: rng.random_range(4..8usize),
        batch_size: rng.random_range(1..6usize),
        insert_fraction,
        node_churn,
        attr_churn,
        attr_keys: ATTR_KEYS,
        attr_values: ATTR_VALUES,
        labels: LABELS,
        seed,
    }
}

/// The core trial: generated graph + patterns + stream, push checked
/// against pull after every batch.
fn run_trials(spec: (f64, f64, f64), seed: u64, trials: usize) {
    let (insert_fraction, node_churn, attr_churn) = spec;
    let mut rng = StdRng::seed_from_u64(seed);
    for trial in 0..trials {
        let n = rng.random_range(8..26usize);
        let g = random_attr_graph(&mut rng, n, 3);
        let mut svc = AnswerService::new(&g, ServiceConfig::default());
        let patterns: Vec<(Pattern, usize, f64)> = (0..rng.random_range(2..5usize))
            .map(|_| {
                (random_pattern(&mut rng), rng.random_range(1..5usize), rng.random_range(0.0..1.0))
            })
            .collect();
        let mut tracked = subscribe_all(&mut svc, &patterns, &g);

        let cfg = stream_cfg(
            &mut rng,
            insert_fraction,
            node_churn,
            attr_churn,
            seed ^ (trial as u64) << 9,
        );
        for delta in update_stream(&g, &cfg).iter() {
            let report = svc.ingest(delta).unwrap();
            let snap = svc.registry().snapshot();
            for (i, t) in tracked.iter_mut().enumerate() {
                let ctx = format!("trial {trial} seq {} pattern {i}", report.seq);
                t.check_step(&snap, report.seq, &ctx);
            }
        }
        // Suppression really happened somewhere across the run (the
        // service is not just forwarding every touch).
        let s = svc.stats();
        assert_eq!(s.batches, cfg.batches as u64);
        assert_eq!(s.updates_coalesced, 0, "default queues never overflow here");
    }
}

#[test]
fn mixed_streams_push_equals_pull() {
    run_trials((0.55, 0.15, 0.0), 0x5E4_0001, 10);
}

#[test]
fn attr_mixed_streams_push_equals_pull() {
    run_trials((0.55, 0.15, 0.45), 0x5E4_0002, 10);
}

#[test]
fn attr_only_streams_push_equals_pull() {
    run_trials((0.55, 0.0, 1.0), 0x5E4_0003, 8);
}

#[test]
fn delete_only_streams_push_equals_pull() {
    run_trials((0.0, 0.15, 0.0), 0x5E4_0004, 8);
}

/// Stress variant for the nightly CI job.
#[test]
#[ignore = "stress variant — run explicitly or via the nightly CI job"]
fn stress_push_equals_pull() {
    run_trials((0.55, 0.15, 0.0), 0x5E4_5001, 50);
    run_trials((0.55, 0.15, 0.45), 0x5E4_5002, 50);
    run_trials((0.0, 0.2, 0.3), 0x5E4_5003, 30);
}

/// As [`subscribe_all`], but anchoring each subscription to the live
/// service's current [`gpm_serving::VersionedAnswer`] — the baseline
/// handoff a late joiner rides so its `query_at` bookkeeping (change-point
/// seqs and versions) matches the from-zero service exactly, not just its
/// answers.
fn subscribe_all_with_baselines(
    joiner: &mut AnswerService,
    live: &AnswerService,
    patterns: &[(Pattern, usize, f64)],
    snap: &DiGraph,
) -> Vec<Tracked> {
    let mut tracked = Vec::new();
    for (i, (q, k, lambda)) in patterns.iter().enumerate() {
        let mode = if i % 2 == 0 { NotifyMode::Relevance } else { NotifyMode::Diversified };
        // Registration order aligns the two services' pattern ids.
        let live_id = live.registry().pattern_ids()[i];
        let baseline = live.current(live_id).unwrap();
        let sub = joiner
            .subscribe_with_baseline(
                q.clone(),
                IncrementalConfig::new(*k).lambda(*lambda),
                mode,
                baseline,
            )
            .unwrap();
        let mut t =
            Tracked { q: q.clone(), k: *k, lambda: *lambda, sub, prev: Vec::new(), version: 0 };
        let initial = t.sub.try_recv().expect("initial snapshot queued");
        assert_eq!(initial.topk, t.static_answer(snap), "initial answer != static (pattern {i})");
        t.prev = initial.topk.clone();
        t.version = initial.version;
        tracked.push(t);
    }
    tracked
}

/// Late joiner: a service built from a mid-stream snapshot at offset `S`
/// and caught up from the live service's delta log must (a) bootstrap
/// with the answers the live service holds at its join point and (b)
/// receive the *same* update stream from there on — same seqs, answers
/// and diffs, with versions advancing in lockstep.
#[test]
fn late_join_replays_from_midstream_offset() {
    let mut rng = StdRng::seed_from_u64(0x5E4_0010);
    for trial in 0..6 {
        let n = rng.random_range(10..24usize);
        let g = random_attr_graph(&mut rng, n, 3);
        let mut svc = AnswerService::new(&g, ServiceConfig::default());
        let patterns: Vec<(Pattern, usize, f64)> = (0..3)
            .map(|_| {
                (random_pattern(&mut rng), rng.random_range(1..4usize), rng.random_range(0.0..1.0))
            })
            .collect();
        let mut tracked = subscribe_all(&mut svc, &patterns, &g);

        let cfg = stream_cfg(&mut rng, 0.55, 0.15, 0.3, 0xA11 + trial);
        let stream = update_stream(&g, &cfg);
        let join_at = stream.len() / 2;

        // Live service consumes the prefix.
        for delta in &stream[..join_at] {
            let report = svc.ingest(delta).unwrap();
            let snap = svc.registry().snapshot();
            for t in tracked.iter_mut() {
                t.check_step(&snap, report.seq, "prefix");
            }
        }

        // The joiner anchors at the live snapshot + offset and re-subscribes
        // with the live service's versioned answers as baselines, so its
        // change-point bookkeeping starts at the true log offsets.
        let join_seq = svc.seq();
        let snap = svc.registry().snapshot();
        let mut joiner = AnswerService::at_offset(&snap, join_seq, ServiceConfig::default());
        let mut joined = subscribe_all_with_baselines(&mut joiner, &svc, &patterns, &snap);
        for (t, j) in tracked.iter().zip(&joined) {
            assert_eq!(t.prev, j.prev, "joiner bootstrapped a different answer");
        }

        // Suffix: the live service ingests; the joiner catches up from its
        // log after every batch and must see the identical update stream.
        for delta in &stream[join_at..] {
            let report = svc.ingest(delta).unwrap();
            let replayed = joiner.catch_up(svc.log()).unwrap();
            assert_eq!(replayed, 1, "one new entry per batch");
            assert_eq!(joiner.seq(), svc.seq());
            let snap = svc.registry().snapshot();
            let jsnap = joiner.registry().snapshot();
            assert_eq!(snap.node_count(), jsnap.node_count());
            assert_eq!(snap.edge_count(), jsnap.edge_count());
            for (i, (t, j)) in tracked.iter_mut().zip(joined.iter_mut()).enumerate() {
                let ctx = format!("late-join trial {trial} seq {} pattern {i}", report.seq);
                let before_t = t.version;
                let before_j = j.version;
                t.check_step(&snap, report.seq, &ctx);
                j.check_step(&jsnap, report.seq, &ctx);
                assert_eq!(t.prev, j.prev, "answers diverged ({ctx})");
                assert_eq!(
                    t.version - before_t,
                    j.version - before_j,
                    "versions advanced differently ({ctx})"
                );
            }
        }

        // Pull-side agreement at every servable offset of the suffix —
        // **exact** agreement: the baseline handoff anchors the joiner's
        // change points to the log's true sequence numbers, so `seq` and
        // `version` match the from-zero bookkeeping too (the PR-4 wart:
        // a fresh mid-stream subscribe would re-anchor at `join_seq`).
        for (t, j) in tracked.iter().zip(&joined) {
            for seq in join_seq..=svc.seq() {
                let a = svc.query_at(t.sub.pattern(), seq).expect("live serves the suffix");
                let b = joiner.query_at(j.sub.pattern(), seq).expect("joiner serves the suffix");
                assert_eq!(a, b, "query_at({seq}) bookkeeping diverged");
            }
        }
    }
}

/// The baseline handoff is validated: a baseline that does not describe
/// the joiner's graph (stale snapshot) is rejected and the registration
/// rolled back, leaving the service untouched.
#[test]
fn stale_baseline_is_rejected() {
    let g = graph_from_parts(&[0, 1, 1], &[(0, 1), (0, 2)]).unwrap();
    let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();
    let mut live = AnswerService::new(&g, ServiceConfig::default());
    let sub = live.subscribe(q.clone(), IncrementalConfig::new(3), NotifyMode::Relevance).unwrap();
    let baseline = live.current(sub.pattern()).unwrap();
    live.ingest(&gpm_graph::GraphDelta::new().remove_edge(0, 2)).unwrap();

    // Joiner at the *new* head with the *old* baseline: mismatch.
    let mut joiner =
        AnswerService::at_offset(&live.registry().snapshot(), live.seq(), ServiceConfig::default());
    let err = joiner
        .subscribe_with_baseline(
            q.clone(),
            IncrementalConfig::new(3),
            NotifyMode::Relevance,
            baseline,
        )
        .err()
        .expect("stale baseline must be rejected");
    assert!(matches!(err, gpm_serving::ServingError::BaselineMismatch(_)), "{err}");
    assert_eq!(joiner.subscriptions(), 0);
    assert!(joiner.registry().is_empty(), "rolled back");

    // A future-dated baseline is rejected up front.
    let fresh = live.current(sub.pattern()).unwrap();
    let mut future = fresh.clone();
    future.seq = live.seq() + 7;
    let err = joiner
        .subscribe_with_baseline(
            q.clone(),
            IncrementalConfig::new(3),
            NotifyMode::Relevance,
            future,
        )
        .err()
        .expect("future baseline must be rejected");
    assert!(matches!(err, gpm_serving::ServingError::OffsetInFuture { .. }), "{err}");

    // The current baseline goes through, and query_at agrees exactly.
    let jsub = joiner
        .subscribe_with_baseline(q, IncrementalConfig::new(3), NotifyMode::Relevance, fresh)
        .unwrap();
    for seq in live.seq().min(joiner.seq())..=live.seq() {
        assert_eq!(
            live.query_at(sub.pattern(), seq).unwrap(),
            joiner.query_at(jsub.pattern(), seq).unwrap(),
        );
    }
}

/// Sanity for the stream-independent pieces the trials lean on: an empty
/// graph and an empty pattern set are serveable, and rejected deltas
/// change nothing.
#[test]
fn rejected_deltas_leave_the_service_unchanged() {
    let g = graph_from_parts(&[0, 1], &[(0, 1)]).unwrap();
    let mut svc = AnswerService::new(&g, ServiceConfig::default());
    let sub = svc
        .subscribe(
            label_pattern(&[0, 1], &[(0, 1)], 0).unwrap(),
            IncrementalConfig::new(2),
            NotifyMode::Relevance,
        )
        .unwrap();
    let initial = sub.try_recv().unwrap();
    assert_eq!(initial.topk_nodes(), vec![0]);

    let bad = gpm_graph::GraphDelta::new().add_edge(0, 99);
    assert!(svc.ingest(&bad).is_err());
    assert_eq!(svc.seq(), 0, "rejected batches get no sequence number");
    assert!(svc.log().is_empty(), "rejected batches are not logged");
    assert!(sub.try_recv().is_none());
    assert_eq!(svc.stats().batches, 0);
}
