//! The ISSUE 6 acceptance test: a forced intra-pattern-split workload
//! driven through [`AnswerService`] must leave behind (a) a
//! flight-recorder batch trace whose span tree shows `prepare`/`extract`
//! work attributed to ≥ 2 distinct pool workers, and (b) a Prometheus
//! `render()` carrying the mandatory latency histograms — ingest,
//! refresh phase, notify fan-out, log fsync — all with nonzero counts.

use gpm_graph::builder::graph_from_parts;
use gpm_graph::GraphDelta;
use gpm_incremental::IncrementalConfig;
use gpm_pattern::builder::label_pattern;
use gpm_serving::{names, AnswerService, BatchTrace, NotifyMode, ServiceConfig, TelemetryConfig};

/// Workers that touched the heavy per-output phases of one batch trace:
/// the union of distinct opening threads over `prepare` and `extract`
/// spans (phase-2b chunk extraction opens one `extract` per claimed
/// chunk on whichever pool worker claimed it).
fn split_workers(trace: &BatchTrace) -> usize {
    let mut threads: Vec<u32> = trace
        .spans_named("prepare")
        .chain(trace.spans_named("extract"))
        .map(|s| s.thread)
        .collect();
    threads.sort_unstable();
    threads.dedup();
    threads.len()
}

#[test]
fn forced_split_batch_is_fully_observable() {
    // One 1500-node cycle alternating labels a/b with the cyclic pattern
    // A ⇄ B: every pair is alive and every relevant set is the whole
    // cycle, so the revival batch dirties all 750 outputs at once and
    // each costs a real BFS (reach budget zeroed) — the registry's
    // phase-2b split across the 4-worker pool is the designed outcome.
    let n = 1500u32;
    let labels: Vec<u32> = (0..n).map(|i| i % 2).collect();
    let edges: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
    let g = graph_from_parts(&labels, &edges).unwrap();
    let q = label_pattern(&[0, 1], &[(0, 1), (1, 0)], 0).unwrap();

    let mut cfg = IncrementalConfig::new(8);
    cfg.max_delta_fraction = f64::INFINITY;
    cfg.max_dirty_fraction = f64::INFINITY;
    cfg.reach = gpm_ranking::ReachConfig { budget_bytes: 0, threads: 1 };

    let mut svc = AnswerService::new(
        &g,
        ServiceConfig { threads: 4, telemetry: TelemetryConfig::default(), ..Default::default() },
    );
    assert!(svc.telemetry().enabled(), "serving telemetry defaults to on");
    let sub = svc.subscribe(q, cfg, NotifyMode::Relevance).unwrap();
    sub.try_recv().expect("consistent initial answer");

    // Toggle one cycle edge: the removal kills every match, the revival
    // brings all 750 back — and must arrive as one coherent update.
    // The split *decision* is deterministic; *observing* ≥ 2 distinct
    // workers on the chunks depends on scheduling, so retry a few
    // rounds on a loaded machine.
    let mut split_trace: Option<std::sync::Arc<BatchTrace>> = None;
    for _round in 0..6 {
        svc.ingest(&GraphDelta::new().remove_edge(0, 1)).unwrap();
        let report = svc.ingest(&GraphDelta::new().add_edge(0, 1)).unwrap();
        assert_eq!(report.touched, 1);
        let revival = svc
            .telemetry()
            .recorder()
            .recent()
            .last()
            .cloned()
            .expect("enabled telemetry files every batch trace");
        assert_eq!(revival.seq, svc.seq(), "newest trace is the revival batch");
        if split_workers(&revival) >= 2 {
            split_trace = Some(revival);
            break;
        }
    }
    let trace = split_trace.expect("≥ 2 distinct workers never observed on prepare/extract");

    // The span tree is the full ingest story: apply → refresh →
    // prepare/extract under one root, plus the notify fan-out.
    assert_eq!(trace.spans[0].name, "ingest");
    for phase in ["apply", "replay", "refresh", "prepare", "extract", "notify"] {
        assert!(trace.spans_named(phase).next().is_some(), "trace has a {phase} span");
    }
    assert!(
        trace.spans_named("refresh").any(|s| s.detail.contains("phase=2b")),
        "the split refresh identifies itself: {}",
        trace.render()
    );
    // …and the registry agrees the split was decided, not accidental.
    assert!(svc.registry_stats().intra_pattern_splits >= 1);

    // The per-subscription stream saw every revival (one update per
    // material change, no torn answers).
    assert!(sub.pending() >= 2);

    // A checkpoint gives the fsync histogram its samples.
    let dir = std::env::temp_dir().join("gpm_telemetry_observability_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("log_{}.jsonl", std::process::id()));
    svc.save_log(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // Mandatory histograms: present in the snapshot AND in the rendered
    // exposition, with nonzero counts.
    let snap = svc.telemetry().metrics().snapshot();
    let rendered = svc.telemetry().render();
    for name in names::mandatory_histograms() {
        let h = snap.histogram(&name).unwrap_or_else(|| panic!("{name} missing"));
        assert!(h.count > 0, "{name} has no samples");
        let (base, labels) = match name.find('{') {
            Some(i) => (&name[..i], &name[i..]),
            None => (name.as_str(), ""),
        };
        let line = format!("{base}_count{labels} {}", h.count);
        assert!(rendered.contains(&line), "render misses `{line}`");
    }

    // The dump the control plane serves carries both halves.
    let dump = svc.telemetry().dump_json();
    assert!(dump.contains("\"metrics\":{"));
    assert!(dump.contains("\"flight_recorder\":{"));
    assert!(dump.contains("\"extract\""), "dumped traces name their phases");
}

/// Disabled telemetry serves identical answers and records nothing —
/// the serving-level half of the on/off differential (the registry-level
/// half lives in gpm-incremental's `registry_differential`).
#[test]
fn disabled_telemetry_changes_no_answers_and_stays_silent() {
    let g = graph_from_parts(&[0, 0, 1, 1, 1], &[(0, 2), (1, 2)]).unwrap();
    let q = label_pattern(&[0, 1], &[(0, 1)], 0).unwrap();

    let mut on = AnswerService::new(&g, ServiceConfig::default());
    let mut off = AnswerService::new(
        &g,
        ServiceConfig { telemetry: TelemetryConfig::disabled(), ..Default::default() },
    );
    assert!(!off.telemetry().enabled());
    let sub_on = on.subscribe(q.clone(), IncrementalConfig::new(3), NotifyMode::Relevance).unwrap();
    let sub_off = off.subscribe(q, IncrementalConfig::new(3), NotifyMode::Relevance).unwrap();

    let batches = [
        GraphDelta::new().add_edge(1, 3),
        GraphDelta::new().add_edge(0, 3).remove_edge(1, 2),
        GraphDelta::new().add_node(1).add_edge(1, 5),
        GraphDelta::new().remove_node(3),
    ];
    for delta in &batches {
        on.ingest(delta).unwrap();
        off.ingest(delta).unwrap();
    }
    let a: Vec<_> = sub_on.drain();
    let b: Vec<_> = sub_off.drain();
    assert_eq!(a, b, "telemetry changed the update stream");

    // Counters (and thus stats) record either way; traces and phase
    // histograms only on the enabled side.
    assert_eq!(on.stats().batches, off.stats().batches);
    assert!(!on.telemetry().recorder().recent().is_empty());
    assert!(off.telemetry().recorder().recent().is_empty());
    let on_snap = on.telemetry().metrics().snapshot();
    let off_snap = off.telemetry().metrics().snapshot();
    assert!(on_snap.histogram(&names::phase("ingest")).is_some_and(|h| h.count > 0));
    assert!(off_snap.histogram(&names::phase("ingest")).is_none_or(|h| h.count == 0));

    // Runtime flip: the next batch of the quiet service traces.
    off.telemetry().set_enabled(true);
    off.ingest(&GraphDelta::new().add_edge(0, 4)).unwrap();
    assert_eq!(off.telemetry().recorder().recent().len(), 1);
}
