//! [`AnswerService`]: the long-lived loop that owns a [`PatternRegistry`],
//! ingests delta batches into a [`DeltaLog`], and fans material answer
//! changes out to subscriptions.
//!
//! One `ingest` is one consistency point: the batch is applied to the
//! shared graph exactly once, appended to the log under the next sequence
//! number, and every subscription whose view of its pattern's answer
//! materially changed receives **one** [`AnswerUpdate`] carrying that
//! sequence number. Per-pattern answer **versions** advance only on
//! material change, and the retained history of versioned answers serves
//! [`AnswerService::query_at`] — the pull-side view of the same timeline
//! the push side streams.

use std::collections::{HashMap, VecDeque};

use gpm_core::result::{AnswerDiff, RankedMatch};
use gpm_graph::{DiGraph, GraphDelta, GraphError};
use gpm_incremental::{
    BoundPolicy, IncrementalConfig, IncrementalError, PatternId, PatternRegistry, RegistryStats,
};
use gpm_pattern::Pattern;
use gpm_telemetry::{names, Counter, Gauge, Span, Telemetry, TelemetryConfig};

use crate::answer::{AnswerUpdate, VersionedAnswer};
use crate::health::{ComponentHealth, HealthConfig, HealthReport, HealthStatus};
use crate::log::DeltaLog;
use crate::slo::{SloConfig, SloTracker};
use crate::subscription::{NotifyMode, SubShared, Subscription, SubscriptionId};

/// Errors from the serving layer.
#[derive(Debug)]
pub enum ServingError {
    /// The registry rejected the pattern or the delta.
    Incremental(IncrementalError),
    /// The graph layer rejected a delta or a serialized record.
    Graph(GraphError),
    /// The requested offset was compacted away (or predates the pattern).
    OffsetCompacted {
        /// The requested offset.
        seq: u64,
        /// The oldest still-servable offset.
        retained_from: u64,
    },
    /// The requested offset has not been ingested yet.
    OffsetInFuture {
        /// The requested offset.
        seq: u64,
        /// The current head offset.
        head: u64,
    },
    /// No such pattern is registered with the service.
    UnknownPattern(PatternId),
    /// A handed-off baseline answer does not match this service's graph
    /// (stale snapshot, or the wrong pattern's answer). The registration
    /// was rolled back.
    BaselineMismatch(PatternId),
    /// A serialized log was malformed.
    Corrupt(String),
}

impl ServingError {
    pub(crate) fn corrupt(msg: impl Into<String>) -> Self {
        ServingError::Corrupt(msg.into())
    }
}

impl std::fmt::Display for ServingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServingError::Incremental(e) => write!(f, "{e}"),
            ServingError::Graph(e) => write!(f, "{e}"),
            ServingError::OffsetCompacted { seq, retained_from } => {
                write!(f, "offset {seq} compacted away (retained from {retained_from})")
            }
            ServingError::OffsetInFuture { seq, head } => {
                write!(f, "offset {seq} not ingested yet (head is {head})")
            }
            ServingError::UnknownPattern(id) => write!(f, "unknown {id}"),
            ServingError::BaselineMismatch(id) => {
                write!(f, "baseline answer does not match the current graph for {id}")
            }
            ServingError::Corrupt(msg) => write!(f, "corrupt delta log: {msg}"),
        }
    }
}

impl std::error::Error for ServingError {}

impl From<IncrementalError> for ServingError {
    fn from(e: IncrementalError) -> Self {
        ServingError::Incremental(e)
    }
}

/// Tuning knobs of an [`AnswerService`].
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Per-subscription queue bound; overflow coalesces newest-wins.
    pub queue_capacity: usize,
    /// Versioned answers retained per pattern for [`AnswerService::query_at`]
    /// (change points, not batches — an unchanged answer spans any number
    /// of offsets for free).
    pub retain_answers: usize,
    /// Maintenance-pool size of the owned registry.
    pub threads: usize,
    /// Observability bounds and switches. Enabled by default: the
    /// serving layer is where batch traces, phase histograms and the
    /// flight recorder earn their keep. [`TelemetryConfig::disabled`]
    /// keeps counters (and thus [`ServiceStats`]) while dropping
    /// histograms and tracing to a few relaxed atomic loads.
    pub telemetry: TelemetryConfig,
    /// Per-pattern notify-latency objective, burn-rate window and error
    /// budget (`gpm_slo_*` metrics and the `slo` health component).
    pub slo: SloConfig,
    /// Thresholds of the `/healthz` probes.
    pub health: HealthConfig,
    /// Service-wide maintained output-bound policy. `None` (the default)
    /// leaves each subscription's [`IncrementalConfig::bounds`] as the
    /// caller passed it; `Some` overrides every registration — the
    /// operator's one switch to force bounds on/off or pin a
    /// [`BoundStrategy`](gpm_incremental::BoundStrategy) fleet-wide.
    pub bounds: Option<BoundPolicy>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 64,
            retain_answers: 1024,
            threads: PatternRegistry::default_threads(),
            telemetry: TelemetryConfig::default(),
            slo: SloConfig::default(),
            health: HealthConfig::default(),
            bounds: None,
        }
    }
}

/// Service-level counters — a point-in-time snapshot assembled from the
/// service's telemetry counters by [`AnswerService::stats`] (the
/// counters are the single source of truth; this struct is the
/// ergonomic read).
#[derive(Debug, Clone, Default)]
pub struct ServiceStats {
    /// Batches ingested (appended to the log and applied).
    pub batches: u64,
    /// Updates pushed into subscription queues.
    pub updates_pushed: u64,
    /// Updates merged away by queue-overflow coalescing.
    pub updates_coalesced: u64,
    /// Queued updates evicted by coalescing, summed over every
    /// subscription (per-subscription counts via
    /// [`Subscription::dropped`](crate::Subscription::dropped)).
    pub updates_dropped: u64,
    /// Diffs rebased onto an earlier baseline during coalescing, summed
    /// over every subscription (per-subscription counts via
    /// [`Subscription::rebased`](crate::Subscription::rebased)).
    pub diffs_rebased: u64,
    /// Notifications withheld because a touched pattern's answer did not
    /// materially change for that subscription ("no spurious wakeups").
    pub suppressed: u64,
    /// Ingests rejected (invalid deltas) — state and log unchanged.
    pub ingest_errors: u64,
}

/// Resolved handles of every serving-level metric; counters keep
/// recording whether or not histograms/tracing are enabled, so
/// [`ServiceStats`] stays correct either way.
#[derive(Debug)]
struct ServiceCounters {
    batches: Counter,
    updates_pushed: Counter,
    updates_coalesced: Counter,
    updates_dropped: Counter,
    diffs_rebased: Counter,
    suppressed: Counter,
    ingest_errors: Counter,
    subscriptions: Gauge,
    max_queue_depth: Gauge,
}

impl ServiceCounters {
    fn resolve(t: &Telemetry) -> Self {
        let m = t.metrics();
        ServiceCounters {
            batches: m.counter(names::SERVING_BATCHES),
            updates_pushed: m.counter(names::SERVING_UPDATES_PUSHED),
            updates_coalesced: m.counter(names::SERVING_UPDATES_COALESCED),
            updates_dropped: m.counter(names::SERVING_UPDATES_DROPPED),
            diffs_rebased: m.counter(names::SERVING_DIFFS_REBASED),
            suppressed: m.counter(names::SERVING_SUPPRESSED),
            ingest_errors: m.counter(names::SERVING_INGEST_ERRORS),
            subscriptions: m.gauge(names::SERVING_SUBSCRIPTIONS),
            max_queue_depth: m.gauge(names::SERVING_MAX_QUEUE_DEPTH),
        }
    }
}

/// What one [`AnswerService::ingest`] did.
#[derive(Debug, Clone, Copy)]
pub struct IngestReport {
    /// The sequence number assigned to the batch.
    pub seq: u64,
    /// Patterns the batch touched (replayed into or rebuilt).
    pub touched: usize,
    /// Updates pushed to subscriptions.
    pub notified: usize,
}

struct PatternEntry {
    /// Latest per-pattern answer version (1 at registration; +1 per
    /// material change of the relevance-ranked answer).
    version: u64,
    /// Retained change points, ascending by `seq`.
    history: VecDeque<VersionedAnswer>,
}

struct SubEntry {
    id: SubscriptionId,
    mode: NotifyMode,
    /// Version of the last update pushed to this subscription.
    version: u64,
    /// Diversified mode: the answer last pushed, the per-sub diff
    /// baseline. Relevance subscriptions ride the registry's served
    /// baseline instead (their diff is the registry's own change set), so
    /// for them this stays at the attach-time answer and is never read.
    last: Vec<RankedMatch>,
    shared: std::sync::Arc<SubShared>,
}

/// The streaming answer service. See the crate docs for the model and
/// `tests/service_differential.rs` for the push ≡ pull proof.
pub struct AnswerService {
    registry: PatternRegistry,
    log: DeltaLog,
    /// Versioned answer history, by pattern.
    patterns: HashMap<PatternId, PatternEntry>,
    /// Subscriptions grouped by pattern, in attach order — fan-out work is
    /// proportional to the subscribers of the patterns a batch touched,
    /// not to the total subscriber population.
    subs: HashMap<PatternId, Vec<SubEntry>>,
    next_sub: u64,
    cfg: ServiceConfig,
    telemetry: Telemetry,
    counters: ServiceCounters,
    /// Per-pattern SLO trackers, keyed like [`Self::patterns`].
    slos: HashMap<PatternId, SloTracker>,
    /// Round-robin cursor of the sampled production auditor.
    audit_cursor: usize,
    /// The last unresolved audit violation — set by [`Self::audit_sample`]
    /// on a failed audit, cleared when the same pattern audits clean (or
    /// is deregistered). While set, `/healthz` reports **unready**: a
    /// proven-wrong maintained answer outranks every latency concern.
    audit_latch: Option<(PatternId, String)>,
    audit_runs: Counter,
    audit_violations: Counter,
    /// Snapshot-time gauges refreshed by [`Self::sample_gauges`].
    log_bytes: Gauge,
    fsync_age: Gauge,
    pool_queue: Gauge,
    uptime: Gauge,
    started: std::time::Instant,
}

impl AnswerService {
    /// A service over `g`, with the delta log anchored at offset 0.
    pub fn new(g: &DiGraph, cfg: ServiceConfig) -> Self {
        Self::at_offset(g, 0, cfg)
    }

    /// A service anchored mid-stream: `g` is the graph state at offset
    /// `seq` — the late-joiner / crash-recovery constructor. Re-subscribe,
    /// then [`Self::catch_up`] against the source log.
    pub fn at_offset(g: &DiGraph, seq: u64, cfg: ServiceConfig) -> Self {
        let telemetry = Telemetry::new(cfg.telemetry.clone());
        let counters = ServiceCounters::resolve(&telemetry);
        let mut registry = PatternRegistry::with_threads(g, cfg.threads);
        registry.set_telemetry(telemetry.clone());
        let mut log = DeltaLog::at_offset(g, seq);
        log.set_fsync_histogram(telemetry.metrics().histogram(names::LOG_FSYNC_SECONDS));
        let m = telemetry.metrics();
        // Constant 1 with the version as a label — the Prometheus idiom
        // for joining build metadata onto every other series.
        m.gauge_with(names::BUILD_INFO, &[("version", env!("CARGO_PKG_VERSION"))]).set(1);
        let (log_bytes, fsync_age, pool_queue, uptime) = (
            m.gauge(names::DELTA_LOG_BYTES),
            m.gauge(names::DELTA_LOG_FSYNC_AGE),
            m.gauge(names::POOL_QUEUE_DEPTH),
            m.gauge(names::UPTIME_SECONDS),
        );
        let (audit_runs, audit_violations) =
            (m.counter(names::AUDIT_RUNS), m.counter(names::AUDIT_VIOLATIONS));
        AnswerService {
            registry,
            log,
            patterns: HashMap::new(),
            subs: HashMap::new(),
            next_sub: 0,
            cfg,
            telemetry,
            counters,
            slos: HashMap::new(),
            audit_cursor: 0,
            audit_latch: None,
            audit_runs,
            audit_violations,
            log_bytes,
            fsync_age,
            pool_queue,
            uptime,
            started: std::time::Instant::now(),
        }
    }

    /// The observability bundle the whole stack under this service
    /// records into — metrics, batch traces and the flight recorder.
    /// `handle.with(|svc| svc.telemetry().dump_json())` is the
    /// control-plane dump of a live service.
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// The sequence number of the newest ingested batch.
    pub fn seq(&self) -> u64 {
        self.log.head_seq()
    }

    /// The owned registry (read-only; mutate through [`Self::ingest`]).
    pub fn registry(&self) -> &PatternRegistry {
        &self.registry
    }

    /// The owned delta log.
    pub fn log(&self) -> &DeltaLog {
        &self.log
    }

    /// Service-level counters (a snapshot of the telemetry counters).
    pub fn stats(&self) -> ServiceStats {
        let c = &self.counters;
        ServiceStats {
            batches: c.batches.get(),
            updates_pushed: c.updates_pushed.get(),
            updates_coalesced: c.updates_coalesced.get(),
            updates_dropped: c.updates_dropped.get(),
            diffs_rebased: c.diffs_rebased.get(),
            suppressed: c.suppressed.get(),
            ingest_errors: c.ingest_errors.get(),
        }
    }

    /// The owned registry's counters (shared-index skip rate & co).
    pub fn registry_stats(&self) -> RegistryStats {
        self.registry.stats()
    }

    /// Number of live subscriptions.
    pub fn subscriptions(&self) -> usize {
        self.subs.values().map(Vec::len).sum()
    }

    /// Registers `q` and attaches a subscription to it. The subscription's
    /// queue starts with one update carrying the **consistent initial
    /// answer** at the current offset (diff: everything `entered`), so a
    /// consumer needs no separate bootstrap read.
    pub fn subscribe(
        &mut self,
        q: Pattern,
        mut cfg: IncrementalConfig,
        mode: NotifyMode,
    ) -> Result<Subscription, ServingError> {
        if let Some(bounds) = &self.cfg.bounds {
            cfg.bounds = bounds.clone();
        }
        let id = self.registry.register(q, cfg)?;
        let initial = self.registry.top_k(id).expect("just registered").matches;
        self.patterns.insert(
            id,
            PatternEntry {
                version: 1,
                history: VecDeque::from([VersionedAnswer {
                    seq: self.seq(),
                    version: 1,
                    matches: initial,
                }]),
            },
        );
        self.track_slo(id);
        self.attach(id, mode)
    }

    /// Registers `q` anchored to a **handed-off baseline** — the
    /// late-joiner / follower path. A fresh [`Self::subscribe`] on a
    /// mid-stream service records the pattern's first change point at the
    /// join offset, even though the answer last changed earlier — a
    /// from-zero service and the joiner would then disagree on the `seq`
    /// and `version` bookkeeping of [`Self::query_at`] (never on the
    /// answers). Passing the live service's [`Self::current`] answer here
    /// seeds the history with the **true** change point, anchored to the
    /// shared [`DeltaLog`] sequence numbers: `query_at` agrees exactly —
    /// matches, `seq` and `version` — between the two services, for every
    /// offset from the baseline's seq on.
    ///
    /// The baseline must describe this service's graph: its matches are
    /// validated against a fresh ranking of the registered pattern, and a
    /// mismatch rolls the registration back with
    /// [`ServingError::BaselineMismatch`].
    pub fn subscribe_with_baseline(
        &mut self,
        q: Pattern,
        mut cfg: IncrementalConfig,
        mode: NotifyMode,
        baseline: VersionedAnswer,
    ) -> Result<Subscription, ServingError> {
        if baseline.seq > self.seq() {
            return Err(ServingError::OffsetInFuture { seq: baseline.seq, head: self.seq() });
        }
        if let Some(bounds) = &self.cfg.bounds {
            cfg.bounds = bounds.clone();
        }
        let id = self.registry.register(q, cfg)?;
        let fresh = self.registry.top_k(id).expect("just registered").matches;
        if fresh != baseline.matches {
            self.registry.deregister(id);
            return Err(ServingError::BaselineMismatch(id));
        }
        self.patterns.insert(
            id,
            PatternEntry { version: baseline.version, history: VecDeque::from([baseline]) },
        );
        self.track_slo(id);
        self.attach(id, mode)
    }

    /// Starts SLO tracking for a freshly registered pattern.
    fn track_slo(&mut self, id: PatternId) {
        let tracker = SloTracker::new(&self.telemetry, &id.to_string(), self.cfg.slo.clone());
        self.slos.insert(id, tracker);
    }

    /// Attaches one more subscription to an already-registered pattern
    /// (many consumers, one maintained state).
    pub fn attach(
        &mut self,
        pattern: PatternId,
        mode: NotifyMode,
    ) -> Result<Subscription, ServingError> {
        let entry = self.patterns.get(&pattern).ok_or(ServingError::UnknownPattern(pattern))?;
        let (version, initial): (u64, Vec<RankedMatch>) = match mode {
            // The newest history entry *is* the current relevance answer —
            // no need to re-rank what the registry already served.
            NotifyMode::Relevance => {
                (entry.version, entry.history.back().expect("history never empty").matches.clone())
            }
            NotifyMode::Diversified => (
                1,
                self.registry
                    .top_k_diversified(pattern)
                    .ok_or(ServingError::UnknownPattern(pattern))?
                    .matches,
            ),
        };
        let id = SubscriptionId(self.next_sub);
        self.next_sub += 1;
        let shared = SubShared::new(self.cfg.queue_capacity);
        shared.push(AnswerUpdate {
            pattern,
            version,
            seq: self.seq(),
            topk: initial.clone(),
            diff: AnswerDiff::between(&[], &initial),
        });
        self.counters.updates_pushed.inc();
        self.subs.entry(pattern).or_default().push(SubEntry {
            id,
            mode,
            version,
            last: initial,
            shared: shared.clone(),
        });
        self.counters.subscriptions.set(self.subscriptions() as i64);
        Ok(Subscription { id, pattern, mode, shared })
    }

    /// Drops a subscription: its queue is closed (pending updates remain
    /// readable) and, when this was the pattern's last subscriber, the
    /// pattern is deregistered and its answer history released. Returns
    /// `false` for unknown (already-dropped) subscriptions.
    pub fn unsubscribe(&mut self, sub: &Subscription) -> bool {
        let pattern = sub.pattern();
        let Some(list) = self.subs.get_mut(&pattern) else {
            return false;
        };
        let Some(i) = list.iter().position(|s| s.id == sub.id()) else {
            return false;
        };
        let entry = list.remove(i);
        entry.shared.close();
        if list.is_empty() {
            self.subs.remove(&pattern);
            self.patterns.remove(&pattern);
            self.slos.remove(&pattern);
            self.registry.deregister(pattern);
            // A latched audit violation of a now-gone pattern is resolved:
            // the corrupt state was dropped with the slot.
            if self.audit_latch.as_ref().is_some_and(|(id, _)| *id == pattern) {
                self.audit_latch = None;
            }
        }
        self.counters.subscriptions.set(self.subscriptions() as i64);
        true
    }

    /// Ingests one batch: applies it to the shared graph, appends it to
    /// the log under the next sequence number, advances per-pattern
    /// versions/histories, and pushes one [`AnswerUpdate`] to every
    /// subscription whose view materially changed. On error the graph,
    /// the log and every queue are unchanged.
    pub fn ingest(&mut self, delta: &GraphDelta) -> Result<IngestReport, ServingError> {
        // One batch = one trace: the "ingest" root spans the registry
        // apply (and its replay/refresh/prepare/extract subtree) plus
        // the notify fan-out; finish_batch folds every span into the
        // phase histograms and files the tree with the flight recorder.
        let root = self.telemetry.start_batch();
        let out = self.ingest_traced(delta, &root);
        self.telemetry.finish_batch(root, self.log.head_seq());
        out
    }

    fn ingest_traced(
        &mut self,
        delta: &GraphDelta,
        root: &Span,
    ) -> Result<IngestReport, ServingError> {
        let t0 = std::time::Instant::now();
        let changes = {
            let apply = root.child("apply");
            match self.registry.apply_traced(delta, &apply) {
                Ok(changes) => changes,
                Err(e) => {
                    self.counters.ingest_errors.inc();
                    apply.event("ingest-rejected");
                    return Err(e.into());
                }
            }
        };
        let seq = self.log.append(delta.clone());
        self.counters.batches.inc();
        let mut report = IngestReport { seq, touched: changes.len(), notified: 0 };

        let notify = root.child("notify");
        let mut max_depth = 0usize;
        for change in &changes {
            // Per-pattern versioned history: advance only on material
            // change of the relevance answer (the registry's diff).
            if change.changed() {
                if let Some(entry) = self.patterns.get_mut(&change.id) {
                    entry.version += 1;
                    entry.history.push_back(VersionedAnswer {
                        seq,
                        version: entry.version,
                        matches: change.top.matches.clone(),
                    });
                    while entry.history.len() > self.cfg.retain_answers.max(1) {
                        entry.history.pop_front();
                    }
                }
            }

            // Subscriber fan-out. The diversified answer is computed at
            // most once per touched pattern, and only if someone wants it:
            // a touched pattern's diversified selection can move even when
            // its relevance top-k survived (off-list relevances feed the
            // greedy objective), so it is re-derived whenever touched.
            let wants_div = self
                .subs
                .get(&change.id)
                .is_some_and(|l| l.iter().any(|s| s.mode == NotifyMode::Diversified));
            let div: Option<Vec<RankedMatch>> = wants_div
                .then(|| self.registry.top_k_diversified(change.id).expect("registered").matches);
            for sub in self.subs.get_mut(&change.id).map(Vec::as_mut_slice).unwrap_or_default() {
                // Relevance subscriptions share the served baseline the
                // registry already diffed against (attach seeds `last`
                // from the same answer and both advance on the same
                // material-change events), so the registry's diff is
                // reused; only diversified views need a per-sub diff.
                let (fresh, diff): (&[RankedMatch], AnswerDiff) = match sub.mode {
                    NotifyMode::Relevance => {
                        if !change.changed() {
                            self.counters.suppressed.inc();
                            continue;
                        }
                        (&change.top.matches, change.diff.clone())
                    }
                    NotifyMode::Diversified => {
                        let fresh: &[RankedMatch] = div.as_deref().expect("computed above");
                        let diff = AnswerDiff::between(&sub.last, fresh);
                        if diff.is_empty() {
                            self.counters.suppressed.inc();
                            continue;
                        }
                        sub.last = fresh.to_vec();
                        (fresh, diff)
                    }
                };
                sub.version += 1;
                let outcome = sub.shared.push(AnswerUpdate {
                    pattern: change.id,
                    version: sub.version,
                    seq,
                    topk: fresh.to_vec(),
                    diff,
                });
                max_depth = max_depth.max(outcome.depth);
                self.counters.updates_pushed.inc();
                if outcome.coalesced {
                    self.counters.updates_coalesced.inc();
                    self.counters.updates_dropped.inc();
                    self.counters.diffs_rebased.inc();
                }
                report.notified += 1;
            }
        }
        self.counters.max_queue_depth.set(max_depth as i64);
        if notify.is_enabled() {
            notify.detail(format!("touched={} notified={}", report.touched, report.notified));
        }
        // One SLO event per touched pattern: its subscribers were told (or
        // provably did not need telling) within this latency.
        let latency = t0.elapsed();
        for change in &changes {
            if let Some(slo) = self.slos.get_mut(&change.id) {
                slo.record(latency);
            }
        }
        Ok(report)
    }

    /// Replays every entry of `source` this service has not ingested yet
    /// (entries with `seq >` [`Self::seq`]), in order. The late-joiner /
    /// recovery path: a service anchored at `source`'s base (or any
    /// mid-stream snapshot) converges on the exact same versioned answers
    /// a service that lived through the whole stream holds. Returns the
    /// number of batches replayed.
    pub fn catch_up(&mut self, source: &DeltaLog) -> Result<u64, ServingError> {
        let mut replayed = 0u64;
        for entry in source.entries_after(self.seq())? {
            debug_assert_eq!(entry.seq, self.seq() + 1, "logs are contiguous");
            self.ingest(&entry.delta)?;
            replayed += 1;
        }
        Ok(replayed)
    }

    /// The versioned answer `pattern` served at offset `seq` — the newest
    /// retained change point at or below `seq`. Consistent with the push
    /// stream: between two updates, `query_at` returns the earlier one's
    /// answer for every offset in the gap.
    pub fn query_at(&self, pattern: PatternId, seq: u64) -> Result<VersionedAnswer, ServingError> {
        let entry = self.patterns.get(&pattern).ok_or(ServingError::UnknownPattern(pattern))?;
        if seq > self.seq() {
            return Err(ServingError::OffsetInFuture { seq, head: self.seq() });
        }
        match entry.history.iter().rev().find(|a| a.seq <= seq) {
            Some(a) => Ok(a.clone()),
            None => Err(ServingError::OffsetCompacted {
                seq,
                retained_from: entry.history.front().map_or(self.seq(), |a| a.seq),
            }),
        }
    }

    /// The current versioned answer of `pattern`.
    pub fn current(&self, pattern: PatternId) -> Result<VersionedAnswer, ServingError> {
        self.query_at(pattern, self.seq())
    }

    /// Compacts the owned log up to `upto` (see [`DeltaLog::compact_to`]).
    pub fn compact_log(&mut self, upto: u64) -> Result<(), ServingError> {
        self.log.compact_to(upto)
    }

    /// Persists the owned log to `path` via [`DeltaLog::save`] — the
    /// checkpoint call a long-lived service makes between ingests. The
    /// log's persistence cursor lives with the service, so repeated saves
    /// to the same path append only the batches ingested since the last
    /// one (wholesale rewrite only after [`Self::compact_log`]).
    pub fn save_log(&mut self, path: impl AsRef<std::path::Path>) -> Result<(), ServingError> {
        let t0 = std::time::Instant::now();
        let out = self.log.save(path);
        // Whole-save wall time lands in the phase family next to the
        // per-fsync latency the log itself records.
        self.telemetry
            .metrics()
            .histogram_with(names::PHASE_SECONDS, &[("phase", "log_save")])
            .record(t0.elapsed());
        out
    }

    /// Refreshes the snapshot-time gauges (log bytes, fsync age, pool
    /// queue depth, uptime). The admin plane calls this right before
    /// rendering `/metrics`, so scraped values describe scrape time
    /// rather than the last batch.
    pub fn sample_gauges(&self) {
        self.log_bytes.set(self.log.persisted_bytes().min(i64::MAX as u64) as i64);
        let age = self.log.fsync_age().map_or(0, |d| d.as_secs().min(i64::MAX as u64) as i64);
        self.fsync_age.set(age);
        self.pool_queue.set(self.registry.pool_queue_depth() as i64);
        self.uptime.set(self.started.elapsed().as_secs().min(i64::MAX as u64) as i64);
    }

    /// Subscription queues currently sitting at capacity, over the total:
    /// `(saturated, total)`.
    fn queue_saturation(&self) -> (usize, usize) {
        let mut saturated = 0usize;
        let mut total = 0usize;
        for sub in self.subs.values().flatten() {
            let (depth, capacity) = sub.shared.saturation();
            total += 1;
            if depth >= capacity {
                saturated += 1;
            }
        }
        (saturated, total)
    }

    /// Evaluates every health probe at this consistency point. See
    /// [`HealthReport`] for the levels and `/healthz` for the wire form.
    pub fn health(&self) -> HealthReport {
        let mut components = Vec::new();

        components.push(ComponentHealth {
            name: "loop",
            status: HealthStatus::Ready,
            detail: format!(
                "serving; uptime {}s, seq {}",
                self.started.elapsed().as_secs(),
                self.seq()
            ),
        });

        let unpersisted = self.log.unpersisted_entries();
        let (log_status, log_detail) = match self.log.fsync_age() {
            Some(age) if unpersisted > 0 && age > self.cfg.health.max_fsync_age => (
                HealthStatus::Degraded,
                format!(
                    "{unpersisted} unpersisted entries, last fsync {:.1}s ago (max {:.1}s)",
                    age.as_secs_f64(),
                    self.cfg.health.max_fsync_age.as_secs_f64()
                ),
            ),
            Some(age) => (
                HealthStatus::Ready,
                format!(
                    "{} bytes persisted, {unpersisted} unpersisted, last fsync {:.1}s ago",
                    self.log.persisted_bytes(),
                    age.as_secs_f64()
                ),
            ),
            None => {
                (HealthStatus::Ready, format!("not persisting ({unpersisted} entries in memory)"))
            }
        };
        components.push(ComponentHealth {
            name: "delta_log",
            status: log_status,
            detail: log_detail,
        });

        let (saturated, total) = self.queue_saturation();
        let frac = if total == 0 { 0.0 } else { saturated as f64 / total as f64 };
        components.push(ComponentHealth {
            name: "subscriptions",
            status: if frac > self.cfg.health.max_saturated_fraction {
                HealthStatus::Degraded
            } else {
                HealthStatus::Ready
            },
            detail: format!("{saturated}/{total} queues at capacity"),
        });

        let burning: Vec<String> = self
            .slos
            .iter()
            .filter(|(_, s)| s.burning())
            .map(|(id, s)| format!("{id} at {}‰", s.burn_permille()))
            .collect();
        components.push(ComponentHealth {
            name: "slo",
            status: if burning.is_empty() { HealthStatus::Ready } else { HealthStatus::Degraded },
            detail: if burning.is_empty() {
                format!("{} patterns within budget", self.slos.len())
            } else {
                format!("burning error budget: {}", burning.join(", "))
            },
        });

        components.push(match &self.audit_latch {
            Some((id, msg)) => ComponentHealth {
                name: "audit",
                status: HealthStatus::Unready,
                detail: format!("{id}: {msg}"),
            },
            None => ComponentHealth {
                name: "audit",
                status: HealthStatus::Ready,
                detail: format!(
                    "runs={} violations={}",
                    self.audit_runs.get(),
                    self.audit_violations.get()
                ),
            },
        });

        // Reach-mode census: informational — "engine" is a legitimate
        // budget decision and "readopt-pending" clears on the next calm
        // batch, but both belong on the operator's screen.
        let infos = self.registry.pattern_infos();
        let count = |mode: &str| infos.iter().filter(|i| i.reach_mode == mode).count();
        components.push(ComponentHealth {
            name: "reach",
            status: HealthStatus::Ready,
            detail: format!(
                "maintained={} engine={} readopt-pending={}",
                count("maintained"),
                count("engine"),
                count("readopt-pending")
            ),
        });

        HealthReport::aggregate(components)
    }

    /// One tick of the sampled production auditor: audits the next
    /// registered pattern round-robin (`gpm_audit_runs_total`), latching
    /// any violation into the health report (`gpm_audit_violations_total`,
    /// `/healthz` → unready) and clearing the latch when the same pattern
    /// later audits clean. Returns what was audited, `None` on an empty
    /// registry. Runs on the service loop between batches — sample it
    /// every N batches, not per batch (it re-derives full state).
    pub fn audit_sample(&mut self) -> Option<(PatternId, Result<(), String>)> {
        let ids = self.registry.pattern_ids();
        // A latched pattern that is no longer registered cannot re-audit
        // clean; its corrupt state died with the slot.
        if let Some((latched, _)) = &self.audit_latch {
            if !ids.contains(latched) {
                self.audit_latch = None;
            }
        }
        if ids.is_empty() {
            return None;
        }
        self.audit_cursor %= ids.len();
        let id = ids[self.audit_cursor];
        self.audit_cursor += 1;
        let result = self.registry.audit_pattern(id).expect("id from pattern_ids");
        self.audit_runs.inc();
        match &result {
            Ok(()) => {
                if self.audit_latch.as_ref().is_some_and(|(l, _)| *l == id) {
                    self.audit_latch = None;
                }
            }
            Err(msg) => {
                self.audit_violations.inc();
                self.audit_latch = Some((id, msg.clone()));
            }
        }
        Some((id, result))
    }

    /// The latched audit violation, if any (`/healthz` detail).
    pub fn audit_violation(&self) -> Option<(PatternId, String)> {
        self.audit_latch.clone()
    }
}

impl Drop for AnswerService {
    /// Closes every subscription queue so blocked consumers observe the
    /// end of the stream (pending updates stay readable).
    fn drop(&mut self) {
        for sub in self.subs.values().flatten() {
            sub.shared.close();
        }
    }
}

impl From<GraphError> for ServingError {
    fn from(e: GraphError) -> Self {
        ServingError::Graph(e)
    }
}
