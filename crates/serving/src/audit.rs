//! [`Auditor`]: the sampled production auditor.
//!
//! The differential oracles (`audit_pattern`: simulation invariants plus
//! the maintained-reach validation) exist so test harnesses can prove the
//! incremental state honest — but bugs that matter ship to production,
//! where nobody calls test hooks. The auditor runs the same oracles
//! **in production, on a sample**: a background thread wakes on a small
//! interval, and once the stream has advanced by `every_batches` since
//! the last audit it audits the next registered pattern round-robin, on
//! the service loop between batches (one pattern per tick — full-state
//! re-derivation is priced as a sampled tax, never a per-batch one).
//!
//! A violation latches the service **unready** (`/healthz`) and counts in
//! `gpm_audit_violations_total`; the latch clears when the same pattern
//! later audits clean or is deregistered. The thread dies with the
//! service loop (a [`LoopGone`](crate::LoopGone) stops it) or on
//! [`Auditor::stop`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crate::runtime::ServiceController;

/// Cadence of the sampled auditor.
#[derive(Debug, Clone)]
pub struct AuditorConfig {
    /// Audit once the head sequence advanced by at least this many
    /// batches since the last audit (0 = audit on every wake-up).
    pub every_batches: u64,
    /// How often the thread wakes to check the stream position.
    pub interval: Duration,
}

impl Default for AuditorConfig {
    fn default() -> Self {
        AuditorConfig { every_batches: 64, interval: Duration::from_millis(250) }
    }
}

/// A running auditor thread. Dropping it stops the thread.
pub struct Auditor {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl Auditor {
    /// Spawns the auditor against `controller`'s service loop.
    pub fn spawn(controller: ServiceController, cfg: AuditorConfig) -> Auditor {
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("gpm-auditor".into())
            .spawn(move || run(&controller, &cfg, &stop2))
            .expect("spawn auditor");
        Auditor { stop, join: Some(join) }
    }

    /// Stops the thread and joins it.
    pub fn stop(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for Auditor {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn run(controller: &ServiceController, cfg: &AuditorConfig, stop: &AtomicBool) {
    let mut last_seq: Option<u64> = None;
    let every = cfg.every_batches;
    while !stop.load(Ordering::SeqCst) {
        std::thread::sleep(cfg.interval);
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let prev = last_seq;
        let tick = controller.with(move |svc| {
            let seq = svc.seq();
            let due = match prev {
                None => true,
                Some(p) => seq.saturating_sub(p) >= every,
            };
            if due {
                // The outcome lands in the audit counters and the health
                // latch; the auditor itself only tracks stream position.
                let _ = svc.audit_sample();
                Some(seq)
            } else {
                None
            }
        });
        match tick {
            Ok(Some(seq)) => last_seq = Some(seq),
            Ok(None) => {}
            Err(_) => return, // service loop gone: nothing left to audit
        }
    }
}
