//! # gpm-serving
//!
//! A streaming **answer service** over the incremental matching stack: the
//! layer that turns "call [`PatternRegistry::apply`] and read the result"
//! into "millions of long-lived subscribers are told exactly when their
//! diversified top-k moved".
//!
//! The paper's incremental story (and this repository's `gpm-incremental`
//! machinery) is *pull*: someone must ask after every delta. A serving
//! tier needs *push* — and push changes the contract in three ways this
//! crate owns:
//!
//! * **[`DeltaLog`]** — every ingested [`GraphDelta`] batch is appended to
//!   a replayable log with a monotone **sequence number**. Late joiners
//!   and crash recovery replay from an offset and land on byte-identical
//!   answers; the log persists as JSON-lines (via the workspace serde
//!   stubs) and can be compacted once every consumer has passed an offset.
//! * **Subscriptions** — [`AnswerService::subscribe`] registers a pattern
//!   and returns a [`Subscription`] handle that receives an
//!   [`AnswerUpdate`]`{ version, seq, topk, diff }` **only** when that
//!   pattern's answer materially changed (some match entered, left or
//!   moved — computed from the registry's per-pattern change sets). Each
//!   subscription owns a **bounded queue with newest-wins coalescing**:
//!   a slow consumer loses intermediate answers, never consistency — the
//!   queued update always carries a complete answer plus a diff rebased
//!   onto whatever the consumer last saw, and `version` gaps reveal how
//!   much was skipped.
//! * **Versioned, monotonic answers** — every update carries the log
//!   sequence it reflects; [`AnswerService::query_at`] serves the answer
//!   that was current at any retained offset, so pollers and push
//!   consumers can be reconciled against the same timeline.
//!
//! The push path is differentially tested against the pull path: for
//! generated streams, the sequence of subscription updates equals the
//! sequence of static-recompute top-k changes per pattern (see
//! `tests/service_differential.rs`).
//!
//! ```
//! use gpm_graph::{builder::graph_from_parts, GraphDelta};
//! use gpm_incremental::IncrementalConfig;
//! use gpm_pattern::builder::label_pattern;
//! use gpm_serving::{AnswerService, NotifyMode, ServiceConfig};
//!
//! let g = graph_from_parts(&[0, 0, 1, 1], &[(0, 2), (1, 2), (1, 3)]).unwrap();
//! let mut svc = AnswerService::new(&g, ServiceConfig::default());
//! let sub = svc
//!     .subscribe(
//!         label_pattern(&[0, 1], &[(0, 1)], 0).unwrap(),
//!         IncrementalConfig::new(2),
//!         NotifyMode::Relevance,
//!     )
//!     .unwrap();
//! let initial = sub.try_recv().unwrap(); // the consistent starting answer
//! assert_eq!(initial.seq, 0);
//! assert_eq!(initial.topk_nodes(), vec![1, 0]);
//!
//! // A batch that flips the ranking: exactly one notification.
//! svc.ingest(&GraphDelta::new().add_node(1).add_edge(0, 4)).unwrap();
//! let update = sub.try_recv().unwrap();
//! assert_eq!(update.seq, 1);
//! assert_eq!(update.topk_nodes(), vec![0, 1]);
//! assert_eq!(update.diff.reordered, vec![0, 1]);
//!
//! // A batch its top-k survives: no spurious wakeup.
//! svc.ingest(&GraphDelta::new().add_node(3)).unwrap();
//! assert!(sub.try_recv().is_none());
//! ```

mod admin;
mod answer;
mod audit;
mod health;
mod http;
mod log;
mod runtime;
mod service;
mod slo;
mod subscription;

pub use admin::AdminServer;
pub use answer::{AnswerUpdate, VersionedAnswer};
pub use audit::{Auditor, AuditorConfig};
pub use health::{ComponentHealth, HealthConfig, HealthReport, HealthStatus};
pub use log::{DeltaLog, LogEntry};
pub use runtime::{LoopGone, ServiceController, ServiceHandle};
pub use service::{AnswerService, IngestReport, ServiceConfig, ServiceStats, ServingError};
pub use slo::SloConfig;
pub use subscription::{NotifyMode, Subscription, SubscriptionId};

// The observability vocabulary of [`ServiceConfig::telemetry`] and
// [`AnswerService::telemetry`], re-exported so serving consumers need no
// direct gpm-telemetry dependency.
pub use gpm_telemetry::{names, BatchTrace, Telemetry, TelemetryConfig};

// Doc-link convenience.
#[allow(unused_imports)]
use gpm_graph::GraphDelta;
#[allow(unused_imports)]
use gpm_incremental::PatternRegistry;
