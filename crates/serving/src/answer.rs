//! Versioned answers and the update records pushed to subscribers.

use gpm_core::result::{AnswerDiff, RankedMatch};
use gpm_graph::NodeId;
use gpm_incremental::PatternId;
use serde::{Serialize, Value};

/// One pattern's answer as of a log offset: what [`query_at`] serves and
/// what the per-pattern history retains. `version` counts that pattern's
/// material changes (strictly increasing per pattern); `seq` is the log
/// offset whose batch produced it.
///
/// [`query_at`]: crate::AnswerService::query_at
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionedAnswer {
    /// Log sequence this answer reflects.
    pub seq: u64,
    /// Per-pattern answer version (1 at registration).
    pub version: u64,
    /// The ranked answer.
    pub matches: Vec<RankedMatch>,
}

impl VersionedAnswer {
    /// Just the node ids.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.matches.iter().map(|m| m.node).collect()
    }
}

impl Serialize for VersionedAnswer {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("seq".into(), self.seq.to_value()),
            ("version".into(), self.version.to_value()),
            ("matches".into(), matches_to_value(&self.matches)),
        ])
    }
}

/// One push notification: the complete fresh answer (never a torn or
/// partial one), the log sequence it reflects, a strictly increasing
/// per-subscription `version`, and the change set against whatever this
/// subscriber saw last. Under queue overflow, intermediate updates are
/// coalesced away — `version` then jumps by the number of skipped
/// answers, and `diff` is rebased so it still reconciles the consumer's
/// last-seen answer with `topk`. How often that happened is observable:
/// per subscription via [`Subscription::dropped`] /
/// [`Subscription::rebased`], and stack-wide as the
/// `gpm_serving_updates_dropped_total` / `gpm_serving_diffs_rebased_total`
/// telemetry counters (also in [`ServiceStats`]).
///
/// [`Subscription::dropped`]: crate::Subscription::dropped
/// [`Subscription::rebased`]: crate::Subscription::rebased
/// [`ServiceStats`]: crate::ServiceStats
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AnswerUpdate {
    /// The pattern this update concerns.
    pub pattern: PatternId,
    /// Per-subscription answer version (strictly increasing; gaps =
    /// coalesced updates).
    pub version: u64,
    /// Log sequence this answer reflects (monotonic per subscription).
    pub seq: u64,
    /// The complete ranked answer at `seq`.
    pub topk: Vec<RankedMatch>,
    /// What changed relative to the update the subscriber saw before.
    pub diff: AnswerDiff,
}

impl AnswerUpdate {
    /// Just the answer's node ids.
    pub fn topk_nodes(&self) -> Vec<NodeId> {
        self.topk.iter().map(|m| m.node).collect()
    }
}

impl Serialize for AnswerUpdate {
    fn to_value(&self) -> Value {
        Value::Object(vec![
            ("pattern".into(), self.pattern.to_string().to_value()),
            ("version".into(), self.version.to_value()),
            ("seq".into(), self.seq.to_value()),
            ("topk".into(), matches_to_value(&self.topk)),
            ("entered".into(), self.diff.entered.to_value()),
            ("left".into(), self.diff.left.to_value()),
            ("reordered".into(), self.diff.reordered.to_value()),
        ])
    }
}

/// `[[node, δr], …]` (the orphan rule keeps us from implementing the
/// stub's `Serialize` for `gpm-core`'s `RankedMatch` directly).
pub(crate) fn matches_to_value(matches: &[RankedMatch]) -> Value {
    Value::Array(
        matches
            .iter()
            .map(|m| Value::Array(vec![m.node.to_value(), m.relevance.to_value()]))
            .collect(),
    )
}
