//! The serving health model: one [`HealthReport`] aggregated from
//! component probes, rendered on `/healthz` and summarized by `/readyz`.
//!
//! Three levels, chosen for what an orchestrator should do about them:
//!
//! * **Ready** — serve traffic.
//! * **Degraded** — keep serving, page someone: answers are still
//!   correct but a promise is slipping (stale durability, saturated
//!   subscriber queues, an SLO burning its budget).
//! * **Unready** — stop routing here: the service loop is gone, or the
//!   production auditor proved a maintained answer wrong — a correctness
//!   violation outranks every latency concern.
//!
//! Aggregation is worst-wins: any failed component makes the service
//! unready, else any degraded component makes it degraded.

use std::time::Duration;

/// Overall (and per-component) health level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthStatus {
    /// Serving normally.
    Ready,
    /// Serving, but a promise is slipping — keep traffic, alert.
    Degraded,
    /// Do not route traffic here.
    Unready,
}

impl HealthStatus {
    /// The wire spelling (`"ready"` / `"degraded"` / `"unready"`).
    pub fn as_str(self) -> &'static str {
        match self {
            HealthStatus::Ready => "ready",
            HealthStatus::Degraded => "degraded",
            HealthStatus::Unready => "unready",
        }
    }
}

/// One probe's verdict.
#[derive(Debug, Clone)]
pub struct ComponentHealth {
    /// Stable component name (`"loop"`, `"delta_log"`, `"subscriptions"`,
    /// `"slo"`, `"audit"`, `"reach"`).
    pub name: &'static str,
    /// This component's level.
    pub status: HealthStatus,
    /// Human-readable evidence for the level.
    pub detail: String,
}

/// Thresholds of the health probes.
#[derive(Debug, Clone)]
pub struct HealthConfig {
    /// A log with unpersisted entries whose last fsync is older than this
    /// is a degraded durability promise. Never-persisted logs are exempt
    /// (persistence is optional until the first save opts in).
    pub max_fsync_age: Duration,
    /// Degraded when more than this fraction of subscription queues sit
    /// at capacity (the next push coalesces — consumers are losing
    /// history).
    pub max_saturated_fraction: f64,
}

impl Default for HealthConfig {
    fn default() -> Self {
        HealthConfig { max_fsync_age: Duration::from_secs(30), max_saturated_fraction: 0.5 }
    }
}

/// The aggregated health of a service at one consistency point.
#[derive(Debug, Clone)]
pub struct HealthReport {
    /// Worst-wins aggregate of the components.
    pub status: HealthStatus,
    /// Every probe's verdict, in a stable order.
    pub components: Vec<ComponentHealth>,
}

impl HealthReport {
    /// Aggregates `components` worst-wins.
    pub fn aggregate(components: Vec<ComponentHealth>) -> Self {
        let status = components.iter().map(|c| c.status).max().unwrap_or(HealthStatus::Ready);
        HealthReport { status, components }
    }

    /// `true` unless the report is unready — what `/readyz` keys on.
    pub fn is_ready(&self) -> bool {
        self.status != HealthStatus::Unready
    }

    /// The `/healthz` body:
    /// `{"status":"…","components":[{"name":"…","status":"…","detail":"…"},…]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"status\":\"");
        out.push_str(self.status.as_str());
        out.push_str("\",\"components\":[");
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            out.push_str(c.name);
            out.push_str("\",\"status\":\"");
            out.push_str(c.status.as_str());
            out.push_str("\",\"detail\":\"");
            out.push_str(&escape_json(&c.detail));
            out.push_str("\"}");
        }
        out.push_str("]}");
        out
    }
}

/// Minimal JSON string escaping for detail strings (quotes, backslashes,
/// control characters).
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn comp(name: &'static str, status: HealthStatus) -> ComponentHealth {
        ComponentHealth { name, status, detail: String::new() }
    }

    #[test]
    fn aggregation_is_worst_wins() {
        let r = HealthReport::aggregate(vec![]);
        assert_eq!(r.status, HealthStatus::Ready);
        let r = HealthReport::aggregate(vec![
            comp("a", HealthStatus::Ready),
            comp("b", HealthStatus::Degraded),
        ]);
        assert_eq!(r.status, HealthStatus::Degraded);
        assert!(r.is_ready(), "degraded still serves");
        let r = HealthReport::aggregate(vec![
            comp("a", HealthStatus::Degraded),
            comp("b", HealthStatus::Unready),
        ]);
        assert_eq!(r.status, HealthStatus::Unready);
        assert!(!r.is_ready());
    }

    #[test]
    fn json_escapes_details() {
        let r = HealthReport::aggregate(vec![ComponentHealth {
            name: "audit",
            status: HealthStatus::Unready,
            detail: "diverged: \"got\" != want\n".into(),
        }]);
        let json = r.to_json();
        assert!(json.starts_with("{\"status\":\"unready\""));
        assert!(json.contains("\\\"got\\\" != want\\n"));
    }
}
