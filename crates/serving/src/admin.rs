//! [`AdminServer`]: the operator plane on a TCP port.
//!
//! A std-only HTTP/1.1 listener (see [`crate::http`]) serving the live
//! service's observability surfaces. Every request is answered from a
//! **consistency point**: handlers run their read on the service loop via
//! a [`ServiceController`], between batches — a scrape never observes a
//! half-applied batch, and a dead loop turns every endpoint into `503`
//! (the controller doubles as the liveness probe).
//!
//! | Endpoint | Body |
//! |---|---|
//! | `GET /metrics` | Prometheus text exposition (gauges sampled at scrape time) |
//! | `GET /healthz` | aggregated [`HealthReport`] JSON; `503` when unready |
//! | `GET /readyz` | `ready`/`degraded` (200) or `unready` (503) |
//! | `GET /traces/recent` | flight-recorder ring as a JSON array |
//! | `GET /traces/slow` | over-threshold captures as a JSON array |
//! | `GET /traces/slowest` | the slowest batch ever, or `null` |
//! | `GET /patterns` | per-pattern introspection array |
//! | `GET /patterns/<n>` | one pattern (`404` for unknown ids) |

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use gpm_incremental::PatternInfo;

use crate::http::{read_request, write_response, Request};
use crate::runtime::ServiceController;

const JSON: &str = "application/json";
/// The content type Prometheus' text scraper expects.
const PROM: &str = "text/plain; version=0.0.4; charset=utf-8";

/// The admin plane's listener. Binding spawns an accept loop thread;
/// each connection is answered on its own short-lived thread (admin
/// traffic is a scraper and an operator, not a fleet).
pub struct AdminServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl AdminServer {
    /// Binds `addr` (use port 0 for an ephemeral port — tests and
    /// examples read it back via [`Self::local_addr`]) and starts
    /// serving against `controller`'s loop.
    pub fn bind(
        addr: impl ToSocketAddrs,
        controller: ServiceController,
    ) -> io::Result<AdminServer> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let join = std::thread::Builder::new()
            .name("gpm-admin".into())
            .spawn(move || accept_loop(&listener, &controller, &stop2))?;
        Ok(AdminServer { addr, stop, join: Some(join) })
    }

    /// Where the listener actually bound.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept loop. In-flight connection
    /// threads finish on their own.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for AdminServer {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

fn accept_loop(listener: &TcpListener, controller: &ServiceController, stop: &AtomicBool) {
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _)) => {
                let _ = stream.set_nonblocking(false);
                let controller = controller.clone();
                let _ = std::thread::Builder::new()
                    .name("gpm-admin-conn".into())
                    .spawn(move || handle(stream, &controller));
            }
            // Nonblocking accept: poll the stop flag at a human-invisible
            // cadence instead of parking forever on a blocking accept (a
            // clean shutdown must not need a wake-up connection).
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(10));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(10)),
        }
    }
}

fn handle(mut stream: TcpStream, controller: &ServiceController) {
    let Some(Request { method, path }) = read_request(&mut stream) else {
        return; // malformed: just drop the connection
    };
    if method != "GET" {
        write_response(&mut stream, 405, JSON, "{\"error\":\"method not allowed\"}");
        return;
    }
    let (status, content_type, body) = route(&path, controller);
    write_response(&mut stream, status, content_type, &body);
}

/// Dispatches one request, folding a dead service loop into `503`.
fn route(path: &str, controller: &ServiceController) -> (u16, &'static str, String) {
    const LOOP_GONE: &str = "{\"status\":\"unready\",\"error\":\"service loop gone\"}";
    let gone = |_| (503u16, JSON, LOOP_GONE.to_string());
    match path {
        "/metrics" => controller
            .with(|svc| {
                svc.sample_gauges();
                svc.telemetry().render()
            })
            .map(|body| (200, PROM, body))
            .unwrap_or_else(gone),
        "/healthz" => controller
            .with(|svc| svc.health())
            .map(|report| {
                let status = if report.is_ready() { 200 } else { 503 };
                (status, JSON, report.to_json())
            })
            .unwrap_or_else(gone),
        "/readyz" => controller
            .with(|svc| svc.health())
            .map(|report| {
                let status = if report.is_ready() { 200 } else { 503 };
                (status, JSON, format!("{{\"status\":\"{}\"}}", report.status.as_str()))
            })
            .unwrap_or_else(gone),
        "/traces/recent" => traces(controller, |svc| {
            svc.telemetry().recorder().recent().iter().map(|t| t.to_json()).collect()
        }),
        "/traces/slow" => traces(controller, |svc| {
            svc.telemetry().recorder().slow().iter().map(|t| t.to_json()).collect()
        }),
        "/traces/slowest" => controller
            .with(|svc| {
                svc.telemetry().recorder().slowest().map_or("null".to_string(), |t| t.to_json())
            })
            .map(|body| (200, JSON, body))
            .unwrap_or_else(gone),
        "/patterns" => controller
            .with(|svc| {
                let items: Vec<String> =
                    svc.registry().pattern_infos().iter().map(pattern_json).collect();
                format!("[{}]", items.join(","))
            })
            .map(|body| (200, JSON, body))
            .unwrap_or_else(gone),
        _ => match path.strip_prefix("/patterns/").map(str::to_string) {
            Some(seg) => controller
                .with(move |svc| {
                    svc.registry()
                        .pattern_infos()
                        .iter()
                        .find(|i| i.id.to_string() == format!("pattern#{seg}"))
                        .map(pattern_json)
                })
                .map(|found| match found {
                    Some(body) => (200, JSON, body),
                    None => (404, JSON, "{\"error\":\"unknown pattern\"}".to_string()),
                })
                .unwrap_or_else(gone),
            None => (404, JSON, "{\"error\":\"not found\"}".to_string()),
        },
    }
}

/// Shared shape of the two trace-list endpoints.
fn traces(
    controller: &ServiceController,
    f: impl FnOnce(&mut crate::AnswerService) -> Vec<String> + Send + 'static,
) -> (u16, &'static str, String) {
    controller
        .with(|svc| f(svc))
        .map(|items| (200, JSON, format!("[{}]", items.join(","))))
        .unwrap_or_else(|_| {
            (503, JSON, "{\"status\":\"unready\",\"error\":\"service loop gone\"}".to_string())
        })
}

/// One pattern's introspection JSON (numbers and fixed vocabulary only —
/// nothing here needs escaping).
fn pattern_json(info: &PatternInfo) -> String {
    let s = &info.stats;
    format!(
        concat!(
            "{{\"id\":\"{}\",\"nodes\":{},\"edges\":{},\"k\":{},\"lambda\":{},",
            "\"reach_mode\":\"{}\",\"bound_mode\":\"{}\",\"stats\":{{",
            "\"applies\":{},\"incremental_applies\":{},\"full_rebuilds\":{},",
            "\"full_rank_refreshes\":{},\"sets_recomputed\":{},\"cond_incremental\":{},",
            "\"cond_rebuilds\":{},\"pruned_outputs\":{},\"bound_refolds\":{},",
            "\"bound_rebuilds\":{},\"last_pruned_outputs\":{},",
            "\"last_swept_pairs\":{},\"last_dirty_outputs\":{},",
            "\"last_refresh_ns\":{}}}}}"
        ),
        info.id,
        info.nodes,
        info.edges,
        info.k,
        info.lambda,
        info.reach_mode,
        info.bound_mode,
        s.applies,
        s.incremental_applies,
        s.full_rebuilds,
        s.full_rank_refreshes,
        s.sets_recomputed,
        s.cond_incremental,
        s.cond_rebuilds,
        s.pruned_outputs,
        s.bound_refolds,
        s.bound_rebuilds,
        s.last_pruned_outputs,
        s.last_swept_pairs,
        s.last_dirty_outputs,
        s.last_refresh_ns,
    )
}
