//! Per-pattern notify-latency SLOs with rolling-window burn rates.
//!
//! An operator's question is not "what is the p99" (the histograms answer
//! that) but "am I keeping the promise I made for this pattern, and how
//! fast am I spending the error budget if not". Each registered pattern
//! carries one [`SloTracker`]: every ingest that touched the pattern
//! records whether its batch-ingress-to-notify latency met the
//! objective. Good/bad totals are exported as the cumulative
//! `gpm_slo_notify_good_total` / `gpm_slo_notify_bad_total` counters
//! (labeled by pattern), and the **burn rate** — the bad fraction over a
//! rolling window of recent events, divided by the error budget — as the
//! `gpm_slo_burn_rate_permille` gauge. A burn rate of 1000‰ means the
//! window is violating at exactly the budgeted rate; sustained values
//! above it mean the monthly budget is being spent faster than it
//! accrues, which is what flips the health report to degraded.

use std::collections::VecDeque;
use std::time::Duration;

use gpm_telemetry::{names, Counter, Gauge, Telemetry};

/// The per-pattern latency objective. One config serves every pattern
/// (per-pattern overrides would just be N configs).
#[derive(Debug, Clone)]
pub struct SloConfig {
    /// A notify counts as *good* when the whole ingest — batch ingress to
    /// the last subscriber push — finished within this.
    pub objective: Duration,
    /// How many recent notifies the burn-rate window holds.
    pub window: usize,
    /// Allowed bad fraction (the error budget). A window violating at
    /// exactly this rate burns at 1.0 (1000‰).
    pub budget: f64,
}

impl Default for SloConfig {
    fn default() -> Self {
        SloConfig { objective: Duration::from_millis(50), window: 128, budget: 0.01 }
    }
}

/// Rolling SLO state of one pattern. Cheap: one bool ring plus two
/// counters and a gauge, all updated once per touched batch.
#[derive(Debug)]
pub(crate) struct SloTracker {
    cfg: SloConfig,
    /// Recent events, `true` = objective met; bounded by `cfg.window`.
    window: VecDeque<bool>,
    /// Bad events currently in the window.
    window_bad: usize,
    good: Counter,
    bad: Counter,
    burn: Gauge,
}

impl SloTracker {
    /// A tracker exporting under `pattern="<label>"`.
    pub(crate) fn new(telemetry: &Telemetry, pattern_label: &str, cfg: SloConfig) -> Self {
        let m = telemetry.metrics();
        let labels = &[("pattern", pattern_label)];
        SloTracker {
            cfg,
            window: VecDeque::new(),
            window_bad: 0,
            good: m.counter_with(names::SLO_GOOD, labels),
            bad: m.counter_with(names::SLO_BAD, labels),
            burn: m.gauge_with(names::SLO_BURN_RATE, labels),
        }
    }

    /// Records one notify latency and refreshes the burn-rate gauge.
    pub(crate) fn record(&mut self, latency: Duration) {
        let good = latency <= self.cfg.objective;
        if good {
            self.good.inc();
        } else {
            self.bad.inc();
        }
        self.window.push_back(good);
        if !good {
            self.window_bad += 1;
        }
        while self.window.len() > self.cfg.window.max(1) {
            if self.window.pop_front() == Some(false) {
                self.window_bad -= 1;
            }
        }
        self.burn.set(self.burn_permille());
    }

    /// Current burn rate in permille: `1000 ·(bad fraction / budget)`,
    /// saturating; 0 while the window is empty.
    pub(crate) fn burn_permille(&self) -> i64 {
        if self.window.is_empty() {
            return 0;
        }
        let bad_fraction = self.window_bad as f64 / self.window.len() as f64;
        let burn = bad_fraction / self.cfg.budget.max(f64::EPSILON);
        (burn * 1000.0).min(i64::MAX as f64) as i64
    }

    /// `true` while the rolling window spends budget faster than it
    /// accrues — the health model's degraded trigger.
    pub(crate) fn burning(&self) -> bool {
        self.burn_permille() > 1000
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_telemetry::TelemetryConfig;

    fn tracker(window: usize, budget: f64) -> SloTracker {
        let t = Telemetry::new(TelemetryConfig::default());
        SloTracker {
            cfg: SloConfig { objective: Duration::from_millis(10), window, budget },
            window: VecDeque::new(),
            window_bad: 0,
            good: t.metrics().counter_with(names::SLO_GOOD, &[("pattern", "t")]),
            bad: t.metrics().counter_with(names::SLO_BAD, &[("pattern", "t")]),
            burn: t.metrics().gauge_with(names::SLO_BURN_RATE, &[("pattern", "t")]),
        }
    }

    #[test]
    fn burn_rate_tracks_the_window_not_the_lifetime() {
        let mut s = tracker(4, 0.25);
        for _ in 0..4 {
            s.record(Duration::from_millis(50)); // all bad
        }
        assert_eq!(s.burn_permille(), 4000, "100% bad over a 25% budget burns at 4x");
        assert!(s.burning());
        for _ in 0..4 {
            s.record(Duration::from_millis(1)); // window rolls fully good
        }
        assert_eq!(s.burn_permille(), 0, "old violations aged out of the window");
        assert!(!s.burning());
        assert_eq!((s.good.get(), s.bad.get()), (4, 4), "cumulative counters keep the lifetime");
    }

    #[test]
    fn burning_flips_exactly_past_the_budget() {
        let mut s = tracker(10, 0.2);
        for i in 0..10 {
            // 2 bad out of 10 = exactly the budget (bad ones last, so the
            // next record ages out a *good* event).
            s.record(Duration::from_millis(if i >= 8 { 50 } else { 1 }));
        }
        assert_eq!(s.burn_permille(), 1000);
        assert!(!s.burning(), "at budget is not over budget");
        s.record(Duration::from_millis(50)); // 3 bad of the last 10
        assert!(s.burning());
    }
}
