//! Minimal std-only HTTP/1.1 plumbing for the admin plane.
//!
//! Deliberately tiny: `GET` only, one request per connection
//! (`Connection: close`), no TLS, no chunked bodies — enough for a
//! Prometheus scraper, a load-balancer health probe and a curl-wielding
//! operator, with zero dependencies. This is also the first wire surface
//! in the stack; a future query front-end reuses the listener/codec
//! shape rather than inventing another one.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A parsed request line: method and percent-unaware path (query strings
/// are split off and ignored — no admin endpoint takes parameters).
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Request {
    pub(crate) method: String,
    pub(crate) path: String,
}

/// Reads one request head off `stream` (up to the blank line; any body is
/// ignored — GETs carry none). Returns `None` on malformed, oversized or
/// timed-out input; the caller just drops the connection.
pub(crate) fn read_request(stream: &mut TcpStream) -> Option<Request> {
    /// Cap on the request head — an admin request line is tens of bytes.
    const MAX_HEAD: usize = 8 * 1024;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let mut head = Vec::new();
    let mut buf = [0u8; 1024];
    loop {
        let n = stream.read(&mut buf).ok()?;
        if n == 0 {
            return None;
        }
        head.extend_from_slice(&buf[..n]);
        if head.windows(4).any(|w| w == b"\r\n\r\n") || head.windows(2).any(|w| w == b"\n\n") {
            break;
        }
        if head.len() > MAX_HEAD {
            return None;
        }
    }
    let head = String::from_utf8_lossy(&head);
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let target = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/1.") {
        return None;
    }
    let path = target.split('?').next().unwrap_or(target).to_string();
    Some(Request { method, path })
}

/// The reason phrases the admin plane uses.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Writes one complete response and flushes. Always `Connection: close`;
/// the caller drops the stream afterwards.
pub(crate) fn write_response(stream: &mut TcpStream, status: u16, content_type: &str, body: &str) {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        reason(status),
        content_type,
        body.len()
    );
    let _ = stream.write_all(head.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    #[test]
    fn parses_a_request_and_round_trips_a_response() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET /metrics?foo=1 HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
            let mut out = String::new();
            s.read_to_string(&mut out).unwrap();
            out
        });
        let (mut conn, _) = listener.accept().unwrap();
        let req = read_request(&mut conn).expect("well-formed request");
        assert_eq!(req, Request { method: "GET".into(), path: "/metrics".into() });
        write_response(&mut conn, 200, "text/plain", "hello");
        drop(conn);
        let got = client.join().unwrap();
        assert!(got.starts_with("HTTP/1.1 200 OK\r\n"), "got: {got}");
        assert!(got.contains("Content-Length: 5\r\n"));
        assert!(got.contains("Connection: close\r\n"));
        assert!(got.ends_with("hello"));
    }

    #[test]
    fn rejects_garbage() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let client = std::thread::spawn(move || {
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"not http at all\r\n\r\n").unwrap();
        });
        let (mut conn, _) = listener.accept().unwrap();
        assert!(read_request(&mut conn).is_none());
        client.join().unwrap();
    }
}
